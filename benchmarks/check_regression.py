#!/usr/bin/env python
"""Fail CI when sweep throughput regresses against the committed baseline.

Usage::

    python benchmarks/check_regression.py \
        --baseline benchmarks/BENCH_2.json \
        --current bench-current.json \
        --max-regression 0.25

Both files are ``pytest-benchmark`` JSON dumps.  For every benchmark
name present in both, the best (minimum) observed time is compared; the
check fails if any gated benchmark is more than ``--max-regression``
slower than the baseline.  Minimum times are used because they are the
least noise-sensitive statistic a 3-round run offers; the allowance is
generous for the same reason.  Benchmarks present in only one file are
reported but never fail the check, so adding a benchmark does not
require regenerating the baseline in the same commit.

Throughput rates are gated alongside the times: every ``extra_info``
key ending in ``_per_s`` (``accesses_per_s``, ``events_per_s``, ...)
present in both files is compared as a higher-is-better number with the
same fractional allowance.  The rates catch the failure mode raw times
cannot — a change that shrinks the measured work and its wall time
together looks fine by time but shows up as a rate drop.
"""

from __future__ import annotations

import argparse
import json
import sys


def load_minimums(path: str) -> dict[str, float]:
    with open(path) as handle:
        payload = json.load(handle)
    return {
        bench["fullname"]: bench["stats"]["min"]
        for bench in payload["benchmarks"]
    }


def load_rates(path: str) -> dict[str, dict[str, float]]:
    """Per-benchmark ``extra_info`` throughput rates (higher is better)."""
    with open(path) as handle:
        payload = json.load(handle)
    return {
        bench["fullname"]: {
            key: float(value)
            for key, value in bench.get("extra_info", {}).items()
            if key.endswith("_per_s") and isinstance(value, (int, float))
        }
        for bench in payload["benchmarks"]
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument(
        "--max-regression", type=float, default=0.25,
        help="allowed fractional slowdown (0.25 = 25%% slower)",
    )
    parser.add_argument(
        "--gate", default="",
        help="only benchmarks whose name contains this substring can fail "
             "the check; others are reported informationally (default: all "
             "gate). The ~10 ms micro-benchmarks are noisier than the "
             "allowance, so CI gates the sweep throughput only.",
    )
    args = parser.parse_args(argv)

    baseline = load_minimums(args.baseline)
    current = load_minimums(args.current)
    baseline_rates = load_rates(args.baseline)
    current_rates = load_rates(args.current)

    failed = False
    for name in sorted(baseline):
        if name not in current:
            print(f"SKIP (not in current run): {name}")
            continue
        old, new = baseline[name], current[name]
        change = new / old - 1.0
        gated = args.gate in name
        status = "ok" if gated else "info"
        if change > args.max_regression and gated:
            status = "REGRESSION"
            failed = True
        print(
            f"{status:>10}  {name}: {old * 1e3:.2f} ms -> {new * 1e3:.2f} ms "
            f"({change:+.1%})"
        )
        old_rates = baseline_rates.get(name, {})
        new_rates = current_rates.get(name, {})
        for key in sorted(set(old_rates) & set(new_rates)):
            old_r, new_r = old_rates[key], new_rates[key]
            drop = 1.0 - new_r / old_r
            status = "ok" if gated else "info"
            if drop > args.max_regression and gated:
                status = "REGRESSION"
                failed = True
            print(
                f"{status:>10}  {name} [{key}]: {old_r:,.0f} -> {new_r:,.0f} "
                f"({-drop:+.1%})"
            )
    for name in sorted(set(current) - set(baseline)):
        print(f"NEW (no baseline): {name}")

    if failed:
        print(
            f"FAILED: at least one benchmark regressed more than "
            f"{args.max_regression:.0%}",
            file=sys.stderr,
        )
        return 1
    print("All gated benchmarks within the regression allowance.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
