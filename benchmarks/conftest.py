"""Benchmark fixtures.

Every benchmark regenerates one of the paper's exhibits against the same
deterministic A5-profile trace (two simulated hours; ~25k events).  The
trace is generated once per session; each benchmark then measures the
analysis or simulation it covers and prints the exhibit (visible with
``pytest benchmarks/ --benchmark-only -s``).

`bench_once` wraps ``benchmark.pedantic(rounds=1)``: the exhibits are
deterministic whole-trace computations, so one timed round is the honest
measurement.
"""

from __future__ import annotations

import pytest

from repro.trace.log import TraceLog
from repro.workload.generator import GenerationResult, generate
from repro.workload.profiles import UCBARPA

BENCH_SEED = 7
BENCH_DURATION = 2 * 3600.0


@pytest.fixture(scope="session")
def generation() -> GenerationResult:
    return generate(UCBARPA, seed=BENCH_SEED, duration=BENCH_DURATION)


@pytest.fixture(scope="session")
def trace(generation) -> TraceLog:
    return generation.trace


@pytest.fixture
def bench_once(benchmark):
    """Run a deterministic exhibit computation exactly once, timed."""

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return run
