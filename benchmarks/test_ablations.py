"""Ablation benches for the design choices DESIGN.md calls out.

1. **No-read-write tracing** — how much smaller is the positions-only
   trace than one that logs every read and write, and does it lose any
   byte accounting?
2. **Whole-block-overwrite read elision** — its contribution to the
   delayed-write miss ratio.
3. **Unlink/truncate invalidation** — how much of the delayed-write win
   is dying data never reaching disk.
4. **LRU vs FIFO replacement** — supporting the paper's LRU choice.
"""

import pytest

from repro.cache.policies import DELAYED_WRITE
from repro.cache.simulator import BlockCacheSimulator
from repro.cache.stream import build_stream
from repro.trace.stats import total_bytes_transferred

MB = 1024 * 1024


def test_ablation_noreadwrite(generation, bench_once, benchmark):
    """The paper's central methodological bet (Section 3.1)."""
    trace = generation.trace
    fs = generation.fs
    reconstructed = bench_once(total_bytes_transferred, trace)

    logged_events = len(trace)
    read_write_calls = fs.syscall_counts.get("read", 0) + fs.syscall_counts.get(
        "write", 0
    )
    full_log_events = logged_events + read_write_calls
    compression = full_log_events / logged_events
    print(
        f"\npositions-only trace: {logged_events:,} events; logging every "
        f"read/write would add {read_write_calls:,} more "
        f"({compression:.1f}x compression)"
    )
    benchmark.extra_info["compression_x"] = round(compression, 1)

    # The whole point: despite logging no reads or writes, the byte ranges
    # reconstructed from positions match what actually moved (up to the
    # tail runs of files still open at the horizon).
    actual = fs.total_bytes_read + fs.total_bytes_written
    assert reconstructed == pytest.approx(actual, rel=0.02)
    # And the trace really is smaller (our programs do 4 KB I/O; the
    # paper's 1 KB-stdio era would have made the gap ~4x larger still).
    assert compression > 1.5


def test_ablation_read_elision(trace, bench_once, benchmark):
    """'...unless the block was about to be overwritten in its entirety'."""
    stream = build_stream(trace)

    def run_pair():
        with_elision = BlockCacheSimulator(
            4 * MB, policy=DELAYED_WRITE, read_elision=True
        ).run(stream)
        without = BlockCacheSimulator(
            4 * MB, policy=DELAYED_WRITE, read_elision=False
        ).run(stream)
        return with_elision, without

    with_elision, without = bench_once(run_pair)
    saved = without.disk_reads - with_elision.disk_reads
    print(
        f"\nread elision avoids {saved:,} disk reads "
        f"({100 * with_elision.miss_ratio:.1f}% vs "
        f"{100 * without.miss_ratio:.1f}% miss ratio)"
    )
    benchmark.extra_info["reads_saved"] = saved
    assert with_elision.read_elisions > 0
    assert with_elision.disk_reads < without.disk_reads
    assert with_elision.disk_writes == without.disk_writes


def test_ablation_invalidation(trace, bench_once, benchmark):
    """Dying data never reaching disk is the delayed-write win."""
    stream = build_stream(trace)

    def run_pair():
        with_inval = BlockCacheSimulator(
            4 * MB, policy=DELAYED_WRITE, invalidate_on_delete=True
        ).run(stream)
        without = BlockCacheSimulator(
            4 * MB, policy=DELAYED_WRITE, invalidate_on_delete=False
        ).run(stream)
        return with_inval, without

    with_inval, without = bench_once(run_pair)
    print(
        f"\ninvalidation: miss ratio {100 * with_inval.miss_ratio:.1f}% vs "
        f"{100 * without.miss_ratio:.1f}% without; "
        f"{with_inval.dirty_blocks_discarded:,} dirty blocks died unwritten"
    )
    benchmark.extra_info["dirty_discarded"] = with_inval.dirty_blocks_discarded
    assert with_inval.dirty_blocks_discarded > 0
    # Without invalidation, dead dirty blocks eventually pay writebacks.
    assert without.disk_writes >= with_inval.disk_writes


def test_ablation_lru_vs_fifo(trace, bench_once, benchmark):
    """The paper used LRU; FIFO is the obvious cheaper alternative."""
    stream = build_stream(trace)

    def run_pair():
        lru = BlockCacheSimulator(
            1 * MB, policy=DELAYED_WRITE, replacement="lru"
        ).run(stream)
        fifo = BlockCacheSimulator(
            1 * MB, policy=DELAYED_WRITE, replacement="fifo"
        ).run(stream)
        return lru, fifo

    lru, fifo = bench_once(run_pair)
    print(
        f"\nLRU miss ratio {100 * lru.miss_ratio:.1f}% vs "
        f"FIFO {100 * fifo.miss_ratio:.1f}%"
    )
    benchmark.extra_info["lru_pct"] = round(100 * lru.miss_ratio, 1)
    benchmark.extra_info["fifo_pct"] = round(100 * fifo.miss_ratio, 1)
    # LRU should not lose to FIFO on a locality-rich trace.
    assert lru.miss_ratio <= fifo.miss_ratio * 1.02
