"""Bench: the out-of-core corpus — pack, streamed analyze, bounded memory.

Two jobs ride here, mirroring ``test_streaming.py``:

* **Regression gate** — ``test_corpus_pack_throughput`` and
  ``test_corpus_streamed_analyze_throughput`` are the numbers
  ``benchmarks/check_regression.py`` compares against the committed
  ``benchmarks/BENCH_4.json`` baseline in CI (``--gate corpus``).
* **Acceptance** — ``test_corpus_streaming_memory_bounded`` asserts the
  streamed analyzer's peak Python heap stays far below the corpus size:
  the whole point of segment streaming is that analyzing N events costs
  O(segment + distinct ids), not O(N).

Scale: the default run packs ``BASE_EVENTS * REPEATS`` (~200k) events so
CI stays fast.  Set ``BENCH_CORPUS_FULL=1`` to run the acceptance scale
(10^7 events, one timed round) — the bounded-memory assertion and the
events/s numbers are the ISSUE's 10^7-event criterion.
"""

from __future__ import annotations

import os
import random
import tracemalloc

import pytest

from repro.corpus import CorpusReader, CorpusWriter, analyze_corpus, validate_corpus
from repro.fuzz.gen import random_trace
from repro.trace.columns import TraceColumns

FULL = os.environ.get("BENCH_CORPUS_FULL") == "1"

#: One block of well-formed events, tiled to reach the target scale.
BASE_EVENTS = 50_000
REPEATS = 200 if FULL else 4
ROUNDS = 1 if FULL else 3
SEGMENT_EVENTS = 65_536


@pytest.fixture(scope="module")
def base_columns() -> TraceColumns:
    log = random_trace(random.Random("bench-corpus"), BASE_EVENTS)
    return TraceColumns.from_log(log)


def _pack(base: TraceColumns, path: str) -> int:
    with CorpusWriter(path, name="bench", segment_events=SEGMENT_EVENTS) as w:
        for _ in range(REPEATS):
            w.append_columns(base)
        events = w.events_written
    return events


@pytest.fixture(scope="module")
def corpus_path(base_columns, tmp_path_factory) -> str:
    path = str(tmp_path_factory.mktemp("corpus") / "bench.bcorpus")
    _pack(base_columns, path)
    return path


def test_corpus_pack_throughput(base_columns, tmp_path, benchmark):
    """Regression-gated: bulk column packing, events/s to disk."""
    out = tmp_path / "pack.bcorpus"
    events = benchmark.pedantic(
        lambda: _pack(base_columns, str(out)), rounds=ROUNDS, iterations=1
    )
    benchmark.extra_info["events"] = events
    if benchmark.stats is not None:  # absent under --benchmark-disable
        benchmark.extra_info["events_per_s"] = round(
            events / benchmark.stats.stats.min
        )
    assert events == len(base_columns) * REPEATS


def test_corpus_streamed_analyze_throughput(corpus_path, benchmark):
    """Regression-gated: the full one-pass report off the corpus,
    segment-streamed (mmap + zero-copy views), events/s per core."""
    with CorpusReader(corpus_path) as reader:
        events = len(reader)
    report = benchmark.pedantic(
        lambda: analyze_corpus(corpus_path), rounds=ROUNDS, iterations=1
    )
    benchmark.extra_info["events"] = events
    if benchmark.stats is not None:  # absent under --benchmark-disable
        benchmark.extra_info["events_per_s"] = round(
            events / benchmark.stats.stats.min
        )
    assert report.activity.total_bytes > 0


def _traced_peak(fn):
    tracemalloc.start()
    result = fn()
    _current, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return result, peak


def test_corpus_streaming_memory_bounded(corpus_path, bench_once):
    """Acceptance: the streamed passes never materialize the corpus.

    ``verify`` + ``validate`` are strictly O(segment + live opens):
    their peak heap is bounded far below the corpus size.  ``analyze``
    necessarily returns an O(accesses) report (it *contains* the access
    and transfer lists), so for it the assertion is comparative: the
    streamed pass must peak below the in-RAM pass, which pays the same
    report *plus* the fully materialized columns.
    """
    corpus_bytes = os.path.getsize(corpus_path)
    with CorpusReader(corpus_path) as reader:
        expected_events = len(reader)

    def checked():
        with CorpusReader(corpus_path) as reader:
            reader.verify()
        return validate_corpus(corpus_path)

    report, checked_peak = _traced_peak(lambda: bench_once(checked))
    assert report.event_count == expected_events
    # One segment of column data is ~3.2 MB; allow a couple of segments'
    # worth of working set — far below the file itself.
    assert checked_peak < max(corpus_bytes / 4, 8 * 1024 * 1024), (
        f"verify+validate peaked at {checked_peak} bytes for a "
        f"{corpus_bytes}-byte corpus"
    )

    _streamed, streamed_peak = _traced_peak(
        lambda: analyze_corpus(corpus_path)
    )

    def in_ram():
        from repro.analysis.onepass import analyze_onepass
        from repro.corpus import read_corpus_columns

        return analyze_onepass(read_corpus_columns(corpus_path))

    _materialized, in_ram_peak = _traced_peak(in_ram)
    assert streamed_peak < in_ram_peak, (
        f"streamed analyze peaked at {streamed_peak} bytes, in-RAM at "
        f"{in_ram_peak}"
    )
    print(
        f"{expected_events} events, corpus {corpus_bytes / 1e6:.1f} MB: "
        f"verify+validate peak {checked_peak / 1e6:.1f} MB, analyze peak "
        f"{streamed_peak / 1e6:.1f} MB streamed vs "
        f"{in_ram_peak / 1e6:.1f} MB in-RAM"
    )
