"""Benches for the extension studies (beyond the paper's exhibits).

* Two-level client/server caching — the diskless-workstation design the
  paper motivates;
* The block-size tradeoff re-measured in disk *time* (Figure 6 counts
  I/Os; a 32 KB transfer spins the platter 8x longer than a 4 KB one).
"""

from repro.cache.sweep import block_size_sweep
from repro.cache.twolevel import simulate_two_level
from repro.disk.model import FUJITSU_EAGLE


def test_two_level_caching(trace, bench_once, benchmark):
    result = bench_once(simulate_two_level, trace)
    print("\n" + result.render())
    benchmark.extra_info["network_blocks"] = result.network_blocks
    benchmark.extra_info["disk_ios"] = result.disk_ios
    # The hierarchy works: each level absorbs a real share.
    assert result.network_blocks < result.client_metrics.block_accesses
    assert result.disk_ios < result.network_blocks
    # And the paper's network conclusion survives client-server realism.
    assert result.network_bytes_per_second < 1.25e6 / 2


def test_block_size_in_disk_time(trace, bench_once, benchmark):
    sweep = bench_once(
        block_size_sweep, trace,
        block_sizes=(1024, 4096, 8192, 16384, 32768),
        cache_sizes=(4 * 1024 * 1024,),
    )
    cache = 4 * 1024 * 1024
    rows = []
    for bs in sweep.block_sizes:
        ios = sweep.disk_ios(bs, cache)
        seconds = ios * FUJITSU_EAGLE.service_time(bs)
        rows.append((bs, ios, seconds))
        print(f"\n  {bs // 1024:>2} KB blocks: {ios:>7,} I/Os = {seconds:7.1f} s of disk time")
    by_ios = min(rows, key=lambda r: r[1])[0]
    by_time = min(rows, key=lambda r: r[2])[0]
    benchmark.extra_info["best_by_ios_kb"] = by_ios // 1024
    benchmark.extra_info["best_by_time_kb"] = by_time // 1024
    # Large blocks win on both metrics, but time never prefers a *larger*
    # block than counting does (the transfer term only hurts big blocks).
    assert by_ios >= 8192
    assert 4096 <= by_time <= by_ios


def test_metadata_io(trace, bench_once, benchmark):
    """Section 8: the non-file-data references and whether caching holds."""
    from repro.experiments import run_one

    result = bench_once(run_one, "metadata", trace)
    print("\n" + result.rendered)
    share = result.data["meta_share_4194304"]
    benchmark.extra_info["metadata_share_pct"] = round(100 * share)
    assert share > 0.3
    # Including metadata must not blow up the big-cache miss ratio.
    assert result.data["miss_meta_4194304"] <= result.data["miss_plain_4194304"] + 0.02
