"""Bench: Figure 2 (dynamic file sizes) and Figure 3 (open times)."""

from repro.experiments import run_one


def test_fig2(trace, bench_once, benchmark):
    result = bench_once(run_one, "fig2", trace)
    print("\n" + result.rendered)
    benchmark.extra_info["accesses_under_10k_pct"] = round(
        100 * result.data["accesses_under_10k"]
    )
    # Paper: ~80% of accesses under 10 KB carrying only ~30% of bytes.
    assert result.data["accesses_under_10k"] > 0.6
    assert result.data["bytes_under_10k"] < 0.5
    # The large-administrative-file tail exists.
    assert result.data["accesses_over_200k"] > 0.01


def test_fig3(trace, bench_once, benchmark):
    result = bench_once(run_one, "fig3", trace)
    print("\n" + result.rendered)
    benchmark.extra_info["under_half_second_pct"] = round(
        100 * result.data["under_half_second"]
    )
    # Paper: ~75% of opens under 0.5 s, ~90% under 10 s, with a real tail.
    assert 0.6 <= result.data["under_half_second"] <= 0.95
    assert result.data["under_ten_seconds"] > 0.85
    assert result.data["under_ten_seconds"] < 1.0
