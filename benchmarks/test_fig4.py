"""Bench: Figure 4 (new-file lifetimes and the 180 s daemon spike)."""

from repro.experiments import run_one


def test_fig4(trace, bench_once, benchmark):
    result = bench_once(run_one, "fig4", trace)
    print("\n" + result.rendered)
    benchmark.extra_info["files_under_200s_pct"] = round(
        100 * result.data["files_under_200s"]
    )
    benchmark.extra_info["daemon_spike_pct"] = round(
        100 * result.data["daemon_spike"]
    )
    # Paper: ~80% of new files dead within ~200 s; data dead within 200 s
    # accounts for ~40% of bytes written to new files; 30-40% of lifetimes
    # concentrate at 179-181 s (the rwhod-style status daemons).
    assert result.data["files_under_200s"] > 0.55
    assert result.data["bytes_under_200s"] > 0.3
    assert 0.1 <= result.data["daemon_spike"] <= 0.6
