"""Bench: Figure 7 (paging approximation) and the Section 6.2 residency
and dirty-block-fate numbers."""

from repro.experiments import run_one


def test_fig7(trace, bench_once, benchmark):
    result = bench_once(run_one, "fig7", trace)
    print("\n" + result.rendered)
    benchmark.extra_info["small_cache_delta_pct"] = round(
        100 * result.data["small_cache_delta"], 1
    )
    # Paper: simulated page-in degrades small caches (program files grow
    # the working set) but does not hurt — and usually helps — large ones.
    assert result.data["small_cache_delta"] > 0
    assert result.data["large_cache_delta"] < 0.02


def test_residency(trace, bench_once, benchmark):
    result = bench_once(run_one, "residency", trace)
    print("\n" + result.rendered)
    benchmark.extra_info["dirty_discard_16mb_pct"] = round(
        100 * result.data["dirty_discard_16mb"]
    )
    # Paper: a substantial fraction of blocks stay resident a long time in
    # a 4 MB delayed-write cache (the crash-exposure caveat), and with a
    # large cache ~75% of newly-written blocks die before ejection.
    assert result.data["resident_over_20min"] > 0.05
    assert result.data["dirty_discard_16mb"] > 0.4
