"""Throughput benchmark for the discrete-event network file service.

Measures end-to-end ``simulate_netfs`` on the shared two-hour A5 trace
under both consistency protocols, and prints the rendered results so the
latency/utilization exhibit is visible with ``--benchmark-only -s``.
The events-per-second figure is the engine's real currency: every RPC is
several heap operations, so this is the number that bounds how much
community one simulation run can model.
"""

from __future__ import annotations

import pytest

from repro.netfs import simulate_netfs


@pytest.mark.parametrize("protocol", ["callbacks", "ownership"])
def test_netfs_simulation(trace, bench_once, benchmark, protocol):
    result = bench_once(simulate_netfs, trace, protocol=protocol)
    assert result.requests > 0
    assert result.rpcs > 0
    assert 0.0 <= result.ethernet_utilization < 1.0
    print()
    print(result.render())


def test_netfs_scaled_load(trace, bench_once, benchmark):
    """Eight communities on one wire: the contended configuration."""
    result = bench_once(
        simulate_netfs, trace, protocol="ownership", load_scale=8
    )
    assert result.requests > 0
    print()
    print(result.render())
