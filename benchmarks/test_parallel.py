"""Bench: the parallel sweep executor and the packed/stack fast paths.

Two jobs ride here:

* **Acceptance** — the Table VI policy sweep must run at least 2x faster
  at ``jobs=4`` than on the serial reference path (``jobs=1``), and the
  one-pass stack simulator must reproduce the serial write-through miss
  counts *exactly* at every paper cache size.  Both are asserted, not
  just measured (timings are best-of-3 to ride out machine noise; the
  speedup on this 14k-access trace is ~2.2-2.9x, from the packed
  single-loop replay plus the one-pass stack curve).
* **Regression gate** — ``test_sweep_throughput`` is the number
  ``benchmarks/check_regression.py`` compares against the committed
  ``benchmarks/BENCH_2.json`` baseline in CI.
"""

from __future__ import annotations

import time

from repro.cache.simulator import BlockCacheSimulator
from repro.cache.stream import build_stream
from repro.cache.sweep import PAPER_CACHE_SIZES, cache_size_policy_sweep
from repro.cache.policies import WRITE_THROUGH
from repro.parallel.packed import cached_packed_stream, simulate_packed
from repro.parallel.stack import simulate_stack


def _best_of(fn, rounds=3):
    best = float("inf")
    result = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_sweep_speedup_jobs4_vs_serial(trace):
    """Acceptance: >= 2x on the Table VI sweep at jobs=4 vs jobs=1."""
    # Warm the per-log memos so neither side pays stream construction.
    cache_size_policy_sweep(trace, jobs=1)
    cache_size_policy_sweep(trace, jobs=4)

    t_serial, serial = _best_of(lambda: cache_size_policy_sweep(trace, jobs=1))
    t_parallel, parallel = _best_of(
        lambda: cache_size_policy_sweep(trace, jobs=4)
    )
    speedup = t_serial / t_parallel

    def report():
        return (
            f"jobs=1 {t_serial:.3f}s  jobs=4 {t_parallel:.3f}s  "
            f"speedup {speedup:.2f}x"
        )

    print(report())
    assert serial.results == parallel.results, "parallel sweep diverged"
    assert speedup >= 2.0, f"speedup below acceptance bar: {report()}"


def test_stack_curve_exact_at_paper_sizes(trace, bench_once, benchmark):
    """Acceptance: the one-pass stack curve == serial WT miss counts."""
    stream = build_stream(trace)
    packed = cached_packed_stream(trace, 4096)

    curve = bench_once(simulate_stack, packed, PAPER_CACHE_SIZES)
    for size in PAPER_CACHE_SIZES:
        sim = BlockCacheSimulator(cache_bytes=size, policy=WRITE_THROUGH)
        ref = sim.run(stream)
        got = curve.metrics(size)
        assert got == ref, f"stack curve diverged at {size} bytes"
        assert got.read_accesses + got.write_accesses == packed.n_accesses
    benchmark.extra_info["accesses"] = packed.n_accesses
    if benchmark.stats is not None:  # absent under --benchmark-disable
        benchmark.extra_info["accesses_per_s"] = round(
            packed.n_accesses / benchmark.stats.stats.min
        )


def test_sweep_throughput(trace, benchmark):
    """Regression-gated: parallel Table VI sweep wall time (jobs=4)."""
    cache_size_policy_sweep(trace, jobs=4)  # warm memos
    sweep = benchmark.pedantic(
        cache_size_policy_sweep, args=(trace,), kwargs=dict(jobs=4),
        rounds=3, iterations=1,
    )
    benchmark.extra_info["configs"] = len(sweep.results)
    assert len(sweep.results) == len(PAPER_CACHE_SIZES) * 4
    accesses = cached_packed_stream(trace, 4096).n_accesses
    benchmark.extra_info["accesses"] = accesses
    if benchmark.stats is not None:  # absent under --benchmark-disable
        benchmark.extra_info["accesses_per_s"] = round(
            len(sweep.results) * accesses / benchmark.stats.stats.min
        )


def test_packed_replay_throughput(trace, benchmark):
    """Regression-gated: one packed delayed-write replay at 390 KB."""
    packed = cached_packed_stream(trace, 4096)
    run = benchmark.pedantic(
        simulate_packed, args=(packed, 390 * 1024), rounds=3, iterations=1,
    )
    benchmark.extra_info["block_accesses"] = run.metrics.block_accesses
    assert run.metrics.block_accesses == packed.n_accesses
    if benchmark.stats is not None:  # absent under --benchmark-disable
        benchmark.extra_info["accesses_per_s"] = round(
            run.metrics.block_accesses / benchmark.stats.stats.min
        )
