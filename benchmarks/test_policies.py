"""Bench: the replacement-policy zoo's packed replay throughput.

Every zoo policy (``repro.cache.replacement``) replays the bench trace
through :func:`~repro.parallel.packed.simulate_packed` over a
three-size grid (the "Table VI revisited" working set).  The replays
are pure Python, so the numbers are meaningful on both CI legs; the
``REPRO_NO_NUMPY=1`` leg runs them unchanged.  The dispatch benchmark
additionally times :func:`~repro.parallel.veccache.replay_packed` on
the one configuration the numpy kernel answers (write-through LRU) and
asserts it stays bit-identical to the Python replay.

Regression gate: ``benchmarks/check_regression.py`` compares every
benchmark here against ``benchmarks/BENCH_7.json`` (``--gate
policies``), times and ``accesses_per_s`` rates both.
"""

from __future__ import annotations

import pytest

from repro.cache.policies import DELAYED_WRITE, WRITE_THROUGH
from repro.cache.replacement import REPLACEMENT_NAMES
from repro.parallel.packed import cached_packed_stream, simulate_packed
from repro.parallel.veccache import replay_packed
from repro.trace.npview import numpy_available

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy unavailable"
)

#: The ranking grid of the table6rev experiment.
GRID_SIZES = (399360, 2 * 1024 * 1024, 8 * 1024 * 1024)


def _replay_grid(packed, replacement: str):
    return [
        simulate_packed(
            packed,
            size,
            DELAYED_WRITE,
            replacement=replacement,
            flush_epoch=packed.start_time,
        )
        for size in GRID_SIZES
    ]


@pytest.mark.parametrize("name", REPLACEMENT_NAMES)
def test_policy_replay_grid(trace, benchmark, name):
    """Regression-gated: one policy's delayed-write replay, three sizes."""
    packed = cached_packed_stream(trace, 4096)
    runs = benchmark.pedantic(
        _replay_grid, args=(packed, name), rounds=3, iterations=1,
    )
    accesses = packed.n_accesses * len(GRID_SIZES)
    for run in runs:
        m = run.metrics
        assert m.read_accesses + m.write_accesses == packed.n_accesses
    # Bigger caches never read more for the stack policies; for the
    # rest this still holds on the bench trace and pins the replays to
    # doing real per-size work.
    reads = [run.metrics.disk_reads for run in runs]
    assert reads == sorted(reads, reverse=True)
    benchmark.extra_info["accesses"] = accesses
    if benchmark.stats is not None:  # absent under --benchmark-disable
        benchmark.extra_info["accesses_per_s"] = round(
            accesses / benchmark.stats.stats.min
        )


@needs_numpy
def test_policy_dispatch_write_through_lru(trace, benchmark):
    """Regression-gated: the engine dispatcher's one curve-served cell."""
    packed = cached_packed_stream(trace, 4096)

    def dispatch():
        return [
            replay_packed(
                packed, size, WRITE_THROUGH, replacement="lru",
                flush_epoch=packed.start_time, engine="numpy",
            )
            for size in GRID_SIZES
        ]

    runs = benchmark.pedantic(dispatch, rounds=3, iterations=1)
    for size, run in zip(GRID_SIZES, runs):
        ref = simulate_packed(
            packed, size, WRITE_THROUGH, replacement="lru",
            flush_epoch=packed.start_time,
        )
        assert run.metrics == ref.metrics  # dispatch stays bit-identical
    accesses = packed.n_accesses * len(GRID_SIZES)
    benchmark.extra_info["accesses"] = accesses
    if benchmark.stats is not None:
        benchmark.extra_info["accesses_per_s"] = round(
            accesses / benchmark.stats.stats.min
        )
