"""Bench: the streaming pipeline — spooled generation and the one-pass
analyzer.

Two jobs ride here, mirroring ``test_parallel.py``:

* **Acceptance** — ``analyze_onepass`` must produce the full report at
  least 3x faster than running the per-module reference analyses
  back-to-back (each reference call replays the trace through its own
  ``reconstruct_accesses``; the fused pass replays it once).  Equality
  of the results is pinned by ``tests/test_onepass.py``; here only the
  speedup is asserted, best-of-3 to ride out machine noise.
* **Regression gate** — ``test_generation_throughput`` and
  ``test_full_report_throughput`` are the numbers
  ``benchmarks/check_regression.py`` compares against the committed
  ``benchmarks/BENCH_3.json`` baseline in CI.
"""

from __future__ import annotations

import time

from repro.analysis.accesses import iter_transfers
from repro.analysis.activity import analyze_activity
from repro.analysis.burstiness import analyze_burstiness
from repro.analysis.lifetimes import (
    collect_lifetimes,
    daemon_spike_fraction,
    lifetime_cdfs,
)
from repro.analysis.onepass import analyze_onepass
from repro.analysis.opentimes import open_time_cdf
from repro.analysis.popularity import analyze_popularity
from repro.analysis.sequentiality import analyze_sequentiality, run_length_cdfs
from repro.analysis.sizes import file_size_cdfs
from repro.analysis.users import per_user_summary
from repro.trace.columns import TraceColumns
from repro.workload.generator import generate
from repro.workload.profiles import UCBARPA

GEN_DURATION = 1800.0  # simulated seconds per generation benchmark round


def _best_of(fn, rounds=3):
    best = float("inf")
    result = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _reference_suite(trace):
    """Every per-module analysis, standalone — what ``analyze all`` cost
    before the fused pass existed."""
    lifetimes = collect_lifetimes(trace)
    return (
        list(iter_transfers(trace)),
        analyze_activity(trace),
        analyze_sequentiality(trace),
        run_length_cdfs(trace),
        open_time_cdf(trace),
        file_size_cdfs(trace),
        analyze_popularity(trace),
        per_user_summary(trace),
        analyze_burstiness(trace),
        lifetime_cdfs(trace),
        daemon_spike_fraction(lifetimes),
    )


def test_onepass_speedup_vs_reference(trace):
    """Acceptance: >= 3x for the full report, fused pass vs per-module."""
    # Warm-up round each so neither side pays first-touch costs.
    _reference_suite(trace)
    analyze_onepass(TraceColumns.from_log(trace))

    # Rounds are interleaved so machine noise lands on both sides alike;
    # column construction is charged to the fused side, making this the
    # whole cost of the report when starting from an in-memory log.
    t_reference = t_onepass = float("inf")
    for _ in range(5):
        t0 = time.perf_counter()
        _reference_suite(trace)
        t_reference = min(t_reference, time.perf_counter() - t0)
        t0 = time.perf_counter()
        analyze_onepass(TraceColumns.from_log(trace))
        t_onepass = min(t_onepass, time.perf_counter() - t0)
    speedup = t_reference / t_onepass

    def report():
        return (
            f"per-module {t_reference:.3f}s  one-pass {t_onepass:.3f}s  "
            f"speedup {speedup:.2f}x"
        )

    print(report())
    assert speedup >= 3.0, f"speedup below acceptance bar: {report()}"


def test_full_report_throughput(trace, benchmark):
    """Regression-gated: one full report via the fused pass (including
    the columnar build, so the number is end-to-end from a TraceLog)."""
    result = benchmark.pedantic(
        lambda: analyze_onepass(TraceColumns.from_log(trace)),
        rounds=3, iterations=1,
    )
    benchmark.extra_info["events"] = len(trace)
    if benchmark.stats is not None:  # absent under --benchmark-disable
        benchmark.extra_info["events_per_s"] = round(
            len(trace) / benchmark.stats.stats.min
        )
    assert result.accesses, "report came back empty"


def test_generation_throughput(tmp_path, benchmark):
    """Regression-gated: spool-mode generation wall time (30 simulated
    minutes streamed straight to disk, O(buffer) memory)."""
    out = tmp_path / "bench.btrace"

    def run():
        return generate(UCBARPA, seed=11, duration=GEN_DURATION,
                        spool=str(out), spool_buffer=8192)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["events"] = result.events_spooled
    if benchmark.stats is not None:  # absent under --benchmark-disable
        benchmark.extra_info["events_per_s"] = round(
            result.events_spooled / benchmark.stats.stats.min
        )
    assert result.events_spooled > 0
    assert result.peak_buffered <= 8192
