"""Bench: Table I — the paper's headline summary, recomputed end to end."""

from repro.experiments import run_one


def test_table1(trace, bench_once, benchmark):
    result = bench_once(run_one, "table1", trace)
    print("\n" + result.rendered)
    data = result.data
    benchmark.extra_info["eliminated_delayed_4mb_pct"] = round(
        100 * data["eliminated_delayed_4mb"]
    )
    # Paper Table I, row by row (shape, not absolute):
    # 1. "about 300-600 bytes/second of file data ... per active user"
    assert 50 <= data["per_user_bytes_sec"] <= 2000
    # 2. "about 70% of all file accesses are whole-file transfers, and
    #     about 50% of all bytes are transferred in whole-file transfers"
    assert data["whole_file_access_pct"] > 60
    assert 40 <= data["whole_file_bytes_pct"] <= 80
    # 3. "75% of all files are open less than .5 second, and 90% are open
    #     less than 10 seconds"
    assert data["open_half_s"] > 0.6
    assert data["open_ten_s"] > 0.85
    # 4. "about 20-30% of all newly-written information is deleted within
    #     30 seconds, and about 50% is deleted within 5 minutes"
    assert data["bytes_dead_30s"] > 0.05
    assert data["bytes_dead_5min"] > 0.3
    # 5. "a 4-Mbyte cache ... eliminates between 65% and 90% of all disk
    #     accesses ... (depending on the write policy)"
    assert data["eliminated_delayed_4mb"] > 0.65
    assert data["eliminated_wt_4mb"] > 0.35
    # 6. "for a 400-kbyte cache a block size of 8 kbytes results in the
    #     fewest disk accesses; for 4 Mbytes, 16 kbytes is optimal"
    assert data["best_block_small"] >= 8192
    assert data["best_block_4mb"] >= 8192
