"""Bench: Table III (overall statistics) and the Section 3.1 intervals."""

from repro.experiments import run_one


def test_table3(trace, bench_once, benchmark):
    result = bench_once(run_one, "table3", trace)
    print("\n" + result.rendered)
    benchmark.extra_info["records"] = result.data["record_count"]
    benchmark.extra_info["mbytes"] = round(result.data["data_mbytes"], 1)
    # Shape: the event mix resembles the paper's Table III.
    pct = result.data["kind_percents"]
    assert pct.get("open", 0) > 20
    assert pct.get("close", 0) > 25
    assert pct.get("seek", 0) > 8


def test_intervals(trace, bench_once, benchmark):
    result = bench_once(run_one, "intervals", trace)
    print("\n" + result.rendered)
    benchmark.extra_info["p90_seconds"] = round(result.data["p90"], 2)
    # Paper: 75% of gaps < 0.5 s, 90% < 10 s.
    assert result.data["p75"] < 0.5
    assert result.data["p90"] < 10.0
