"""Bench: Table IV (system activity / per-active-user throughput)."""

from repro.experiments import run_one


def test_table4(trace, bench_once, benchmark):
    result = bench_once(run_one, "table4", trace)
    print("\n" + result.rendered)
    benchmark.extra_info["per_user_10min_bytes_sec"] = round(
        result.data["per_user_10min"]
    )
    # Paper: a few hundred bytes/second per active user over 10-minute
    # windows; much hotter over 10-second windows.
    assert 50 <= result.data["per_user_10min"] <= 2000
    assert result.data["per_user_10s"] > 2 * result.data["per_user_10min"]
    assert result.data["active_10s"] < result.data["active_10min"]
