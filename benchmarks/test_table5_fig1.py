"""Bench: Table V (sequentiality) and Figure 1 (run lengths)."""

from repro.experiments import run_one


def test_table5(trace, bench_once, benchmark):
    result = bench_once(run_one, "table5", trace)
    print("\n" + result.rendered)
    benchmark.extra_info["whole_read_pct"] = round(result.data["whole_read_pct"])
    benchmark.extra_info["bytes_whole_pct"] = round(result.data["bytes_whole_pct"])
    # Paper: 63-70% whole-file reads, 81-85% whole-file writes; >90% of
    # read-only and >96% of write-only accesses sequential; read-write
    # accesses mostly non-sequential; ~50% of bytes whole-file.
    assert result.data["whole_read_pct"] > 60
    assert result.data["whole_write_pct"] > 70
    assert result.data["seq_read_pct"] > 90
    assert result.data["seq_write_pct"] > 90
    assert result.data["seq_rw_pct"] < 50
    assert 40 <= result.data["bytes_whole_pct"] <= 80


def test_fig1(trace, bench_once, benchmark):
    result = bench_once(run_one, "fig1", trace)
    print("\n" + result.rendered)
    benchmark.extra_info["runs_under_4k_pct"] = round(
        100 * result.data["runs_under_4k"]
    )
    # Paper: 70-75% of runs under 4 KB; 30-40% of bytes in runs >= 25 KB.
    assert result.data["runs_under_4k"] > 0.5
    assert 0.15 <= result.data["bytes_over_25k"] <= 0.6
