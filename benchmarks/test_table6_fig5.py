"""Bench: Table VI / Figure 5 (miss ratio vs cache size and write policy)."""

from repro.experiments import run_one


def test_table6_fig5(trace, bench_once, benchmark):
    result = bench_once(run_one, "table6", trace)
    print("\n" + result.rendered)
    benchmark.extra_info["delayed_4mb_pct"] = round(
        100 * result.data["delayed_4mb"], 1
    )
    ratios = result.data["miss_ratios"]
    sizes = sorted({size for size, _p in ratios})
    policies = sorted({p for _s, p in ratios})
    # Shape 1: monotone improvement with cache size for every policy.
    for policy in policies:
        column = [ratios[(s, policy)] for s in sizes]
        assert column == sorted(column, reverse=True), policy
    # Shape 2: the paper's policy ordering at every size.
    for size in sizes:
        assert (
            ratios[(size, "write-through")]
            >= ratios[(size, "30 sec flush")]
            >= ratios[(size, "5 min flush")]
            >= ratios[(size, "delayed-write")]
        )
    # Shape 3: headline factors — a 4 MB cache eliminates 65-90% of disk
    # accesses depending on policy; 16 MB delayed-write under 10%.
    assert result.data["delayed_4mb"] < 0.35
    assert result.data["wt_4mb"] < 0.65
    assert result.data["delayed_16mb"] < 0.10
