"""Bench: Table VII / Figure 6 (disk I/Os vs block size and cache size)."""

from repro.experiments import run_one


def test_table7_fig6(trace, bench_once, benchmark):
    result = bench_once(run_one, "table7", trace)
    print("\n" + result.rendered)
    benchmark.extra_info["best_block_4mb_kb"] = result.data["best_4mb_cache"] // 1024
    ios = result.data["disk_ios"]
    block_sizes = sorted({bs for bs, _c in ios})
    caches = sorted({c for _bs, c in ios})
    # Shape 1: any cache beats no cache, at every block size.
    for bs in block_sizes:
        for cache in caches:
            assert ios[(bs, cache)] <= result.data["no_cache"][bs]
    # Shape 2: large blocks (8-16 KB) always beat 1 KB blocks — the
    # paper's "large block sizes are effective even for small caches".
    for cache in caches:
        assert ios[(8192, cache)] < ios[(1024, cache)]
    # Shape 3: the optimum is a large block, and 32 KB stops paying
    # (flattens or turns up) everywhere.
    for cache in caches:
        best = min(block_sizes, key=lambda bs: ios[(bs, cache)])
        assert best >= 8192
        assert ios[(32768, cache)] > 0.9 * ios[(16384, cache)]
