"""Bench: raw engine throughput (not a paper exhibit).

How fast the substrate itself runs: workload generation (simulated
syscalls per wall second) and cache simulation (block accesses per wall
second).  These are the numbers that determine how long a multi-day
synthetic trace takes to produce and replay.
"""

from repro.cache.policies import DELAYED_WRITE
from repro.cache.simulator import BlockCacheSimulator
from repro.cache.stream import build_stream
from repro.workload.generator import generate
from repro.workload.profiles import UCBARPA


def test_generation_throughput(benchmark):
    result = benchmark.pedantic(
        generate, kwargs=dict(profile=UCBARPA, seed=1, duration=900.0),
        rounds=3, iterations=1,
    )
    benchmark.extra_info["events"] = len(result.trace)
    assert len(result.trace) > 500


def test_cache_simulation_throughput(trace, benchmark):
    stream = build_stream(trace)

    def run():
        return BlockCacheSimulator(4 * 1024 * 1024, policy=DELAYED_WRITE).run(
            stream
        )

    metrics = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["block_accesses"] = metrics.block_accesses
    assert metrics.block_accesses > 1000
