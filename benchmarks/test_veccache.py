"""Bench: the vectorized cache engine and the zero-copy sweep fan-out.

Two jobs ride here, mirroring ``test_parallel.py``:

* **Acceptance** — the numpy miss-ratio-curve kernel must be at least
  10x faster than the Python one-pass oracle on a dense size grid
  (~320 tracked sizes; the grids Figure 5-style exhibits actually
  want), while staying *bit-identical* at every size; and the
  write-through sweep must run at least 3x faster at ``jobs=4`` with
  shared ``.bpack`` streams than the serial reference path.  Both are
  asserted, not just measured.  Measured on the bench trace: the curve
  kernel lands ~20x and the sweep ~40x (numpy) / ~12x (python
  workers), so the bars leave generous noise margin.
* **Regression gate** — every benchmark here is compared by
  ``benchmarks/check_regression.py`` against ``benchmarks/BENCH_6.json``
  (``--gate veccache``), on both CI legs: the numpy-only benchmarks
  skip under ``REPRO_NO_NUMPY=1`` and the checker treats baseline
  entries missing from a run as informational.

Times and the ``*_per_s`` rates in ``extra_info`` are gated; the rates
let the checker catch a throughput regression even if a future change
also shrinks the measured work.
"""

from __future__ import annotations

import time

import pytest

from repro.cache.policies import WRITE_THROUGH
from repro.cache.sweep import cache_size_policy_sweep
from repro.parallel.packed import cached_packed_stream
from repro.parallel.stack import simulate_stack
from repro.parallel.veccache import stack_curve_numpy
from repro.trace.npview import numpy_available

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy unavailable"
)

#: ~320 geometrically spaced capacities from one block to 16 MB — the
#: grid density at which the Python oracle's per-boundary bookkeeping
#: dominates and a whole-curve kernel pays off.
DENSE_CAPS = sorted({round(4096 ** (i / 511)) for i in range(512)})
DENSE_SIZES = tuple(c * 4096 for c in DENSE_CAPS)

#: A write-through miss-ratio sweep: 20 cache sizes, one policy — the
#: configuration family whose replays the batched fast path collapses
#: into curve evaluations.
WT_SWEEP_SIZES = tuple(sorted(
    {(16 << 10) * (1 << i) for i in range(10)}
    | {(24 << 10) * (1 << i) for i in range(10)}
))


def _best_of(fn, rounds=3):
    best = float("inf")
    result = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_veccache_python_curve_dense_grid(trace, benchmark):
    """Regression-gated: the Python oracle on the dense grid (both legs)."""
    packed = cached_packed_stream(trace, 4096, engine="python")
    curve = benchmark.pedantic(
        simulate_stack, args=(packed, DENSE_SIZES), rounds=3, iterations=1,
    )
    m = curve.metrics(DENSE_SIZES[-1])
    assert m.read_accesses + m.write_accesses == packed.n_accesses
    benchmark.extra_info["sizes"] = len(DENSE_SIZES)
    benchmark.extra_info["accesses"] = packed.n_accesses
    if benchmark.stats is not None:  # absent under --benchmark-disable
        benchmark.extra_info["accesses_per_s"] = round(
            packed.n_accesses / benchmark.stats.stats.min
        )


@needs_numpy
def test_veccache_numpy_curve_speedup(trace, benchmark):
    """Acceptance + gate: >= 10x on the dense grid, bit-identical."""
    packed = cached_packed_stream(trace, 4096)
    stack_curve_numpy(packed, DENSE_SIZES)  # warm numpy first-touch costs
    t_py, ref = _best_of(lambda: simulate_stack(packed, DENSE_SIZES))
    t_np, fast = _best_of(lambda: stack_curve_numpy(packed, DENSE_SIZES))
    for size in DENSE_SIZES:
        assert fast.metrics(size) == ref.metrics(size), f"diverged at {size}"
    speedup = t_py / t_np
    print(f"python {t_py * 1e3:.1f} ms  numpy {t_np * 1e3:.1f} ms  "
          f"speedup {speedup:.1f}x over {len(DENSE_SIZES)} sizes")
    assert speedup >= 10.0, f"curve speedup below acceptance bar: {speedup:.1f}x"

    benchmark.pedantic(
        stack_curve_numpy, args=(packed, DENSE_SIZES), rounds=3, iterations=1,
    )
    benchmark.extra_info["sizes"] = len(DENSE_SIZES)
    benchmark.extra_info["speedup_vs_python"] = round(speedup, 1)
    if benchmark.stats is not None:
        benchmark.extra_info["accesses_per_s"] = round(
            packed.n_accesses / benchmark.stats.stats.min
        )


def _wt_sweep(trace, jobs, engine=None, pack_dir=None):
    return cache_size_policy_sweep(
        trace,
        cache_sizes=WT_SWEEP_SIZES,
        policies=(WRITE_THROUGH,),
        jobs=jobs,
        engine=engine,
        pack_dir=pack_dir,
    )


def test_veccache_sweep_bpack_python(trace, benchmark, tmp_path):
    """Acceptance + gate: >= 3x at jobs=4 with shared ``.bpack`` streams,
    Python workers (both legs)."""
    _wt_sweep(trace, 1)  # warm memos
    _wt_sweep(trace, 4, engine="python", pack_dir=tmp_path)

    t_serial, serial = _best_of(lambda: _wt_sweep(trace, 1))
    t_fast, fast = _best_of(
        lambda: _wt_sweep(trace, 4, engine="python", pack_dir=tmp_path)
    )
    assert fast.results == serial.results, "bpack sweep diverged"
    speedup = t_serial / t_fast
    print(f"serial {t_serial * 1e3:.1f} ms  jobs=4+bpack {t_fast * 1e3:.1f} ms  "
          f"speedup {speedup:.1f}x")
    assert speedup >= 3.0, f"sweep speedup below acceptance bar: {speedup:.1f}x"

    sweep = benchmark.pedantic(
        lambda: _wt_sweep(trace, 4, engine="python", pack_dir=tmp_path),
        rounds=3, iterations=1,
    )
    packed = cached_packed_stream(trace, 4096, engine="python")
    benchmark.extra_info["configs"] = len(sweep.results)
    benchmark.extra_info["speedup_vs_serial"] = round(speedup, 1)
    if benchmark.stats is not None:
        benchmark.extra_info["accesses_per_s"] = round(
            len(sweep.results) * packed.n_accesses / benchmark.stats.stats.min
        )


@needs_numpy
def test_veccache_sweep_bpack_numpy(trace, benchmark, tmp_path):
    """Acceptance + gate: the numpy engine on the same sweep — >= 3x over
    serial, and faster than the Python workers it replaces."""
    _wt_sweep(trace, 1)  # warm memos
    _wt_sweep(trace, 4, engine="numpy", pack_dir=tmp_path)
    _wt_sweep(trace, 4, engine="python", pack_dir=tmp_path)

    t_serial, serial = _best_of(lambda: _wt_sweep(trace, 1))
    t_python, _ = _best_of(
        lambda: _wt_sweep(trace, 4, engine="python", pack_dir=tmp_path)
    )
    t_fast, fast = _best_of(
        lambda: _wt_sweep(trace, 4, engine="numpy", pack_dir=tmp_path)
    )
    assert fast.results == serial.results, "numpy sweep diverged"
    speedup = t_serial / t_fast
    vs_python = t_python / t_fast
    print(f"serial {t_serial * 1e3:.1f} ms  python {t_python * 1e3:.1f} ms  "
          f"numpy {t_fast * 1e3:.1f} ms  "
          f"({speedup:.1f}x serial, {vs_python:.1f}x python)")
    assert speedup >= 3.0, f"sweep speedup below acceptance bar: {speedup:.1f}x"
    assert vs_python >= 1.5, f"numpy workers barely beat python: {vs_python:.1f}x"

    sweep = benchmark.pedantic(
        lambda: _wt_sweep(trace, 4, engine="numpy", pack_dir=tmp_path),
        rounds=3, iterations=1,
    )
    packed = cached_packed_stream(trace, 4096)
    benchmark.extra_info["configs"] = len(sweep.results)
    benchmark.extra_info["speedup_vs_serial"] = round(speedup, 1)
    benchmark.extra_info["speedup_vs_python_workers"] = round(vs_python, 1)
    if benchmark.stats is not None:
        benchmark.extra_info["accesses_per_s"] = round(
            len(sweep.results) * packed.n_accesses / benchmark.stats.stats.min
        )
