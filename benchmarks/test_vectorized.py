"""Bench: the vectorized (numpy) analysis engine.

Two jobs ride here, mirroring ``test_streaming.py``:

* **Acceptance** — the vectorized analyzer on prebuilt columns must
  clear **10x** the events/s of the committed pure-Python baseline
  (``BENCH_3.json``'s ``test_full_report_throughput``, which is the
  same full report from the same trace).  The bar is read from the
  baseline file, so it moves only when the committed baseline does.
* **Regression gate** — the ``test_vectorized_*`` timings are compared
  against ``benchmarks/BENCH_5.json`` by ``check_regression.py
  --gate vectorized`` in CI.

The pure-Python engine keeps its own gates: CI pins the legacy
``BENCH_2``..``BENCH_4`` steps under ``REPRO_NO_NUMPY=1``, so a numpy
win can never mask a reference-path regression.  This whole module
skips without numpy (the no-numpy leg still executes every other
benchmark).
"""

from __future__ import annotations

import gc
import json
import time
from pathlib import Path

import pytest

from repro.cache.stream import build_stream
from repro.trace.columns import TraceColumns
from repro.trace.npview import numpy_available

pytestmark = pytest.mark.skipif(
    not numpy_available(), reason="numpy fast path unavailable"
)

BENCH_3 = Path(__file__).parent / "BENCH_3.json"
BLOCK_SIZE = 1024


def _best_of(fn, rounds=15):
    """Minimum of *rounds* timings, GC paused — the least noise-sensitive
    statistic available for a sub-10ms kernel on a shared CI runner."""
    best = float("inf")
    result = None
    gc.disable()
    try:
        for _ in range(rounds):
            t0 = time.perf_counter()
            result = fn()
            best = min(best, time.perf_counter() - t0)
    finally:
        gc.enable()
    return best, result


@pytest.fixture(scope="session")
def columns(trace) -> TraceColumns:
    return TraceColumns.from_log(trace)


def test_vectorized_speedup_vs_python_baseline(columns):
    """Acceptance: >= 10x events/s over the committed BENCH_3 number."""
    from repro.analysis.vectorized import analyze_columns_numpy

    baseline = next(
        b
        for b in json.loads(BENCH_3.read_text())["benchmarks"]
        if b["name"] == "test_full_report_throughput"
    )
    python_events_per_s = baseline["extra_info"]["events_per_s"]

    for _ in range(2):  # warm-up: first-touch numpy costs
        analyze_columns_numpy(columns)
    best, report = _best_of(lambda: analyze_columns_numpy(columns))
    assert report.accesses, "report came back empty"
    events_per_s = len(columns) / best
    speedup = events_per_s / python_events_per_s
    print(
        f"python baseline {python_events_per_s} ev/s  "
        f"vectorized {events_per_s:,.0f} ev/s  speedup {speedup:.1f}x"
    )
    assert speedup >= 10.0, (
        f"vectorized analyzer below the 10x acceptance bar: {speedup:.1f}x "
        f"({events_per_s:,.0f} vs {python_events_per_s} ev/s)"
    )


def test_vectorized_report_throughput(columns, benchmark):
    """Regression-gated: the full report, vectorized, prebuilt columns."""
    from repro.analysis.vectorized import analyze_columns_numpy

    result = benchmark.pedantic(
        lambda: analyze_columns_numpy(columns), rounds=3, iterations=1
    )
    benchmark.extra_info["events"] = len(columns)
    if benchmark.stats is not None:  # absent under --benchmark-disable
        benchmark.extra_info["events_per_s"] = round(
            len(columns) / benchmark.stats.stats.min
        )
    assert result.accesses, "report came back empty"


def test_vectorized_validate_throughput(columns, benchmark):
    """Regression-gated: the whole-trace validator, vectorized."""
    from repro.analysis.vectorized import validate_columns_numpy

    result = benchmark.pedantic(
        lambda: validate_columns_numpy(columns), rounds=3, iterations=1
    )
    benchmark.extra_info["events"] = len(columns)
    if benchmark.stats is not None:  # absent under --benchmark-disable
        benchmark.extra_info["events_per_s"] = round(
            len(columns) / benchmark.stats.stats.min
        )
    assert result.event_count == len(columns)


def test_vectorized_pack_throughput(trace, benchmark):
    """Regression-gated: the packed-stream compiler, vectorized."""
    from repro.analysis.vectorized import pack_stream_numpy

    stream = build_stream(trace)
    result = benchmark.pedantic(
        lambda: pack_stream_numpy(stream, BLOCK_SIZE, trace.start_time),
        rounds=3,
        iterations=1,
    )
    benchmark.extra_info["stream_items"] = len(stream)
    if benchmark.stats is not None:  # absent under --benchmark-disable
        benchmark.extra_info["rows_per_s"] = round(
            len(result.ops) / benchmark.stats.stats.min
        )
    assert len(result.ops), "packed stream came back empty"
