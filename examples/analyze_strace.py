#!/usr/bin/env python3
"""Run the paper's analyses on a *real* modern workload via strace.

The original 1985 traces are gone, but the method is alive: capture any
Linux workload with

    strace -f -ttt -e trace=openat,open,creat,close,read,write,lseek,\\
unlink,unlinkat,truncate,ftruncate,execve -o /tmp/build.strace  make

and feed the log to this script:

    python examples/analyze_strace.py /tmp/build.strace

With no argument it analyzes a small bundled sample (a compile-like
pipeline) so the example always runs offline.
"""

import sys
import textwrap

from repro.analysis import (
    analyze_sequentiality,
    open_time_cdf,
    open_time_summary,
    file_size_cdfs,
    size_summary,
)
from repro.cache import DELAYED_WRITE, WRITE_THROUGH, simulate_cache
from repro.strace import convert_calls, convert_file, parse_lines
from repro.trace import compute_stats, validate

#: A miniature compile pipeline, as strace would log it.
SAMPLE = textwrap.dedent("""\
    100 10.000000 execve("/usr/bin/cc", ["cc", "main.c"], 0x7f /* 30 vars */) = 0
    100 10.050000 openat(AT_FDCWD, "/usr/include/stdio.h", O_RDONLY) = 3
    100 10.060000 read(3, "...", 8192) = 8192
    100 10.070000 read(3, "...", 8192) = 3120
    100 10.075000 read(3, "", 8192) = 0
    100 10.080000 close(3) = 0
    100 10.100000 openat(AT_FDCWD, "main.c", O_RDONLY) = 3
    100 10.110000 read(3, "...", 8192) = 4600
    100 10.115000 read(3, "", 8192) = 0
    100 10.120000 close(3) = 0
    100 10.200000 openat(AT_FDCWD, "/tmp/cc_main.s", O_WRONLY|O_CREAT|O_TRUNC, 0600) = 4
    100 10.210000 write(4, "...", 8192) = 8192
    100 10.220000 write(4, "...", 2900) = 2900
    100 10.230000 close(4) = 0
    101 10.300000 execve("/usr/bin/as", ["as", "/tmp/cc_main.s"], 0x7f /* 30 vars */) = 0
    101 10.310000 openat(AT_FDCWD, "/tmp/cc_main.s", O_RDONLY) = 3
    101 10.320000 read(3, "...", 8192) = 8192
    101 10.330000 read(3, "...", 8192) = 2900
    101 10.335000 read(3, "", 8192) = 0
    101 10.340000 close(3) = 0
    101 10.350000 openat(AT_FDCWD, "main.o", O_WRONLY|O_CREAT|O_TRUNC, 0644) = 4
    101 10.360000 write(4, "...", 5100) = 5100
    101 10.370000 close(4) = 0
    101 10.400000 unlink("/tmp/cc_main.s") = 0
    102 10.500000 execve("/usr/bin/ld", ["ld", "main.o"], 0x7f /* 30 vars */) = 0
    102 10.510000 openat(AT_FDCWD, "main.o", O_RDONLY) = 3
    102 10.520000 read(3, "...", 8192) = 5100
    102 10.530000 close(3) = 0
    102 10.540000 openat(AT_FDCWD, "/usr/lib/libc.a", O_RDONLY) = 3
    102 10.550000 lseek(3, 102400, SEEK_SET) = 102400
    102 10.560000 read(3, "...", 16384) = 16384
    102 10.570000 lseek(3, 409600, SEEK_SET) = 409600
    102 10.580000 read(3, "...", 16384) = 16384
    102 10.590000 close(3) = 0
    102 10.600000 openat(AT_FDCWD, "a.out", O_WRONLY|O_CREAT|O_TRUNC, 0755) = 4
    102 10.610000 write(4, "...", 16384) = 16384
    102 10.620000 write(4, "...", 9300) = 9300
    102 10.630000 close(4) = 0
""")

MB = 1024 * 1024


def main() -> None:
    if len(sys.argv) > 1:
        print(f"Converting {sys.argv[1]} ...")
        log, stats = convert_file(sys.argv[1])
    else:
        print("No strace log given; using the bundled compile-pipeline sample.")
        log, stats = convert_calls(parse_lines(SAMPLE.splitlines()), name="sample")
    print(stats.summary())
    report = validate(log)
    print(report)
    print()

    print(compute_stats(log).render())
    print()
    print(analyze_sequentiality(log).render())
    print()
    print("Open times:", open_time_summary(open_time_cdf(log)))
    print("Sizes:     ", size_summary(*file_size_cdfs(log)))
    print()
    for policy in (WRITE_THROUGH, DELAYED_WRITE):
        metrics = simulate_cache(log, cache_bytes=4 * MB, policy=policy)
        print(f"4 MB cache, {policy.label:<13}: {metrics.summary()}")


if __name__ == "__main__":
    main()
