#!/usr/bin/env python3
"""Section 7: do the results generalize across workloads?

The paper traced three machines with different user populations — program
development (Ucbarpa/A5), development plus secretarial work (Ucbernie/E3)
and VLSI CAD (Ucbcad/C4) — and found the results "similar in all three
traces".  This example regenerates all three profiles and puts the
headline measurements side by side.

Run:  python examples/compare_machines.py
"""

from repro import (
    PROFILES,
    analyze_activity,
    analyze_sequentiality,
    generate_trace,
    open_time_cdf,
    simulate_cache,
)
from repro.analysis import collect_lifetimes, lifetime_cdfs, render_table

MB = 1024 * 1024


def measure(trace_name: str, seed: int) -> list[str]:
    profile = PROFILES[trace_name]
    trace = generate_trace(profile, seed=seed, duration=2 * 3600.0)
    activity = analyze_activity(trace)
    seq = analyze_sequentiality(trace)
    opens = open_time_cdf(trace)
    lifetimes = collect_lifetimes(trace)
    by_files, _ = lifetime_cdfs(trace, lifetimes)
    cache = simulate_cache(trace, 4 * MB)
    return [
        trace_name,
        f"{len(trace):,}",
        f"{activity.ten_minute.mean_user_throughput:.0f}",
        f"{seq.read.percent_whole():.0f}%",
        f"{seq.read.percent_sequential():.0f}%",
        f"{100 * opens.fraction_at_or_below(0.5):.0f}%",
        f"{100 * by_files.fraction_at_or_below(200):.0f}%",
        f"{100 * cache.miss_ratio:.0f}%",
    ]


def main() -> None:
    rows = []
    for trace_name in ("A5", "E3", "C4"):
        print(f"Generating two simulated hours of {trace_name}...")
        rows.append(measure(trace_name, seed=6))
    print()
    print(
        render_table(
            (
                "Trace",
                "events",
                "B/s per user",
                "whole-file reads",
                "sequential reads",
                "opens < 0.5 s",
                "files dead < 200 s",
                "4MB miss ratio",
            ),
            rows,
            title="The paper's Section 7 check: three workloads, one story",
        )
    )
    print()
    print(
        "The CAD machine moves bigger files, but the shapes — sequential "
        "whole-file access, short opens, short lifetimes, effective large "
        "caches — hold on all three, as the paper found."
    )


if __name__ == "__main__":
    main()
