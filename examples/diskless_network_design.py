#!/usr/bin/env python3
"""End-to-end design of the diskless-workstation system the paper imagines.

Puts the extension machinery together: per-workstation client caches in
front of a shared server cache (``repro.cache.twolevel``), the network
budget (Section 5.1), and the server disk's *time* budget via the
Fujitsu-Eagle service model (``repro.disk``) — answering the paper's
opening questions with its own data:

  "How much network bandwidth is needed to support a diskless
   workstation?  How should disk block caches be organized and managed?"

Run:  python examples/diskless_network_design.py
"""

from repro import UCBARPA, generate_trace
from repro.cache import DELAYED_WRITE, WRITE_THROUGH, simulate_two_level
from repro.disk import FUJITSU_EAGLE, DiskTimeEstimate

KB = 1024
MB = 1024 * 1024
ETHERNET_BYTES_PER_S = 10_000_000 / 8


def main() -> None:
    print("Generating three simulated hours of the A5 workload...")
    trace = generate_trace(UCBARPA, seed=3, duration=3 * 3600.0)
    print(trace.summary_line())
    print()

    print("Client cache sizing (write-through clients, 16 MB server):")
    for client_kb in (128, 512, 2048):
        result = simulate_two_level(
            trace, client_cache_bytes=client_kb * KB,
            client_policy=WRITE_THROUGH,
        )
        share = result.network_bytes_per_second / ETHERNET_BYTES_PER_S
        print(
            f"  {client_kb:>5} KB clients: "
            f"{result.network_blocks:,} blocks over the wire "
            f"({result.network_bytes_per_second / 1000:.1f} KB/s = "
            f"{100 * share:.2f}% of a 10 Mbit Ethernet), "
            f"{result.disk_ios:,} server disk I/Os"
        )
    print()

    print("Client write policy (512 KB clients):")
    for policy in (WRITE_THROUGH, DELAYED_WRITE):
        result = simulate_two_level(
            trace, client_cache_bytes=512 * KB, client_policy=policy,
        )
        print(
            f"  {policy.label:<13}: {result.network_blocks:,} network blocks, "
            f"{result.disk_ios:,} disk I/Os"
        )
    print(
        "  (delayed-write clients cut network writes but risk losing a "
        "workstation's unwritten data — the Section 6.2 tradeoff, one "
        "level up)"
    )
    print()

    result = simulate_two_level(trace, client_cache_bytes=512 * KB)
    estimate = DiskTimeEstimate.from_metrics(
        result.server_metrics, 4096, trace.duration, FUJITSU_EAGLE
    )
    print("Server disk budget:")
    print(f"  {estimate.render()}")
    headroom = (
        1.0 / estimate.utilization if estimate.utilization > 0 else float("inf")
    )
    print(
        f"  one Eagle could carry ~{headroom:.0f}x this community before "
        f"saturating — the disk, not the network, is the scaling limit, "
        f"and the caches are what keep it that way."
    )


if __name__ == "__main__":
    main()
