#!/usr/bin/env python3
"""The paper's motivating question: can a network file system work?

Section 1 asks "How much network bandwidth is needed to support a
diskless workstation?" and Section 5.1 answers with the Table IV numbers:
active users average only a few hundred bytes per second, so "a single
10 Mbit/second network can support many hundreds of users".

This example redoes that sizing exercise on a synthetic trace: measure
per-active-user demand (average and bursts), then compute how many users
a 10 Mbit/s Ethernet could carry at various utilization targets — and
check that even concurrent bursts fit.

Run:  python examples/diskless_workstation_sizing.py
"""

from repro import UCBARPA, analyze_activity, generate_trace

ETHERNET_BITS_PER_SEC = 10_000_000
#: Protocol + framing overhead guess for an NFS-style protocol of the era.
PROTOCOL_OVERHEAD = 1.5


def main() -> None:
    print("Generating four simulated hours of the A5 workload...")
    trace = generate_trace(UCBARPA, seed=2, duration=4 * 3600.0)
    report = analyze_activity(trace)
    print(report.render())
    print()

    average = report.ten_minute.mean_user_throughput
    burst = report.ten_second.mean_user_throughput
    burst_p = (
        report.ten_second.mean_user_throughput
        + 2 * report.ten_second.std_user_throughput
    )

    usable_bytes = ETHERNET_BITS_PER_SEC / 8 / PROTOCOL_OVERHEAD
    print(f"Per active user, averaged over 10-minute windows: {average:.0f} B/s")
    print(f"Per active user, within 10-second bursts:        {burst:.0f} B/s")
    print(f"A hot burst (mean + 2 sigma):                    {burst_p:.0f} B/s")
    print()
    print(
        f"A 10 Mbit/s Ethernet carries ~{usable_bytes / 1e6:.2f} MB/s of file "
        f"data after {PROTOCOL_OVERHEAD:.1f}x protocol overhead."
    )
    for utilization in (0.3, 0.5, 0.8):
        users = utilization * usable_bytes / average
        print(
            f"  at {100 * utilization:.0f}% utilization: "
            f"~{users:,.0f} simultaneously active users"
        )
    concurrent_bursts = usable_bytes / burst_p
    print(
        f"  and even {concurrent_bursts:.0f} users bursting at the same "
        f"instant fit in the wire"
    )
    print()
    print(
        "Conclusion (the paper's): network bandwidth is not the limiting "
        "factor for a network file system."
    )


if __name__ == "__main__":
    main()
