#!/usr/bin/env python3
"""Designing a file server's block cache, the Section 6 way.

A dedicated file server can devote almost all of its memory to a disk
cache.  This example walks the paper's design space on a synthetic trace:

* cache size x write policy (Table VI / Figure 5),
* block size x cache size (Table VII / Figure 6),
* the crash-exposure tradeoff that rules out pure delayed-write
  (Section 6.2): how long dirty blocks would sit in memory, and how much
  of delayed-write's benefit each flush-back interval preserves.

Run:  python examples/file_server_cache_design.py
"""

from repro import UCBARPA, generate_trace
from repro.cache import (
    DELAYED_WRITE,
    FLUSH_30S,
    FLUSH_5MIN,
    WRITE_THROUGH,
    BlockCacheSimulator,
    block_size_sweep,
    build_stream,
    cache_size_policy_sweep,
)

MB = 1024 * 1024


def main() -> None:
    print("Generating three simulated hours of the A5 workload...")
    trace = generate_trace(UCBARPA, seed=4, duration=3 * 3600.0)
    print(trace.summary_line())
    print()

    print(cache_size_policy_sweep(trace).render())
    print()

    sweep = block_size_sweep(trace)
    print(sweep.render())
    for cache in (400 * 1024, 4 * MB):
        best = sweep.best_block_size(cache)
        print(f"  best block size for a {cache // 1024} KB cache: {best // 1024} KB")
    print()

    # The crash-exposure analysis that motivates flush-back.
    stream = build_stream(trace)
    sim = BlockCacheSimulator(4 * MB, policy=DELAYED_WRITE, track_residency=True)
    delayed = sim.run(stream)
    print("Crash exposure under pure delayed-write (4 MB cache):")
    for minutes in (1, 5, 20):
        frac = sim.residency.fraction_longer_than(minutes * 60)
        print(
            f"  blocks resident longer than {minutes:>2} min: {100 * frac:5.1f}%"
        )
    print(
        f"  dirty blocks that died in the cache unwritten: "
        f"{100 * delayed.dirty_discard_fraction:.0f}%"
    )
    print()

    wt = BlockCacheSimulator(4 * MB, policy=WRITE_THROUGH).run(stream)
    print("How much of delayed-write's write savings each policy keeps (4 MB):")
    baseline = wt.disk_writes - delayed.disk_writes
    for policy in (FLUSH_30S, FLUSH_5MIN):
        metrics = BlockCacheSimulator(4 * MB, policy=policy).run(stream)
        kept = (wt.disk_writes - metrics.disk_writes) / baseline if baseline else 0
        print(
            f"  {policy.label:<13}: keeps {100 * kept:3.0f}% of the write "
            f"savings, bounds data loss to {policy.flush_interval:.0f} s"
        )
    print()
    print(
        "Recommendation (the paper's): a several-megabyte cache with large "
        "blocks and a periodic flush-back — most of delayed-write's benefit, "
        "bounded crash exposure."
    )


if __name__ == "__main__":
    main()
