#!/usr/bin/env python3
"""From bandwidth shares to end-to-end latency.

``diskless_network_design.py`` answers the paper's network question the
way the paper could: average network KB/s as a share of a 10 Mbit
Ethernet.  Averages hide the knee.  This walkthrough re-asks the
question with the discrete-event service (``repro.netfs``): replay more
and more A5 communities side by side on one segment and one server,
and watch *request latency* instead of bandwidth share.

Two sweeps tell the design story:

1. With the period's Fujitsu Eagle behind the server, the server disk
   saturates long before the wire does — the latency knee is the disk's
   (the counting example's conclusion, now visible as queueing).
2. Give the server enough disk arms (a striped array fast enough that
   the disk stops mattering) and keep scaling: now the knee is the
   Ethernet's — the point past which a 10 Mbit segment cannot carry more
   workstations no matter how good the server is.

Run:  python examples/network_latency_design.py
"""

from repro import UCBARPA, generate_trace
from repro.disk.model import DiskModel
from repro.netfs import simulate_netfs

KB = 1024

#: An ahead-of-its-time server: eight Eagles striped, so positioning
#: overlaps and per-I/O time is an eighth of one arm's.
STRIPED_ARRAY = DiskModel(
    name="8-wide Eagle stripe",
    avg_seek_s=0.018 / 8,
    rotation_s=(60.0 / 3600.0) / 8,
    transfer_bytes_per_s=8 * 1.8e6,
    locality=0.3,
)


def sweep(trace, disk: DiskModel, scales: list[int], label: str, **kwargs) -> None:
    print(f"{label}:")
    print(
        f"  {'clients':>8} {'eth %':>6} {'disk %':>7} {'mean ms':>8} "
        f"{'p99 ms':>9} {'net p99':>9} {'queue p99':>10}"
    )
    for scale in scales:
        result = simulate_netfs(
            trace,
            client_cache_bytes=512 * KB,
            protocol="ownership",
            disk=disk,
            load_scale=scale,
            **kwargs,
        )
        print(
            f"  {result.clients:>8} {100 * result.ethernet_utilization:>6.1f} "
            f"{100 * result.disk_utilization:>7.1f} "
            f"{1e3 * result.request_latency.mean:>8.1f} "
            f"{1e3 * result.request_latency.p99:>9.1f} "
            f"{1e3 * result.network_wait.p99:>9.1f} "
            f"{1e3 * result.server_queue_wait.p99:>10.1f}"
        )
    print()


def main() -> None:
    print("Generating twenty simulated minutes of the A5 workload...")
    trace = generate_trace(UCBARPA, seed=3, duration=1200.0)
    print(trace.summary_line())
    print()

    sweep(
        trace,
        DiskModel(
            name="Fujitsu Eagle M2351",
            avg_seek_s=0.018,
            rotation_s=60.0 / 3600.0,
            transfer_bytes_per_s=1.8e6,
        ),
        [1, 4, 8, 16],
        "One Eagle behind the server (the 1985 configuration)",
    )
    print(
        "  The queue p99 column hits the wall first while the Ethernet\n"
        "  stays cool: the latency knee is disk queueing, confirming\n"
        "  diskless_network_design's average-rate verdict — and showing\n"
        "  what it costs in milliseconds.\n"
    )

    sweep(
        trace,
        STRIPED_ARRAY,
        [1, 8, 32, 64],
        "Striped server, fast server CPU (disk off the critical path)",
        server_cpu_s=0.0002,
        server_queue_limit=256,
    )
    print(
        "  Now the net p99 column is what explodes: past the knee the\n"
        "  wire's FIFO backlog outruns the RPC timeout and retransmissions\n"
        "  pile on — congestion collapse on a 10 Mbit segment.  Note the\n"
        "  knee arrives near ~30% *average* utilization: the paper's\n"
        "  peak-vs-average gap (Section 4) means bursts saturate the wire\n"
        "  long before the average does.  The 10 Mbit segment is carrying\n"
        "  all the workstations it ever will."
    )


if __name__ == "__main__":
    main()
