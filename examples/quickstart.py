#!/usr/bin/env python3
"""Quickstart: generate a trace, analyze it, simulate a cache.

This walks the three layers of the library in ~30 lines of real use:

1. synthesize an hour of the Ucbarpa (trace A5) workload;
2. run the reference-pattern analyzer (paper Tables IV-V);
3. replay the trace through the block-cache simulator (paper Table VI).

Run:  python examples/quickstart.py
"""

from repro import (
    DELAYED_WRITE,
    UCBARPA,
    WRITE_THROUGH,
    analyze_activity,
    analyze_sequentiality,
    generate_trace,
    simulate_cache,
)
from repro.trace import compute_stats

MB = 1024 * 1024


def main() -> None:
    print("Generating one simulated hour of the A5 (Ucbarpa) workload...")
    trace = generate_trace(UCBARPA, seed=1, duration=3600.0)
    print(trace.summary_line())
    print()

    print(compute_stats(trace).render())
    print()

    print(analyze_activity(trace).render())
    print()

    print(analyze_sequentiality(trace).render())
    print()

    print("Cache simulation (4 KB blocks):")
    for cache_mb in (0.39, 4):
        for policy in (WRITE_THROUGH, DELAYED_WRITE):
            metrics = simulate_cache(
                trace, cache_bytes=int(cache_mb * MB), policy=policy
            )
            print(
                f"  {cache_mb:>5} MB, {policy.label:<13}: "
                f"miss ratio {100 * metrics.miss_ratio:5.1f}%  "
                f"({metrics.disk_ios:,} disk I/Os for "
                f"{metrics.block_accesses:,} block accesses)"
            )


if __name__ == "__main__":
    main()
