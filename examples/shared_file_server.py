#!/usr/bin/env python3
"""Sizing a shared file server for all three machines at once.

The paper's whole motivation was "designing a shared file system for a
network of personal workstations".  This example takes that final step:
merge synthetic traces from all three machine profiles into one combined
workload — as if Ucbarpa, Ucbernie and Ucbcad mounted a single server —
and size the server's cache against it.

It exercises the trace-merge machinery (disjoint id renumbering + heap
merge) and shows the consolidation effect the paper predicts: a shared
cache serves the combined workload with far less memory than three
separate caches, because the hot shared files are shared.

Run:  python examples/shared_file_server.py
"""

from repro import PROFILES, generate_trace, simulate_cache
from repro.cache import DELAYED_WRITE, cache_size_policy_sweep
from repro.trace import merge, validate

MB = 1024 * 1024


def main() -> None:
    traces = []
    for name in ("A5", "E3", "C4"):
        print(f"Generating ninety simulated minutes of {name}...")
        traces.append(generate_trace(PROFILES[name], seed=11, duration=5400.0))

    combined = merge(traces, name="A5+E3+C4")
    report = validate(combined)
    print(f"Merged: {combined.summary_line()} ({report})")
    print()

    print("One shared server cache for the combined workload:")
    print(cache_size_policy_sweep(
        combined, cache_sizes=(1 * MB, 4 * MB, 8 * MB, 16 * MB)
    ).render())
    print()

    # Consolidation: 3 x 4 MB private caches vs one 12 MB shared pool.
    # The merge renumbers file ids disjointly (the machines' trees are
    # separate), so this measures pure statistical multiplexing: the pool
    # lets a burst on one machine borrow the quiet machines' cache space.
    private_ios = sum(
        simulate_cache(t, 4 * MB, policy=DELAYED_WRITE).disk_ios for t in traces
    )
    shared = simulate_cache(combined, 12 * MB, policy=DELAYED_WRITE)
    print(
        f"Three private 4 MB caches: {private_ios:,} disk I/Os; "
        f"one 12 MB shared pool: {shared.disk_ios:,} "
        f"({100 * (shared.disk_ios / private_ios - 1):+.1f}%)"
    )
    print(
        "With disjoint file trees the pooled cache roughly matches the "
        "private ones — consolidation costs nothing even before the "
        "sharing of /bin, /usr/include and /etc (which a real shared "
        "server would add) tips it further ahead."
    )


if __name__ == "__main__":
    main()
