#!/usr/bin/env python3
"""A multi-day trace with the paper's daily rhythm.

The real traces ran 2-3 days "during the busiest part of the work week",
so their activity statistics mix busy afternoons with quiet nights —
that is why Table IV's *greatest* number of active users (27 on A5) sits
so far above the *average* (11.7).  This example turns on the diurnal
load pattern, generates two simulated days, and shows the rhythm and its
effect on the Table IV numbers.

Run:  python examples/work_week.py
"""

import dataclasses

from repro import UCBARPA, analyze_activity
from repro.analysis import analyze_burstiness
from repro.workload.distributions import DiurnalPattern
from repro.workload.generator import generate_trace


def main() -> None:
    profile = dataclasses.replace(
        UCBARPA,
        diurnal=DiurnalPattern(peak_hour=15.0, night_slowdown=8.0),
    )
    print("Generating two simulated days of A5 with day/night rhythm...")
    trace = generate_trace(profile, seed=12, duration=48 * 3600.0)
    print(trace.summary_line())
    print()

    print("Opens per hour of day (both days superimposed):")
    counts = [0] * 24
    for event in trace.of_kind("open"):
        counts[int(event.time // 3600) % 24] += 1
    peak = max(counts)
    for hour in range(24):
        bar = "#" * round(40 * counts[hour] / peak) if peak else ""
        print(f"  {hour:02d}:00  {counts[hour]:5d} |{bar}")
    print()

    report = analyze_activity(trace)
    print(report.render())
    print()
    print(
        f"Average active users {report.ten_minute.mean_active_users:.1f} vs "
        f"greatest {report.ten_minute.max_active_users} — the paper's "
        f"Table IV gap (11.7 vs 27 on A5) comes from exactly this rhythm."
    )
    burst = analyze_burstiness(trace)
    print(burst.render())


if __name__ == "__main__":
    main()
