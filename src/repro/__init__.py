"""repro — a reproduction of Ousterhout et al., "A Trace-Driven Analysis
of the UNIX 4.2 BSD File System" (SOSP 1985).

The package rebuilds the paper's whole measurement stack:

* :mod:`repro.unixfs` — a simulated 4.2 BSD file system with the kernel
  trace hook (inodes, directories + name cache, FFS block/fragment
  allocator, buffer cache, syscall layer);
* :mod:`repro.trace` — the Table II logical trace format, serializations,
  validation and first-order statistics;
* :mod:`repro.workload` — calibrated synthetic workloads standing in for
  the three traced Berkeley VAXes (profiles A5 / E3 / C4);
* :mod:`repro.analysis` — the reference-pattern analyzer (Tables IV-V,
  Figures 1-4);
* :mod:`repro.cache` — the trace-driven block-cache simulator (Figures
  5-7, Tables VI-VII);
* :mod:`repro.strace` — conversion of real ``strace`` logs into the trace
  format;
* :mod:`repro.experiments` — one reproduction driver per paper exhibit;
* :mod:`repro.netfs` — a discrete-event network file service (client
  caches, shared Ethernet, RPC with retry, server queue + disk, cache
  consistency) answering the diskless-workstation question in *time*.

Quickstart::

    from repro import generate_trace, UCBARPA, analyze_sequentiality, simulate_cache

    trace = generate_trace(UCBARPA, seed=1, duration=3600)
    print(analyze_sequentiality(trace).render())
    print(simulate_cache(trace, cache_bytes=4 * 1024 * 1024).summary())
"""

from .analysis import (
    analyze_activity,
    analyze_sequentiality,
    file_size_cdfs,
    lifetime_cdfs,
    open_time_cdf,
    reconstruct_accesses,
    run_length_cdfs,
)
from .cache import (
    DELAYED_WRITE,
    FLUSH_30S,
    FLUSH_5MIN,
    WRITE_THROUGH,
    BlockCacheSimulator,
    block_size_sweep,
    cache_size_policy_sweep,
    paging_comparison,
    simulate_cache,
)
from .clock import Clock
from .netfs import NetfsResult, simulate_netfs
from .trace import (
    AccessMode,
    TraceLog,
    compute_stats,
    read_binary,
    read_text,
    validate,
    validate_columns,
    write_binary,
    write_text,
)
from .unixfs import FileSystem, KernelTracer, MemoryContentStore
from .workload import (
    PROFILES,
    UCBARPA,
    UCBCAD,
    UCBERNIE,
    MachineProfile,
    generate,
    generate_trace,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # substrate
    "FileSystem",
    "KernelTracer",
    "MemoryContentStore",
    "Clock",
    # trace
    "TraceLog",
    "AccessMode",
    "read_text",
    "write_text",
    "read_binary",
    "write_binary",
    "validate",
    "validate_columns",
    "compute_stats",
    # workload
    "generate",
    "generate_trace",
    "MachineProfile",
    "UCBARPA",
    "UCBERNIE",
    "UCBCAD",
    "PROFILES",
    # analysis
    "reconstruct_accesses",
    "analyze_activity",
    "analyze_sequentiality",
    "run_length_cdfs",
    "file_size_cdfs",
    "open_time_cdf",
    "lifetime_cdfs",
    # cache
    "BlockCacheSimulator",
    "simulate_cache",
    "cache_size_policy_sweep",
    "block_size_sweep",
    "paging_comparison",
    "WRITE_THROUGH",
    "FLUSH_30S",
    "FLUSH_5MIN",
    "DELAYED_WRITE",
    # network file service
    "simulate_netfs",
    "NetfsResult",
]
