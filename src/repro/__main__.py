"""``python -m repro`` runs the repro-fs command-line interface."""

import sys

from .cli.main import main

if __name__ == "__main__":
    sys.exit(main())
