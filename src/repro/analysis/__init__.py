"""The reference-pattern analyzer.

One of the paper's two trace-processing programs: reconstructs per-open
accesses from the position-only trace (Section 3.1) and measures system
activity (Table IV), sequentiality (Table V, Figure 1), dynamic file sizes
(Figure 2), open durations (Figure 3) and new-file lifetimes (Figure 4).
"""

from .accesses import (
    FileAccess,
    Run,
    Transfer,
    iter_transfers,
    reconstruct_accesses,
    transfers_from_accesses,
)
from .activity import ActivityReport, WindowedActivity, analyze_activity
from .burstiness import BurstinessReport, analyze_burstiness
from .cdf import Cdf
from .comparison import TraceHeadline, compare_traces, headline
from .export import export_figures, write_cdf_csv, write_sweep_csv
from .onepass import OnePassReport, analyze_onepass
from .lifetimes import (
    Lifetime,
    collect_lifetimes,
    daemon_spike_fraction,
    lifetime_cdfs,
)
from .opentimes import open_time_cdf, open_time_summary
from .popularity import FilePopularity, PopularityReport, analyze_popularity
from .report import format_bytes, render_cdf_ascii, render_cdf_points, render_table
from .sequentiality import (
    ModeCounts,
    SequentialityReport,
    analyze_sequentiality,
    run_length_cdfs,
)
from .sizes import file_size_cdfs, size_summary
from .staticscan import StaticScan, scan_disk
from .users import UserSummary, per_user_summary, render_user_table

__all__ = [
    "FileAccess",
    "Run",
    "Transfer",
    "reconstruct_accesses",
    "iter_transfers",
    "transfers_from_accesses",
    "analyze_onepass",
    "OnePassReport",
    "analyze_activity",
    "ActivityReport",
    "WindowedActivity",
    "analyze_sequentiality",
    "SequentialityReport",
    "ModeCounts",
    "run_length_cdfs",
    "file_size_cdfs",
    "size_summary",
    "StaticScan",
    "scan_disk",
    "per_user_summary",
    "render_user_table",
    "UserSummary",
    "analyze_popularity",
    "PopularityReport",
    "FilePopularity",
    "open_time_cdf",
    "open_time_summary",
    "collect_lifetimes",
    "lifetime_cdfs",
    "daemon_spike_fraction",
    "Lifetime",
    "Cdf",
    "compare_traces",
    "headline",
    "TraceHeadline",
    "export_figures",
    "write_cdf_csv",
    "write_sweep_csv",
    "analyze_burstiness",
    "BurstinessReport",
    "render_table",
    "render_cdf_ascii",
    "render_cdf_points",
    "format_bytes",
]
