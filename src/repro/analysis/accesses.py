"""Per-open access reconstruction.

The heart of the no-read-write tracing method (paper Section 3.1): because
UNIX file I/O is implicitly sequential, the positions recorded at open,
seek and close completely identify the byte ranges transferred.  This
module replays a trace and produces one :class:`FileAccess` per open,
holding the *sequential runs* — maximal stretches of bytes moved without a
reposition — with each run billed at the time of the close or seek that
ended it (the paper's billing rule).

Everything downstream (Tables IV and V, Figures 1–4, and the cache
simulator's transfer stream) consumes these accesses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..trace.log import TraceLog
from ..trace.records import (
    AccessMode,
    CloseEvent,
    OpenEvent,
    SeekEvent,
)

__all__ = [
    "Run",
    "FileAccess",
    "reconstruct_accesses",
    "iter_transfers",
    "transfers_from_accesses",
    "Transfer",
]


class _memoized:
    """A minimal compute-once property.

    Like :class:`functools.cached_property` (the value lands in the
    instance ``__dict__`` and later reads bypass the descriptor), minus
    the per-miss locking that 3.11's version pays: accesses are built and
    analyzed within one process, and every analysis touches every access,
    so the miss path runs tens of thousands of times per report.
    """

    def __init__(self, func):
        self.func = func
        self.name = func.__name__
        self.__doc__ = func.__doc__

    def __set_name__(self, owner, name):
        self.name = name

    def __get__(self, obj, owner=None):
        if obj is None:
            return self
        value = self.func(obj)
        obj.__dict__[self.name] = value
        return value


@dataclass(frozen=True, slots=True)
class Run:
    """One sequential run: bytes [start, end) moved without repositioning.

    ``time`` is when the run was billed — the close or seek event that
    bounded it from above.
    """

    start: int
    end: int
    time: float

    @property
    def length(self) -> int:
        return self.end - self.start


@dataclass
class FileAccess:
    """Everything one open told us.

    ``runs`` is appended to only while :func:`reconstruct_accesses` is
    replaying the trace and never mutated afterwards, so the derived
    values below are memoized: every downstream analysis of a
    shared access list reads them several times.
    """

    open_id: int
    file_id: int
    user_id: int
    mode: AccessMode
    open_time: float
    close_time: float
    size_at_open: int
    created: bool
    new_file: bool
    initial_pos: int
    seeks: int = 0
    seek_after_data: bool = False
    runs: list[Run] = field(default_factory=list)

    @_memoized
    def bytes_transferred(self) -> int:
        return sum(r.length for r in self.runs)

    @property
    def duration(self) -> float:
        """How long the file was open (Figure 3's quantity)."""
        return self.close_time - self.open_time

    @_memoized
    def size_at_close(self) -> int:
        """The file size when the access ended.

        Reads never grow a file; writes can.  Without read/write records
        the best bound is the larger of the open-time size (zero if the
        open truncated) and the furthest position reached.
        """
        base = 0 if self.created else self.size_at_open
        furthest = max((r.end for r in self.runs), default=0)
        return max(base, furthest)

    @_memoized
    def whole_file(self) -> bool:
        """A whole-file transfer: read or written sequentially start to end."""
        if len(self.runs) != 1:
            return False
        run = self.runs[0]
        if run.start != 0 or run.length == 0:
            return False
        if self.mode is AccessMode.READ:
            return run.end == self.size_at_open
        # For writes the end of the single run *is* the end of the file.
        return run.end == self.size_at_close

    @_memoized
    def sequential(self) -> bool:
        """Sequential per the paper: whole-file, or a single initial
        reposition followed by one uninterrupted transfer.  Accesses that
        moved no bytes are trivially sequential."""
        if self.whole_file:
            return True
        if len(self.runs) > 1:
            return False
        return not self.seek_after_data


def reconstruct_accesses(
    log: TraceLog, include_unclosed: bool = False
) -> list[FileAccess]:
    """Replay *log* into per-open accesses.

    Orphan seek/close events (their open missing, e.g. after slicing) are
    dropped.  Opens never closed are dropped too unless
    ``include_unclosed`` is set, in which case they appear with
    ``close_time`` equal to the last trace time and their tail run billed
    then (matching how the generator's horizon closes sessions).
    """
    in_progress: dict[int, FileAccess] = {}
    position: dict[int, int] = {}
    finished: list[FileAccess] = []

    for event in log.events:
        if isinstance(event, OpenEvent):
            in_progress[event.open_id] = FileAccess(
                open_id=event.open_id,
                file_id=event.file_id,
                user_id=event.user_id,
                mode=event.mode,
                open_time=event.time,
                close_time=event.time,
                size_at_open=event.size,
                created=event.created,
                new_file=event.new_file,
                initial_pos=event.initial_pos,
            )
            position[event.open_id] = event.initial_pos
        elif isinstance(event, SeekEvent):
            access = in_progress.get(event.open_id)
            if access is None:
                continue
            pos = position[event.open_id]
            if event.prev_pos > pos:
                access.runs.append(Run(start=pos, end=event.prev_pos, time=event.time))
            access.seeks += 1
            if access.runs:
                access.seek_after_data = True
            position[event.open_id] = event.new_pos
        elif isinstance(event, CloseEvent):
            access = in_progress.pop(event.open_id, None)
            if access is None:
                continue
            pos = position.pop(event.open_id)
            if event.final_pos > pos:
                access.runs.append(
                    Run(start=pos, end=event.final_pos, time=event.time)
                )
            access.close_time = event.time
            finished.append(access)

    if include_unclosed and in_progress:
        end_time = log.end_time
        for open_id, access in in_progress.items():
            access.close_time = end_time
            finished.append(access)

    finished.sort(key=lambda a: a.close_time)
    return finished


@dataclass(frozen=True, slots=True)
class Transfer:
    """One billed data movement, the cache simulator's input unit."""

    time: float
    file_id: int
    user_id: int
    start: int
    end: int
    is_write: bool

    @property
    def length(self) -> int:
        return self.end - self.start


def transfers_from_accesses(accesses: list[FileAccess]) -> list[Transfer]:
    """Flatten reconstructed accesses into time-sorted billed transfers.

    Each sequential run becomes one transfer at its billing time.
    Read-write opens produce transfers flagged as writes when the open was
    writable and as reads otherwise; with no read/write records the tracer
    cannot split a read-write open's traffic, so we follow the paper's
    conservative convention and treat read-write runs as writes (they can
    dirty cache blocks).
    """
    transfers: list[Transfer] = []
    append = transfers.append
    for access in accesses:
        is_write = access.mode is not AccessMode.READ
        file_id = access.file_id
        user_id = access.user_id
        for run in access.runs:
            append(Transfer(run.time, file_id, user_id, run.start, run.end, is_write))
    transfers.sort(key=lambda t: t.time)
    return transfers


def iter_transfers(log: TraceLog) -> Iterator[Transfer]:
    """Stream billed transfers in time order (see
    :func:`transfers_from_accesses`)."""
    # Reconstruct eagerly, then merge runs by billing time.  Traces are
    # processed in one pass downstream; memory here is bounded by the
    # number of opens, which is fine for multi-day synthetic traces.
    return iter(transfers_from_accesses(reconstruct_accesses(log)))
