"""System-activity analysis (paper Table IV).

Measures how much the file system is used: total throughput, the number of
distinct users, and — the number the paper cares most about, because it
sizes the network of a diskless-workstation file server — the throughput
*per active user*, where a user is active in an interval if any trace
event of theirs falls in it.  Both the 10-minute and 10-second window
sizes of Table IV are computed (burstiness shows up as the large gap
between the two).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..trace.log import TraceLog
from ..trace.records import CloseEvent, CreateEvent, ExecEvent, OpenEvent, SeekEvent
from .accesses import iter_transfers

__all__ = ["WindowedActivity", "ActivityReport", "analyze_activity"]


@dataclass
class WindowedActivity:
    """Per-interval activity numbers for one window size."""

    window: float
    intervals: int
    max_active_users: int
    mean_active_users: float
    std_active_users: float
    mean_user_throughput: float  # bytes/sec, averaged over active (user,interval)s
    std_user_throughput: float


@dataclass
class ActivityReport:
    """The Table IV row set."""

    trace_name: str
    duration: float
    total_bytes: int
    total_users: int
    ten_minute: WindowedActivity
    ten_second: WindowedActivity

    @property
    def mean_throughput(self) -> float:
        """Bytes/second over the life of the trace (Table IV row 1)."""
        return self.total_bytes / self.duration if self.duration else 0.0

    def render(self) -> str:
        lines = [
            f"System activity for trace {self.trace_name}",
            f"  Average throughput (bytes/sec over life of trace): "
            f"{self.mean_throughput:.0f}",
            f"  Total number of different users: {self.total_users}",
            f"  Greatest number of active users in a 10-minute interval: "
            f"{self.ten_minute.max_active_users}",
        ]
        for w in (self.ten_minute, self.ten_second):
            label = "10-minute" if w.window >= 60 else "10-second"
            lines.append(
                f"  Average active users ({label} intervals): "
                f"{w.mean_active_users:.1f} (±{w.std_active_users:.1f})"
            )
            lines.append(
                f"  Average throughput per active user ({label}): "
                f"{w.mean_user_throughput:.0f} (±{w.std_user_throughput:.0f}) bytes/sec"
            )
        return "\n".join(lines)


def _mean_std(values: list[float]) -> tuple[float, float]:
    if not values:
        return 0.0, 0.0
    mean = sum(values) / len(values)
    var = sum((v - mean) ** 2 for v in values) / len(values)
    return mean, math.sqrt(var)


def _window_analysis(
    window: float,
    duration: float,
    start: float,
    event_marks: list[tuple[float, int]],
    byte_marks: list[tuple[float, int, int]],
) -> WindowedActivity:
    n_intervals = max(1, math.ceil(duration / window)) if duration > 0 else 1
    active: list[set[int]] = [set() for _ in range(n_intervals)]
    bytes_by_user: list[dict[int, int]] = [{} for _ in range(n_intervals)]

    # The slot computation is inlined in both loops: a function call per
    # mark dominated this routine on long traces.
    last = n_intervals - 1
    for t, uid in event_marks:
        i = int((t - start) / window)
        active[i if i < last else last].add(uid)
    for t, uid, nbytes in byte_marks:
        i = int((t - start) / window)
        if i > last:
            i = last
        active[i].add(uid)
        by_user = bytes_by_user[i]
        by_user[uid] = by_user.get(uid, 0) + nbytes

    counts = [float(len(a)) for a in active]
    throughputs: list[float] = []
    for i in range(n_intervals):
        # sorted() pins the summation order _mean_std sees — set order
        # would be hash-dependent, and the vectorized engine must feed
        # _mean_std the identical float sequence to stay bit-identical.
        for uid in sorted(active[i]):
            throughputs.append(bytes_by_user[i].get(uid, 0) / window)
    mean_active, std_active = _mean_std(counts)
    mean_tp, std_tp = _mean_std(throughputs)
    return WindowedActivity(
        window=window,
        intervals=n_intervals,
        max_active_users=int(max(counts)) if counts else 0,
        mean_active_users=mean_active,
        std_active_users=std_active,
        mean_user_throughput=mean_tp,
        std_user_throughput=std_tp,
    )


def analyze_activity(
    log: TraceLog,
    long_window: float = 600.0,
    short_window: float = 10.0,
) -> ActivityReport:
    """Compute Table IV for *log*.

    Bytes are billed at the time of the close/seek that bounded each
    transfer (the paper's convention); user activity marks come from every
    trace event, with seeks and closes attributed through their open.
    """
    # Attribute every event to a user.
    open_owner: dict[int, int] = {}
    event_marks: list[tuple[float, int]] = []
    users: set[int] = set()
    for event in log.events:
        uid: int | None = None
        if isinstance(event, OpenEvent):
            open_owner[event.open_id] = event.user_id
            uid = event.user_id
        elif isinstance(event, (SeekEvent, CloseEvent)):
            uid = open_owner.get(event.open_id)
        elif isinstance(event, (CreateEvent, ExecEvent)):
            uid = event.user_id
        if uid is not None:
            users.add(uid)
            event_marks.append((event.time, uid))

    byte_marks: list[tuple[float, int, int]] = []
    total_bytes = 0
    for transfer in iter_transfers(log):
        byte_marks.append((transfer.time, transfer.user_id, transfer.length))
        total_bytes += transfer.length

    duration = log.duration
    start = log.start_time
    return ActivityReport(
        trace_name=log.name,
        duration=duration,
        total_bytes=total_bytes,
        total_users=len(users),
        ten_minute=_window_analysis(
            long_window, duration, start, event_marks, byte_marks
        ),
        ten_second=_window_analysis(
            short_window, duration, start, event_marks, byte_marks
        ),
    )
