"""Burstiness analysis.

"Our final conclusion is that ... file system activity is bursty"
(Section 8), and Section 4 notes that "during the peak hours of the day,
about 2-3 files were opened per second".  This module quantifies both:
the open-rate profile over time windows (mean, peak, peak-to-mean ratio)
and the per-user byte-rate extremes the paper quotes in Section 5.1
("rates as high as 10 kbytes/sec recorded for some users in some
intervals").
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..trace.log import TraceLog
from ..trace.records import OpenEvent
from .accesses import iter_transfers

__all__ = ["BurstinessReport", "analyze_burstiness", "assemble_burstiness"]


@dataclass
class BurstinessReport:
    """Open-rate and per-user-rate burstiness numbers."""

    window: float
    mean_open_rate: float  # opens/second averaged over the trace
    peak_open_rate: float  # hottest window
    peak_to_mean: float
    idle_window_fraction: float  # windows with no activity at all
    max_user_rate: float  # hottest (user, window) byte rate, bytes/sec

    def render(self) -> str:
        return "\n".join(
            [
                f"Burstiness over {self.window:.0f}-second windows:",
                f"  mean open rate: {self.mean_open_rate:.2f}/s; "
                f"peak {self.peak_open_rate:.2f}/s "
                f"({self.peak_to_mean:.1f}x the mean)",
                f"  {100 * self.idle_window_fraction:.0f}% of windows were "
                f"completely idle",
                f"  hottest single user hit {self.max_user_rate / 1000:.1f} "
                f"KB/s in one window",
            ]
        )


def analyze_burstiness(log: TraceLog, window: float = 10.0) -> BurstinessReport:
    """Window the trace and measure rate extremes."""
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    duration = max(log.duration, window)
    start = log.start_time
    n = max(1, math.ceil(duration / window))

    def slot(t: float) -> int:
        return min(n - 1, int((t - start) / window))

    opens = [0] * n
    busy = [False] * n
    for event in log.events:
        i = slot(event.time)
        busy[i] = True
        if isinstance(event, OpenEvent):
            opens[i] += 1

    user_bytes: dict[tuple[int, int], int] = {}
    for transfer in iter_transfers(log):
        key = (slot(transfer.time), transfer.user_id)
        user_bytes[key] = user_bytes.get(key, 0) + transfer.length

    return assemble_burstiness(window, duration, opens, busy, user_bytes)


def assemble_burstiness(
    window: float,
    duration: float,
    opens: list[int],
    busy: list[bool],
    user_bytes: dict[tuple[int, int], int],
) -> BurstinessReport:
    """Assemble the report from pre-windowed tallies (shared with the
    one-pass analyzer, which fills the windows in its fused loop)."""
    total_opens = sum(opens)
    mean_rate = total_opens / duration if duration else 0.0
    peak_rate = max(opens) / window if opens else 0.0
    max_user = max(user_bytes.values(), default=0) / window
    return BurstinessReport(
        window=window,
        mean_open_rate=mean_rate,
        peak_open_rate=peak_rate,
        peak_to_mean=peak_rate / mean_rate if mean_rate else 0.0,
        idle_window_fraction=busy.count(False) / len(busy),
        max_user_rate=max_user,
    )
