"""Cumulative-distribution utilities.

Every figure in the paper is a CDF — of run lengths, file sizes, open
times or lifetimes, variously weighted by count or by bytes.  :class:`Cdf`
wraps a weighted sample set with the operations the figure modules need:
percentile lookup, fraction-below queries, and evaluation on an x-grid for
plotting or table rendering.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = ["Cdf"]


@dataclass(frozen=True)
class Cdf:
    """A weighted empirical CDF over non-negative values.

    ``xs`` are the sorted distinct sample values, ``cum`` the cumulative
    weight at or below each value, and ``total`` the total weight
    (``total`` can exceed ``cum[-1]`` when some mass is *censored* above
    every observed value — e.g. files still alive at trace end: they count
    in the denominator but never appear in the body of the CDF).
    """

    xs: tuple[float, ...]
    cum: tuple[float, ...]
    total: float

    @classmethod
    def from_samples(
        cls,
        values: Iterable[float],
        weights: Iterable[float] | None = None,
        censored_weight: float = 0.0,
    ) -> "Cdf":
        """Build from samples (optionally weighted).

        *censored_weight* adds denominator mass with value above every
        sample (right-censoring).
        """
        pairs: dict[float, float] = {}
        if weights is None:
            for v in values:
                pairs[v] = pairs.get(v, 0.0) + 1.0
        else:
            for v, w in zip(values, weights, strict=True):
                pairs[v] = pairs.get(v, 0.0) + w
        xs = sorted(pairs)
        cum: list[float] = []
        acc = 0.0
        for x in xs:
            acc += pairs[x]
            cum.append(acc)
        total = acc + censored_weight
        return cls(xs=tuple(xs), cum=tuple(cum), total=total)

    @property
    def count(self) -> float:
        """Total weight including censored mass."""
        return self.total

    def fraction_at_or_below(self, x: float) -> float:
        """P(value <= x)."""
        if self.total <= 0:
            return 0.0
        i = bisect.bisect_right(self.xs, x)
        if i == 0:
            return 0.0
        return self.cum[i - 1] / self.total

    def percentile(self, p: float) -> float:
        """Smallest x with at least fraction *p* of the weight at or below.

        Returns ``inf`` when the requested mass lies in the censored tail.
        """
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"p must be in [0,1], got {p}")
        if not self.xs:
            return float("inf")
        target = p * self.total
        i = bisect.bisect_left(self.cum, target)
        if i >= len(self.xs):
            return float("inf")
        return self.xs[i]

    def evaluate(self, grid: Sequence[float]) -> list[tuple[float, float]]:
        """(x, fraction<=x) pairs over *grid* — a plottable curve."""
        return [(x, self.fraction_at_or_below(x)) for x in grid]

    def median(self) -> float:
        return self.percentile(0.5)
