"""Side-by-side trace comparison (the paper's Section 7 check).

"The generality of our conclusions is also supported by the similarity of
the results for the three different traces."  This module computes the
headline measurements for several traces at once and renders them as one
table, so the Section 7 argument can be re-made on any set of traces —
synthetic profiles, strace conversions, or slices of one long trace.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cache.policies import DELAYED_WRITE
from ..cache.simulator import simulate_cache
from ..trace.log import TraceLog
from .accesses import reconstruct_accesses
from .activity import analyze_activity
from .lifetimes import collect_lifetimes, daemon_spike_fraction, lifetime_cdfs
from .opentimes import open_time_cdf
from .report import render_table
from .sequentiality import analyze_sequentiality
from .sizes import file_size_cdfs

__all__ = ["TraceHeadline", "compare_traces", "headline"]

_MB = 1024 * 1024


@dataclass(frozen=True)
class TraceHeadline:
    """The numbers Section 7 compares across machines."""

    name: str
    events: int
    per_user_bytes_sec: float
    whole_file_read_pct: float
    sequential_read_pct: float
    accesses_under_10k_pct: float
    opens_under_half_s_pct: float
    files_dead_200s_pct: float
    daemon_spike_pct: float
    miss_ratio_4mb: float


def headline(log: TraceLog) -> TraceHeadline:
    """Compute one trace's headline row."""
    accesses = reconstruct_accesses(log)
    activity = analyze_activity(log)
    seq = analyze_sequentiality(log, accesses)
    sizes, _bytes = file_size_cdfs(log, accesses)
    opens = open_time_cdf(log, accesses)
    lifetimes = collect_lifetimes(log)
    by_files, _ = lifetime_cdfs(log, lifetimes)
    cache = simulate_cache(log, 4 * _MB, policy=DELAYED_WRITE)
    return TraceHeadline(
        name=log.name,
        events=len(log),
        per_user_bytes_sec=activity.ten_minute.mean_user_throughput,
        whole_file_read_pct=seq.read.percent_whole(),
        sequential_read_pct=seq.read.percent_sequential(),
        accesses_under_10k_pct=100 * sizes.fraction_at_or_below(10 * 1024),
        opens_under_half_s_pct=100 * opens.fraction_at_or_below(0.5),
        files_dead_200s_pct=100 * by_files.fraction_at_or_below(200.0),
        daemon_spike_pct=100 * daemon_spike_fraction(lifetimes),
        miss_ratio_4mb=cache.miss_ratio,
    )


def compare_traces(logs: list[TraceLog]) -> str:
    """The Section 7 table for any set of traces."""
    rows = []
    for log in logs:
        h = headline(log)
        rows.append(
            (
                h.name,
                f"{h.events:,}",
                f"{h.per_user_bytes_sec:.0f}",
                f"{h.whole_file_read_pct:.0f}%",
                f"{h.sequential_read_pct:.0f}%",
                f"{h.accesses_under_10k_pct:.0f}%",
                f"{h.opens_under_half_s_pct:.0f}%",
                f"{h.files_dead_200s_pct:.0f}%",
                f"{100 * h.miss_ratio_4mb:.0f}%",
            )
        )
    return render_table(
        (
            "trace",
            "events",
            "B/s per user",
            "whole-file reads",
            "sequential reads",
            "accesses <= 10KB",
            "opens < 0.5s",
            "files dead < 200s",
            "4MB miss ratio",
        ),
        rows,
        title="Cross-trace comparison (the paper's Section 7 check)",
    )
