"""Side-by-side trace comparison (the paper's Section 7 check).

"The generality of our conclusions is also supported by the similarity of
the results for the three different traces."  This module computes the
headline measurements for several traces at once and renders them as one
table, so the Section 7 argument can be re-made on any set of traces —
synthetic profiles, strace conversions, or slices of one long trace.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cache.policies import DELAYED_WRITE
from ..cache.simulator import simulate_cache
from ..trace.log import TraceLog
from .onepass import analyze_onepass
from .report import render_table

__all__ = ["TraceHeadline", "compare_traces", "headline", "render_comparison"]

_MB = 1024 * 1024


@dataclass(frozen=True)
class TraceHeadline:
    """The numbers Section 7 compares across machines."""

    name: str
    events: int
    per_user_bytes_sec: float
    whole_file_read_pct: float
    sequential_read_pct: float
    accesses_under_10k_pct: float
    opens_under_half_s_pct: float
    files_dead_200s_pct: float
    daemon_spike_pct: float
    miss_ratio_4mb: float


def headline(log: TraceLog) -> TraceHeadline:
    """Compute one trace's headline row (one fused analysis pass plus the
    cache simulation)."""
    r = analyze_onepass(log)
    cache = simulate_cache(log, 4 * _MB, policy=DELAYED_WRITE)
    return TraceHeadline(
        name=log.name,
        events=len(log),
        per_user_bytes_sec=r.activity.ten_minute.mean_user_throughput,
        whole_file_read_pct=r.sequentiality.read.percent_whole(),
        sequential_read_pct=r.sequentiality.read.percent_sequential(),
        accesses_under_10k_pct=100 * r.size_by_accesses.fraction_at_or_below(10 * 1024),
        opens_under_half_s_pct=100 * r.open_times.fraction_at_or_below(0.5),
        files_dead_200s_pct=100 * r.lifetime_by_files.fraction_at_or_below(200.0),
        daemon_spike_pct=100 * r.daemon_spike,
        miss_ratio_4mb=cache.miss_ratio,
    )


def compare_traces(logs: list[TraceLog]) -> str:
    """The Section 7 table for any set of traces."""
    return render_comparison([headline(log) for log in logs])


def render_comparison(headlines: list[TraceHeadline]) -> str:
    """The Section 7 table from precomputed headline rows."""
    rows = []
    for h in headlines:
        rows.append(
            (
                h.name,
                f"{h.events:,}",
                f"{h.per_user_bytes_sec:.0f}",
                f"{h.whole_file_read_pct:.0f}%",
                f"{h.sequential_read_pct:.0f}%",
                f"{h.accesses_under_10k_pct:.0f}%",
                f"{h.opens_under_half_s_pct:.0f}%",
                f"{h.files_dead_200s_pct:.0f}%",
                f"{100 * h.miss_ratio_4mb:.0f}%",
            )
        )
    return render_table(
        (
            "trace",
            "events",
            "B/s per user",
            "whole-file reads",
            "sequential reads",
            "accesses <= 10KB",
            "opens < 0.5s",
            "files dead < 200s",
            "4MB miss ratio",
        ),
        rows,
        title="Cross-trace comparison (the paper's Section 7 check)",
    )
