"""CSV export of the paper's figures and tables.

The ASCII renderings are fine for a terminal; anyone regenerating the
paper's *plots* wants the curves as data.  These helpers write the CDF
curves behind Figures 1–4 and the sweep grids behind Tables VI–VII as
plain CSV, one file per exhibit.
"""

from __future__ import annotations

import csv
import os
from typing import Sequence

from ..cache.sweep import BlockSizeSweep, CachePolicySweep
from ..trace.log import TraceLog
from .accesses import reconstruct_accesses
from .cdf import Cdf
from .lifetimes import lifetime_cdfs
from .opentimes import open_time_cdf
from .sequentiality import run_length_cdfs
from .sizes import file_size_cdfs

__all__ = ["write_cdf_csv", "write_sweep_csv", "export_figures"]


def write_cdf_csv(
    path: str,
    curves: dict[str, Cdf],
    grid: Sequence[float],
    x_label: str,
) -> None:
    """Write several CDFs evaluated on one grid as CSV columns."""
    names = sorted(curves)
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow([x_label] + names)
        for x in grid:
            writer.writerow(
                [x] + [f"{curves[name].fraction_at_or_below(x):.6f}" for name in names]
            )


def write_sweep_csv(path: str, sweep: CachePolicySweep | BlockSizeSweep) -> None:
    """Write a Table VI or Table VII grid as CSV."""
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        if isinstance(sweep, CachePolicySweep):
            writer.writerow(
                ["cache_bytes"] + [p.label for p in sweep.policies]
            )
            for size in sweep.cache_sizes:
                writer.writerow(
                    [size]
                    + [f"{sweep.miss_ratio(size, p):.6f}" for p in sweep.policies]
                )
        else:
            writer.writerow(
                ["block_size", "no_cache"]
                + [f"cache_{c}" for c in sweep.cache_sizes]
            )
            for bs in sweep.block_sizes:
                writer.writerow(
                    [bs, sweep.no_cache[bs]]
                    + [sweep.disk_ios(bs, c) for c in sweep.cache_sizes]
                )


#: Default grids per figure (bytes or seconds).
_FIG_GRIDS = {
    "fig1": [256, 512, 1024, 2048, 4096, 8192, 16384, 25600, 51200, 102400],
    "fig2": [512, 1024, 2048, 4096, 10240, 20480, 51200, 102400, 204800,
             1048576],
    "fig3": [0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 30.0, 60.0, 300.0],
    "fig4": [5, 10, 30, 60, 120, 178, 182, 200, 300, 400, 500],
}


def export_figures(log: TraceLog, directory: str) -> list[str]:
    """Write fig1-fig4 curve CSVs for *log* into *directory*.

    Returns the paths written.
    """
    os.makedirs(directory, exist_ok=True)
    accesses = reconstruct_accesses(log)
    by_runs, by_bytes = run_length_cdfs(log, accesses)
    size_acc, size_bytes = file_size_cdfs(log, accesses)
    opens = open_time_cdf(log, accesses)
    life_files, life_bytes = lifetime_cdfs(log)

    jobs = [
        ("fig1", {"by_runs": by_runs, "by_bytes": by_bytes}, "run_length_bytes"),
        ("fig2", {"by_accesses": size_acc, "by_bytes": size_bytes}, "file_size_bytes"),
        ("fig3", {"open_time": opens}, "open_seconds"),
        ("fig4", {"by_files": life_files, "by_bytes": life_bytes}, "lifetime_seconds"),
    ]
    written = []
    for fig, curves, x_label in jobs:
        path = os.path.join(directory, f"{fig}.csv")
        write_cdf_csv(path, curves, _FIG_GRIDS[fig], x_label)
        written.append(path)
    return written
