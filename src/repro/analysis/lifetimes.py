"""File-lifetime analysis (paper Figure 4).

A "lifetime" here is the life of a file's *data*: from the close of the
open that created the file (or truncated it to zero — either way what is
written is new information) until the file is deleted, truncated to zero,
or re-created by another truncating open.  The paper's striking findings:
most new files die within minutes, and 4.2 BSD's network status daemons
put 30–40% of all lifetimes in the 179–181 s band.

Data still alive at the end of the trace is right-censored: it counts in
the denominator but contributes no death — exactly how the paper's CDFs,
which only plot the first 500 seconds, behave.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..trace.log import TraceLog
from ..trace.records import CloseEvent, OpenEvent, TruncateEvent, UnlinkEvent
from .cdf import Cdf

__all__ = ["Lifetime", "collect_lifetimes", "lifetime_cdfs", "daemon_spike_fraction"]


@dataclass(frozen=True, slots=True)
class Lifetime:
    """One new file's data: when born, how big, when (if ever) it died."""

    file_id: int
    birth_time: float
    bytes_written: int
    death_time: float | None  # None = survived to end of trace

    @property
    def lifetime(self) -> float | None:
        if self.death_time is None:
            return None
        return max(0.0, self.death_time - self.birth_time)


def collect_lifetimes(log: TraceLog) -> list[Lifetime]:
    """Replay *log*, pairing data births with their deaths.

    A birth is the close of a created/truncating open (billed at close —
    the data has all been written by then).  A death is an unlink, a
    truncate to zero, or the *open* of the next truncating open of the same
    file.  Deaths are applied in stream order, so a creat-write-close-unlink
    burst inside one 10 ms tick still yields a zero, not negative,
    lifetime.
    """
    # open_id -> (file_id, bytes-at-open) for in-flight creating opens.
    creating: dict[int, OpenEvent] = {}
    position: dict[int, int] = {}
    pending: dict[int, Lifetime] = {}  # file_id -> live birth
    done: list[Lifetime] = []

    def kill(file_id: int, when: float) -> None:
        birth = pending.pop(file_id, None)
        if birth is not None:
            done.append(
                Lifetime(
                    file_id=birth.file_id,
                    birth_time=birth.birth_time,
                    bytes_written=birth.bytes_written,
                    death_time=when,
                )
            )

    for event in log.events:
        if isinstance(event, OpenEvent):
            if event.created:
                kill(event.file_id, event.time)  # previous data overwritten
                creating[event.open_id] = event
                position[event.open_id] = event.initial_pos
            elif event.open_id in position:
                # Re-used open id would be a trace bug; ignore defensively.
                del position[event.open_id]
        elif isinstance(event, CloseEvent):
            opener = creating.pop(event.open_id, None)
            if opener is not None:
                # Bytes written = final position bound (creating opens are
                # written sequentially from zero in the overwhelming case;
                # the close position is the paper's only size signal).
                pending[opener.file_id] = Lifetime(
                    file_id=opener.file_id,
                    birth_time=event.time,
                    bytes_written=max(event.final_pos, 0),
                    death_time=None,
                )
                position.pop(event.open_id, None)
        elif isinstance(event, UnlinkEvent):
            kill(event.file_id, event.time)
        elif isinstance(event, TruncateEvent):
            if event.new_length == 0:
                kill(event.file_id, event.time)

    done.extend(pending.values())  # censored survivors
    done.sort(key=lambda lt: lt.birth_time)
    return done


def lifetime_cdfs(
    log: TraceLog | None, lifetimes: list[Lifetime] | None = None
) -> tuple[Cdf, Cdf]:
    """Figure 4: lifetime CDFs ``(by_files, by_bytes_created)``.

    Censored (still-alive) data appears only in the denominators.  Either
    a trace or pre-collected *lifetimes* must be given.
    """
    if lifetimes is None:
        if log is None:
            raise ValueError("need a trace or pre-collected lifetimes")
        lifetimes = collect_lifetimes(log)
    dead = [lt for lt in lifetimes if lt.lifetime is not None]
    censored_count = float(len(lifetimes) - len(dead))
    censored_bytes = float(
        sum(lt.bytes_written for lt in lifetimes if lt.lifetime is None)
    )
    by_files = Cdf.from_samples(
        (lt.lifetime for lt in dead), censored_weight=censored_count
    )
    by_bytes = Cdf.from_samples(
        (lt.lifetime for lt in dead),
        weights=(float(lt.bytes_written) for lt in dead),
        censored_weight=censored_bytes,
    )
    return by_files, by_bytes


def daemon_spike_fraction(
    lifetimes: list[Lifetime], low: float = 179.0, high: float = 181.0
) -> float:
    """Fraction of all new files whose lifetime falls in [low, high] —
    the paper's network-status-daemon signature (30–40% at 179–181 s)."""
    if not lifetimes:
        return 0.0
    in_band = sum(
        1
        for lt in lifetimes
        if lt.lifetime is not None and low <= lt.lifetime <= high
    )
    return in_band / len(lifetimes)
