"""The fused one-pass reference-pattern analyzer.

The per-module analyses each replay the whole trace: accesses, activity,
sequentiality, open times, sizes, popularity, users, burstiness and
lifetimes add up to roughly fourteen full passes over a list of per-event
Python objects.  :func:`analyze_onepass` produces every one of those
results from a **single** loop over a columnar trace
(:class:`~repro.trace.columns.TraceColumns`): the collectors' state
machines are fused into one dispatch on the kind tag, reading primitive
ints and floats out of flat arrays instead of attributes off event
objects.

Bit-identity, not just approximate agreement, is the contract — the
per-module functions stay in the tree as the differential reference
(``tests/test_onepass.py`` checks every field).  Three rules make that
possible:

* the columns store event times as exact floats (centisecond rounding
  happens only in the binary codec), so every arithmetic input is the
  same float the reference sees;
* each collector's state transitions are transcribed exactly, in event
  order, so every list, set and dict is built by the same sequence of
  insertions — which pins down iteration order and therefore
  float-summation order;
* everything after the loop (windowed statistics, CDF construction,
  table assembly) *is* the reference code, called on the identically
  ordered intermediate data rather than re-implemented.

The loop itself lives in :class:`OnePassCollector`, whose state persists
across :meth:`~OnePassCollector.feed` calls: feeding a trace one
columnar segment at a time (the out-of-core corpus path,
:func:`repro.corpus.analyze_corpus`) executes the identical sequence of
state transitions as feeding it whole, so the streamed report is
bit-identical too.  The only whole-trace facts the loop needs — the
start time and duration, for window placement — are constructor inputs,
recoverable for a corpus from its footer index without touching event
data.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Union

from ..trace.columns import (
    FLAG_CREATED,
    FLAG_MODE_MASK,
    FLAG_NEW_FILE,
    KIND_CLOSE,
    KIND_CREATE,
    KIND_EXEC,
    KIND_OPEN,
    KIND_SEEK,
    KIND_TRUNC,
    KIND_UNLINK,
    TraceColumns,
    cached_columns,
)
from ..trace.log import TraceLog
from ..trace.npview import resolve_engine
from ..trace.records import AccessMode
from .accesses import FileAccess, Run, Transfer, transfers_from_accesses
from .activity import ActivityReport, _window_analysis
from .burstiness import BurstinessReport, assemble_burstiness
from .cdf import Cdf
from .lifetimes import Lifetime, daemon_spike_fraction, lifetime_cdfs
from .opentimes import open_time_cdf_from_accesses, open_time_summary
from .popularity import PopularityReport, popularity_from_accesses
from .sequentiality import (
    SequentialityReport,
    run_length_cdfs_from_accesses,
    sequentiality_from_accesses,
)
from .sizes import file_size_cdfs_from_accesses, size_summary
from .users import UserSummary, fold_access_into_user, render_user_table

__all__ = ["OnePassReport", "OnePassCollector", "analyze_onepass"]

_MODE = (None, AccessMode.READ, AccessMode.WRITE, AccessMode.READ_WRITE)


@dataclass
class OnePassReport:
    """Every reference-pattern result, from one pass over the trace."""

    trace_name: str
    duration: float
    accesses: list[FileAccess]
    transfers: list[Transfer]
    lifetimes: list[Lifetime]
    activity: ActivityReport
    sequentiality: SequentialityReport
    run_length_by_runs: Cdf
    run_length_by_bytes: Cdf
    open_times: Cdf
    size_by_accesses: Cdf
    size_by_bytes: Cdf
    popularity: PopularityReport
    users: dict[int, UserSummary]
    burstiness: BurstinessReport
    lifetime_by_files: Cdf
    lifetime_by_bytes: Cdf
    daemon_spike: float

    # The vectorized engine defers the object-heavy fields (accesses,
    # transfers, lifetimes, popularity) behind thunks in ``_lazy``:
    # building tens of thousands of dataclass instances eagerly would
    # cost more than its entire scan.  Reports built by the pure-Python
    # path never carry ``_lazy`` and never enter this hook.
    def __getattr__(self, name: str):
        lazy = self.__dict__.get("_lazy")
        if lazy and name in lazy:
            value = lazy.pop(name)()
            setattr(self, name, value)
            return value
        raise AttributeError(name)

    def __getstate__(self):
        for name in ("accesses", "transfers", "lifetimes", "popularity"):
            getattr(self, name)  # materialize for pickling/copying
        state = dict(self.__dict__)
        state.pop("_lazy", None)
        return state

    def render(self) -> str:
        """The full report, section for section what ``repro-fs analyze
        all`` prints."""
        dead = [lt for lt in self.lifetimes if lt.lifetime is not None]
        return "\n".join(
            [
                self.activity.render(),
                self.sequentiality.render(),
                open_time_summary(self.open_times),
                size_summary(self.size_by_accesses, self.size_by_bytes),
                render_user_table(self.users),
                self.burstiness.render(),
                f"{len(self.lifetimes)} new files, {len(dead)} died during "
                f"the trace; {100 * self.daemon_spike:.0f}% of lifetimes in "
                "the 179-181 s daemon band",
            ]
        )


class OnePassCollector:
    """Resumable state of the fused loop: feed columns, then finish.

    *start* and *duration* must describe the **whole** trace that will be
    fed (they size the burstiness windows before the first event
    arrives); everything else accumulates incrementally, so
    ``feed(seg_0); feed(seg_1); ...`` runs the exact transition sequence
    of one ``feed(whole)``.
    """

    def __init__(
        self,
        name: str,
        start: float,
        duration: float,
        long_window: float = 600.0,
        short_window: float = 10.0,
        burst_window: float = 10.0,
    ):
        if burst_window <= 0:
            raise ValueError(f"window must be positive, got {burst_window}")
        self.name = name
        self.start = start
        self.duration = duration
        self.long_window = long_window
        self.short_window = short_window
        self.burst_window = burst_window
        self.events_fed = 0

        # accesses (reconstruct_accesses)
        self.in_progress: dict[int, FileAccess] = {}
        self.position: dict[int, int] = {}
        self.finished: list[FileAccess] = []
        # lifetimes (collect_lifetimes); the reference's `position`
        # bookkeeping has no observable effect on its output, so it is
        # not replicated
        self.creating: dict[int, int] = {}  # open_id -> file_id
        self.pending: dict[int, Lifetime] = {}
        self.done: list[Lifetime] = []
        # activity (analyze_activity's event attribution)
        self.open_owner: dict[int, int] = {}
        self.event_marks: list[tuple[float, int]] = []
        self.users_seen: set[int] = set()
        # users (per_user_summary's event loop)
        self.users: dict[int, UserSummary] = {}
        # burstiness windows (analyze_burstiness)
        self.b_duration = max(duration, burst_window)
        self.nb = max(1, math.ceil(self.b_duration / burst_window))
        self.opens_w = [0] * self.nb
        self.busy = [False] * self.nb

    def feed(self, cols: TraceColumns) -> None:
        """Run the fused loop over one columnar chunk of the trace."""
        kinds = cols.kinds
        times = cols.times
        open_ids = cols.open_ids
        file_ids = cols.file_ids
        user_ids = cols.user_ids
        sizes = cols.sizes
        positions = cols.positions
        flags = cols.flags
        n = len(kinds)
        start = self.start
        burst_window = self.burst_window
        nb = self.nb
        opens_w = self.opens_w
        busy = self.busy
        in_progress = self.in_progress
        position = self.position
        finished = self.finished
        creating = self.creating
        pending = self.pending
        done = self.done
        open_owner = self.open_owner
        event_marks = self.event_marks
        users_seen = self.users_seen
        users = self.users

        for i in range(n):
            kind = kinds[i]
            t = times[i]
            bslot = int((t - start) / burst_window)
            if bslot >= nb:
                bslot = nb - 1
            busy[bslot] = True
            uid_mark: int | None = None
            if kind == KIND_OPEN:
                oid = open_ids[i]
                fid = file_ids[i]
                uid = user_ids[i]
                fl = flags[i]
                pos0 = positions[i]
                created = bool(fl & FLAG_CREATED)
                # positional construction: same objects as the reference's
                # keyword form, without the kwargs overhead per event
                in_progress[oid] = FileAccess(
                    oid, fid, uid, _MODE[fl & FLAG_MODE_MASK], t, t,
                    sizes[i], created, bool(fl & FLAG_NEW_FILE), pos0,
                )
                position[oid] = pos0
                if created:
                    birth = pending.pop(fid, None)
                    if birth is not None:  # previous data overwritten
                        done.append(
                            Lifetime(birth.file_id, birth.birth_time,
                                     birth.bytes_written, t)
                        )
                    creating[oid] = fid
                open_owner[oid] = uid
                uid_mark = uid
                user = users.get(uid)
                if user is None:
                    user = users[uid] = UserSummary(user_id=uid)
                user.opens += 1
                if t < user.first_event:
                    user.first_event = t
                if t > user.last_event:
                    user.last_event = t
                opens_w[bslot] += 1
            elif kind == KIND_CLOSE:
                oid = open_ids[i]
                fpos = positions[i]
                access = in_progress.pop(oid, None)
                if access is not None:
                    pos = position.pop(oid)
                    if fpos > pos:
                        access.runs.append(Run(pos, fpos, t))
                    access.close_time = t
                    finished.append(access)
                fid = creating.pop(oid, None)
                if fid is not None:
                    pending[fid] = Lifetime(fid, t, max(fpos, 0), None)
                uid_mark = open_owner.get(oid)
            elif kind == KIND_SEEK:
                oid = open_ids[i]
                access = in_progress.get(oid)
                if access is not None:
                    prev = sizes[i]
                    pos = position[oid]
                    if prev > pos:
                        access.runs.append(Run(pos, prev, t))
                    access.seeks += 1
                    if access.runs:
                        access.seek_after_data = True
                    position[oid] = positions[i]
                uid_mark = open_owner.get(oid)
            elif kind == KIND_CREATE:
                uid_mark = user_ids[i]
            elif kind == KIND_EXEC:
                uid = user_ids[i]
                uid_mark = uid
                user = users.get(uid)
                if user is None:
                    user = users[uid] = UserSummary(user_id=uid)
                user.execs += 1
                if t < user.first_event:
                    user.first_event = t
                if t > user.last_event:
                    user.last_event = t
            elif kind == KIND_UNLINK:
                birth = pending.pop(file_ids[i], None)
                if birth is not None:
                    done.append(
                        Lifetime(birth.file_id, birth.birth_time,
                                 birth.bytes_written, t)
                    )
            elif kind == KIND_TRUNC:
                if sizes[i] == 0:
                    birth = pending.pop(file_ids[i], None)
                    if birth is not None:
                        done.append(
                            Lifetime(birth.file_id, birth.birth_time,
                                     birth.bytes_written, t)
                        )
            if uid_mark is not None:
                users_seen.add(uid_mark)
                event_marks.append((t, uid_mark))
        self.events_fed += n

    def finish(self) -> OnePassReport:
        """Assemble the report from the accumulated state.

        Epilogues: from here on this is the reference code itself, run on
        the identically ordered intermediate data.
        """
        start = self.start
        duration = self.duration
        burst_window = self.burst_window
        nb = self.nb

        self.finished.sort(key=lambda a: a.close_time)
        accesses = self.finished
        self.done.extend(self.pending.values())  # censored survivors
        self.done.sort(key=lambda lt: lt.birth_time)
        lifetimes = self.done
        users = self.users

        transfers = transfers_from_accesses(accesses)
        byte_marks = [(tr.time, tr.user_id, tr.length) for tr in transfers]
        total_bytes = sum(tr.length for tr in transfers)
        activity = ActivityReport(
            trace_name=self.name,
            duration=duration,
            total_bytes=total_bytes,
            total_users=len(self.users_seen),
            ten_minute=_window_analysis(
                self.long_window, duration, start, self.event_marks, byte_marks
            ),
            ten_second=_window_analysis(
                self.short_window, duration, start, self.event_marks, byte_marks
            ),
        )

        user_bytes: dict[tuple[int, int], int] = {}
        for tr in transfers:
            bslot = int((tr.time - start) / burst_window)
            if bslot >= nb:
                bslot = nb - 1
            key = (bslot, tr.user_id)
            user_bytes[key] = user_bytes.get(key, 0) + tr.length
        burstiness = assemble_burstiness(
            burst_window, self.b_duration, self.opens_w, self.busy, user_bytes
        )

        for access in accesses:
            user = users.get(access.user_id)
            if user is None:
                user = users[access.user_id] = UserSummary(
                    user_id=access.user_id
                )
            fold_access_into_user(user, access)

        by_runs, by_bytes = run_length_cdfs_from_accesses(accesses)
        size_by_accesses, size_by_bytes = file_size_cdfs_from_accesses(accesses)
        lt_by_files, lt_by_bytes = lifetime_cdfs(None, lifetimes)

        return OnePassReport(
            trace_name=self.name,
            duration=duration,
            accesses=accesses,
            transfers=transfers,
            lifetimes=lifetimes,
            activity=activity,
            sequentiality=sequentiality_from_accesses(self.name, accesses),
            run_length_by_runs=by_runs,
            run_length_by_bytes=by_bytes,
            open_times=open_time_cdf_from_accesses(accesses),
            size_by_accesses=size_by_accesses,
            size_by_bytes=size_by_bytes,
            popularity=popularity_from_accesses(accesses),
            users=users,
            burstiness=burstiness,
            lifetime_by_files=lt_by_files,
            lifetime_by_bytes=lt_by_bytes,
            daemon_spike=daemon_spike_fraction(lifetimes),
        )


def analyze_onepass(
    source: Union[TraceLog, TraceColumns],
    long_window: float = 600.0,
    short_window: float = 10.0,
    burst_window: float = 10.0,
    engine: str = "auto",
) -> OnePassReport:
    """Run every reference-pattern analysis in one loop over *source*.

    Accepts a :class:`TraceLog` (columnarized through the per-log memo) or
    a :class:`TraceColumns` directly, e.g. straight from
    :func:`~repro.trace.io_binary.read_binary_columns`.

    *engine* selects the scan implementation: ``"auto"`` (the default)
    uses the numpy fast path when numpy is importable and falls back to
    this module's loop otherwise (or whenever the vectorized kernel
    cannot replicate an exotic input bit-for-bit); ``"python"`` and
    ``"numpy"`` force one side.  Both produce identical reports.
    """
    cols = cached_columns(source) if isinstance(source, TraceLog) else source
    if resolve_engine(engine) == "numpy":
        from .vectorized import VectorFallback, analyze_columns_numpy

        try:
            return analyze_columns_numpy(
                cols, long_window, short_window, burst_window
            )
        except VectorFallback:
            pass
    n = len(cols.kinds)
    start = cols.times[0] if n else 0.0
    duration = (cols.times[-1] - start) if n else 0.0
    collector = OnePassCollector(
        cols.name,
        start,
        duration,
        long_window=long_window,
        short_window=short_window,
        burst_window=burst_window,
    )
    collector.feed(cols)
    return collector.finish()
