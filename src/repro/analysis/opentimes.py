"""Open-duration analysis (paper Figure 3).

"Programs tend to open files, read or write their contents, then close the
files again very quickly": about 75% of opens last under half a second and
90% under ten seconds.  The short durations are what make the no-read-write
tracing approach sound — the open and close events bound the transfer
times tightly.  The exceptions (editor temporaries held open for a whole
session) form the long tail.
"""

from __future__ import annotations

from ..trace.log import TraceLog
from .accesses import FileAccess, reconstruct_accesses
from .cdf import Cdf

__all__ = ["open_time_cdf", "open_time_cdf_from_accesses", "open_time_summary"]


def open_time_cdf(
    log: TraceLog, accesses: list[FileAccess] | None = None
) -> Cdf:
    """Figure 3: CDF of how long files stayed open."""
    if accesses is None:
        accesses = reconstruct_accesses(log)
    return open_time_cdf_from_accesses(accesses)


def open_time_cdf_from_accesses(accesses: list[FileAccess]) -> Cdf:
    """Figure 3 from pre-reconstructed accesses (no trace needed)."""
    return Cdf.from_samples(a.duration for a in accesses)


def open_time_summary(cdf: Cdf) -> str:
    half = cdf.fraction_at_or_below(0.5) * 100
    ten = cdf.fraction_at_or_below(10.0) * 100
    return (
        f"{half:.0f}% of all files were open less than 0.5 second and "
        f"{ten:.0f}% less than 10 seconds "
        f"(median {cdf.median():.3f}s)"
    )
