"""File-popularity analysis.

Figure 2's discussion hinges on popularity concentration: "a few very
large administrative files account for almost 20% of all file accesses",
and the cache results of Section 6 depend on a hot set of shared files
absorbing most re-reads.  This module ranks files by dynamic accesses and
by bytes moved, and measures the concentration directly (what fraction
of accesses the top-N files take).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..trace.log import TraceLog
from .accesses import FileAccess, reconstruct_accesses
from .report import format_bytes, render_table

__all__ = [
    "FilePopularity",
    "PopularityReport",
    "analyze_popularity",
    "popularity_from_accesses",
]


@dataclass
class FilePopularity:
    """One file's dynamic footprint."""

    file_id: int
    accesses: int = 0
    bytes_moved: int = 0
    max_size: int = 0


@dataclass
class PopularityReport:
    """Files ranked by how often they were opened."""

    total_accesses: int
    files: list[FilePopularity] = field(default_factory=list)  # by accesses desc

    def top_fraction(self, n: int) -> float:
        """Fraction of all accesses going to the *n* most-opened files."""
        if not self.total_accesses:
            return 0.0
        return sum(f.accesses for f in self.files[:n]) / self.total_accesses

    def distinct_files(self) -> int:
        return len(self.files)

    def large_file_access_fraction(self, threshold: int = 200 * 1024) -> float:
        """Fraction of accesses that hit files larger than *threshold* —
        the paper's "few very large administrative files account for
        almost 20% of all file accesses"."""
        if not self.total_accesses:
            return 0.0
        big = sum(f.accesses for f in self.files if f.max_size > threshold)
        return big / self.total_accesses

    def render(self, top: int = 12) -> str:
        rows = [
            (
                f"file {f.file_id}",
                f"{f.accesses:,}",
                f"{100 * f.accesses / max(1, self.total_accesses):.1f}%",
                format_bytes(f.bytes_moved),
                format_bytes(f.max_size),
            )
            for f in self.files[:top]
        ]
        table = render_table(
            ("file", "accesses", "share", "bytes moved", "size"),
            rows,
            title=(
                f"Top {min(top, len(self.files))} of "
                f"{len(self.files)} files by dynamic accesses"
            ),
        )
        concentration = (
            f"top 10 files take {100 * self.top_fraction(10):.0f}% of "
            f"{self.total_accesses:,} accesses; files over 200 KB take "
            f"{100 * self.large_file_access_fraction():.0f}%"
        )
        return f"{table}\n{concentration}"


def analyze_popularity(
    log: TraceLog, accesses: list[FileAccess] | None = None
) -> PopularityReport:
    """Rank every file by dynamic accesses."""
    if accesses is None:
        accesses = reconstruct_accesses(log)
    return popularity_from_accesses(accesses)


def popularity_from_accesses(accesses: list[FileAccess]) -> PopularityReport:
    """Popularity ranking from pre-reconstructed accesses (no trace needed)."""
    by_file: dict[int, FilePopularity] = {}
    for access in accesses:
        entry = by_file.get(access.file_id)
        if entry is None:
            entry = by_file[access.file_id] = FilePopularity(access.file_id)
        entry.accesses += 1
        entry.bytes_moved += access.bytes_transferred
        entry.max_size = max(entry.max_size, access.size_at_close)
    ranked = sorted(by_file.values(), key=lambda f: f.accesses, reverse=True)
    return PopularityReport(total_accesses=len(accesses), files=ranked)
