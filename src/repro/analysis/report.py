"""Plain-text rendering: tables and ASCII CDF charts.

The paper's exhibits are tables and CDF plots; these helpers render both
to monospace text so every experiment can print its result in a terminal
and into ``EXPERIMENTS.md``.
"""

from __future__ import annotations

from typing import Sequence

from .cdf import Cdf

__all__ = ["render_table", "render_cdf_ascii", "render_cdf_points", "format_bytes"]


def format_bytes(n: float) -> str:
    """Human units, binary multiples (4096 -> '4.0 KB')."""
    value = float(n)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(value) < 1024.0 or unit == "TB":
            if unit == "B":
                return f"{value:.0f} {unit}"
            return f"{value:.1f} {unit}"
        value /= 1024.0
    raise AssertionError("unreachable")


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """A simple aligned text table (first column left, rest right)."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]

    def fmt(row: Sequence[str]) -> str:
        parts = [row[0].ljust(widths[0])]
        parts += [row[i].rjust(widths[i]) for i in range(1, len(row))]
        return "  ".join(parts)

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines += [fmt(row) for row in cells]
    return "\n".join(lines)


def render_cdf_points(
    cdf: Cdf, grid: Sequence[float], x_label: str, x_format=lambda x: f"{x:g}"
) -> str:
    """The CDF evaluated on a grid, as a two-column table."""
    rows = [(x_format(x), f"{100.0 * f:.1f}%") for x, f in cdf.evaluate(grid)]
    return render_table((x_label, "cumulative"), rows)


def render_cdf_ascii(
    cdf: Cdf,
    grid: Sequence[float],
    x_label: str,
    width: int = 50,
    x_format=lambda x: f"{x:g}",
) -> str:
    """A horizontal-bar rendering of the CDF (one row per grid point)."""
    lines = [f"{x_label:>12}  cumulative"]
    for x, frac in cdf.evaluate(grid):
        bar = "#" * round(frac * width)
        lines.append(f"{x_format(x):>12}  {100 * frac:5.1f}% |{bar}")
    return "\n".join(lines)
