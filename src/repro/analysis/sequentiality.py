"""Sequentiality analysis (paper Table V and Figure 1).

Classifies every access as whole-file (read or written sequentially from
beginning to end), sequential (whole-file, or one initial reposition
followed by a single uninterrupted transfer), or non-sequential, split by
access mode; and measures the lengths of sequential runs two ways — by
run count (Figure 1a) and by bytes carried (Figure 1b).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..trace.log import TraceLog
from ..trace.records import AccessMode
from .accesses import FileAccess, reconstruct_accesses
from .cdf import Cdf

__all__ = [
    "ModeCounts",
    "SequentialityReport",
    "analyze_sequentiality",
    "sequentiality_from_accesses",
    "run_length_cdfs",
    "run_length_cdfs_from_accesses",
]


@dataclass
class ModeCounts:
    """Tallies for one access mode (read-only / write-only / read-write)."""

    accesses: int = 0
    whole_file: int = 0
    sequential: int = 0
    bytes_total: int = 0
    bytes_whole_file: int = 0
    bytes_sequential: int = 0

    def percent_whole(self) -> float:
        return 100.0 * self.whole_file / self.accesses if self.accesses else 0.0

    def percent_sequential(self) -> float:
        return 100.0 * self.sequential / self.accesses if self.accesses else 0.0


@dataclass
class SequentialityReport:
    """The Table V numbers."""

    trace_name: str
    read: ModeCounts = field(default_factory=ModeCounts)
    write: ModeCounts = field(default_factory=ModeCounts)
    read_write: ModeCounts = field(default_factory=ModeCounts)

    def mode(self, mode: AccessMode) -> ModeCounts:
        return {
            AccessMode.READ: self.read,
            AccessMode.WRITE: self.write,
            AccessMode.READ_WRITE: self.read_write,
        }[mode]

    @property
    def total_bytes(self) -> int:
        return self.read.bytes_total + self.write.bytes_total + self.read_write.bytes_total

    @property
    def bytes_whole_file(self) -> int:
        return (
            self.read.bytes_whole_file
            + self.write.bytes_whole_file
            + self.read_write.bytes_whole_file
        )

    @property
    def bytes_sequential(self) -> int:
        return (
            self.read.bytes_sequential
            + self.write.bytes_sequential
            + self.read_write.bytes_sequential
        )

    @property
    def percent_bytes_whole_file(self) -> float:
        return 100.0 * self.bytes_whole_file / self.total_bytes if self.total_bytes else 0.0

    @property
    def percent_bytes_sequential(self) -> float:
        return 100.0 * self.bytes_sequential / self.total_bytes if self.total_bytes else 0.0

    def render(self) -> str:
        mb = 1e6
        rows = [
            ("Whole-file read transfers", f"{self.read.whole_file:,}",
             f"({self.read.percent_whole():.0f}% of all read-only accesses)"),
            ("Whole-file write transfers", f"{self.write.whole_file:,}",
             f"({self.write.percent_whole():.0f}% of all write-only accesses)"),
            ("Data in whole-file transfers",
             f"{self.bytes_whole_file / mb:.1f} MB",
             f"({self.percent_bytes_whole_file:.0f}% of all bytes)"),
            ("Sequential read-only accesses", f"{self.read.sequential:,}",
             f"({self.read.percent_sequential():.0f}%)"),
            ("Sequential write-only accesses", f"{self.write.sequential:,}",
             f"({self.write.percent_sequential():.0f}%)"),
            ("Sequential read-write accesses", f"{self.read_write.sequential:,}",
             f"({self.read_write.percent_sequential():.0f}% of "
             f"{self.read_write.accesses:,} read-write accesses)"),
            ("Data transferred sequentially",
             f"{self.bytes_sequential / mb:.1f} MB",
             f"({self.percent_bytes_sequential:.0f}%)"),
        ]
        width = max(len(r[0]) for r in rows)
        lines = [f"Sequentiality for trace {self.trace_name} (Table V)"]
        lines += [f"  {r[0]:<{width}}  {r[1]:>12}  {r[2]}" for r in rows]
        return "\n".join(lines)


def analyze_sequentiality(
    log: TraceLog, accesses: list[FileAccess] | None = None
) -> SequentialityReport:
    """Compute Table V.  Pass pre-reconstructed *accesses* to avoid a
    second replay when several analyses run on one trace."""
    if accesses is None:
        accesses = reconstruct_accesses(log)
    return sequentiality_from_accesses(log.name, accesses)


def sequentiality_from_accesses(
    trace_name: str, accesses: list[FileAccess]
) -> SequentialityReport:
    """Table V from pre-reconstructed accesses (no trace needed)."""
    report = SequentialityReport(trace_name=trace_name)
    for access in accesses:
        counts = report.mode(access.mode)
        nbytes = access.bytes_transferred
        counts.accesses += 1
        counts.bytes_total += nbytes
        if access.whole_file:
            counts.whole_file += 1
            counts.bytes_whole_file += nbytes
        if access.sequential:
            counts.sequential += 1
            counts.bytes_sequential += nbytes
    return report


def run_length_cdfs(
    log: TraceLog, accesses: list[FileAccess] | None = None
) -> tuple[Cdf, Cdf]:
    """Figure 1: CDFs of sequential-run lengths.

    Returns ``(by_runs, by_bytes)``: the first weights every run equally
    (Figure 1a), the second weights each run by the bytes it carried
    (Figure 1b).  Zero-length runs cannot occur by construction.
    """
    if accesses is None:
        accesses = reconstruct_accesses(log)
    return run_length_cdfs_from_accesses(accesses)


def run_length_cdfs_from_accesses(accesses: list[FileAccess]) -> tuple[Cdf, Cdf]:
    """Figure 1 from pre-reconstructed accesses (no trace needed)."""
    lengths = [run.length for access in accesses for run in access.runs]
    by_runs = Cdf.from_samples(lengths)
    by_bytes = Cdf.from_samples(lengths, weights=lengths)
    return by_runs, by_bytes
