"""Dynamic file-size analysis (paper Figure 2).

"Dynamic" means per access, not per disk scan: a file opened ten times
counts ten times, so heavily reused small files dominate Figure 2(a) while
the handful of ~1 MB administrative files — rarely large transfers, but
frequent accesses — put the plateau in the curve's tail.  Figure 2(b)
re-weights by bytes actually transferred in each access, which is what
shows that long files carry most of the data.
"""

from __future__ import annotations

from ..trace.log import TraceLog
from .accesses import FileAccess, reconstruct_accesses
from .cdf import Cdf

__all__ = ["file_size_cdfs", "file_size_cdfs_from_accesses", "size_summary"]


def file_size_cdfs(
    log: TraceLog, accesses: list[FileAccess] | None = None
) -> tuple[Cdf, Cdf]:
    """Figure 2: CDFs of file size at close.

    Returns ``(by_accesses, by_bytes)``: the first weights each access
    equally (Figure 2a), the second weights each access by the bytes it
    transferred (Figure 2b).
    """
    if accesses is None:
        accesses = reconstruct_accesses(log)
    return file_size_cdfs_from_accesses(accesses)


def file_size_cdfs_from_accesses(accesses: list[FileAccess]) -> tuple[Cdf, Cdf]:
    """Figure 2 from pre-reconstructed accesses (no trace needed)."""
    sizes = [float(a.size_at_close) for a in accesses]
    weights = [float(a.bytes_transferred) for a in accesses]
    by_accesses = Cdf.from_samples(sizes)
    by_bytes = Cdf.from_samples(sizes, weights=weights)
    return by_accesses, by_bytes


def size_summary(by_accesses: Cdf, by_bytes: Cdf) -> str:
    """A one-paragraph summary in the paper's terms."""
    f10k = by_accesses.fraction_at_or_below(10 * 1024) * 100
    b10k = by_bytes.fraction_at_or_below(10 * 1024) * 100
    return (
        f"{f10k:.0f}% of file accesses were to files of 10 Kbytes or less, "
        f"but those accesses carried only {b10k:.0f}% of all bytes transferred "
        f"(median file size at close: {by_accesses.median() / 1024:.1f} KB)"
    )
