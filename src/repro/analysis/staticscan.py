"""Static disk-scan analysis (the prior-work methodology).

The studies the paper improves on — Satyanarayanan's file-size survey and
Smith's migration study — scanned disks at a fixed point in time, so they
could only see files that *survived*: "the data were gathered as a series
of daily scans of the disk, so they do not include files whose lifetimes
were less than a day."  This module implements that older methodology
against our simulated disk, so the two can be compared directly: the
static size distribution (weighted by file count, one count per file) vs.
the paper's dynamic, per-access distribution of Figure 2 — and the
static method's blindness to the short-lived files of Figure 4.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..unixfs.filesystem import FileSystem
from ..unixfs.inode import FileType
from .cdf import Cdf

__all__ = ["StaticScan", "scan_disk"]


@dataclass
class StaticScan:
    """One point-in-time scan of the simulated disk."""

    scan_time: float
    file_count: int
    directory_count: int
    total_bytes: int
    size_cdf: Cdf
    age_cdf: Cdf  # seconds since last modification

    def render(self) -> str:
        return "\n".join(
            [
                f"Static scan at t={self.scan_time:.0f}s: "
                f"{self.file_count} files, {self.directory_count} dirs, "
                f"{self.total_bytes / 1e6:.1f} MB",
                f"  median file size: {self.size_cdf.median() / 1024:.1f} KB; "
                f"{100 * self.size_cdf.fraction_at_or_below(10 * 1024):.0f}% "
                f"of files <= 10 KB",
                f"  median data age: {self.age_cdf.median():.0f} s",
            ]
        )


def scan_disk(fs: FileSystem) -> StaticScan:
    """Scan every live inode, as the pre-1985 studies scanned real disks."""
    now = fs.clock() if callable(fs.clock) else fs.clock.now()
    sizes: list[float] = []
    ages: list[float] = []
    directories = 0
    for inode in fs.inodes.live_inodes():
        if inode.type is FileType.DIRECTORY:
            directories += 1
            continue
        if inode.nlink == 0:
            continue  # unlinked-but-open files are invisible to a scan
        sizes.append(float(inode.size))
        ages.append(max(0.0, now - inode.mtime))
    return StaticScan(
        scan_time=now,
        file_count=len(sizes),
        directory_count=directories,
        total_bytes=int(sum(sizes)),
        size_cdf=Cdf.from_samples(sizes),
        age_cdf=Cdf.from_samples(ages),
    )
