"""Per-user breakdowns.

The paper reports per-user numbers in aggregate (Table IV's throughput
per active user); a trace toolkit also wants the per-user detail — who
did how much, with what access mix — both to sanity-check a synthetic
workload (every simulated user should look like a plausible person) and
to slice real converted traces by process.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..trace.log import TraceLog
from ..trace.records import ExecEvent, OpenEvent
from .accesses import FileAccess, reconstruct_accesses
from .report import format_bytes, render_table

__all__ = [
    "UserSummary",
    "per_user_summary",
    "fold_access_into_user",
    "render_user_table",
]


@dataclass
class UserSummary:
    """One user's footprint in a trace."""

    user_id: int
    opens: int = 0
    execs: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    files_touched: set[int] = field(default_factory=set)
    first_event: float = float("inf")
    last_event: float = 0.0

    @property
    def bytes_total(self) -> int:
        return self.bytes_read + self.bytes_written

    @property
    def span(self) -> float:
        """Seconds between the user's first and last event."""
        if self.last_event < self.first_event:
            return 0.0
        return self.last_event - self.first_event


def per_user_summary(
    log: TraceLog, accesses: list[FileAccess] | None = None
) -> dict[int, UserSummary]:
    """Summarize every user's activity."""
    if accesses is None:
        accesses = reconstruct_accesses(log)
    users: dict[int, UserSummary] = {}

    def summary(uid: int) -> UserSummary:
        user = users.get(uid)
        if user is None:
            user = users[uid] = UserSummary(user_id=uid)
        return user

    for event in log.events:
        if isinstance(event, OpenEvent):
            user = summary(event.user_id)
            user.opens += 1
        elif isinstance(event, ExecEvent):
            user = summary(event.user_id)
            user.execs += 1
        else:
            continue
        user.first_event = min(user.first_event, event.time)
        user.last_event = max(user.last_event, event.time)

    for access in accesses:
        fold_access_into_user(summary(access.user_id), access)

    return users


def fold_access_into_user(user: UserSummary, access: FileAccess) -> None:
    """Fold one reconstructed access into its owner's summary."""
    user.files_touched.add(access.file_id)
    nbytes = access.bytes_transferred
    if access.mode.writable:
        user.bytes_written += nbytes
    else:
        user.bytes_read += nbytes
    user.last_event = max(user.last_event, access.close_time)


def render_user_table(users: dict[int, UserSummary], top: int = 15) -> str:
    """The *top* users by bytes moved, as a text table."""
    ranked = sorted(users.values(), key=lambda u: u.bytes_total, reverse=True)
    rows = [
        (
            f"u{user.user_id}",
            f"{user.opens:,}",
            f"{user.execs:,}",
            f"{len(user.files_touched):,}",
            format_bytes(user.bytes_read),
            format_bytes(user.bytes_written),
            f"{user.span / 3600:.1f} h",
        )
        for user in ranked[:top]
    ]
    return render_table(
        ("user", "opens", "execs", "files", "read", "written", "active span"),
        rows,
        title=f"Top {min(top, len(ranked))} of {len(ranked)} users by bytes moved",
    )
