"""numpy-vectorized fast paths for the hot trace-scan kernels.

Three kernels ride here, each a whole-column reimplementation of a
pure-Python reference that stays in the tree as the differential oracle
(fuzz pillar 5 compares them continuously):

* :class:`VectorizedCollector` — the one-pass analyzer
  (:class:`~repro.analysis.onepass.OnePassCollector`).  Open/close/seek
  session matching runs as a segmented cumulative-maximum over the
  oid-grouped sub-rows; runs, per-access statistics, window activity,
  burstiness and every CDF are whole-column arithmetic.  The report's
  object-heavy fields (``accesses``, ``transfers``, ``lifetimes``,
  ``popularity``) are materialized lazily on first attribute access —
  eagerly building tens of thousands of dataclass instances would cost
  more than the entire vectorized scan.
* :class:`VectorizedValidator` — the columnar validator
  (:func:`~repro.trace.validate.validate_columns_into`).  Every check is
  a boolean reduction; problem rows are recovered with ``np.nonzero``
  and only the first ``max_problems + 1`` messages are ever formatted.
* :func:`pack_stream_numpy` — the packed-stream compiler
  (:func:`~repro.parallel.packed.pack_stream`).  The per-item Python
  loop survives only to evolve the known-size table; the inner
  per-block expansion becomes repeat/arange arithmetic.

**Bit-identity is the contract.**  Where exact replication would need
per-event Python semantics the kernels cannot afford (NaN timestamps,
unsorted times, integer magnitudes past the float53 exactness window,
open rows with no mode bits), they raise :class:`VectorFallback` and the
dispatch site reruns the pure-Python path — falling back is always
correct, only slower.  Sequential dict semantics that are cheap because
their domain is small (file lifetimes, cross-segment session carry) run
as bounded Python mini-loops over pre-extracted rows.

Dict/iteration order is replicated, not just values: users appear in
first open/exec order, finished accesses in close order then a stable
sort by close time, lifetimes in death order then a stable sort by
birth — so even ``list(report.users)`` and rendered tables match the
reference byte for byte.
"""

from __future__ import annotations

import math
from array import array

from ..trace.columns import (
    FLAG_CREATED,
    FLAG_MODE_MASK,
    FLAG_NEW_FILE,
    KIND_CLOSE,
    KIND_CREATE,
    KIND_EXEC,
    KIND_LABELS,
    KIND_OPEN,
    KIND_SEEK,
    KIND_TRUNC,
    KIND_UNLINK,
    TraceColumns,
)
from ..trace.io_binary import MAX_TRACE_TIME
from ..trace.npview import column_views, np
from ..trace.validate import (
    DEFAULT_MAX_PROBLEMS,
    ValidationReport,
    _VALID_FLAG_BITS,
)
from .accesses import FileAccess, Run, transfers_from_accesses
from .activity import ActivityReport, WindowedActivity, _mean_std
from .burstiness import assemble_burstiness
from .cdf import Cdf
from .lifetimes import Lifetime
from .onepass import _MODE, OnePassReport
from .popularity import popularity_from_accesses
from .sequentiality import SequentialityReport
from .users import UserSummary

__all__ = [
    "VectorFallback",
    "VectorizedCollector",
    "VectorizedValidator",
    "analyze_columns_numpy",
    "pack_stream_numpy",
    "validate_columns_numpy",
]

#: Integer magnitudes at or below this are exactly representable as
#: float64, so int sums, int->float casts and dict-key merges replicate
#: the reference's mixed int/float arithmetic bit for bit.
_F64_EXACT = 1 << 53

# Lifetime mini-loop event tags (merged in row order).
_LT_KILL = 0  # unlink / truncate-to-zero / truncating open
_LT_BIRTH = 1  # close of a creating open


class VectorFallback(Exception):
    """The vectorized kernel cannot replicate the reference on this
    input; the caller must rerun the pure-Python path from scratch."""


def _require(condition: bool, why: str) -> None:
    if not condition:
        raise VectorFallback(why)


def _within_exact(column) -> bool:
    """True when every value is exactly float64-representable."""
    if not len(column):
        return True
    return -_F64_EXACT <= int(column.min()) and int(column.max()) <= _F64_EXACT


def _sorted_unique(values):
    """``np.unique`` of an integer array via an explicit sort.

    numpy 2.x routes plain ``np.unique`` over ints through a hash
    table, which measures several times slower than sort+mask at this
    workload's sizes (~20k int64 window keys).  Output is the same
    sorted array of distinct values, so the swap is bit-invisible."""
    if not len(values):
        return values
    s = np.sort(values)
    mask = np.empty(len(s), dtype=bool)
    mask[0] = True
    np.not_equal(s[1:], s[:-1], out=mask[1:])
    return s[mask]


def _segmented_cummax(values, base):
    """Inclusive running maximum of *values* with resets at group
    boundaries, for rows sorted by group.  *base* must be
    ``group_code * OFF`` with every value in ``[0, OFF)``; leakage from
    the previous group appears as ``-1`` and is clipped to 0."""
    out = np.maximum.accumulate(values + base) - base
    np.maximum(out, 0, out=out)
    return out


def _shift_down(values, group_start):
    """The previous row's value within each group (group starts get 0)."""
    out = np.empty_like(values)
    if len(values):
        out[0] = 0
        out[1:] = values[:-1]
        out[group_start] = 0
    return out


class _LiveSession:
    """One open carried across a chunk boundary (reference
    ``in_progress[oid]`` plus its ``position``/``creating`` entries)."""

    __slots__ = (
        "open_id",
        "file_id",
        "user_id",
        "flag",
        "open_time",
        "size_at_open",
        "initial_pos",
        "pos",
        "seeks",
        "seek_after_data",
        "run_starts",
        "run_ends",
        "run_times",
        "creating_fid",
    )

    def __init__(self, open_id, file_id, user_id, flag, open_time,
                 size_at_open, initial_pos):
        self.open_id = open_id
        self.file_id = file_id
        self.user_id = user_id
        self.flag = flag
        self.open_time = open_time
        self.size_at_open = size_at_open
        self.initial_pos = initial_pos
        self.pos = initial_pos
        self.seeks = 0
        self.seek_after_data = False
        self.run_starts: list[int] = []
        self.run_ends: list[int] = []
        self.run_times: list[float] = []
        self.creating_fid: int | None = None


class VectorizedCollector:
    """Drop-in vectorized :class:`~repro.analysis.onepass.OnePassCollector`.

    Same constructor contract: *start*/*duration* describe the whole
    trace that will be fed.  ``feed`` may be called once (the in-RAM
    path) or per corpus segment; cross-segment session state is carried
    in Python dicts that are only consolidated when a second ``feed``
    actually arrives, so the single-chunk hot path never pays for them.
    """

    def __init__(
        self,
        name: str,
        start: float,
        duration: float,
        long_window: float = 600.0,
        short_window: float = 10.0,
        burst_window: float = 10.0,
    ):
        if burst_window <= 0:
            raise ValueError(f"window must be positive, got {burst_window}")
        self.name = name
        self.start = start
        self.duration = duration
        self.long_window = long_window
        self.short_window = short_window
        self.burst_window = burst_window
        self.events_fed = 0

        self.b_duration = max(duration, burst_window)
        self.nb = max(1, math.ceil(self.b_duration / burst_window))
        self.opens_w = np.zeros(self.nb, dtype=np.int64)
        self.busy = np.zeros(self.nb, dtype=bool)

        # Per-chunk array bundles, concatenated once at finish().
        self._chunks: list[dict] = []
        self._last_time: float | None = None

        # Cross-chunk carry (reference dict state).  ``_deferred`` holds
        # the previous chunk's group-final arrays; it is folded into the
        # dicts below only when another feed arrives.
        self._open_owner: dict[int, int] = {}  # oid -> uid of last open
        self._live: dict[int, _LiveSession] = {}
        self._deferred: dict | None = None

        # Carried creating-open state (mini-loop only; within a chunk the
        # creating dict is replicated by the created-open cummax).
        self._creating: dict[int, int] = {}  # oid -> fid

    # -- feeding ------------------------------------------------------------

    def feed(self, cols: TraceColumns) -> None:
        v = column_views(cols)
        n = len(v)
        self.events_fed += n
        if n == 0:
            return
        if self._deferred is not None:
            self._consolidate()

        kinds = v.kinds
        times = v.times
        _require(not bool(np.isnan(times).any()), "NaN timestamps")
        _require(bool((np.diff(times) >= 0).all()), "unsorted timestamps")
        t_first = float(times[0])
        _require(t_first >= self.start, "timestamp precedes trace start")
        if self._last_time is not None:
            _require(t_first >= self._last_time, "chunk times regress")
        self._last_time = float(times[-1])
        _require(
            _within_exact(v.sizes) and _within_exact(v.positions),
            "sizes/positions exceed the float64-exact window",
        )

        open_mask = kinds == KIND_OPEN
        flags = v.flags
        _require(
            not bool((open_mask & ((flags & FLAG_MODE_MASK) == 0)).any()),
            "open row with no mode bits",
        )

        # Burstiness windows: every row marks busy, open rows count.
        bslot_f = (times - self.start) / self.burst_window
        bslot = np.minimum(bslot_f, self.nb - 1).astype(np.int64)
        self.busy[bslot] = True
        if open_mask.any():
            self.opens_w += np.bincount(bslot[open_mask], minlength=self.nb)

        # Event marks: opens/creates/execs mark their own user ...
        uid_arr = np.zeros(n, dtype=np.int64)
        mark = np.zeros(n, dtype=bool)
        direct = open_mask | (kinds == KIND_CREATE) | (kinds == KIND_EXEC)
        uid_arr[direct] = v.user_ids[direct]
        mark[direct] = True

        chunk: dict = {}
        base = self.events_fed - n  # global row offset of this chunk
        self._feed_sessions(v, kinds, open_mask, uid_arr, mark, chunk, base)

        chunk["mark_times"] = times[mark]
        chunk["mark_uids"] = uid_arr[mark]
        oe = open_mask | (kinds == KIND_EXEC)
        chunk["user_uids"] = v.user_ids[oe]
        chunk["user_times"] = times[oe]
        chunk["user_is_open"] = open_mask[oe]
        self._chunks.append(chunk)

    def _feed_sessions(self, v, kinds, open_mask, uid_arr, mark, chunk,
                       row_base) -> None:
        """Session matching, run extraction, and lifetime events for one
        chunk; fills *chunk* with the per-access arrays."""
        sub_mask = (kinds >= KIND_OPEN) & (kinds <= KIND_SEEK)
        sub_rows = np.nonzero(sub_mask)[0]
        m = len(sub_rows)
        times = v.times
        flags = v.flags

        # Lifetime events visible without session state: truncating
        # opens kill the previous data, unlinks and zero-truncates kill.
        co_rows = np.nonzero(open_mask & ((flags & FLAG_CREATED) != 0))[0]
        kill_rows = np.nonzero(
            (kinds == KIND_UNLINK) | ((kinds == KIND_TRUNC) & (v.sizes == 0))
        )[0]
        lt_rows = [co_rows, kill_rows]
        lt_tags = [
            np.full(len(co_rows), _LT_KILL, np.int64),
            np.full(len(kill_rows), _LT_KILL, np.int64),
        ]
        lt_fids = [v.file_ids[co_rows], v.file_ids[kill_rows]]
        lt_bytes = [
            np.zeros(len(co_rows), np.int64),
            np.zeros(len(kill_rows), np.int64),
        ]

        if m == 0:
            self._empty_access_chunk(chunk)
            self._store_lifetimes(
                chunk, v, row_base, lt_rows, lt_tags, lt_fids, lt_bytes, []
            )
            return

        sub_oids = v.open_ids[sub_rows]
        sub_kinds = kinds[sub_rows]
        # A single stable sort groups rows by oid while keeping row order
        # within each group; group codes are then just a boundary cumsum.
        order = np.argsort(sub_oids, kind="stable")
        oid_ord = sub_oids[order]
        k_ord = sub_kinds[order]
        rplus = (order + 1).astype(np.int64)

        is_open_s = k_ord == KIND_OPEN
        is_close_s = k_ord == KIND_CLOSE
        is_seek_s = k_ord == KIND_SEEK
        gstart = np.empty(m, dtype=bool)
        gstart[0] = True
        gstart[1:] = oid_ord[1:] != oid_ord[:-1]
        uniq_oids = oid_ord[gstart]
        base = (np.cumsum(gstart) - 1) * np.int64(m + 1)

        last_open = _segmented_cummax(np.where(is_open_s, rplus, 0), base)
        close_incl = _segmented_cummax(np.where(is_close_s, rplus, 0), base)
        prev_close = _shift_down(close_incl, gstart)
        created_s = (flags[sub_rows[order]] & FLAG_CREATED) != 0
        last_copen = _segmented_cummax(
            np.where(is_open_s & created_s, rplus, 0), base
        )

        # uid marks for closes/seeks: the last open of the oid, ever.
        cs = ~is_open_s
        owners_cs = last_open[cs]
        rows_cs = sub_rows[order[cs]]
        have = owners_cs > 0
        hit_rows = rows_cs[have]
        uid_arr[hit_rows] = v.user_ids[sub_rows[owners_cs[have] - 1]]
        mark[hit_rows] = True
        if self._open_owner:
            oo = self._open_owner
            virgin_rows = rows_cs[~have].tolist()
            virgin_oids = v.open_ids[rows_cs[~have]].tolist()
            for row, oid in zip(virgin_rows, virgin_oids):
                uid = oo.get(oid)
                if uid is not None:
                    uid_arr[row] = uid
                    mark[row] = True

        # Route oids with a live carried session through the reference
        # per-event mini-loop; everything else is vectorized.
        if self._live:
            mini = np.isin(oid_ord, np.array(list(self._live), np.int64))
        else:
            mini = np.zeros(m, dtype=bool)

        active = last_open > prev_close
        matched_close = is_close_s & active & ~mini
        creating_close = is_close_s & (last_copen > prev_close) & ~mini
        active_seek = is_seek_s & active & ~mini

        # ---- seek runs, grouped per owning open ------------------------
        seek_pos = np.nonzero(active_seek)[0]
        seek_owner = last_open[seek_pos] - 1  # original sub index of owner
        seek_rows = sub_rows[order[seek_pos]]
        sk_order = np.lexsort((seek_rows, seek_owner))
        seek_owner = seek_owner[sk_order]
        seek_rows = seek_rows[sk_order]
        s_prev = v.sizes[seek_rows]  # prev_pos
        s_new = v.positions[seek_rows]  # new_pos
        s_time = times[seek_rows]
        own_start = np.empty(len(seek_owner), dtype=bool)
        if len(seek_owner):
            own_start[0] = True
            own_start[1:] = seek_owner[1:] != seek_owner[:-1]
        own_uniq = seek_owner[own_start] if len(seek_owner) else seek_owner
        own_off = np.nonzero(own_start)[0]
        own_cnt = np.diff(np.append(own_off, len(seek_owner)))
        # Entry position before each seek: the previous seek's new_pos,
        # or the open's initial_pos at the head of the owner group.
        s_entry = np.empty_like(s_new)
        if len(seek_owner):
            s_entry[0] = 0
            s_entry[1:] = s_new[:-1]
            s_entry[own_start] = v.positions[sub_rows[own_uniq]]
        s_exists = s_prev > s_entry
        s_len = s_prev - s_entry
        if len(seek_owner):
            _require(
                int(own_cnt.max()) * max(1, int(np.abs(s_len).max()))
                < _F64_EXACT,
                "per-access seek bytes exceed the exact window",
            )
            seek_runs_per = np.add.reduceat(
                s_exists.astype(np.int64), own_off
            )
            seek_bytes_per = np.add.reduceat(
                np.where(s_exists, s_len, 0), own_off
            )
            seek_maxend_per = np.maximum.reduceat(
                np.where(s_exists, s_prev, np.iinfo(np.int64).min), own_off
            )
            last_new_per = s_new[np.append(own_off[1:], len(seek_owner)) - 1]
        else:
            seek_runs_per = np.zeros(0, np.int64)
            seek_bytes_per = np.zeros(0, np.int64)
            seek_maxend_per = np.zeros(0, np.int64)
            last_new_per = np.zeros(0, np.int64)

        # ---- matched accesses (vectorized sessions closed in-chunk) ----
        mc = np.nonzero(matched_close)[0]
        acc_owner = last_open[mc] - 1
        acc_close_sub = order[mc]
        close_rows = sub_rows[acc_close_sub]
        row_sort = np.argsort(close_rows, kind="stable")
        acc_owner = acc_owner[row_sort]
        close_rows = close_rows[row_sort]
        open_rows = sub_rows[acc_owner]

        # Gather this owner's seek-group aggregates (default: none).
        if len(own_uniq):
            pos_in = np.searchsorted(own_uniq, acc_owner)
            pos_in = np.minimum(pos_in, len(own_uniq) - 1)
            found = own_uniq[pos_in] == acc_owner
            a_seekruns = np.where(found, seek_runs_per[pos_in], 0)
            a_seekbytes = np.where(found, seek_bytes_per[pos_in], 0)
            a_seekmax = np.where(
                found, seek_maxend_per[pos_in], np.iinfo(np.int64).min
            )
            a_seeks = np.where(found, own_cnt[pos_in], 0)
            a_entry = np.where(
                found, last_new_per[pos_in], v.positions[open_rows]
            )
            a_skoff = np.where(found, own_off[pos_in], 0)
        else:
            na = len(acc_owner)
            a_seekruns = np.zeros(na, np.int64)
            a_seekbytes = np.zeros(na, np.int64)
            a_seekmax = np.full(na, np.iinfo(np.int64).min)
            a_seeks = np.zeros(na, np.int64)
            a_entry = v.positions[open_rows]
            a_skoff = np.zeros(na, np.int64)

        fpos = v.positions[close_rows]
        close_run = fpos > a_entry
        close_len = fpos - a_entry
        a_nruns = a_seekruns + close_run
        a_bytes = a_seekbytes + np.where(close_run, close_len, 0)
        a_maxend = np.maximum(
            a_seekmax, np.where(close_run, fpos, np.iinfo(np.int64).min)
        )

        n_acc = len(acc_owner)
        _require(
            n_acc * max(1, int(np.abs(a_bytes).max()) if n_acc else 1)
            < _F64_EXACT,
            "total transferred bytes exceed the exact window",
        )

        # ---- compact per-access run storage ----------------------------
        run_cnt = a_nruns
        run_off = np.zeros(n_acc + 1, np.int64)
        np.cumsum(run_cnt, out=run_off[1:])
        total_runs = int(run_off[-1])
        r_starts = np.empty(total_runs, np.int64)
        r_ends = np.empty(total_runs, np.int64)
        r_times = np.empty(total_runs, np.float64)
        if total_runs:
            # Seek-billed runs first (they precede the close run).
            src_cnt = a_seekruns
            src_excl = np.cumsum(src_cnt) - src_cnt
            S = int(src_cnt.sum())
            if S:
                intra = np.arange(S, dtype=np.int64) - np.repeat(src_excl, src_cnt)
                # Index of the j-th *existing* seek run within the owner
                # group: positions of True values in s_exists.
                ex_pos = np.nonzero(s_exists)[0]
                ex_off = (
                    np.searchsorted(ex_pos, a_skoff)
                    if len(ex_pos)
                    else np.zeros(n_acc, np.int64)
                )
                src = ex_pos[np.repeat(ex_off, src_cnt) + intra]
                dst = np.repeat(run_off[:-1], src_cnt) + intra
                r_starts[dst] = s_entry[src]
                r_ends[dst] = s_prev[src]
                r_times[dst] = s_time[src]
            cdst = run_off[1:][close_run] - 1
            r_starts[cdst] = a_entry[close_run]
            r_ends[cdst] = fpos[close_run]
            r_times[cdst] = times[close_rows[close_run]]

        # ---- lifetime births from creating closes ----------------------
        cc = np.nonzero(creating_close)[0]
        cc_rows = sub_rows[order[cc]]
        cc_fids = v.file_ids[sub_rows[last_copen[cc] - 1]]
        cc_bytes = np.maximum(v.positions[cc_rows], 0)
        lt_rows.append(cc_rows)
        lt_tags.append(np.full(len(cc_rows), _LT_BIRTH, np.int64))
        lt_fids.append(cc_fids)
        lt_bytes.append(cc_bytes)

        # ---- carried sessions: reference per-event mini-loop -----------
        mini_records: list[tuple] = []
        mini_births: list[tuple] = []
        if self._live and bool(mini.any()):
            mini_records, mini_births = self._run_mini(v, sub_rows[order[mini]])

        self._assemble_chunk(
            chunk, v, open_rows, close_rows, a_seeks, a_seekruns,
            a_nruns, a_bytes, a_maxend, run_off,
            r_starts, r_ends, r_times, mini_records,
        )
        self._store_lifetimes(
            chunk, v, row_base, lt_rows, lt_tags, lt_fids, lt_bytes, mini_births
        )

        # ---- defer group-final state for the next feed -----------------
        # The views in *v* are kept alive until the next feed (or finish);
        # the buffers they wrap must stay valid that long — in-RAM arrays
        # always are, and corpus readers keep each segment mapped until
        # the next one is requested.
        gend = np.empty(m, dtype=bool)
        gend[-1] = True
        gend[:-1] = gstart[1:]
        self._deferred = {
            "uniq_oids": uniq_oids,
            "final_open": last_open[gend],
            "final_close": close_incl[gend],
            "final_copen": last_copen[gend],
            "sub_rows": sub_rows,
            "mini_codes": mini[gend],
            "v": v,
            "own_uniq": own_uniq,
            "own_off": own_off,
            "own_cnt": own_cnt,
            "s_entry": s_entry,
            "s_prev": s_prev,
            "s_new": s_new,
            "s_time": s_time,
            "s_exists": s_exists,
        }

    def _consolidate(self) -> None:
        """Fold the previous chunk's group-final state into the carry
        dicts (runs only when a second feed actually arrives)."""
        d = self._deferred
        self._deferred = None
        uniq = d["uniq_oids"]
        fo = d["final_open"]
        fc = d["final_close"]
        fcc = d["final_copen"]
        sr = d["sub_rows"]
        vv = d["v"]

        has_open = fo > 0
        if bool(has_open.any()):
            self._open_owner.update(
                zip(
                    uniq[has_open].tolist(),
                    vv.user_ids[sr[fo[has_open] - 1]].tolist(),
                )
            )

        live_mask = (fo > fc) & ~d["mini_codes"]
        if not bool(live_mask.any()):
            return
        owners = fo[live_mask] - 1  # sub index of the live open
        orows = sr[owners]  # global rows of the live opens
        own_uniq = d["own_uniq"]
        if len(own_uniq):
            pos_in = np.minimum(
                np.searchsorted(own_uniq, owners), len(own_uniq) - 1
            )
            found = own_uniq[pos_in] == owners
        else:
            pos_in = np.zeros(len(owners), np.int64)
            found = np.zeros(len(owners), dtype=bool)
        off_l = d["own_off"]
        cnt_l = d["own_cnt"]
        s_entry = d["s_entry"]
        s_prev = d["s_prev"]
        s_new = d["s_new"]
        s_time = d["s_time"]
        s_exists = d["s_exists"]

        live_oids = uniq[live_mask].tolist()
        o_fid = vv.file_ids[orows].tolist()
        o_uid = vv.user_ids[orows].tolist()
        o_flag = vv.flags[orows].tolist()
        o_time = vv.times[orows].tolist()
        o_size = vv.sizes[orows].tolist()
        o_pos = vv.positions[orows].tolist()
        fcc_live = fcc[live_mask]
        copen_l = fcc_live.tolist()
        close_l = fc[live_mask].tolist()
        c_fid = vv.file_ids[sr[np.maximum(fcc_live - 1, 0)]].tolist()
        found_l = found.tolist()
        pos_l = pos_in.tolist()
        for j, oid in enumerate(live_oids):
            rec = _LiveSession(
                oid, o_fid[j], int(o_uid[j]), int(o_flag[j]),
                float(o_time[j]), int(o_size[j]), int(o_pos[j]),
            )
            if found_l[j]:
                lo = int(off_l[pos_l[j]])
                hi = lo + int(cnt_l[pos_l[j]])
                rec.seeks = hi - lo
                rec.pos = int(s_new[hi - 1])
                ex = s_exists[lo:hi]
                if bool(ex.any()):
                    rec.seek_after_data = True
                    rec.run_starts = s_entry[lo:hi][ex].tolist()
                    rec.run_ends = s_prev[lo:hi][ex].tolist()
                    rec.run_times = s_time[lo:hi][ex].tolist()
            if copen_l[j] > close_l[j]:
                self._creating[oid] = c_fid[j]
            self._live[oid] = rec

    def _run_mini(self, v, mini_sub_rows):
        """Reference per-event transitions for oids whose session was
        live at the last chunk boundary (and any later sessions those
        oids start this chunk).  Returns finished-access records and the
        lifetime births their closes emitted."""
        live = self._live
        creating = self._creating
        records: list[tuple] = []
        births: list[tuple] = []
        rows = np.sort(mini_sub_rows)
        rows_l = rows.tolist()
        kinds_l = v.kinds[rows].tolist()
        oids_l = v.open_ids[rows].tolist()
        fids_l = v.file_ids[rows].tolist()
        uids_l = v.user_ids[rows].tolist()
        sizes_l = v.sizes[rows].tolist()
        pos_l = v.positions[rows].tolist()
        times_l = v.times[rows].tolist()
        flags_l = v.flags[rows].tolist()
        for j, row in enumerate(rows_l):
            kind = kinds_l[j]
            oid = oids_l[j]
            if kind == KIND_OPEN:
                rec = _LiveSession(
                    oid, fids_l[j], uids_l[j], flags_l[j], times_l[j],
                    sizes_l[j], pos_l[j],
                )
                live[oid] = rec
                if flags_l[j] & FLAG_CREATED:
                    # The pending-kill this open causes is emitted by the
                    # vectorized created-open extraction (kind-based).
                    creating[oid] = fids_l[j]
            elif kind == KIND_CLOSE:
                fpos = pos_l[j]
                t = times_l[j]
                rec = live.pop(oid, None)
                if rec is not None:
                    if fpos > rec.pos:
                        rec.run_starts.append(rec.pos)
                        rec.run_ends.append(fpos)
                        rec.run_times.append(t)
                    records.append((row, rec, t))
                fidc = creating.pop(oid, None)
                if fidc is not None:
                    births.append((row, fidc, fpos if fpos > 0 else 0))
            else:  # KIND_SEEK
                rec = live.get(oid)
                if rec is not None:
                    prev = sizes_l[j]
                    if prev > rec.pos:
                        rec.run_starts.append(rec.pos)
                        rec.run_ends.append(prev)
                        rec.run_times.append(times_l[j])
                    rec.seeks += 1
                    if rec.run_starts:
                        rec.seek_after_data = True
                    rec.pos = pos_l[j]
        return records, births

    def _empty_access_chunk(self, chunk: dict) -> None:
        zi = np.zeros(0, np.int64)
        zf = np.zeros(0, np.float64)
        for key in ("acc_oid", "acc_fid", "acc_uid", "acc_szopen",
                    "acc_ipos", "acc_seeks", "acc_nruns", "acc_bytes",
                    "acc_maxend", "acc_runstart", "run_starts", "run_ends"):
            chunk[key] = zi
        chunk["acc_flag"] = np.zeros(0, np.uint8)
        chunk["acc_sad"] = np.zeros(0, dtype=bool)
        for key in ("acc_topen", "acc_tclose", "run_times"):
            chunk[key] = zf

    def _assemble_chunk(
        self, chunk, v, open_rows, close_rows, a_seeks, a_seekruns,
        a_nruns, a_bytes, a_maxend, run_off,
        r_starts, r_ends, r_times, mini_records,
    ) -> None:
        """Store the chunk's per-access arrays, interleaving any
        mini-loop records into close-row order."""
        fields = {
            "acc_oid": v.open_ids[open_rows],
            "acc_fid": v.file_ids[open_rows],
            "acc_uid": v.user_ids[open_rows],
            "acc_flag": v.flags[open_rows],
            "acc_topen": v.times[open_rows],
            "acc_tclose": v.times[close_rows],
            "acc_szopen": v.sizes[open_rows],
            "acc_ipos": v.positions[open_rows],
            "acc_seeks": a_seeks,
            "acc_sad": a_seekruns > 0,
            "acc_nruns": a_nruns,
            "acc_bytes": a_bytes,
            "acc_maxend": a_maxend,
            "acc_runstart": run_off[:-1],
        }
        if not mini_records:
            chunk.update(fields)
            chunk["run_starts"] = r_starts
            chunk["run_ends"] = r_ends
            chunk["run_times"] = r_times
            return

        int_min = np.iinfo(np.int64).min
        base = len(r_starts)
        nm = len(mini_records)
        mf: dict[str, list] = {k: [] for k in fields}
        m_rows = []
        m_rs: list[int] = []
        m_re: list[int] = []
        m_rt: list[float] = []
        for row, rec, t_close in mini_records:
            m_rows.append(row)
            mf["acc_oid"].append(rec.open_id)
            mf["acc_fid"].append(rec.file_id)
            mf["acc_uid"].append(rec.user_id)
            mf["acc_flag"].append(rec.flag)
            mf["acc_topen"].append(rec.open_time)
            mf["acc_tclose"].append(t_close)
            mf["acc_szopen"].append(rec.size_at_open)
            mf["acc_ipos"].append(rec.initial_pos)
            mf["acc_seeks"].append(rec.seeks)
            mf["acc_sad"].append(rec.seek_after_data)
            mf["acc_nruns"].append(len(rec.run_starts))
            mf["acc_bytes"].append(
                sum(e - s for s, e in zip(rec.run_starts, rec.run_ends))
            )
            mf["acc_maxend"].append(
                max(rec.run_ends) if rec.run_ends else int_min
            )
            mf["acc_runstart"].append(base + len(m_rs))
            m_rs.extend(rec.run_starts)
            m_re.extend(rec.run_ends)
            m_rt.extend(rec.run_times)

        vec_rows = close_rows
        all_rows = np.concatenate([vec_rows, np.array(m_rows, np.int64)])
        perm = np.argsort(all_rows, kind="stable")
        for key, vec_arr in fields.items():
            dtype = vec_arr.dtype if key != "acc_sad" else bool
            mini_arr = np.array(mf[key], dtype=dtype)
            chunk[key] = np.concatenate([vec_arr, mini_arr])[perm]
        chunk["run_starts"] = np.concatenate(
            [r_starts, np.array(m_rs, np.int64)]
        )
        chunk["run_ends"] = np.concatenate([r_ends, np.array(m_re, np.int64)])
        chunk["run_times"] = np.concatenate(
            [r_times, np.array(m_rt, np.float64)]
        )
        _require(
            nm == 0
            or len(chunk["acc_bytes"]) == 0
            or int(np.abs(chunk["acc_bytes"]).max()) < _F64_EXACT,
            "carried-access bytes exceed the exact window",
        )

    def _store_lifetimes(self, chunk, v, row_base, lt_rows, lt_tags, lt_fids,
                         lt_bytes, mini_births) -> None:
        """Stash the chunk's lifetime events (kills from creating opens /
        unlinks / zero-truncates, births from creating closes) with global
        row numbers; :meth:`finish` replays them all at once."""
        if mini_births:
            lt_rows.append(np.array([b[0] for b in mini_births], np.int64))
            lt_tags.append(np.full(len(mini_births), _LT_BIRTH, np.int64))
            lt_fids.append(np.array([b[1] for b in mini_births], np.int64))
            lt_bytes.append(np.array([b[2] for b in mini_births], np.int64))
        rows = np.concatenate(lt_rows)
        chunk["lt_rows"] = rows + row_base
        chunk["lt_tags"] = np.concatenate(lt_tags)
        chunk["lt_fids"] = np.concatenate(lt_fids)
        chunk["lt_bytes"] = np.concatenate(lt_bytes)
        chunk["lt_times"] = v.times[rows]

    def _lifetime_scan(self):
        """Replay every stored lifetime event at once.

        The reference keeps ``pending[fid]`` and pops it on kills; per
        file id that is a two-symbol automaton — the slot is full iff the
        previous event for that fid was a birth (a kill always empties a
        full slot, a rebirth overwrites in place).  So within each fid
        group, sorted by row: a kill completes a lifetime iff the
        previous event is a birth (taking that birth's payload), and the
        fid survives iff its last event is a birth.  A surviving fid's
        position in the pending dict is the row of the first birth of its
        trailing birth-run — reassignment keeps the original insertion
        position — so sorting survivors by that row reproduces the
        reference's iteration order exactly.
        """
        lrows = self._cat("lt_rows")
        ne = len(lrows)
        zi = np.zeros(0, np.int64)
        zf = np.zeros(0, np.float64)
        if not ne:
            return zi, zf, zi, zf, zi, zf.copy(), zi.copy()
        lfids = self._cat("lt_fids")
        lg = np.lexsort((lrows, lfids))
        f_s = lfids[lg]
        r_s = lrows[lg]
        t_s = self._cat("lt_times")[lg]
        b_s = self._cat("lt_bytes")[lg]
        is_birth = self._cat("lt_tags")[lg] == _LT_BIRTH
        lstart = np.empty(ne, dtype=bool)
        lstart[0] = True
        lstart[1:] = f_s[1:] != f_s[:-1]
        prev_birth = np.empty(ne, dtype=bool)
        prev_birth[0] = False
        prev_birth[1:] = is_birth[:-1]
        prev_birth[lstart] = False
        lbase = (np.cumsum(lstart) - 1) * np.int64(ne + 1)
        idx1 = np.arange(1, ne + 1, dtype=np.int64)
        last_birth = _segmented_cummax(np.where(is_birth, idx1, 0), lbase)

        kidx = np.nonzero(~is_birth & prev_birth)[0]
        kidx = kidx[np.argsort(r_s[kidx], kind="stable")]  # global order
        bidx = last_birth[kidx] - 1

        lend = np.empty(ne, dtype=bool)
        lend[-1] = True
        lend[:-1] = lstart[1:]
        gpos = np.nonzero(lend)[0]
        sv = gpos[is_birth[gpos]]
        run_head = is_birth & ~prev_birth
        last_head = _segmented_cummax(np.where(run_head, idx1, 0), lbase)
        sv = sv[np.argsort(r_s[last_head[sv] - 1], kind="stable")]
        return (
            f_s[kidx], t_s[bidx], b_s[bidx], t_s[kidx],
            f_s[sv], t_s[sv], b_s[sv],
        )

    # -- finishing ----------------------------------------------------------

    def _cat(self, key: str):
        arrs = [c[key] for c in self._chunks]
        if not arrs:
            if key in ("acc_topen", "acc_tclose", "run_times", "mark_times",
                       "user_times", "lt_times"):
                return np.zeros(0, np.float64)
            if key == "acc_flag":
                return np.zeros(0, np.uint8)
            if key in ("acc_sad", "user_is_open"):
                return np.zeros(0, dtype=bool)
            return np.zeros(0, np.int64)
        if len(arrs) == 1:
            return arrs[0]
        return np.concatenate(arrs)

    def finish(self) -> OnePassReport:
        # Rebase each chunk's run offsets into the concatenated run arrays.
        run_base = 0
        for c in self._chunks:
            if run_base:
                c["acc_runstart"] = c["acc_runstart"] + run_base
            run_base += len(c["run_starts"])

        oid = self._cat("acc_oid")
        fid = self._cat("acc_fid")
        uid = self._cat("acc_uid")
        flag = self._cat("acc_flag")
        topen = self._cat("acc_topen")
        tclose = self._cat("acc_tclose")
        szopen = self._cat("acc_szopen")
        ipos = self._cat("acc_ipos")
        seeks = self._cat("acc_seeks")
        sad = self._cat("acc_sad")
        nruns = self._cat("acc_nruns")
        abytes = self._cat("acc_bytes")
        maxend = self._cat("acc_maxend")
        runstart = self._cat("acc_runstart")
        rs_all = self._cat("run_starts")
        re_all = self._cat("run_ends")
        rt_all = self._cat("run_times")
        n_acc = len(oid)
        total_runs = len(rs_all)

        max_bytes = int(abytes.max()) if n_acc else 0
        _require(n_acc * max(1, max_bytes) < _F64_EXACT,
                 "total transferred bytes exceed the exact window")

        # ---- derived per-access facts ---------------------------------
        mode = flag & FLAG_MODE_MASK
        created = (flag & FLAG_CREATED) != 0
        furthest = np.where(nruns > 0, maxend, 0)
        szclose = np.maximum(np.where(created, 0, szopen), furthest)
        whole = np.zeros(n_acc, dtype=bool)
        sidx = np.nonzero(nruns == 1)[0]
        if len(sidx):
            r0s = rs_all[runstart[sidx]]
            r0e = re_all[runstart[sidx]]
            tail = np.where(mode[sidx] == 1, szopen[sidx], szclose[sidx])
            whole[sidx] = (r0s == 0) & (r0e == tail)
        sequential = whole | ((nruns <= 1) & ~sad)

        # ---- sequentiality (Table V) ----------------------------------
        seq_report = SequentialityReport(trace_name=self.name)
        for mcode, counts in ((1, seq_report.read), (2, seq_report.write),
                              (3, seq_report.read_write)):
            sel = mode == mcode
            counts.accesses = int(sel.sum())
            counts.bytes_total = int(abytes[sel].sum())
            sw = sel & whole
            counts.whole_file = int(sw.sum())
            counts.bytes_whole_file = int(abytes[sw].sum())
            ss = sel & sequential
            counts.sequential = int(ss.sum())
            counts.bytes_sequential = int(abytes[ss].sum())

        # ---- CDFs over runs, sizes, open times ------------------------
        lengths = re_all - rs_all
        run_by_runs, run_by_bytes = _cdf_pair(
            lengths, lengths.astype(np.float64)
        )
        size_by_accesses, size_by_bytes = _cdf_pair(
            szclose.astype(np.float64), abytes.astype(np.float64)
        )
        open_times = _cdf_counts(tclose - topen)

        # ---- lifetimes ------------------------------------------------
        (done_fid_a, done_birth_a, done_bytes_a, done_death_a,
         alive_fid_a, alive_birth_a, alive_bytes_a) = self._lifetime_scan()
        nd = len(done_fid_a)
        n_lt = nd + len(alive_fid_a)
        max_ltb = max(
            int(done_bytes_a.max()) if nd else 0,
            int(alive_bytes_a.max()) if len(alive_bytes_a) else 0,
        )
        _require(n_lt * max(1, max_ltb) < _F64_EXACT,
                 "lifetime bytes exceed the exact window")
        lt_dead = np.maximum(0.0, done_death_a - done_birth_a)
        censored_count = float(n_lt - nd)
        censored_bytes = float(int(alive_bytes_a.sum()))
        lt_by_files, lt_by_bytes = _cdf_pair(
            lt_dead,
            done_bytes_a.astype(np.float64),
            censored=(censored_count, censored_bytes),
        )
        if n_lt:
            in_band = int(((lt_dead >= 179.0) & (lt_dead <= 181.0)).sum())
            daemon_spike = in_band / n_lt
        else:
            daemon_spike = 0.0

        # ---- activity (Table IV) --------------------------------------
        em_t = self._cat("mark_times")
        em_u = self._cat("mark_uids")
        # Per-run byte marks; runs are stored in disjoint per-access
        # slices covering [0, total_runs), so sorting accesses by their
        # run offset lets repeat() rebuild the per-run owner.
        if total_runs:
            by_off = np.argsort(runstart, kind="stable")
            run_uid = np.repeat(uid[by_off], nruns[by_off])
            run_t = rt_all
            run_len_o = lengths
        else:
            run_uid = np.zeros(0, np.int64)
            run_t = np.zeros(0, np.float64)
            run_len_o = np.zeros(0, np.int64)
        total_bytes = int(abytes.sum())
        # Both window sizes see the same (time, uid) mark streams.  The
        # interval keys use raw uid values — only distinctness and
        # ascending order matter, and for nonnegative uids the composite
        # key sorts exactly like (interval, uid); byte-mark uids are a
        # subset of event-mark uids (every access's open row marks its
        # user), so the event marks alone span the users_seen set.
        all_mt = np.concatenate([em_t, run_t])
        all_mu = np.concatenate([em_u, run_uid])
        if len(all_mu):
            _require(int(all_mu.min()) >= 0, "negative user id in marks")
            nu_m = int(all_mu.max()) + 1
        else:
            nu_m = 1
        total_users = int(_sorted_unique(em_u).size) if len(em_u) else 0
        blen_f = run_len_o.astype(np.float64)
        activity = ActivityReport(
            trace_name=self.name,
            duration=self.duration,
            total_bytes=total_bytes,
            total_users=total_users,
            ten_minute=self._vec_window(
                self.long_window, all_mt, all_mu, len(em_t), nu_m, blen_f
            ),
            ten_second=self._vec_window(
                self.short_window, all_mt, all_mu, len(em_t), nu_m, blen_f
            ),
        )

        # ---- burstiness -----------------------------------------------
        if total_runs:
            bslot_r = np.minimum(
                (run_t - self.start) / self.burst_window, self.nb - 1
            ).astype(np.int64)
            _require(self.nb * nu_m < (1 << 62), "burst key space too large")
            rkey = bslot_r * np.int64(nu_m) + run_uid
            rkeys = _sorted_unique(rkey)
            kinv = np.searchsorted(rkeys, rkey)
            ksums = np.bincount(kinv, weights=blen_f)
            # assemble_burstiness only reads max(user_bytes.values());
            # the full (window, user) -> bytes table is never consulted.
            user_bytes = {(0, 0): int(ksums.max())}
        else:
            user_bytes = {}
        burstiness = assemble_burstiness(
            self.burst_window, self.b_duration, self.opens_w.tolist(),
            self.busy.tolist(), user_bytes,
        )

        # ---- users ----------------------------------------------------
        users = self._build_users(uid, fid, tclose, abytes, mode)

        # ---- lazy object materialization ------------------------------
        def make_accesses() -> list[FileAccess]:
            order_l = np.argsort(tclose, kind="stable").tolist()
            oid_l = oid.tolist()
            fid_l = fid.tolist()
            uid_l = uid.tolist()
            flag_l = flag.tolist()
            topen_l = topen.tolist()
            tclose_l = tclose.tolist()
            szopen_l = szopen.tolist()
            ipos_l = ipos.tolist()
            seeks_l = seeks.tolist()
            sad_l = sad.tolist()
            nruns_l = nruns.tolist()
            runstart_l = runstart.tolist()
            rs_l = rs_all.tolist()
            re_l = re_all.tolist()
            rt_l = rt_all.tolist()
            out = []
            append = out.append
            for i in order_l:
                k = runstart_l[i]
                fl = flag_l[i]
                runs = [
                    Run(rs_l[k + j], re_l[k + j], rt_l[k + j])
                    for j in range(nruns_l[i])
                ]
                append(FileAccess(
                    oid_l[i], fid_l[i], uid_l[i],
                    _MODE[fl & FLAG_MODE_MASK], topen_l[i], tclose_l[i],
                    szopen_l[i], bool(fl & FLAG_CREATED),
                    bool(fl & FLAG_NEW_FILE), ipos_l[i], seeks_l[i],
                    sad_l[i], runs,
                ))
            return out

        def make_lifetimes() -> list[Lifetime]:
            births_all = np.concatenate([done_birth_a, alive_birth_a])
            fid_lt = np.concatenate([done_fid_a, alive_fid_a]).tolist()
            bytes_lt = np.concatenate([done_bytes_a, alive_bytes_a]).tolist()
            death_lt: list = done_death_a.tolist() + [None] * len(alive_fid_a)
            birth_lt = births_all.tolist()
            return [
                Lifetime(fid_lt[i], birth_lt[i], bytes_lt[i], death_lt[i])
                for i in np.argsort(births_all, kind="stable").tolist()
            ]

        report = OnePassReport.__new__(OnePassReport)
        report.trace_name = self.name
        report.duration = self.duration
        report.activity = activity
        report.sequentiality = seq_report
        report.run_length_by_runs = run_by_runs
        report.run_length_by_bytes = run_by_bytes
        report.open_times = open_times
        report.size_by_accesses = size_by_accesses
        report.size_by_bytes = size_by_bytes
        report.users = users
        report.burstiness = burstiness
        report.lifetime_by_files = lt_by_files
        report.lifetime_by_bytes = lt_by_bytes
        report.daemon_spike = daemon_spike
        report._lazy = {
            "accesses": make_accesses,
            "transfers": lambda: transfers_from_accesses(report.accesses),
            "lifetimes": make_lifetimes,
            "popularity": lambda: popularity_from_accesses(report.accesses),
        }
        return report

    def _build_users(self, acc_uid, acc_fid, acc_tclose, acc_bytes, mode):
        """The users dict, in first open/exec appearance order, with the
        reference's access-folding applied per uid."""
        u_uids = self._cat("user_uids")
        u_times = self._cat("user_times")
        u_isopen = self._cat("user_is_open")
        users: dict[int, UserSummary] = {}
        nn = len(u_uids)
        if not nn:
            return users
        by_u = np.argsort(u_uids, kind="stable")
        su_u = u_uids[by_u]
        gs = np.empty(nn, dtype=bool)
        gs[0] = True
        gs[1:] = su_u[1:] != su_u[:-1]
        uniq_u = su_u[gs]
        nu = len(uniq_u)
        inv = np.empty(nn, np.int64)
        inv[by_u] = np.cumsum(gs) - 1
        first_idx = by_u[gs]  # stable sort: first row of each uid
        opens_per = np.bincount(inv[u_isopen], minlength=nu)
        execs_per = np.bincount(inv[~u_isopen], minlength=nu)
        tmin = np.full(nu, np.inf)
        tmax = np.full(nu, -np.inf)
        np.minimum.at(tmin, inv, u_times)
        np.maximum.at(tmax, inv, u_times)

        # Fold accesses: every access's uid was registered by its open,
        # so the fold never creates users.
        n_acc = len(acc_uid)
        if n_acc:
            codes = np.searchsorted(uniq_u, acc_uid)
            wmask = mode != 1  # AccessMode.writable: anything but READ
            bw = np.bincount(
                codes[wmask], weights=acc_bytes[wmask].astype(np.float64),
                minlength=nu,
            )
            br = np.bincount(
                codes[~wmask], weights=acc_bytes[~wmask].astype(np.float64),
                minlength=nu,
            )
            close_max = np.full(nu, float("-inf"))
            np.maximum.at(close_max, codes, acc_tclose)
            # distinct (uid, fid) pairs -> files_touched sets
            pair_order = np.lexsort((acc_fid, acc_uid))
            su = acc_uid[pair_order]
            sf = acc_fid[pair_order]
            first_pair = np.empty(n_acc, dtype=bool)
            first_pair[0] = True
            first_pair[1:] = (su[1:] != su[:-1]) | (sf[1:] != sf[:-1])
            pu = su[first_pair]
            pf = sf[first_pair]
            pair_offs = np.searchsorted(pu, uniq_u)
            pair_ends = np.searchsorted(pu, uniq_u, side="right")
        else:
            bw = br = np.zeros(nu)
            close_max = np.full(nu, float("-inf"))
            pf = np.zeros(0, np.int64)
            pair_offs = pair_ends = np.zeros(nu, np.int64)

        appearance = np.argsort(first_idx, kind="stable").tolist()
        uids_l = uniq_u.tolist()
        opens_l = opens_per.tolist()
        execs_l = execs_per.tolist()
        tmin_l = tmin.tolist()
        tmax_l = tmax.tolist()
        br_l = br.tolist()
        bw_l = bw.tolist()
        cmax_l = close_max.tolist()
        po_l = pair_offs.tolist()
        pe_l = pair_ends.tolist()
        pf_l = pf.tolist()
        for k in appearance:
            s = UserSummary(user_id=uids_l[k])
            s.opens = opens_l[k]
            s.execs = execs_l[k]
            s.first_event = tmin_l[k]
            s.last_event = max(tmax_l[k], cmax_l[k])
            s.bytes_read = int(br_l[k])
            s.bytes_written = int(bw_l[k])
            s.files_touched = set(pf_l[po_l[k]:pe_l[k]])
            users[s.user_id] = s
        return users

    def _vec_window(self, window, all_mt, all_mu, n_em, nu, blen_f):
        """Vectorized :func:`~repro.analysis.activity._window_analysis`,
        feeding the identical per-interval lists to the reference
        ``_mean_std``.  *all_mt*/*all_mu* are the event marks followed by
        the byte marks (*n_em* of the former); uids are nonnegative and
        below *nu*, so ``slot * nu + uid`` sorts as (interval, uid)."""
        _require(window > 0, "non-positive activity window")
        duration = self.duration
        n_intervals = (
            max(1, math.ceil(duration / window)) if duration > 0 else 1
        )
        last = n_intervals - 1
        _require(n_intervals * nu < (1 << 62), "window key space too large")
        slots = np.minimum(
            (all_mt - self.start) / window, last
        ).astype(np.int64)
        key = slots * np.int64(nu) + all_mu
        akeys = _sorted_unique(key)
        counts = np.bincount(
            akeys // nu, minlength=n_intervals
        ).astype(np.float64).tolist()
        pos = np.searchsorted(akeys, key[n_em:])
        sums = np.bincount(pos, weights=blen_f, minlength=len(akeys))
        throughputs = (sums / window).tolist()
        mean_active, std_active = _mean_std(counts)
        mean_tp, std_tp = _mean_std(throughputs)
        return WindowedActivity(
            window=window,
            intervals=n_intervals,
            max_active_users=int(max(counts)) if counts else 0,
            mean_active_users=mean_active,
            std_active_users=std_active,
            mean_user_throughput=mean_tp,
            std_user_throughput=std_tp,
        )


def _cdf_counts(values, censored: float = 0.0) -> Cdf:
    """``Cdf.from_samples(values)`` as whole-array arithmetic."""
    xs, cnt = np.unique(values, return_counts=True)
    cum = np.cumsum(cnt.astype(np.float64))
    total = float(cum[-1]) + censored if len(xs) else censored
    return Cdf(xs=tuple(xs.tolist()), cum=tuple(cum.tolist()), total=total)


def _cdf_weighted(values, weights, censored: float = 0.0) -> Cdf:
    """``Cdf.from_samples(values, weights)``: per-value weight sums are
    exact because every caller bounds total weight below 2**53."""
    xs, inv = np.unique(values, return_inverse=True)
    sums = np.bincount(inv, weights=weights, minlength=len(xs))
    cum = np.cumsum(sums)
    total = float(cum[-1]) + censored if len(xs) else censored
    return Cdf(xs=tuple(xs.tolist()), cum=tuple(cum.tolist()), total=total)


def _cdf_pair(
    values, weights, censored: tuple[float, float] = (0.0, 0.0)
) -> tuple[Cdf, Cdf]:
    """A count-weighted and a byte-weighted CDF over the same samples,
    sharing the single expensive ``np.unique`` between them."""
    xs, inv, cnt = np.unique(
        values, return_inverse=True, return_counts=True
    )
    xs_t = tuple(xs.tolist())
    cum_c = np.cumsum(cnt.astype(np.float64))
    sums = np.bincount(inv, weights=weights, minlength=len(xs))
    cum_w = np.cumsum(sums)
    total_c = float(cum_c[-1]) + censored[0] if len(xs) else censored[0]
    total_w = float(cum_w[-1]) + censored[1] if len(xs) else censored[1]
    return (
        Cdf(xs=xs_t, cum=tuple(cum_c.tolist()), total=total_c),
        Cdf(xs=xs_t, cum=tuple(cum_w.tolist()), total=total_w),
    )


# -- validator -----------------------------------------------------------------

_INVALID_FLAG_BITS = ~_VALID_FLAG_BITS & 0xFF

_KNOWN_KIND_LUT = None  # built on first use (numpy may be absent at import)


def _known_kind_lut():
    global _KNOWN_KIND_LUT
    if _KNOWN_KIND_LUT is None:
        lut = np.zeros(256, np.bool_)
        lut[np.array(sorted(KIND_LABELS), np.int64)] = True
        _KNOWN_KIND_LUT = lut
    return _KNOWN_KIND_LUT


class VectorizedValidator:
    """Streaming vectorized twin of
    :func:`~repro.trace.validate.validate_columns_into` + ``_OpenTracker``.

    Every check is a whole-column boolean reduction; a problem is carried
    as the integer key ``(row << 4) | rank`` where *rank* is the check's
    position in the reference's per-row emission order, so an ascending
    sort recovers the exact message sequence the Python loop would
    produce.  Only the first ``max_problems`` messages are ever formatted
    (a partition-then-sort keeps selection O(n) when a spoiled trace has
    millions of problems); the rest are merely counted, which is all the
    suppression line needs.

    The open-table state the reference keeps per row reduces to two
    membership facts, both computable from the oid-grouped sub-sequence
    of open/seek/close rows: an oid is *present* before a row iff the
    previous such op on it was not a close (seeks re-add unknown oids,
    exactly as the reference's unconditional ``open_positions[oid] =
    new_pos`` does), and *ever-closed* iff any earlier close named it.
    Group heads consult the carry sets ``_present``/``_closed``, which
    also stream the state across corpus segments.
    """

    __slots__ = (
        "event_count",
        "max_problems",
        "open_count",
        "total_problems",
        "formatted",
        "_present",
        "_closed",
        "_last_time",
    )

    def __init__(
        self, event_count: int, max_problems: int = DEFAULT_MAX_PROBLEMS
    ):
        self.event_count = event_count
        self.max_problems = max_problems
        self.open_count = 0
        self.total_problems = 0
        self.formatted: list[str] = []
        self._present: set[int] = set()  # reference open_positions keys
        self._closed: set[int] = set()  # reference closed set
        self._last_time = float("-inf")

    def feed(self, cols: TraceColumns, base: int = 0) -> None:
        v = column_views(cols)
        n = len(v)
        if not n:
            return
        kinds = v.kinds
        times = v.times
        oids = v.open_ids
        sizes = v.sizes
        positions = v.positions
        flags = v.flags

        prev = np.empty(n, np.float64)
        prev[0] = self._last_time
        prev[1:] = times[:-1]

        known = _known_kind_lut()[kinds]
        is_open = kinds == KIND_OPEN
        is_seek = kinds == KIND_SEEK
        is_close = kinds == KIND_CLOSE

        keys: list = []

        def flag_rows(rows, rank):
            if len(rows):
                keys.append((rows.astype(np.int64) << 4) | rank)

        def flag_mask(mask, rank):
            flag_rows(np.nonzero(mask)[0], rank)

        # Stateless checks, ranked by their order inside the reference's
        # row loop (NaN times compare False on both sides, identically).
        flag_mask(times < prev, 0)
        flag_mask(~((times >= 0.0) & (times <= MAX_TRACE_TIME)), 1)
        flag_mask(~known, 2)
        flag_mask(is_open & ((flags & FLAG_MODE_MASK) == 0), 3)
        flag_mask(is_open & ((flags & _INVALID_FLAG_BITS) != 0), 4)
        flag_mask(known & ~is_open & (flags != 0), 3)
        flag_mask(is_open & ((sizes < 0) | (positions < 0)), 7)
        flag_mask(is_open & (positions > sizes), 8)
        flag_mask(is_seek & ((sizes < 0) | (positions < 0)), 5)
        flag_mask(is_close & (positions < 0), 6)
        flag_mask((kinds == KIND_TRUNC) & (sizes < 0), 4)

        # Stateful open-table checks over the oid-grouped sub-rows.
        sub = np.nonzero(is_open | is_seek | is_close)[0]
        if len(sub):
            s_oids = oids[sub]
            order = np.argsort(s_oids, kind="stable")
            o_ord = s_oids[order]
            k_ord = kinds[sub][order]
            rows_ord = sub[order]
            m = len(sub)
            gstart = np.empty(m, np.bool_)
            gstart[0] = True
            gstart[1:] = o_ord[1:] != o_ord[:-1]
            grp = np.cumsum(gstart) - 1
            uniq = o_ord[gstart]

            def carried(oid_set):
                if not oid_set:
                    return np.zeros(len(uniq), np.bool_)
                members = np.fromiter(oid_set, np.int64, len(oid_set))
                return np.isin(uniq, members)

            present = np.empty(m, np.bool_)
            present[1:] = k_ord[:-1] != KIND_CLOSE
            present[gstart] = carried(self._present)

            is_cl = k_ord == KIND_CLOSE
            cs = np.cumsum(is_cl)
            excl = cs - is_cl  # closes strictly before, globally
            head_excl = excl[gstart]
            closed_before = carried(self._closed)[grp] | (
                excl - head_excl[grp] > 0
            )

            is_op = k_ord == KIND_OPEN
            flag_rows(rows_ord[is_op & present], 5)  # opened twice
            flag_rows(rows_ord[is_op & closed_before], 6)  # reused
            flag_rows(rows_ord[(k_ord == KIND_SEEK) & ~present], 4)
            flag_rows(rows_ord[is_cl & ~present], 4)  # close unknown
            flag_rows(rows_ord[is_cl & closed_before], 5)  # closed twice

            # Carry across chunks: the group-final op decides presence;
            # any close in the group marks the oid ever-closed.
            gend = np.empty(m, np.bool_)
            gend[:-1] = gstart[1:]
            gend[-1] = True
            final_close = is_cl[gend]
            self._present.difference_update(uniq[final_close].tolist())
            self._present.update(uniq[~final_close].tolist())
            self._closed.update(uniq[cs[gend] - head_excl > 0].tolist())

        self.open_count += int(np.count_nonzero(is_open))
        self._last_time = float(times[-1])

        if keys:
            allk = np.concatenate(keys)
            self.total_problems += len(allk)
            room = self.max_problems - len(self.formatted)
            if room > 0:
                if len(allk) > room:
                    allk = np.sort(np.partition(allk, room - 1)[:room])
                else:
                    allk.sort()
                self._format(allk, base, v, prev)

    def _format(self, keys, base, v, prev) -> None:
        out = self.formatted
        for key in keys.tolist():
            row = key >> 4
            rank = key & 15
            i = base + row
            if rank == 0:
                out.append(
                    f"event {i}: time {float(v.times[row])} precedes "
                    f"previous {float(prev[row])}"
                )
            elif rank == 1:
                out.append(
                    f"event {i}: time {float(v.times[row])} s outside the "
                    f"binary format's u32 centisecond range "
                    f"(0..{MAX_TRACE_TIME:.2f} s)"
                )
            elif rank == 2:
                out.append(f"event {i}: unknown kind tag {int(v.kinds[row])}")
            else:
                kind = int(v.kinds[row])
                fl = int(v.flags[row])
                oid = int(v.open_ids[row])
                if kind == KIND_OPEN:
                    if rank == 3:
                        out.append(
                            f"event {i}: open flag byte {fl:#04x} has no "
                            f"mode bits"
                        )
                    elif rank == 4:
                        out.append(
                            f"event {i}: open flag byte {fl:#04x} sets "
                            f"undefined bits"
                        )
                    elif rank == 5:
                        out.append(f"event {i}: open_id {oid} opened twice")
                    elif rank == 6:
                        out.append(
                            f"event {i}: open_id {oid} reused after close"
                        )
                    elif rank == 7:
                        out.append(f"event {i}: negative size/position on open")
                    else:
                        out.append(
                            f"event {i}: open initial_pos "
                            f"{int(v.positions[row])} beyond "
                            f"size {int(v.sizes[row])}"
                        )
                elif rank == 3:
                    out.append(
                        f"event {i}: non-open row has nonzero flag byte "
                        f"{fl:#04x}"
                    )
                elif kind == KIND_SEEK:
                    if rank == 4:
                        out.append(
                            f"event {i}: seek on unknown open_id {oid}"
                        )
                    else:
                        out.append(f"event {i}: negative seek position")
                elif kind == KIND_CLOSE:
                    if rank == 4:
                        out.append(
                            f"event {i}: close on unknown open_id {oid}"
                        )
                    elif rank == 5:
                        out.append(f"event {i}: open_id {oid} closed twice")
                    else:
                        out.append(
                            f"event {i}: negative final position on close"
                        )
                else:  # KIND_TRUNC
                    out.append(f"event {i}: truncate to negative length")

    def finish(self) -> ValidationReport:
        problems = list(self.formatted)
        if self.total_problems > self.max_problems:
            problems.append("... further problems suppressed")
        return ValidationReport(
            event_count=self.event_count,
            open_count=self.open_count,
            unmatched_opens=len(self._present),
            problems=problems,
            max_problems=self.max_problems,
        )


def validate_columns_numpy(
    cols: TraceColumns, max_problems: int = DEFAULT_MAX_PROBLEMS
) -> ValidationReport:
    """Vectorized :func:`~repro.trace.validate.validate_columns` over an
    in-RAM columnar trace."""
    validator = VectorizedValidator(len(cols), max_problems=max_problems)
    validator.feed(cols)
    return validator.finish()


def analyze_columns_numpy(
    cols: TraceColumns,
    long_window: float = 600.0,
    short_window: float = 10.0,
    burst_window: float = 10.0,
) -> OnePassReport:
    """Vectorized :func:`~repro.analysis.onepass.analyze_onepass` over an
    in-RAM columnar trace.  Raises :class:`VectorFallback` when the input
    needs the pure-Python path."""
    n = len(cols.kinds)
    start = cols.times[0] if n else 0.0
    duration = (cols.times[-1] - start) if n else 0.0
    collector = VectorizedCollector(
        cols.name, start, duration,
        long_window=long_window, short_window=short_window,
        burst_window=burst_window,
    )
    collector.feed(cols)
    return collector.finish()


# -- packed-stream compiler ----------------------------------------------------


def pack_stream_numpy(stream, block_size: int, start_time: float = 0.0):
    """Vectorized :func:`~repro.parallel.packed.pack_stream`.

    The per-item Python loop survives only to evolve the per-fid
    known-size watermark — an order-dependent min/max fold the coverage
    test depends on — and to record one scalar row per item.  The per-
    block expansion, where the reference spends its time (``for block in
    range(first, last + 1)`` with three appends per block), becomes one
    ``repeat``/``arange`` pass over all items at once, and the coverage
    test one boolean expression over the expanded rows.
    """
    from ..cache.stream import Invalidation
    from ..parallel.packed import (
        _BLOCK_LIMIT,
        KEY_SHIFT,
        OP_INVALIDATE,
        OP_READ,
        OP_WRITE,
        OP_WRITE_COVERED,
        PackedStream,
    )

    if block_size <= 0:
        raise ValueError(f"block size must be positive, got {block_size}")
    bs = block_size
    _require(bs <= 1 << 32, "oversized block size")

    n_items = len(stream)
    it_kind: list[int] = []  # OP_READ / OP_WRITE / OP_INVALIDATE
    it_fid: list[int] = []
    it_first: list[int] = []
    it_last: list[int] = []
    it_start: list[int] = []
    it_end: list[int] = []
    it_known: list[int] = []
    it_time: list[float] = []
    known: dict[int, int] = {}
    get = known.get
    for item in stream:
        if isinstance(item, Invalidation):
            fid = item.file_id
            k = get(fid, 0)
            fb = item.from_byte
            known[fid] = k if k < fb else fb
            first_dead = -(-fb // bs)
            if first_dead > _BLOCK_LIMIT:
                first_dead = _BLOCK_LIMIT
            it_kind.append(OP_INVALIDATE)
            it_fid.append(fid)
            it_first.append(first_dead)
            it_last.append(first_dead)
            it_start.append(0)
            it_end.append(0)
            it_known.append(0)
            it_time.append(item.time)
            continue
        fid = item.file_id
        start = item.start
        end = item.end
        last = (end - 1) // bs
        if last >= _BLOCK_LIMIT:
            raise ValueError(
                f"block index {last} does not fit a packed key "
                f"(file {fid}, {bs}-byte blocks); use the item-stream path"
            )
        k = get(fid, 0)
        it_kind.append(OP_WRITE if item.is_write else OP_READ)
        it_fid.append(fid)
        it_first.append(start // bs)
        it_last.append(last)
        it_start.append(start)
        it_end.append(end)
        it_known.append(k)
        it_time.append(item.time)
        if end > k:
            known[fid] = end

    try:
        fids = np.asarray(it_fid, np.int64)
        firsts = np.asarray(it_first, np.int64)
        lasts = np.asarray(it_last, np.int64)
        starts = np.asarray(it_start, np.int64)
        ends = np.asarray(it_end, np.int64)
        ks = np.asarray(it_known, np.int64)
    except OverflowError as exc:  # beyond int64: let the reference decide
        raise VectorFallback(str(exc)) from None
    kindcol = np.asarray(it_kind, np.uint8)
    tms = np.asarray(it_time, np.float64)
    if n_items:
        # Keep every intermediate (fid << KEY_SHIFT, block * bs ± bs)
        # inside int64 so the arithmetic below cannot wrap.
        _require(
            -(1 << 33) < int(fids.min()) and int(fids.max()) < (1 << 33),
            "file id out of packed-key range",
        )
        _require(
            -(1 << 62) < int(starts.min()) and int(ends.max()) < (1 << 62),
            "byte offset out of int64-safe range",
        )

    raw_counts = lasts - firsts + 1
    is_invalidate = kindcol == OP_INVALIDATE
    n_accesses = int(raw_counts[~is_invalidate].sum())
    counts = np.maximum(raw_counts, 0)
    total = int(counts.sum())
    rep = np.repeat(np.arange(n_items, dtype=np.int64), counts)
    cum = np.cumsum(counts) - counts
    block = firsts[rep] + (np.arange(total, dtype=np.int64) - cum[rep])
    keys = (fids[rep] << KEY_SHIFT) + block

    ops = kindcol[rep]
    is_write = ops == OP_WRITE
    if is_write.any():
        bstart = block * bs
        covered = (
            (starts[rep] <= bstart) & (ends[rep] >= bstart + bs)
        ) | (bstart >= ks[rep])
        ops = np.where(is_write & covered, np.uint8(OP_WRITE_COVERED), ops)

    keys_arr = array("q")
    keys_arr.frombytes(keys.tobytes())
    times_arr = array("d")
    times_arr.frombytes(tms[rep].tobytes())
    return PackedStream(
        block_size=bs,
        start_time=start_time,
        ops=ops.astype(np.uint8).tobytes(),
        keys=keys_arr,
        times=times_arr,
        n_accesses=n_accesses,
    )
