"""The trace-driven disk-block-cache simulator.

The paper's second trace-processing program: replays a trace's transfers
through a cache of fixed-size blocks (LRU by default; see
:mod:`repro.cache.replacement` for the policy zoo) under four write
policies,
sweeping cache size (Figure 5 / Table VI), block size (Figure 6 /
Table VII), and — Figure 7 — an execve-driven paging approximation.
"""

from .metrics import CacheMetrics, ResidencyTracker
from .replacement import (
    REPLACEMENT_NAMES,
    REPLACEMENT_POLICIES,
    ReplacementPolicy,
    current_replacement,
    make_replacement,
    replacement_context,
    validate_replacement,
)
from .policies import (
    DELAYED_WRITE,
    FLUSH_30S,
    FLUSH_5MIN,
    WRITE_THROUGH,
    PolicySpec,
    WritePolicy,
)
from .simulator import BlockCacheSimulator, simulate_cache
from .twolevel import TwoLevelResult, simulate_two_level
from .stream import Invalidation, StreamItem, build_stream
from .sweep import (
    PAPER_BLOCK_SIZES,
    PAPER_BLOCK_SWEEP_CACHES,
    PAPER_CACHE_SIZES,
    PAPER_POLICIES,
    BlockSizeSweep,
    CachePolicySweep,
    PagingComparison,
    block_size_sweep,
    cache_size_policy_sweep,
    count_block_accesses,
    paging_comparison,
)

__all__ = [
    "BlockCacheSimulator",
    "simulate_cache",
    "simulate_two_level",
    "TwoLevelResult",
    "CacheMetrics",
    "ResidencyTracker",
    "PolicySpec",
    "WritePolicy",
    "WRITE_THROUGH",
    "FLUSH_30S",
    "FLUSH_5MIN",
    "DELAYED_WRITE",
    "ReplacementPolicy",
    "REPLACEMENT_POLICIES",
    "REPLACEMENT_NAMES",
    "make_replacement",
    "validate_replacement",
    "current_replacement",
    "replacement_context",
    "build_stream",
    "StreamItem",
    "Invalidation",
    "cache_size_policy_sweep",
    "block_size_sweep",
    "paging_comparison",
    "count_block_accesses",
    "CachePolicySweep",
    "BlockSizeSweep",
    "PagingComparison",
    "PAPER_CACHE_SIZES",
    "PAPER_POLICIES",
    "PAPER_BLOCK_SIZES",
    "PAPER_BLOCK_SWEEP_CACHES",
]
