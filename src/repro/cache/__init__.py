"""The trace-driven disk-block-cache simulator.

The paper's second trace-processing program: replays a trace's transfers
through an LRU cache of fixed-size blocks under four write policies,
sweeping cache size (Figure 5 / Table VI), block size (Figure 6 /
Table VII), and — Figure 7 — an execve-driven paging approximation.
"""

from .metrics import CacheMetrics, ResidencyTracker
from .policies import (
    DELAYED_WRITE,
    FLUSH_30S,
    FLUSH_5MIN,
    WRITE_THROUGH,
    PolicySpec,
    WritePolicy,
)
from .simulator import BlockCacheSimulator, simulate_cache
from .twolevel import TwoLevelResult, simulate_two_level
from .stream import Invalidation, StreamItem, build_stream
from .sweep import (
    PAPER_BLOCK_SIZES,
    PAPER_BLOCK_SWEEP_CACHES,
    PAPER_CACHE_SIZES,
    PAPER_POLICIES,
    BlockSizeSweep,
    CachePolicySweep,
    PagingComparison,
    block_size_sweep,
    cache_size_policy_sweep,
    count_block_accesses,
    paging_comparison,
)

__all__ = [
    "BlockCacheSimulator",
    "simulate_cache",
    "simulate_two_level",
    "TwoLevelResult",
    "CacheMetrics",
    "ResidencyTracker",
    "PolicySpec",
    "WritePolicy",
    "WRITE_THROUGH",
    "FLUSH_30S",
    "FLUSH_5MIN",
    "DELAYED_WRITE",
    "build_stream",
    "StreamItem",
    "Invalidation",
    "cache_size_policy_sweep",
    "block_size_sweep",
    "paging_comparison",
    "count_block_accesses",
    "CachePolicySweep",
    "BlockSizeSweep",
    "PagingComparison",
    "PAPER_CACHE_SIZES",
    "PAPER_POLICIES",
    "PAPER_BLOCK_SIZES",
    "PAPER_BLOCK_SWEEP_CACHES",
]
