"""Metadata (i-node and directory) traffic — the paper's Section 8 frontier.

The traces deliberately exclude "the overhead I/O activity needed to
interpret pathnames or to read and write file descriptors", yet the paper
closes on exactly that: "It appears from our data that more than half of
all disk block references could come from these other accesses.  There
are indications that the other accesses can also be handled efficiently
by caching, but more work is needed."

This module does that more work, within the trace's limits.  Every open
implies:

* an **i-node read** — modelled as a 128-byte access into a single large
  i-node-table pseudo-file at offset ``128 * file_id``, so i-nodes of
  nearby files share blocks exactly as they share cylinders on a real
  disk;
* a **directory read** — one block of a per-directory pseudo-file; the
  trace carries no pathnames, so files are clustered into synthetic
  directories of ``files_per_directory`` consecutive file ids (files
  created together live together, which is also how real directories
  fill);
* and, for writable opens, an **i-node write-back at close** — 4.2 BSD
  updated the on-disk i-node when a file changed.

The resulting transfers are interleaved into the normal stream, and the
ordinary cache simulator measures whether caching tames them.  Pseudo
file ids live far above any real file id, so they never collide.
"""

from __future__ import annotations

from ..analysis.accesses import Transfer
from ..trace.log import TraceLog
from ..trace.records import AccessMode, CloseEvent, OpenEvent
from .stream import StreamItem, cached_stream, memoize_per_log

__all__ = [
    "INODE_TABLE_FILE_ID",
    "DIRECTORY_FILE_ID_BASE",
    "metadata_stream",
    "build_stream_with_metadata",
    "cached_stream_with_metadata",
    "is_metadata_item",
]

#: Pseudo-file holding the packed i-node table.
INODE_TABLE_FILE_ID = 10**9
#: Directory pseudo-files start here (one per synthetic directory).
DIRECTORY_FILE_ID_BASE = 2 * 10**9

#: On-disk i-node size in 4.2 BSD (bytes).
INODE_SIZE = 128
#: One directory content block.
DIRECTORY_BLOCK = 512


def metadata_stream(
    log: TraceLog,
    files_per_directory: int = 32,
    inode_writeback: bool = True,
) -> list[StreamItem]:
    """The implied metadata transfers of *log*, in time order."""
    items: list[tuple[float, int, Transfer]] = []
    writable_opens: dict[int, OpenEvent] = {}

    for seq, event in enumerate(log.events):
        if isinstance(event, OpenEvent):
            inode_offset = INODE_SIZE * event.file_id
            items.append(
                (
                    event.time,
                    seq,
                    Transfer(
                        time=event.time,
                        file_id=INODE_TABLE_FILE_ID,
                        user_id=event.user_id,
                        start=inode_offset,
                        end=inode_offset + INODE_SIZE,
                        is_write=False,
                    ),
                )
            )
            directory = DIRECTORY_FILE_ID_BASE + event.file_id // files_per_directory
            items.append(
                (
                    event.time,
                    seq,
                    Transfer(
                        time=event.time,
                        file_id=directory,
                        user_id=event.user_id,
                        start=0,
                        end=DIRECTORY_BLOCK,
                        is_write=False,
                    ),
                )
            )
            if event.mode.writable:
                writable_opens[event.open_id] = event
        elif isinstance(event, CloseEvent) and inode_writeback:
            opener = writable_opens.pop(event.open_id, None)
            if opener is not None:
                inode_offset = INODE_SIZE * opener.file_id
                items.append(
                    (
                        event.time,
                        seq,
                        Transfer(
                            time=event.time,
                            file_id=INODE_TABLE_FILE_ID,
                            user_id=opener.user_id,
                            start=inode_offset,
                            end=inode_offset + INODE_SIZE,
                            is_write=True,
                        ),
                    )
                )

    items.sort(key=lambda x: (x[0], x[1]))
    return [item for _t, _s, item in items]


def build_stream_with_metadata(
    log: TraceLog,
    include_paging: bool = False,
    files_per_directory: int = 32,
    inode_writeback: bool = True,
) -> list[StreamItem]:
    """The normal simulator stream with metadata transfers interleaved."""
    import heapq

    data = cached_stream(log, include_paging=include_paging)
    meta = metadata_stream(
        log,
        files_per_directory=files_per_directory,
        inode_writeback=inode_writeback,
    )
    return list(heapq.merge(data, meta, key=lambda item: item.time))


def cached_stream_with_metadata(
    log: TraceLog,
    include_paging: bool = False,
    files_per_directory: int = 32,
    inode_writeback: bool = True,
) -> list[StreamItem]:
    """Memoized :func:`build_stream_with_metadata` (one build per config)."""
    return memoize_per_log(
        log,
        ("stream+metadata", include_paging, files_per_directory, inode_writeback),
        lambda: build_stream_with_metadata(
            log,
            include_paging=include_paging,
            files_per_directory=files_per_directory,
            inode_writeback=inode_writeback,
        ),
    )


def is_metadata_item(item: StreamItem) -> bool:
    """True for transfers generated by :func:`metadata_stream`."""
    return getattr(item, "file_id", 0) >= INODE_TABLE_FILE_ID
