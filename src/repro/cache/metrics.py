"""Simulation metrics.

The paper's principal metric is the **miss ratio**: disk I/O operations
over logical block accesses (Section 6.1).  Both numerator terms are
tracked separately (reads caused by misses; writes caused by the write
policy), along with the counters that explain *why* delayed-write wins —
dirty blocks that died in the cache and never touched the disk — and the
block residency-time statistics behind the paper's crash-exposure
discussion (Section 6.2: with a 4 MB cache about 20% of blocks stay in
the cache longer than 20 minutes).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace

__all__ = ["CacheMetrics", "ResidencyTracker", "ExposureTracker"]


@dataclass
class CacheMetrics:
    """Counters accumulated over one simulation run."""

    read_accesses: int = 0
    write_accesses: int = 0
    disk_reads: int = 0
    disk_writes: int = 0
    evictions: int = 0
    invalidated_blocks: int = 0
    dirty_blocks_created: int = 0  # transitions clean/absent -> dirty
    dirty_blocks_discarded: int = 0  # dirty blocks dropped by invalidation
    read_elisions: int = 0  # write misses that skipped the disk read

    @property
    def block_accesses(self) -> int:
        """Logical block accesses — the miss ratio's denominator."""
        return self.read_accesses + self.write_accesses

    @property
    def disk_ios(self) -> int:
        return self.disk_reads + self.disk_writes

    @property
    def miss_ratio(self) -> float:
        """Disk I/Os over logical block accesses (the paper's metric)."""
        if not self.block_accesses:
            return 0.0
        return self.disk_ios / self.block_accesses

    @property
    def write_fraction(self) -> float:
        """Writes among logical block accesses (~1/3 in the paper)."""
        if not self.block_accesses:
            return 0.0
        return self.write_accesses / self.block_accesses

    @property
    def dirty_discard_fraction(self) -> float:
        """Of all blocks ever dirtied, how many died in the cache unwritten —
        the paper reports ~75% for large delayed-write caches."""
        if not self.dirty_blocks_created:
            return 0.0
        return self.dirty_blocks_discarded / self.dirty_blocks_created

    def snapshot(self) -> "CacheMetrics":
        """A copy of the current counters (for warmup checkpoints)."""
        return replace(self)

    def delta(self, since: "CacheMetrics") -> "CacheMetrics":
        """Counter differences ``self - since`` — the *warm* metrics when
        ``since`` was snapshotted at the end of a warmup period."""
        kwargs = {
            f.name: getattr(self, f.name) - getattr(since, f.name)
            for f in fields(self)
        }
        return CacheMetrics(**kwargs)

    def summary(self) -> str:
        return (
            f"{self.block_accesses:,} block accesses "
            f"({100 * self.write_fraction:.0f}% writes), "
            f"{self.disk_reads:,} disk reads + {self.disk_writes:,} disk writes "
            f"= miss ratio {100 * self.miss_ratio:.1f}%"
        )


@dataclass
class ExposureTracker:
    """Time-weighted crash exposure: how much unwritten dirty data sits in
    the cache over time (Section 6.2's objection to pure delayed-write:
    "System crashes could cause large amounts of information to be
    lost.").  ``update`` is called with the current time whenever the
    dirty count changes; the integral divided by elapsed time is the
    average exposure, and ``max_dirty_blocks`` the worst case."""

    _last_time: float = 0.0
    _current_dirty: int = 0
    _integral: float = 0.0  # dirty-blocks x seconds
    max_dirty_blocks: int = 0
    _started: bool = False

    def update(self, now: float, dirty_count: int) -> None:
        if self._started:
            self._integral += self._current_dirty * max(0.0, now - self._last_time)
        self._started = True
        self._last_time = now
        self._current_dirty = dirty_count
        self.max_dirty_blocks = max(self.max_dirty_blocks, dirty_count)

    def average_dirty_blocks(self, duration: float) -> float:
        """Mean dirty-block count over *duration* seconds."""
        if duration <= 0:
            return 0.0
        return self._integral / duration


@dataclass
class ResidencyTracker:
    """Tracks how long blocks stay in the cache.

    ``record`` is called with each block's residency when it leaves the
    cache (eviction or invalidation); :meth:`finish` accounts for blocks
    still resident at the end of the trace (their residency is at least
    the remaining span — they count against any threshold they already
    exceed).
    """

    residencies: list[float] = field(default_factory=list)
    _still_resident: list[float] = field(default_factory=list)

    def record(self, residency: float) -> None:
        self.residencies.append(residency)

    def finish(self, still_resident: list[float]) -> None:
        self._still_resident = list(still_resident)

    @property
    def total_blocks(self) -> int:
        return len(self.residencies) + len(self._still_resident)

    def fraction_longer_than(self, threshold: float) -> float:
        """Fraction of all cache residencies exceeding *threshold* seconds."""
        if not self.total_blocks:
            return 0.0
        over = sum(1 for r in self.residencies if r > threshold)
        over += sum(1 for r in self._still_resident if r > threshold)
        return over / self.total_blocks
