"""Write policies for the block-cache simulator (paper Section 6.2).

The paper evaluates four policies:

* **write-through** — every write of a block costs a disk write
  immediately; the cache can then never do better than the write fraction
  of the access stream (~30% in the traces).
* **flush-back(T)** — the cache is scanned every *T* seconds and blocks
  modified since the last scan are written out.  The paper uses T=30 s
  (the classical ``sync`` interval) and T=5 min.
* **delayed-write** — a dirty block is written only when it is about to be
  ejected.  Most newly written blocks are deleted or overwritten first and
  never reach the disk at all — the paper's headline result.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["WritePolicy", "PolicySpec", "WRITE_THROUGH", "FLUSH_30S", "FLUSH_5MIN", "DELAYED_WRITE"]


class WritePolicy(enum.Enum):
    """The three policy families of Figure 5."""

    WRITE_THROUGH = "write-through"
    FLUSH_BACK = "flush-back"
    DELAYED_WRITE = "delayed-write"


@dataclass(frozen=True)
class PolicySpec:
    """A policy plus its parameter (the flush interval, if any)."""

    policy: WritePolicy
    flush_interval: float | None = None

    def __post_init__(self):
        if self.policy is WritePolicy.FLUSH_BACK:
            if not self.flush_interval or self.flush_interval <= 0:
                raise ValueError("flush-back needs a positive flush_interval")
        elif self.flush_interval is not None:
            raise ValueError(f"{self.policy.value} takes no flush interval")

    @property
    def label(self) -> str:
        if self.policy is WritePolicy.FLUSH_BACK:
            interval = self.flush_interval
            if interval % 60 == 0:
                return f"{int(interval // 60)} min flush"
            return f"{interval:g} sec flush"
        return self.policy.value


#: The paper's four policy columns (Figure 5 / Table VI).
WRITE_THROUGH = PolicySpec(WritePolicy.WRITE_THROUGH)
FLUSH_30S = PolicySpec(WritePolicy.FLUSH_BACK, 30.0)
FLUSH_5MIN = PolicySpec(WritePolicy.FLUSH_BACK, 300.0)
DELAYED_WRITE = PolicySpec(WritePolicy.DELAYED_WRITE)
