"""Pluggable block-replacement policies (the cache-policy zoo).

The paper simulates LRU only; ROADMAP item 3 grows the simulator into a
policy-pluggable zoo so replacement strategies can be ranked across the
three machines and the strace workloads ("Table VI revisited").  This
module is the plugin API: a :class:`ReplacementPolicy` owns *ordering*
only — which resident block dies next — while the simulator core keeps
the paper's write-policy/invalidation/read-elision semantics and every
metrics counter.

The contract is deliberately tiny and call-sequence-driven so the full
simulator (:class:`~repro.cache.simulator.BlockCacheSimulator`, tuple
keys) and the packed replayer
(:func:`~repro.parallel.packed.simulate_packed`, int keys) drive the
*same* policy classes through the *same* operation sequence and
therefore make bit-identical victim choices (fuzz pillar 6 checks this
continuously):

* ``touch(key)`` — *key* was referenced while resident (a hit);
* ``insert(key)`` — *key* became resident (a miss was filled);
* ``victim()`` — choose (do not remove) the next block to evict;
* ``remove(key, evicted)`` — *key* left the cache; ``evicted=True``
  only for capacity evictions, so ghost-keeping policies (2Q, ARC) can
  remember ejected keys while invalidated blocks vanish outright.

Everything here is deterministic: a policy's choices are a pure
function of its operation sequence (the ensemble carries its own
counter-based LCG), which is what lets the differential suite demand
exact :class:`~repro.cache.metrics.CacheMetrics` equality.

Which policies admit one-pass Mattson curves is a property of the
priority function: LRU's priority (recency) is independent of cache
contents, so one stack pass yields the whole miss-ratio curve
(:mod:`repro.parallel.stack`, vectorized in
:mod:`repro.parallel.veccache`).  LFU-with-aging is also a stack
algorithm (its priority — decayed frequency, then recency — is a pure
function of the reference string; the inclusion property tests assert
the consequence), but the curve machinery is LRU-shaped, so every
non-LRU policy is evaluated by replay, one capacity at a time.
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import contextmanager
from contextvars import ContextVar
from heapq import heappop, heappush

__all__ = [
    "ReplacementPolicy",
    "LruPolicy",
    "FifoPolicy",
    "ClockPolicy",
    "LfuPolicy",
    "TwoQPolicy",
    "ArcPolicy",
    "EnsemblePolicy",
    "REPLACEMENT_POLICIES",
    "REPLACEMENT_NAMES",
    "make_replacement",
    "validate_replacement",
    "current_replacement",
    "replacement_context",
]


class ReplacementPolicy:
    """Victim-selection strategy for one fixed-capacity block cache."""

    __slots__ = ()

    name = "abstract"

    def touch(self, key) -> None:
        """*key* was referenced while resident."""
        raise NotImplementedError

    def insert(self, key) -> None:
        """*key* became resident (after a miss)."""
        raise NotImplementedError

    def victim(self):
        """The resident key to evict next (chosen, not yet removed)."""
        raise NotImplementedError

    def remove(self, key, evicted: bool = False) -> None:
        """*key* left the cache (capacity eviction iff *evicted*)."""
        raise NotImplementedError


class LruPolicy(ReplacementPolicy):
    """Least-recently-used — the paper's policy, and the zoo's oracle."""

    __slots__ = ("_order",)

    name = "lru"

    def __init__(self, capacity: int):
        self._order: OrderedDict = OrderedDict()

    def touch(self, key) -> None:
        self._order.move_to_end(key)

    def insert(self, key) -> None:
        self._order[key] = True

    def victim(self):
        return next(iter(self._order))

    def remove(self, key, evicted: bool = False) -> None:
        del self._order[key]


class FifoPolicy(ReplacementPolicy):
    """First-in-first-out: insertion order, references never reorder."""

    __slots__ = ("_order",)

    name = "fifo"

    def __init__(self, capacity: int):
        self._order: OrderedDict = OrderedDict()

    def touch(self, key) -> None:
        pass

    def insert(self, key) -> None:
        self._order[key] = True

    def victim(self):
        return next(iter(self._order))

    def remove(self, key, evicted: bool = False) -> None:
        del self._order[key]


class ClockPolicy(ReplacementPolicy):
    """Second-chance FIFO: a reference bit spares a block one rotation.

    The ring is an :class:`OrderedDict` whose head is the clock hand;
    :meth:`victim` rotates referenced blocks to the tail (clearing their
    bit) until an unreferenced head appears.  New and referenced blocks
    carry a set bit, so a full rotation degrades to FIFO exactly when
    every block was touched since the hand last passed.
    """

    __slots__ = ("_ring",)

    name = "clock"

    def __init__(self, capacity: int):
        self._ring: OrderedDict = OrderedDict()

    def touch(self, key) -> None:
        self._ring[key] = True

    def insert(self, key) -> None:
        self._ring[key] = True

    def victim(self):
        ring = self._ring
        while True:
            key = next(iter(ring))
            if ring[key]:
                ring[key] = False
                ring.move_to_end(key)
            else:
                return key

    def remove(self, key, evicted: bool = False) -> None:
        del self._ring[key]


#: LFU decay cadence, in accesses: every period halves a block's count
#: (applied lazily at its next reference), so bursts from last week
#: cannot pin a block forever.
LFU_AGING_PERIOD = 4096


class LfuPolicy(ReplacementPolicy):
    """Least-frequently-used with periodic aging and persistent counts.

    Frequency survives eviction (the "perfect LFU" variant): a block's
    priority — its decayed reference count, recency as the tie-break —
    is a pure function of the reference string, never of cache
    contents.  That makes LFU a priority-list stack algorithm, so the
    inclusion property (miss ratio non-increasing in cache size) holds;
    the property suite asserts it.  Aging halves a count once per
    :data:`LFU_AGING_PERIOD` accesses, applied lazily when the block is
    next referenced.

    Victim selection is a lazy heap: every reference pushes the block's
    fresh ``(count, last_access, key)`` entry; :meth:`victim` pops until
    an entry matches the block's current state and the block is
    resident.
    """

    __slots__ = ("_tick", "_count", "_last", "_period", "_resident", "_heap")

    name = "lfu"

    def __init__(self, capacity: int):
        self._tick = 0
        self._count: dict = {}
        self._last: dict = {}
        self._period: dict = {}
        self._resident: dict = {}
        self._heap: list = []

    def _bump(self, key) -> None:
        self._tick += 1
        tick = self._tick
        period = tick // LFU_AGING_PERIOD
        old_period = self._period.get(key, period)
        count = (self._count.get(key, 0) >> (period - old_period)) + 1
        self._count[key] = count
        self._period[key] = period
        self._last[key] = tick
        if key in self._resident:
            heappush(self._heap, (count, tick, key))

    def touch(self, key) -> None:
        self._bump(key)

    def insert(self, key) -> None:
        self._resident[key] = True
        self._bump(key)

    def victim(self):
        heap = self._heap
        while True:
            count, tick, key = heap[0]
            if (
                key in self._resident
                and self._count.get(key) == count
                and self._last.get(key) == tick
            ):
                return key
            heappop(heap)

    def remove(self, key, evicted: bool = False) -> None:
        # Counts persist on purpose (see the class docstring); only
        # residency ends.
        del self._resident[key]


class TwoQPolicy(ReplacementPolicy):
    """2Q (Johnson & Shasha, VLDB '94), the full two-queue version.

    First-time blocks enter the probationary FIFO ``A1in``; blocks
    evicted from it leave a ghost entry in the bounded FIFO ``A1out``;
    a reference that hits a ghost proves reuse and admits the block to
    the LRU main queue ``Am``.  One-shot scans therefore wash through
    ``A1in`` without ever displacing the hot set.  ``Kin``/``Kout`` use
    the paper's tuning (25% / 50% of capacity).
    """

    __slots__ = ("_kin", "_kout", "_a1in", "_a1out", "_am")

    name = "2q"

    def __init__(self, capacity: int):
        self._kin = max(1, capacity // 4)
        self._kout = max(1, capacity // 2)
        self._a1in: OrderedDict = OrderedDict()
        self._a1out: OrderedDict = OrderedDict()
        self._am: OrderedDict = OrderedDict()

    def touch(self, key) -> None:
        if key in self._am:
            self._am.move_to_end(key)
        # A1in hits deliberately do not reorder (the 2Q paper's rule:
        # correlated references within the probation window are noise).

    def insert(self, key) -> None:
        if key in self._a1out:
            del self._a1out[key]
            self._am[key] = True
        else:
            self._a1in[key] = True

    def victim(self):
        if self._a1in and (len(self._a1in) > self._kin or not self._am):
            return next(iter(self._a1in))
        return next(iter(self._am))

    def remove(self, key, evicted: bool = False) -> None:
        if key in self._a1in:
            del self._a1in[key]
            if evicted:
                self._a1out[key] = True
                while len(self._a1out) > self._kout:
                    self._a1out.popitem(last=False)
        else:
            del self._am[key]


class ArcPolicy(ReplacementPolicy):
    """ARC (Megiddo & Modha, FAST '03): adaptive recency/frequency split.

    Resident blocks live in ``T1`` (seen once) or ``T2`` (seen again);
    ghosts of recent evictions live in ``B1``/``B2``.  A ghost hit in
    ``B1`` means the recency half is too small and grows the target
    ``p``; a ``B2`` ghost hit shrinks it.  :meth:`victim` is the
    paper's REPLACE: evict from ``T1`` while it exceeds ``p``, else
    from ``T2``; the evictee's ghost goes to the matching B-list.

    The simulator core inserts first and evicts after (capacity is
    checked post-insert), so :meth:`insert` stashes what REPLACE needs
    — the pre-insert ``|T1|``, whether the access hit ``B2``, and
    whether the directory bound forces a ghost-free T1 ejection — and
    :meth:`victim`/:meth:`remove` consume it.
    """

    __slots__ = (
        "capacity",
        "_p",
        "_t1",
        "_t2",
        "_b1",
        "_b2",
        "_was_b2",
        "_new_in_t1",
        "_direct",
        "_victim_key",
        "_ghost_dest",
    )

    name = "arc"

    def __init__(self, capacity: int):
        self.capacity = capacity
        self._p = 0
        self._t1: OrderedDict = OrderedDict()
        self._t2: OrderedDict = OrderedDict()
        self._b1: OrderedDict = OrderedDict()
        self._b2: OrderedDict = OrderedDict()
        self._was_b2 = False
        self._new_in_t1 = False
        self._direct = False
        self._victim_key = None
        self._ghost_dest = None

    def touch(self, key) -> None:
        if key in self._t1:
            del self._t1[key]
            self._t2[key] = True
        else:
            self._t2.move_to_end(key)

    def insert(self, key) -> None:
        c = self.capacity
        self._was_b2 = False
        self._direct = False
        if key in self._b1:
            self._p = min(
                c, self._p + max(1, len(self._b2) // max(1, len(self._b1)))
            )
            del self._b1[key]
            self._t2[key] = True
            self._new_in_t1 = False
        elif key in self._b2:
            self._was_b2 = True
            self._p = max(
                0, self._p - max(1, len(self._b1) // max(1, len(self._b2)))
            )
            del self._b2[key]
            self._t2[key] = True
            self._new_in_t1 = False
        else:
            l1 = len(self._t1) + len(self._b1)
            if l1 >= c:
                if self._b1:
                    self._b1.popitem(last=False)
                else:
                    # |T1| = c with no B1 ghosts: the paper ejects the
                    # T1 LRU outright, without ghosting it.
                    self._direct = True
            elif (
                l1 + len(self._t2) + len(self._b2) >= 2 * c and self._b2
            ):
                self._b2.popitem(last=False)
            self._t1[key] = True
            self._new_in_t1 = True

    def victim(self):
        t1 = self._t1
        t1_len = len(t1) - (1 if self._new_in_t1 else 0)
        if self._direct and t1:
            key = next(iter(t1))
            self._ghost_dest = None
        elif t1_len >= 1 and (
            t1_len > self._p or (self._was_b2 and t1_len == self._p)
        ):
            key = next(iter(t1))
            self._ghost_dest = "b1"
        elif self._t2:
            key = next(iter(self._t2))
            self._ghost_dest = "b2"
        else:
            key = next(iter(t1))
            self._ghost_dest = "b1"
        self._victim_key = key
        return key

    def remove(self, key, evicted: bool = False) -> None:
        if key in self._t1:
            del self._t1[key]
            src = "b1"
        else:
            del self._t2[key]
            src = "b2"
        if not evicted:
            return
        # The stashed REPLACE decision applies to the victim it chose;
        # an ensemble may evict some other resident key, which ghosts
        # by membership instead.
        dest = self._ghost_dest if key == self._victim_key else src
        if dest == "b1":
            self._b1[key] = True
        elif dest == "b2":
            self._b2[key] = True


#: Accesses per ensemble decision epoch, and the exploration rate
#: (epsilon = 1 / ENSEMBLE_EXPLORE_ONE_IN).
ENSEMBLE_WINDOW = 512
ENSEMBLE_EXPLORE_ONE_IN = 10

_LCG_MULT = 6364136223846793005
_LCG_INC = 1442695040888963407
_LCG_MASK = (1 << 64) - 1


class EnsemblePolicy(ReplacementPolicy):
    """Epsilon-greedy online selection over the base zoo.

    Every base policy tracks the full reference stream in parallel
    (identical membership, their own ordering state); victim choices
    delegate to the currently *active* arm.  Each
    :data:`ENSEMBLE_WINDOW` accesses, the controller credits the
    window's miss rate to the active arm and switches: usually to the
    arm with the best observed rate, with one-in-
    :data:`ENSEMBLE_EXPLORE_ONE_IN` epochs exploring a pseudo-random
    arm.  The explorer is a fixed-seed 64-bit LCG — no ``random``
    module, so replays are bit-for-bit reproducible (the determinism
    lints hold this package to that).
    """

    __slots__ = (
        "_arms",
        "_active",
        "_accesses",
        "_window_miss",
        "_arm_acc",
        "_arm_miss",
        "_rng_state",
    )

    name = "ensemble"

    def __init__(self, capacity: int):
        self._arms = (
            LruPolicy(capacity),
            FifoPolicy(capacity),
            ClockPolicy(capacity),
            LfuPolicy(capacity),
            TwoQPolicy(capacity),
            ArcPolicy(capacity),
        )
        self._active = 0
        self._accesses = 0
        self._window_miss = 0
        self._arm_acc = [0] * len(self._arms)
        self._arm_miss = [0] * len(self._arms)
        self._rng_state = 0x9E3779B97F4A7C15

    def _next_rand(self, bound: int) -> int:
        self._rng_state = (
            self._rng_state * _LCG_MULT + _LCG_INC
        ) & _LCG_MASK
        return (self._rng_state >> 33) % bound

    def _account(self, miss: bool) -> None:
        self._accesses += 1
        if miss:
            self._window_miss += 1
        if self._accesses % ENSEMBLE_WINDOW:
            return
        active = self._active
        self._arm_acc[active] += ENSEMBLE_WINDOW
        self._arm_miss[active] += self._window_miss
        self._window_miss = 0
        if self._next_rand(ENSEMBLE_EXPLORE_ONE_IN) == 0:
            self._active = self._next_rand(len(self._arms))
            return
        best = 0
        best_rate = None
        for i in range(len(self._arms)):
            acc = self._arm_acc[i]
            # Unused arms explore first (rate -1 beats any real rate).
            rate = self._arm_miss[i] / acc if acc else -1.0
            if best_rate is None or rate < best_rate:
                best, best_rate = i, rate
        self._active = best

    def touch(self, key) -> None:
        for arm in self._arms:
            arm.touch(key)
        self._account(miss=False)

    def insert(self, key) -> None:
        for arm in self._arms:
            arm.insert(key)
        self._account(miss=True)

    def victim(self):
        return self._arms[self._active].victim()

    def remove(self, key, evicted: bool = False) -> None:
        for arm in self._arms:
            arm.remove(key, evicted)


#: The zoo, by CLI/sweep name.
REPLACEMENT_POLICIES: dict[str, type] = {
    "lru": LruPolicy,
    "fifo": FifoPolicy,
    "clock": ClockPolicy,
    "lfu": LfuPolicy,
    "2q": TwoQPolicy,
    "arc": ArcPolicy,
    "ensemble": EnsemblePolicy,
}

REPLACEMENT_NAMES: tuple[str, ...] = tuple(REPLACEMENT_POLICIES)


def validate_replacement(name: str) -> str:
    """*name* if it is a known policy, else a ``ValueError`` naming all."""
    if name not in REPLACEMENT_POLICIES:
        known = ", ".join(REPLACEMENT_NAMES)
        raise ValueError(
            f"unknown replacement policy {name!r}; known: {known}"
        )
    return name


def make_replacement(name: str, capacity: int) -> ReplacementPolicy:
    """Construct the policy *name* for a *capacity*-block cache."""
    return REPLACEMENT_POLICIES[validate_replacement(name)](capacity)


#: Ambient replacement-policy default, mirroring the engine context
#: (:func:`~repro.trace.npview.engine_context`): the experiment entry
#: points take only a trace, so ``repro-fs experiment --policy`` travels
#: to the sweeps beneath them through this context.
_AMBIENT: ContextVar[str] = ContextVar("repro-replacement", default="lru")


def current_replacement() -> str:
    """The ambient replacement policy (``"lru"`` unless overridden)."""
    return _AMBIENT.get()


@contextmanager
def replacement_context(name: str):
    """Run a block with *name* as the ambient replacement policy."""
    token = _AMBIENT.set(validate_replacement(name))
    try:
        yield
    finally:
        _AMBIENT.reset(token)
