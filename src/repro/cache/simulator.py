"""The trace-driven block-cache simulator (paper Section 6).

Replays a trace's billed transfers and invalidations through a fixed-size
cache of ``block_size`` blocks under one of the paper's write policies,
with a pluggable replacement policy (LRU — the paper's — by default; see
:mod:`repro.cache.replacement` for the zoo).  The semantics follow
Section 6.1 precisely:

* each transferred byte range is divided into block accesses, assumed to
  be made in units of the cache block size;
* a referenced block missing from the cache costs a disk read, **unless
  it is about to be overwritten in its entirety** (or lies wholly beyond
  the file's known end, where there is nothing to read);
* disk writes happen when the policy says so: immediately
  (write-through), at scan time (flush-back), or at eviction
  (delayed-write);
* an unlinked or truncated file's blocks leave the cache at once, and
  dirty ones are discarded *without* being written — the reason
  delayed-write wins: "about 75% of the newly-written blocks were
  overwritten or their files were deleted before the blocks were ejected".

Two semantics knobs exist purely for the ablation benchmarks:
``read_elision=False`` charges a read on every miss, and
``invalidate_on_delete=False`` leaves dead blocks to age out of the cache
(and pay their writebacks).
"""

from __future__ import annotations

from ..trace.log import TraceLog
from .metrics import CacheMetrics, ExposureTracker, ResidencyTracker
from .policies import DELAYED_WRITE, PolicySpec, WritePolicy
from .replacement import make_replacement
from .stream import Invalidation, StreamItem, cached_stream

__all__ = ["BlockCacheSimulator", "simulate_cache"]


class _Entry:
    """Per-block cache state (a tiny mutable record)."""

    __slots__ = ("dirty", "insert_time")

    def __init__(self, dirty: bool, insert_time: float):
        self.dirty = dirty
        self.insert_time = insert_time


class BlockCacheSimulator:
    """One cache configuration, replayable over a stream."""

    __slots__ = (
        "block_size",
        "capacity_blocks",
        "policy",
        "replacement",
        "read_elision",
        "invalidate_on_delete",
        "metrics",
        "checkpoint",
        "residency",
        "exposure",
        "_dirty_count",
        "_cache",
        "_replacer",
        "_by_file",
        "_known_size",
        "_now",
    )

    def __init__(
        self,
        cache_bytes: int,
        block_size: int = 4096,
        policy: PolicySpec = DELAYED_WRITE,
        replacement: str = "lru",
        read_elision: bool = True,
        invalidate_on_delete: bool = True,
        track_residency: bool = False,
        track_exposure: bool = False,
    ):
        if block_size <= 0:
            raise ValueError(f"block size must be positive, got {block_size}")
        if cache_bytes < block_size:
            raise ValueError("cache smaller than one block")
        self.block_size = block_size
        self.capacity_blocks = cache_bytes // block_size
        self.policy = policy
        self.replacement = replacement
        self.read_elision = read_elision
        self.invalidate_on_delete = invalidate_on_delete
        self.metrics = CacheMetrics()
        #: Counter snapshot taken when the stream first crossed
        #: ``checkpoint_time`` in :meth:`run` (None until then).
        self.checkpoint: CacheMetrics | None = None
        self.residency = ResidencyTracker() if track_residency else None
        self.exposure = ExposureTracker() if track_exposure else None
        self._dirty_count = 0
        self._cache: dict[tuple[int, int], _Entry] = {}
        # Ordering (who dies next) belongs to the policy object; the
        # dict above only answers membership and per-block dirty state.
        self._replacer = make_replacement(replacement, self.capacity_blocks)
        self._by_file: dict[int, set[int]] = {}
        self._known_size: dict[int, int] = {}
        self._now = 0.0

    # -- cache bookkeeping ----------------------------------------------------

    def _note_dirty(self, delta: int) -> None:
        self._dirty_count += delta
        if self.exposure is not None:
            self.exposure.update(self._now, self._dirty_count)

    def _remove(self, key: tuple[int, int], evicted: bool = False) -> _Entry:
        entry = self._cache.pop(key)
        self._replacer.remove(key, evicted)
        if entry.dirty:
            self._note_dirty(-1)
        blocks = self._by_file[key[0]]
        blocks.discard(key[1])
        if not blocks:
            del self._by_file[key[0]]
        if self.residency is not None:
            self.residency.record(self._now - entry.insert_time)
        return entry

    def _insert(self, key: tuple[int, int], dirty: bool) -> None:
        self._cache[key] = _Entry(dirty, self._now)
        self._replacer.insert(key)
        if dirty:
            self._note_dirty(1)
        self._by_file.setdefault(key[0], set()).add(key[1])
        while len(self._cache) > self.capacity_blocks:
            victim = self._replacer.victim()
            entry = self._remove(victim, evicted=True)
            self.metrics.evictions += 1
            if entry.dirty:
                # Delayed-write / flush-back blocks pay their writeback at
                # ejection; write-through blocks are never dirty.
                self.metrics.disk_writes += 1

    def _flush(self) -> None:
        """A flush-back scan: write out every dirty block."""
        flushed = 0
        for entry in self._cache.values():
            if entry.dirty:
                entry.dirty = False
                self.metrics.disk_writes += 1
                flushed += 1
        if flushed:
            self._note_dirty(-flushed)

    # -- stream item processing ------------------------------------------------

    def _invalidate(self, inval: Invalidation) -> None:
        known = self._known_size.get(inval.file_id, 0)
        self._known_size[inval.file_id] = min(known, inval.from_byte)
        if not self.invalidate_on_delete:
            return
        self.drop_file(inval.file_id, inval.from_byte)

    # -- external cache control (used by the netfs consistency layer) ----------

    def drop_file(
        self, file_id: int, from_byte: int = 0, now: float | None = None
    ) -> None:
        """Drop cached blocks of *file_id* at or past *from_byte*.

        Unlike an :class:`Invalidation`, this does not shrink the file's
        known size: a remote invalidation (callback, lease revocation)
        means our *copy* is stale, not that the data is gone from disk.
        """
        if now is not None and now > self._now:
            self._now = now
        blocks = self._by_file.get(file_id)
        if not blocks:
            return
        first_dead = -(-from_byte // self.block_size)
        doomed = sorted(b for b in blocks if b >= first_dead)
        for block in doomed:
            entry = self._remove((file_id, block))
            self.metrics.invalidated_blocks += 1
            if entry.dirty:
                self.metrics.dirty_blocks_discarded += 1

    def flush_file(self, file_id: int) -> int:
        """Write out every dirty block of *file_id*; returns the count.

        The disk writes are billed to :attr:`metrics` exactly as a
        flush-back scan's are — this is one file's slice of that scan,
        triggered by an ownership-lease recall.
        """
        flushed = 0
        for block in self._by_file.get(file_id, ()):
            entry = self._cache[(file_id, block)]
            if entry.dirty:
                entry.dirty = False
                self.metrics.disk_writes += 1
                flushed += 1
        if flushed:
            self._note_dirty(-flushed)
        return flushed

    def _access(self, file_id: int, block: int, write: bool, covered: bool) -> None:
        key = (file_id, block)
        write_through = self.policy.policy is WritePolicy.WRITE_THROUGH
        entry = self._cache.get(key)
        if entry is not None:
            self._replacer.touch(key)
            if write:
                self.metrics.write_accesses += 1
                if write_through:
                    self.metrics.disk_writes += 1
                elif not entry.dirty:
                    entry.dirty = True
                    self.metrics.dirty_blocks_created += 1
                    self._note_dirty(1)
            else:
                self.metrics.read_accesses += 1
            return
        # Miss.
        if write:
            self.metrics.write_accesses += 1
            if covered and self.read_elision:
                self.metrics.read_elisions += 1
            else:
                self.metrics.disk_reads += 1
            if write_through:
                self.metrics.disk_writes += 1
                self._insert(key, dirty=False)
            else:
                self.metrics.dirty_blocks_created += 1
                self._insert(key, dirty=True)
        else:
            self.metrics.read_accesses += 1
            self.metrics.disk_reads += 1
            self._insert(key, dirty=False)

    def run(
        self,
        stream: list[StreamItem],
        checkpoint_time: float | None = None,
        flush_epoch: float | None = None,
    ) -> CacheMetrics:
        """Replay *stream* (from :func:`~repro.cache.stream.build_stream`).

        If *checkpoint_time* is given, :attr:`checkpoint` captures the
        counters when the stream first reaches that time; the *warm*
        metrics (cold-start excluded) are then
        ``sim.metrics.delta(sim.checkpoint)``.

        *flush_epoch* anchors the flush-back scan schedule.  Flush scans
        happen at ``epoch + k * flush_interval``; historically the epoch
        was the first stream item's (arbitrary) timestamp, which made the
        scan phase depend on when the first transfer happened to be
        billed, and drifted between incremental ``run`` calls.  Passing
        ``flush_epoch=log.start_time`` pins the schedule to the trace
        start — what a real kernel's periodic ``sync`` daemon does (it
        runs on wall-clock ticks, not relative to the first write).  The
        sweeps and :func:`simulate_cache` anchor to the trace start; the
        default ``None`` keeps the legacy first-item anchoring for
        backward compatibility with incremental callers that replay one
        item at a time.
        """
        bs = self.block_size
        flushing = self.policy.policy is WritePolicy.FLUSH_BACK
        next_flush = None
        if flushing and flush_epoch is not None:
            next_flush = flush_epoch + self.policy.flush_interval
        for item in stream:
            self._now = item.time
            if (
                checkpoint_time is not None
                and self.checkpoint is None
                and item.time >= checkpoint_time
            ):
                self.checkpoint = self.metrics.snapshot()
            if flushing:
                if next_flush is None:
                    next_flush = item.time + self.policy.flush_interval
                while item.time >= next_flush:
                    self._flush()
                    next_flush += self.policy.flush_interval
            if isinstance(item, Invalidation):
                self._invalidate(item)
                continue
            known = self._known_size.get(item.file_id, 0)
            first = item.start // bs
            last = (item.end - 1) // bs
            for block in range(first, last + 1):
                block_start = block * bs
                block_end = block_start + bs
                covered = (
                    item.start <= block_start and item.end >= block_end
                ) or block_start >= known  # nothing on disk beyond EOF
                self._access(item.file_id, block, item.is_write, covered)
            # Any transfer to position ``end`` proves the file extends that
            # far (reads cannot pass EOF), tightening the beyond-EOF
            # write-elision test for later writes.
            if item.end > known:
                self._known_size[item.file_id] = item.end
        if self.residency is not None:
            self.residency.finish(
                [self._now - e.insert_time for e in self._cache.values()]
            )
        return self.metrics


def simulate_cache(
    log: TraceLog,
    cache_bytes: int,
    block_size: int = 4096,
    policy: PolicySpec = DELAYED_WRITE,
    include_paging: bool = False,
    **kwargs,
) -> CacheMetrics:
    """Convenience one-shot: build the stream from *log* and simulate.

    The stream is memoized per log (see :func:`cached_stream`) and the
    flush-back schedule is anchored at the trace start.
    """
    sim = BlockCacheSimulator(
        cache_bytes=cache_bytes, block_size=block_size, policy=policy, **kwargs
    )
    return sim.run(
        cached_stream(log, include_paging=include_paging),
        flush_epoch=log.start_time,
    )
