"""The cache simulator's input stream.

The simulator consumes a time-ordered sequence of two item kinds derived
from a trace:

* :class:`~repro.analysis.accesses.Transfer` — a billed byte-range
  movement (one per sequential run, at the close/seek that bounded it);
* :class:`Invalidation` — a point after which a file's blocks (from some
  block index up) are dead: an unlink, a truncate, or a truncating open.

Ties in the 10 ms trace clock are broken by original event order, so a
``creat``'s invalidation always precedes the data its open writes.

Section 6.4's paging approximation is implemented here too: with
``include_paging=True`` every ``execve`` event contributes a whole-file
read of the program image at exec time ("we simulated paging activity by
forcing a whole-file read to each program file at the time the program was
executed").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from ..analysis.accesses import Run, Transfer  # noqa: F401 (Run re-exported)
from ..trace.log import TraceLog
from ..trace.memo import memoize_per_log  # noqa: F401 (re-exported; moved to trace.memo)
from ..trace.records import (
    AccessMode,
    CloseEvent,
    ExecEvent,
    OpenEvent,
    SeekEvent,
    TruncateEvent,
    UnlinkEvent,
)

__all__ = [
    "Invalidation",
    "StreamItem",
    "build_stream",
    "cached_stream",
    "memoize_per_log",
]


@dataclass(frozen=True, slots=True)
class Invalidation:
    """A file's blocks at or past ``from_byte`` are dead as of ``time``."""

    time: float
    file_id: int
    from_byte: int


StreamItem = Union[Transfer, Invalidation]


def build_stream(log: TraceLog, include_paging: bool = False) -> list[StreamItem]:
    """Derive the simulator input from *log*.

    Returns items sorted by (time, original event order).  Each open's
    sequential runs become transfers billed at the close/seek that ended
    them; read-write runs count as writes (the tracer cannot split them,
    and they can dirty blocks).
    """
    items: list[tuple[float, int, StreamItem]] = []
    # open_id -> (OpenEvent, current position)
    in_progress: dict[int, tuple[OpenEvent, int]] = {}

    def emit_run(opener: OpenEvent, start: int, end: int, time: float, seq: int) -> None:
        if end > start:
            items.append(
                (
                    time,
                    seq,
                    Transfer(
                        time=time,
                        file_id=opener.file_id,
                        user_id=opener.user_id,
                        start=start,
                        end=end,
                        is_write=opener.mode is not AccessMode.READ,
                    ),
                )
            )

    for seq, event in enumerate(log.events):
        if isinstance(event, OpenEvent):
            if event.created:
                # O_TRUNC/creat: whatever the cache holds for this file is
                # dead before any new data arrives.
                items.append(
                    (event.time, seq, Invalidation(event.time, event.file_id, 0))
                )
            in_progress[event.open_id] = (event, event.initial_pos)
        elif isinstance(event, SeekEvent):
            state = in_progress.get(event.open_id)
            if state is None:
                continue
            opener, pos = state
            emit_run(opener, pos, event.prev_pos, event.time, seq)
            in_progress[event.open_id] = (opener, event.new_pos)
        elif isinstance(event, CloseEvent):
            state = in_progress.pop(event.open_id, None)
            if state is None:
                continue
            opener, pos = state
            emit_run(opener, pos, event.final_pos, event.time, seq)
        elif isinstance(event, UnlinkEvent):
            items.append((event.time, seq, Invalidation(event.time, event.file_id, 0)))
        elif isinstance(event, TruncateEvent):
            items.append(
                (
                    event.time,
                    seq,
                    Invalidation(event.time, event.file_id, event.new_length),
                )
            )
        elif isinstance(event, ExecEvent) and include_paging:
            if event.size > 0:
                items.append(
                    (
                        event.time,
                        seq,
                        Transfer(
                            time=event.time,
                            file_id=event.file_id,
                            user_id=event.user_id,
                            start=0,
                            end=event.size,
                            is_write=False,
                        ),
                    )
                )

    items.sort(key=lambda x: (x[0], x[1]))
    return [item for _, _, item in items]


def cached_stream(log: TraceLog, include_paging: bool = False) -> list[StreamItem]:
    """Memoized :func:`build_stream` (one build per log and paging flag)."""
    return memoize_per_log(
        log,
        ("stream", include_paging),
        lambda: build_stream(log, include_paging=include_paging),
    )
