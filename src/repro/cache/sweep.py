"""Parameter sweeps over the cache simulator (Figures 5–7, Tables VI–VII).

Each sweep decomposes into independent (stream, configuration) jobs.
With ``jobs=1`` (the default) every configuration runs through the
reference :class:`BlockCacheSimulator` in-process — the oracle path,
whatever the engine.  With ``jobs>1`` the stream is compiled once per
block size into a :class:`~repro.parallel.packed.PackedStream`,
write-through columns collapse into a single one-pass curve
(:func:`~repro.parallel.veccache.stack_curve` — the numpy kernel when
the engine allows, else :func:`~repro.parallel.stack.simulate_stack`),
and the remaining configurations replay the packed stream on a process
pool (:func:`~repro.parallel.executor.run_jobs`).  All paths produce
bit-identical metrics (asserted by ``tests/test_parallel.py`` and
``tests/test_veccache.py``); results come back as small dataclasses
with ``render()`` methods that print the paper's table layouts.

*engine* selects the worker-side kernels (``None`` defers to the
ambient :func:`~repro.trace.npview.engine_context`); *pack_dir* spills
each compiled stream to a shared ``.bpack`` file so the payload workers
receive is a path, not pickled arrays — every process maps the same
page-cache copy (see :mod:`repro.parallel.bpack`).

Flush-back scans are anchored at the trace start in both paths (see
:meth:`BlockCacheSimulator.run` on why).
"""

from __future__ import annotations

import os
import re
import zlib
from dataclasses import dataclass, field

from ..analysis.report import render_table
from ..parallel.bpack import cached_bpack, write_bpack
from ..parallel.executor import resolve_jobs, run_jobs
from ..parallel.packed import PackedStream, cached_packed_stream
from ..parallel.veccache import replay_packed, stack_curve
from ..trace.log import TraceLog
from ..trace.npview import current_engine
from .metrics import CacheMetrics
from .policies import (
    DELAYED_WRITE,
    FLUSH_30S,
    FLUSH_5MIN,
    WRITE_THROUGH,
    PolicySpec,
    WritePolicy,
)
from .replacement import current_replacement, validate_replacement
from .simulator import BlockCacheSimulator
from .stream import StreamItem, Transfer, cached_stream

__all__ = [
    "PAPER_CACHE_SIZES",
    "PAPER_POLICIES",
    "PAPER_BLOCK_SIZES",
    "PAPER_BLOCK_SWEEP_CACHES",
    "CachePolicySweep",
    "BlockSizeSweep",
    "PagingComparison",
    "cache_size_policy_sweep",
    "block_size_sweep",
    "paging_comparison",
    "count_block_accesses",
]

#: Cache sizes of Figure 5 / Table VI (first entry is the UNIX default).
PAPER_CACHE_SIZES = (
    390 * 1024,
    1 * 1024 * 1024,
    2 * 1024 * 1024,
    4 * 1024 * 1024,
    8 * 1024 * 1024,
    16 * 1024 * 1024,
)

#: Write policies of Figure 5 / Table VI, in column order.
PAPER_POLICIES = (WRITE_THROUGH, FLUSH_30S, FLUSH_5MIN, DELAYED_WRITE)

#: Block sizes of Figure 6 / Table VII.
PAPER_BLOCK_SIZES = (1024, 2048, 4096, 8192, 16384, 32768)

#: Cache sizes of Figure 6 / Table VII.
PAPER_BLOCK_SWEEP_CACHES = (
    400 * 1024,
    2 * 1024 * 1024,
    4 * 1024 * 1024,
    8 * 1024 * 1024,
)


def _size_label(nbytes: int) -> str:
    if nbytes >= 1024 * 1024:
        value = nbytes / (1024 * 1024)
        return f"{value:g} Mbyte" + ("s" if value != 1 else "")
    return f"{nbytes // 1024} kbytes"


def _sweep_worker(payload, job):
    """One sweep job: a packed replay or a whole stack curve.

    Module-level so the executor can ship it to worker processes.  Jobs
    are ``("sim", packkey, cache_bytes, policy, replacement)`` returning
    one :class:`CacheMetrics`, or ``("stack", packkey, sizes)`` returning
    one metrics object per size (write-through LRU only — the one
    configuration family the Mattson curve answers).  Both dispatch through
    the engine-aware front doors, so a worker runs the numpy kernels
    exactly when the payload's engine allows.
    """
    packed = payload["packed"][job[1]]
    engine = payload["engine"]
    if job[0] == "stack":
        sizes = job[2]
        curve = stack_curve(packed, sizes, engine=engine)
        return [curve.metrics(size) for size in sizes]
    _, _, cache_bytes, policy, replacement = job
    return replay_packed(
        packed,
        cache_bytes,
        policy,
        replacement=replacement,
        flush_epoch=packed.start_time,
        engine=engine,
    ).metrics


class _SweepPayload:
    """The shared sweep payload: streams by key, or ``.bpack`` paths.

    Implements the executor's ``__payload_resolve__`` protocol: path
    entries are opened worker-side via the per-process
    :func:`~repro.parallel.bpack.cached_bpack`, so what crosses the
    process boundary is a few strings and every worker reads the same
    page-cache bytes.  Resolution is memoized per process (and dropped
    from the pickled state, so ``spawn`` workers resolve their own).
    """

    __slots__ = ("packed", "engine", "_resolved")

    def __init__(self, packed: dict, engine: str):
        self.packed = packed
        self.engine = engine
        self._resolved = None

    def __getstate__(self):
        return (self.packed, self.engine)

    def __setstate__(self, state):
        self.packed, self.engine = state
        self._resolved = None

    def __payload_resolve__(self):
        if self._resolved is None:
            self._resolved = {
                "packed": {
                    key: value
                    if isinstance(value, PackedStream)
                    else cached_bpack(value)
                    for key, value in self.packed.items()
                },
                "engine": self.engine,
            }
        return self._resolved


def _pack_ref(packed: PackedStream, pack_dir, trace_name: str):
    """*packed* itself, or its path inside the shared ``.bpack`` cache.

    Filenames carry the trace name, the block size, the row count and a
    content crc, so a stale or colliding cache entry can never be
    mistaken for this stream — a miss writes the file (atomically), a
    hit reuses it byte-for-byte.
    """
    if pack_dir is None:
        return packed
    os.makedirs(pack_dir, exist_ok=True)
    safe = re.sub(r"[^A-Za-z0-9._-]+", "_", trace_name) or "trace"
    fp = zlib.crc32(bytes(packed.keys), zlib.crc32(bytes(packed.ops)))
    name = (
        f"{safe}-bs{packed.block_size}-{len(packed)}r-{fp:08x}.bpack"
    )
    path = os.path.join(os.fspath(pack_dir), name)
    if not os.path.exists(path):
        write_bpack(packed, path)
    return path


def _resolve_sweep_engine(engine: str | None) -> str:
    return engine if engine is not None else current_engine()


def _resolve_replacement(replacement: str | None) -> str:
    """*replacement*, or the ambient default (``repro-fs ... --policy``)."""
    if replacement is None:
        return current_replacement()
    return validate_replacement(replacement)


@dataclass
class CachePolicySweep:
    """Miss ratio as a function of cache size and write policy
    (Figure 5 / Table VI)."""

    trace_name: str
    block_size: int
    cache_sizes: tuple[int, ...]
    policies: tuple[PolicySpec, ...]
    replacement: str = "lru"
    results: dict[tuple[int, str], CacheMetrics] = field(default_factory=dict)

    def miss_ratio(self, cache_bytes: int, policy: PolicySpec) -> float:
        return self.results[(cache_bytes, policy.label)].miss_ratio

    def render(self) -> str:
        headers = ["Cache Size"] + [p.label for p in self.policies]
        rows = []
        for size in self.cache_sizes:
            row = [_size_label(size)]
            for policy in self.policies:
                row.append(f"{100 * self.miss_ratio(size, policy):.1f}%")
            rows.append(row)
        extra = "" if self.replacement == "lru" else f", {self.replacement}"
        return render_table(
            headers,
            rows,
            title=(
                f"Table VI: miss ratio vs cache size and write policy "
                f"({self.trace_name}, {self.block_size}-byte blocks{extra})"
            ),
        )


def cache_size_policy_sweep(
    log: TraceLog,
    cache_sizes: tuple[int, ...] = PAPER_CACHE_SIZES,
    policies: tuple[PolicySpec, ...] = PAPER_POLICIES,
    block_size: int = 4096,
    jobs: int | None = None,
    engine: str | None = None,
    pack_dir=None,
    replacement: str | None = None,
) -> CachePolicySweep:
    """Reproduce Figure 5 / Table VI on *log*.

    *replacement* selects the block-replacement policy (any name in
    :data:`~repro.cache.replacement.REPLACEMENT_NAMES`; ``None`` defers
    to the ambient :func:`~repro.cache.replacement.replacement_context`,
    default LRU — the paper's policy).
    """
    n = resolve_jobs(jobs)
    eng = _resolve_sweep_engine(engine)
    repl = _resolve_replacement(replacement)
    sweep = CachePolicySweep(
        trace_name=log.name,
        block_size=block_size,
        cache_sizes=tuple(cache_sizes),
        policies=tuple(policies),
        replacement=repl,
    )
    if n <= 1:
        stream = cached_stream(log)
        for size in cache_sizes:
            for policy in policies:
                sim = BlockCacheSimulator(
                    cache_bytes=size,
                    block_size=block_size,
                    policy=policy,
                    replacement=repl,
                )
                sweep.results[(size, policy.label)] = sim.run(
                    stream, flush_epoch=log.start_time
                )
        return sweep

    packed = cached_packed_stream(log, block_size, engine=eng)
    payload = _SweepPayload(
        {block_size: _pack_ref(packed, pack_dir, log.name)}, eng
    )
    stack_policies = [
        p
        for p in policies
        if p.policy is WritePolicy.WRITE_THROUGH and repl == "lru"
    ]
    jobs_list: list[tuple] = []
    if stack_policies:
        jobs_list.append(("stack", block_size, tuple(cache_sizes)))
    for size in cache_sizes:
        for policy in policies:
            if policy.policy is WritePolicy.WRITE_THROUGH and repl == "lru":
                continue
            jobs_list.append(("sim", block_size, size, policy, repl))
    for job, result in zip(
        jobs_list, run_jobs(_sweep_worker, jobs_list, payload=payload, jobs=n)
    ):
        if job[0] == "stack":
            for size, metrics in zip(job[2], result):
                for policy in stack_policies:
                    sweep.results[(size, policy.label)] = metrics
        else:
            _, _, size, policy, _ = job
            sweep.results[(size, policy.label)] = result
    return sweep


def count_block_accesses(stream: list[StreamItem], block_size: int) -> int:
    """Total logical block accesses — the paper's "no cache" column in
    Table VII (with no cache every access is a disk I/O)."""
    total = 0
    for item in stream:
        if isinstance(item, Transfer):
            total += (item.end - 1) // block_size - item.start // block_size + 1
    return total


@dataclass
class BlockSizeSweep:
    """Disk I/Os as a function of block size and cache size
    (Figure 6 / Table VII, delayed-write policy)."""

    trace_name: str
    block_sizes: tuple[int, ...]
    cache_sizes: tuple[int, ...]
    no_cache: dict[int, int] = field(default_factory=dict)
    results: dict[tuple[int, int], CacheMetrics] = field(default_factory=dict)

    def disk_ios(self, block_size: int, cache_bytes: int) -> int:
        return self.results[(block_size, cache_bytes)].disk_ios

    def best_block_size(self, cache_bytes: int) -> int:
        """The block size minimizing disk I/O for a given cache size."""
        return min(
            self.block_sizes, key=lambda bs: self.disk_ios(bs, cache_bytes)
        )

    def render(self) -> str:
        headers = ["Block Size", "No Cache"] + [
            _size_label(c) + " Cache" for c in self.cache_sizes
        ]
        rows = []
        for bs in self.block_sizes:
            row = [f"{bs // 1024} kbytes", f"{self.no_cache[bs]:,}"]
            for cache in self.cache_sizes:
                row.append(f"{self.disk_ios(bs, cache):,}")
            rows.append(row)
        return render_table(
            headers,
            rows,
            title=(
                f"Table VII: disk I/Os vs block size and cache size "
                f"({self.trace_name}, delayed-write)"
            ),
        )


def block_size_sweep(
    log: TraceLog,
    block_sizes: tuple[int, ...] = PAPER_BLOCK_SIZES,
    cache_sizes: tuple[int, ...] = PAPER_BLOCK_SWEEP_CACHES,
    policy: PolicySpec = DELAYED_WRITE,
    jobs: int | None = None,
    engine: str | None = None,
    pack_dir=None,
    replacement: str | None = None,
) -> BlockSizeSweep:
    """Reproduce Figure 6 / Table VII on *log*."""
    n = resolve_jobs(jobs)
    eng = _resolve_sweep_engine(engine)
    repl = _resolve_replacement(replacement)
    sweep = BlockSizeSweep(
        trace_name=log.name,
        block_sizes=tuple(block_sizes),
        cache_sizes=tuple(cache_sizes),
    )
    if n <= 1:
        stream = cached_stream(log)
        for bs in block_sizes:
            sweep.no_cache[bs] = count_block_accesses(stream, bs)
            for cache in cache_sizes:
                sim = BlockCacheSimulator(
                    cache_bytes=cache,
                    block_size=bs,
                    policy=policy,
                    replacement=repl,
                )
                sweep.results[(bs, cache)] = sim.run(
                    stream, flush_epoch=log.start_time
                )
        return sweep

    packed = {bs: cached_packed_stream(log, bs, engine=eng) for bs in block_sizes}
    payload = _SweepPayload(
        {bs: _pack_ref(p, pack_dir, log.name) for bs, p in packed.items()}, eng
    )
    use_stack = policy.policy is WritePolicy.WRITE_THROUGH and repl == "lru"
    jobs_list: list[tuple] = []
    for bs in block_sizes:
        sweep.no_cache[bs] = packed[bs].n_accesses
        if use_stack:
            jobs_list.append(("stack", bs, tuple(cache_sizes)))
        else:
            for cache in cache_sizes:
                jobs_list.append(("sim", bs, cache, policy, repl))
    for job, result in zip(
        jobs_list,
        run_jobs(_sweep_worker, jobs_list, payload=payload, jobs=n),
    ):
        if job[0] == "stack":
            for cache, metrics in zip(job[2], result):
                sweep.results[(job[1], cache)] = metrics
        else:
            _, bs, cache, _, _ = job
            sweep.results[(bs, cache)] = result
    return sweep


@dataclass
class PagingComparison:
    """Miss ratios with and without the execve paging approximation
    (Figure 7: delayed-write, 4096-byte blocks)."""

    trace_name: str
    cache_sizes: tuple[int, ...]
    ignored: dict[int, CacheMetrics] = field(default_factory=dict)
    simulated: dict[int, CacheMetrics] = field(default_factory=dict)

    def render(self) -> str:
        headers = ["Cache Size", "Page-in ignored", "Page-in simulated"]
        rows = []
        for size in self.cache_sizes:
            rows.append(
                [
                    _size_label(size),
                    f"{100 * self.ignored[size].miss_ratio:.1f}%",
                    f"{100 * self.simulated[size].miss_ratio:.1f}%",
                ]
            )
        return render_table(
            headers,
            rows,
            title=(
                f"Figure 7: miss ratio with paging approximated "
                f"({self.trace_name}, delayed-write, 4096-byte blocks)"
            ),
        )


def paging_comparison(
    log: TraceLog,
    cache_sizes: tuple[int, ...] = PAPER_CACHE_SIZES,
    block_size: int = 4096,
    policy: PolicySpec = DELAYED_WRITE,
    jobs: int | None = None,
    engine: str | None = None,
    pack_dir=None,
    replacement: str | None = None,
) -> PagingComparison:
    """Reproduce Figure 7 on *log*."""
    n = resolve_jobs(jobs)
    eng = _resolve_sweep_engine(engine)
    repl = _resolve_replacement(replacement)
    comparison = PagingComparison(
        trace_name=log.name, cache_sizes=tuple(cache_sizes)
    )
    if n <= 1:
        plain = cached_stream(log, include_paging=False)
        paged = cached_stream(log, include_paging=True)
        for size in cache_sizes:
            comparison.ignored[size] = BlockCacheSimulator(
                cache_bytes=size,
                block_size=block_size,
                policy=policy,
                replacement=repl,
            ).run(plain, flush_epoch=log.start_time)
            comparison.simulated[size] = BlockCacheSimulator(
                cache_bytes=size,
                block_size=block_size,
                policy=policy,
                replacement=repl,
            ).run(paged, flush_epoch=log.start_time)
        return comparison

    payload = _SweepPayload(
        {
            "plain": _pack_ref(
                cached_packed_stream(
                    log, block_size, include_paging=False, engine=eng
                ),
                pack_dir,
                f"{log.name}-plain",
            ),
            "paged": _pack_ref(
                cached_packed_stream(
                    log, block_size, include_paging=True, engine=eng
                ),
                pack_dir,
                f"{log.name}-paged",
            ),
        },
        eng,
    )
    jobs_list: list[tuple] = []
    for size in cache_sizes:
        jobs_list.append(("sim", "plain", size, policy, repl))
        jobs_list.append(("sim", "paged", size, policy, repl))
    for job, result in zip(
        jobs_list, run_jobs(_sweep_worker, jobs_list, payload=payload, jobs=n)
    ):
        _, variant, size, _, _ = job
        table = comparison.ignored if variant == "plain" else comparison.simulated
        table[size] = result
    return comparison
