"""Two-level (client / server) cache simulation.

The paper's stated goal was "designing a shared file system for a network
of personal workstations"; its successors (Sprite, NFS client caching)
put a cache on *each workstation* in front of the shared server's cache.
This module extends the trace-driven simulator to that topology:

* each user's transfers first hit a private **client cache** (keyed by
  the trace's user id — in the diskless-workstation reading, one user is
  one workstation);
* client misses (and the client write policy's write-backs) travel over
  the **network** to the server;
* the server runs its own cache in front of the disk.

The interesting outputs are the two traffic levels the paper's Sections
5.1 and 6 bound separately: network transfers per second (does the
10 Mbit Ethernet hold up?) and disk I/Os (how big must the server cache
be once clients absorb the re-reads?).

Consistency is out of scope, exactly as it was for the paper ("we did
not consider the problems of cache consistency"): invalidations are
broadcast to every cache, which is what a write-through-to-server scheme
with callbacks would achieve.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..trace.log import TraceLog
from .metrics import CacheMetrics
from .policies import DELAYED_WRITE, WRITE_THROUGH, PolicySpec
from .simulator import BlockCacheSimulator
from .stream import Invalidation, StreamItem, Transfer, cached_stream

__all__ = ["TwoLevelResult", "simulate_two_level"]


@dataclass
class TwoLevelResult:
    """Traffic at both levels of a client/server cache hierarchy."""

    client_cache_bytes: int
    server_cache_bytes: int
    block_size: int
    clients: int = 0
    client_metrics: CacheMetrics = field(default_factory=CacheMetrics)
    server_metrics: CacheMetrics = field(default_factory=CacheMetrics)
    duration: float = 0.0
    #: Consistency control messages.  Always 0 here — this simulation
    #: broadcasts invalidations for free — but the field exists so
    #: two-level and netfs results render uniformly; ``repro.netfs``
    #: is the layer that bills these messages.
    consistency_messages: int = 0

    @property
    def network_blocks(self) -> int:
        """Blocks that crossed the network: client misses (reads fetched
        from the server) plus client write-backs."""
        return self.client_metrics.disk_reads + self.client_metrics.disk_writes

    @property
    def network_bytes_per_second(self) -> float:
        if self.duration <= 0:
            return 0.0
        return self.network_blocks * self.block_size / self.duration

    @property
    def disk_ios(self) -> int:
        return self.server_metrics.disk_ios

    def render(self) -> str:
        accesses = self.client_metrics.block_accesses
        if self.duration > 0:
            rate = f"{self.network_bytes_per_second / 1000:.1f} KB/s average"
        else:
            rate = "no duration: rate unavailable"
        return "\n".join(
            [
                f"{self.clients} client caches of "
                f"{self.client_cache_bytes // 1024} KB + one "
                f"{self.server_cache_bytes // (1024 * 1024)} MB server cache "
                f"({self.block_size // 1024} KB blocks):",
                f"  client level: {accesses:,} block accesses, "
                f"{self.network_blocks:,} crossed the network "
                f"({100 * self.network_blocks / max(1, accesses):.1f}%, "
                f"{rate})",
                f"  server level: {self.server_metrics.disk_ios:,} disk I/Os "
                f"({100 * self.server_metrics.disk_ios / max(1, accesses):.1f}% "
                f"of all block accesses)",
                f"  consistency messages: {self.consistency_messages:,} "
                "(invalidations broadcast for free; repro.netfs bills them)",
            ]
        )


def simulate_two_level(
    log: TraceLog,
    client_cache_bytes: int = 512 * 1024,
    server_cache_bytes: int = 16 * 1024 * 1024,
    block_size: int = 4096,
    client_policy: PolicySpec = WRITE_THROUGH,
    server_policy: PolicySpec = DELAYED_WRITE,
) -> TwoLevelResult:
    """Replay *log* through per-user client caches and a server cache.

    The client level is simulated per user; the items each client sends
    on (its read misses as reads, its write-backs as writes) form the
    server's input stream, replayed in time order.  A write-through
    client policy models the safe default (the server always has the
    data); delayed-write clients cut network traffic further at the cost
    the paper discusses in Section 6.2.
    """
    stream = cached_stream(log)
    result = TwoLevelResult(
        client_cache_bytes=client_cache_bytes,
        server_cache_bytes=server_cache_bytes,
        block_size=block_size,
        duration=log.duration,
    )

    clients: dict[int, BlockCacheSimulator] = {}

    def client_for(user_id: int) -> BlockCacheSimulator:
        sim = clients.get(user_id)
        if sim is None:
            sim = clients[user_id] = BlockCacheSimulator(
                cache_bytes=client_cache_bytes,
                block_size=block_size,
                policy=client_policy,
            )
        return sim

    # The server sees one item per client-level miss/write-back.  We track
    # each client's counters before and after an item to learn what it
    # forwarded, then emit equivalent single-block transfers.
    server_stream: list[StreamItem] = []
    for item in stream:
        if isinstance(item, Invalidation):
            # Broadcast: every cache drops the dead blocks (callback-style
            # consistency); the server does too, below, via its own stream.
            for sim in clients.values():
                sim._invalidate(item)  # noqa: SLF001 (simulation internals)
            server_stream.append(item)
            continue
        sim = client_for(item.user_id)
        before_reads = sim.metrics.disk_reads
        before_writes = sim.metrics.disk_writes
        sim.run([item])
        fetched = sim.metrics.disk_reads - before_reads
        written_back = sim.metrics.disk_writes - before_writes
        # Client misses become server reads; write-backs server writes.
        # Exact block identities matter for the server's hit ratio, but a
        # miss can only be on a block inside the item's range, so we
        # replay the range capped to the observed counts.
        first = item.start // block_size
        if fetched:
            server_stream.append(
                Transfer(
                    time=item.time,
                    file_id=item.file_id,
                    user_id=item.user_id,
                    start=first * block_size,
                    end=(first + fetched) * block_size,
                    is_write=False,
                )
            )
        if written_back:
            server_stream.append(
                Transfer(
                    time=item.time,
                    file_id=item.file_id,
                    user_id=item.user_id,
                    start=first * block_size,
                    end=(first + written_back) * block_size,
                    is_write=True,
                )
            )

    server = BlockCacheSimulator(
        cache_bytes=server_cache_bytes,
        block_size=block_size,
        policy=server_policy,
    )
    result.server_metrics = server.run(server_stream)

    # Aggregate the client metrics.
    total = CacheMetrics()
    for sim in clients.values():
        snap = sim.metrics
        for name in (
            "read_accesses", "write_accesses", "disk_reads", "disk_writes",
            "evictions", "invalidated_blocks", "dirty_blocks_created",
            "dirty_blocks_discarded", "read_elisions",
        ):
            setattr(total, name, getattr(total, name) + getattr(snap, name))
    result.client_metrics = total
    result.clients = len(clients)
    return result
