"""The ``repro-fs`` command-line interface.

Subcommands::

    repro-fs generate  --profile A5 --hours 4 --seed 1 -o a5.trace
    repro-fs stats     a5.trace
    repro-fs validate  a5.trace [--max-problems N]
    repro-fs analyze   a5.trace [--report activity|sequentiality|...]
    repro-fs simulate  a5.trace --cache-mb 4 --block-size 4096 --policy delayed-write
    repro-fs sweep     a5.trace [--kind policy|blocksize|paging]
    repro-fs twolevel  a5.trace --client-kb 512 --server-mb 16
    repro-fs netfs     [a5.trace] --clients 10 --protocol callbacks
    repro-fs export-figures a5.trace -d figures
    repro-fs experiment a5.trace --id table6   (or --all)
    repro-fs report    a5.trace -o report.md
    repro-fs slice     a5.trace --start 0 --end 3600 -o hour1.trace
    repro-fs filter    a5.trace --users 1,2 -o pair.trace
    repro-fs merge     a.trace b.trace -o merged.trace
    repro-fs system    --profile A5 --all
    repro-fs lint      src tests --format json|sarif [--changed [REF]]
                       [--baseline PATH] [--update-baseline] [--callgraph-cache PATH]
    repro-fs fuzz      --seed 1 --budget 2000 [--corpus corpus/]
    repro-fs convert-strace strace.log -o out.trace
    repro-fs corpus    pack a5.btrace -o a5.bcorpus [--segment-events N]
    repro-fs corpus    info a5.bcorpus [--segments]
    repro-fs corpus    verify a5.bcorpus [--jobs N]

Traces are stored in the binary format when the filename ends in ``.btrace``
and the text format otherwise.  A ``.bcorpus`` file is a sharded
out-of-core corpus (``repro.corpus``): ``generate --spool``, ``validate``
and ``analyze`` accept it directly and stream it segment by segment.
"""

from __future__ import annotations

import argparse
import functools
import os
import sys
from pathlib import Path

from ..analysis import (
    analyze_activity,
    analyze_onepass,
    analyze_sequentiality,
    collect_lifetimes,
    daemon_spike_fraction,
    open_time_cdf,
    open_time_summary,
    file_size_cdfs,
    size_summary,
)
from ..cache.policies import (
    DELAYED_WRITE,
    FLUSH_30S,
    FLUSH_5MIN,
    WRITE_THROUGH,
    PolicySpec,
    WritePolicy,
)
from ..cache.replacement import REPLACEMENT_NAMES, replacement_context
from ..cache.simulator import simulate_cache
from ..cache.sweep import (
    block_size_sweep,
    cache_size_policy_sweep,
    paging_comparison,
)
from ..experiments import (
    all_ids,
    all_system_ids,
    run_all,
    run_one,
    run_system_experiment,
)
from ..parallel.executor import auto_jobs, jobs_context
from ..strace.convert import convert_file
from ..trace.intervals import interval_stats
from ..trace.io_binary import read_binary, write_binary
from ..trace.io_text import read_text, write_text
from ..trace.log import TraceLog
from ..trace.npview import ENGINES, engine_context, numpy_available
from ..trace.stats import compute_stats
from ..trace.validate import DEFAULT_MAX_PROBLEMS, validate
from ..workload.generator import generate, generate_many
from ..workload.profiles import PROFILES

__all__ = ["main", "build_parser"]

_POLICIES = {
    "write-through": WRITE_THROUGH,
    "flush-30s": FLUSH_30S,
    "flush-5min": FLUSH_5MIN,
    "delayed-write": DELAYED_WRITE,
}


def _parse_size(text: str) -> int:
    """Parse ``512K`` / ``16M`` / ``4096`` into bytes."""
    text = text.strip()
    multiplier = 1
    if text and text[-1] in "kKmMgG":
        multiplier = {"k": 1024, "m": 1024**2, "g": 1024**3}[text[-1].lower()]
        text = text[:-1]
    try:
        return int(float(text) * multiplier)
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad size {text!r}") from None


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad count {text!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _load_trace(path: str) -> TraceLog:
    if path.endswith(".btrace"):
        return read_binary(path)
    return read_text(path)


def _save_trace(log: TraceLog, path: str) -> None:
    if path.endswith(".btrace"):
        write_binary(log, path)
    else:
        write_text(log, path)


def _seed_output(template: str, seed: int) -> str:
    """Per-seed output path: a ``{seed}`` placeholder, or ``-s<seed>``
    inserted before the extension."""
    if "{seed}" in template:
        return template.replace("{seed}", str(seed))
    root, ext = os.path.splitext(template)
    return f"{root}-s{seed}{ext}"


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.profile_file:
        from ..workload.profile_io import load_profile

        profile = load_profile(args.profile_file)
    else:
        profile = PROFILES[args.profile]
    duration = args.hours * 3600.0
    if args.spool and not args.output.endswith((".btrace", ".bcorpus")):
        print("--spool streams the binary format: output must end in "
              ".btrace or .bcorpus",
              file=sys.stderr)
        return 2

    if args.seeds == 1:
        if args.spool:
            result = generate(
                profile,
                seed=args.seed,
                duration=duration,
                spool=args.output,
                spool_buffer=args.spool_buffer,
            )
            print(
                f"{profile.trace_name}: {result.events_spooled} events spooled "
                f"(peak {result.peak_buffered} events resident)"
            )
            print(f"wrote {args.output}")
            return 0
        result = generate(profile, seed=args.seed, duration=duration)
        _save_trace(result.trace, args.output)
        print(result.trace.summary_line())
        print(f"wrote {args.output}")
        return 0

    seeds = list(range(args.seed, args.seed + args.seeds))
    pairs = [(profile, s) for s in seeds]
    outputs = [_seed_output(args.output, s) for s in seeds]
    if len(set(outputs)) != len(outputs):
        print("per-seed output paths collide; use a {seed} placeholder",
              file=sys.stderr)
        return 2
    if args.spool:
        summaries = generate_many(
            pairs,
            duration,
            jobs=_jobs(args),
            outputs=outputs,
            spool_buffer=args.spool_buffer,
        )
        for summary in summaries:
            print(
                f"wrote {summary.path}: {summary.events} events "
                f"(seed {summary.seed}, peak {summary.peak_buffered} resident)"
            )
    else:
        traces = generate_many(pairs, duration, jobs=_jobs(args))
        for trace, out in zip(traces, outputs):
            _save_trace(trace, out)
            print(trace.summary_line())
            print(f"wrote {out}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    log = _load_trace(args.trace)
    print(compute_stats(log).render())
    print(interval_stats(log).render())
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    if args.trace.endswith(".bcorpus"):
        # Streaming path: segments fold through the same tracker the
        # in-RAM validator uses, so the report is identical.
        from ..corpus import validate_corpus

        report = validate_corpus(
            args.trace, max_problems=args.max_problems, engine=args.engine
        )
        print(report)
        for problem in report.problems:
            print(f"  {problem}")
        return 0 if report.ok else 1
    if args.trace.endswith(".btrace"):
        # Columnar path: validate straight off the column arrays (plus
        # the storage-level u32-time/flag-byte checks), never building
        # per-event objects.
        from ..trace.io_binary import read_binary_columns

        subject = read_binary_columns(args.trace)
    else:
        subject = _load_trace(args.trace)
    report = validate(subject, max_problems=args.max_problems, engine=args.engine)
    print(report)
    for problem in report.problems:
        print(f"  {problem}")
    return 0 if report.ok else 1


def _render_onepass_section(report, wanted: str) -> str:
    """One section of a fused :class:`OnePassReport` by ``--report`` name."""
    if wanted == "all":
        return report.render()
    if wanted == "activity":
        return report.activity.render()
    if wanted == "sequentiality":
        return report.sequentiality.render()
    if wanted == "opentimes":
        return open_time_summary(report.open_times)
    if wanted == "sizes":
        return size_summary(report.size_by_accesses, report.size_by_bytes)
    if wanted == "users":
        from ..analysis import render_user_table

        return render_user_table(report.users)
    if wanted == "burstiness":
        return report.burstiness.render()
    dead = [lt for lt in report.lifetimes if lt.lifetime is not None]
    return (
        f"{len(report.lifetimes)} new files, {len(dead)} died during the "
        f"trace; {100 * report.daemon_spike:.0f}% of lifetimes in the "
        "179-181 s daemon band"
    )


def _cmd_analyze(args: argparse.Namespace) -> int:
    if args.trace.endswith(".bcorpus"):
        # Out-of-core path: one streamed pass, then print the requested
        # section — every section is a field of the fused report.
        from ..corpus import analyze_corpus

        print(_render_onepass_section(
            analyze_corpus(args.trace, engine=args.engine), args.report
        ))
        return 0
    log = _load_trace(args.trace)
    wanted = args.report
    if wanted == "all":
        # The full report comes from the fused single-pass analyzer; the
        # per-report branches below keep exercising the reference modules.
        print(analyze_onepass(log, engine=args.engine).render())
        return 0
    if wanted in ("activity", "all"):
        print(analyze_activity(log).render())
    if wanted in ("sequentiality", "all"):
        print(analyze_sequentiality(log).render())
    if wanted in ("opentimes", "all"):
        print(open_time_summary(open_time_cdf(log)))
    if wanted in ("sizes", "all"):
        print(size_summary(*file_size_cdfs(log)))
    if wanted in ("users", "all"):
        from ..analysis import per_user_summary, render_user_table

        print(render_user_table(per_user_summary(log)))
    if wanted in ("burstiness", "all"):
        from ..analysis import analyze_burstiness

        print(analyze_burstiness(log).render())
    if wanted in ("lifetimes", "all"):
        lifetimes = collect_lifetimes(log)
        dead = [lt for lt in lifetimes if lt.lifetime is not None]
        spike = 100 * daemon_spike_fraction(lifetimes)
        print(
            f"{len(lifetimes)} new files, {len(dead)} died during the trace; "
            f"{spike:.0f}% of lifetimes in the 179-181 s daemon band"
        )
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    log = _load_trace(args.trace)
    policy = _POLICIES[args.policy]
    metrics = simulate_cache(
        log,
        cache_bytes=int(args.cache_mb * 1024 * 1024),
        block_size=args.block_size,
        policy=policy,
        include_paging=args.paging,
        replacement=args.replacement,
    )
    print(metrics.summary())
    return 0


def _jobs(args: argparse.Namespace) -> int:
    """The validated worker count: ``--jobs`` or the capped CPU count."""
    return args.jobs if args.jobs is not None else auto_jobs()


def _cmd_sweep(args: argparse.Namespace) -> int:
    log = _load_trace(args.trace)
    jobs = _jobs(args)
    kwargs = dict(
        jobs=jobs,
        engine=args.engine,
        pack_dir=args.pack_cache,
        replacement=args.policy,
    )
    if args.kind == "policy":
        sweep = cache_size_policy_sweep(log, **kwargs)
    elif args.kind == "blocksize":
        sweep = block_size_sweep(log, **kwargs)
    else:
        print(paging_comparison(log, **kwargs).render())
        return 0
    print(sweep.render())
    if args.csv:
        from ..analysis.export import write_sweep_csv

        write_sweep_csv(args.csv, sweep)
        print(f"wrote {args.csv}")
    return 0


def _cmd_twolevel(args: argparse.Namespace) -> int:
    from ..cache.twolevel import simulate_two_level

    log = _load_trace(args.trace)
    result = simulate_two_level(
        log,
        client_cache_bytes=int(args.client_kb * 1024),
        server_cache_bytes=int(args.server_mb * 1024 * 1024),
        block_size=args.block_size,
        client_policy=_POLICIES[args.client_policy],
    )
    print(result.render())
    return 0


def _cmd_netfs(args: argparse.Namespace) -> int:
    from ..netfs import simulate_netfs

    if args.trace:
        log = _load_trace(args.trace)
    else:
        profile = PROFILES[args.profile]
        result = generate(profile, seed=args.seed, duration=args.hours * 3600.0)
        log = result.trace
        print(log.summary_line())
    # One configuration is a single discrete-event run; the jobs context
    # still applies to any sweep launched beneath it (and validates the
    # flag uniformly across subcommands).
    with jobs_context(_jobs(args)):
        outcome = simulate_netfs(
            log,
            clients=args.clients,
            client_cache_bytes=args.client_cache,
            server_cache_bytes=args.server_cache,
            block_size=args.block_size,
            protocol=args.protocol,
            server_queue_limit=args.queue_limit,
            load_scale=args.load_scale,
            seed=args.seed,
        )
    print(outcome.render())
    return 0


def _cmd_export_figures(args: argparse.Namespace) -> int:
    from ..analysis.export import export_figures

    log = _load_trace(args.trace)
    for path in export_figures(log, args.directory):
        print(f"wrote {path}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    log = _load_trace(args.trace)
    jobs = _jobs(args)
    # The registry's entry points take only a trace; the engine and
    # replacement-policy choices reach the sweeps beneath them (table6,
    # fig5, fig7...) ambiently, exactly like the jobs count does through
    # run_one/run_all.
    with engine_context(args.engine), replacement_context(args.policy):
        if args.all:
            for result in run_all(log, jobs=jobs):
                print(result)
                print()
            return 0
        if not args.id:
            print(
                f"available experiments: {', '.join(all_ids())}",
                file=sys.stderr,
            )
            return 2
        print(run_one(args.id, log, jobs=jobs))
        return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from ..experiments import paper_vs_measured

    log = _load_trace(args.trace)
    text = (
        f"# Paper-vs-measured report for trace {log.name}\n\n"
        f"{len(log)} events over {log.duration / 3600:.2f} hours.\n\n"
        + paper_vs_measured(log)
        + "\n"
    )
    with open(args.output, "w", encoding="utf-8") as fh:
        fh.write(text)
    print(f"wrote {args.output}")
    return 0


def _cmd_slice(args: argparse.Namespace) -> int:
    log = _load_trace(args.trace)
    out = log.slice(args.start, args.end if args.end is not None else log.end_time + 1)
    _save_trace(out, args.output)
    print(out.summary_line())
    return 0


def _cmd_filter(args: argparse.Namespace) -> int:
    from ..trace.ops import filter_files, filter_users

    log = _load_trace(args.trace)
    if args.users:
        log = filter_users(log, [int(u) for u in args.users.split(",")])
    if args.files:
        log = filter_files(log, [int(f) for f in args.files.split(",")])
    _save_trace(log, args.output)
    print(log.summary_line())
    return 0


def _cmd_merge(args: argparse.Namespace) -> int:
    from ..trace.ops import merge

    logs = [_load_trace(path) for path in args.traces]
    merged = merge(logs)
    _save_trace(merged, args.output)
    print(merged.summary_line())
    return 0


def _cmd_system(args: argparse.Namespace) -> int:
    from ..unixfs.check import fsck
    from ..workload.generator import generate

    profile = PROFILES[args.profile]
    result = generate(profile, seed=args.seed, duration=args.hours * 3600.0)
    print(result.trace.summary_line())
    print(fsck(result.fs))
    print()
    ids = all_system_ids() if args.all or not args.id else [args.id]
    for experiment_id in ids:
        print(f"=== {experiment_id} ===")
        print(run_system_experiment(experiment_id, result).rendered)
        print()
    return 0


def _statics_config() -> dict:
    """`[tool.repro.statics]` from the nearest pyproject.toml, if any.

    Supplies *defaults* for `repro-fs lint` (explicit flags win).  Needs
    tomllib (3.11+); on 3.10 the config is simply not consulted, which
    only affects defaults — CI passes --baseline and paths explicitly.
    """
    try:
        import tomllib
    except ImportError:
        return {}
    directory = Path.cwd()
    for candidate in (directory, *directory.parents):
        pyproject = candidate / "pyproject.toml"
        if not pyproject.is_file():
            continue
        try:
            with open(pyproject, "rb") as fh:
                data = tomllib.load(fh)
        except (OSError, tomllib.TOMLDecodeError):
            return {}
        config = data.get("tool", {}).get("repro", {}).get("statics", {})
        if config:
            # Paths in the config are relative to the pyproject's dir.
            config = dict(config, root=candidate)
        return config
    return {}


def _changed_files(ref: str, root: Path) -> list[Path] | None:
    """Files touched vs. the merge-base with *ref*, plus untracked ones.

    Returns ``None`` when git is unavailable or *ref* does not resolve
    (the caller reports the error; guessing a scope would silently lint
    the wrong files).
    """
    import subprocess

    def run(*argv: str):
        try:
            return subprocess.run(
                ["git", *argv], cwd=root, capture_output=True, text=True
            )
        except OSError:
            return None

    base = run("merge-base", ref, "HEAD")
    if base is None or base.returncode != 0:
        return None
    diff = run("diff", "--name-only", base.stdout.strip())
    untracked = run("ls-files", "--others", "--exclude-standard")
    if diff is None or diff.returncode != 0 or untracked is None:
        return None
    names = {
        line.strip()
        for line in (diff.stdout + "\n" + untracked.stdout).splitlines()
        if line.strip()
    }
    return [root / name for name in sorted(names)]


def _cmd_lint(args: argparse.Namespace) -> int:
    from ..statics import (
        collect_files,
        lint_paths,
        load_baseline,
        render_json,
        render_sarif,
        render_text,
        rule_catalog,
        write_baseline,
    )

    if args.list_rules:
        for rule_id, severity, title in rule_catalog():
            print(f"{rule_id}  {severity:7s}  {title}")
        return 0
    if args.changed is not None and args.update_baseline:
        print(
            "lint: --update-baseline needs a whole-tree run; "
            "drop --changed",
            file=sys.stderr,
        )
        return 2
    config = _statics_config()
    root = config.get("root")
    paths = args.paths
    if not paths:
        configured = [root / p for p in config.get("paths", [])] if root else []
        paths = [p for p in configured if p.exists()] or ["src"]
    baseline_path = args.baseline
    if baseline_path is None and root is not None and "baseline" in config:
        candidate = root / config["baseline"]
        if candidate.is_file():
            baseline_path = candidate
    baseline = load_baseline(baseline_path) if baseline_path else None

    # [tool.repro.statics] lattice/scope overrides (everything that is
    # not a CLI-level default); --callgraph-cache wins over the config.
    overrides = {
        key: value
        for key, value in config.items()
        if key not in ("root", "paths", "baseline")
    }
    if args.callgraph_cache is not None:
        overrides["callgraph_cache"] = args.callgraph_cache

    scoped = False
    if args.changed is not None:
        git_root = Path(root) if root is not None else Path.cwd()
        changed = _changed_files(args.changed, git_root)
        if changed is None:
            print(
                f"lint: could not diff against {args.changed!r} "
                "(not a git checkout, or unknown ref)",
                file=sys.stderr,
            )
            return 2
        changed_keys = {p.resolve() for p in changed}
        paths = [
            p for p in collect_files(paths) if p.resolve() in changed_keys
        ]
        scoped = True

    try:
        report = lint_paths(
            paths, baseline=baseline, overrides=overrides, scoped=scoped
        )
    except ValueError as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2
    if args.write_baseline:
        count = write_baseline(args.write_baseline, report.findings)
        print(f"wrote {args.write_baseline} ({count} grandfathered finding(s))")
        return 0
    if args.update_baseline:
        if baseline_path is None:
            print(
                "lint: no baseline to update; pass --baseline or set "
                "[tool.repro.statics] baseline in pyproject.toml",
                file=sys.stderr,
            )
            return 2
        grandfathered = report.findings + report.baselined
        count = write_baseline(baseline_path, grandfathered)
        print(f"wrote {baseline_path} ({count} grandfathered finding(s))")
        return 0
    render = {
        "json": render_json,
        "sarif": render_sarif,
        "text": render_text,
    }[args.format]
    rendered = render(report)
    if args.output is not None:
        Path(args.output).write_text(rendered + "\n", encoding="utf-8")
        print(
            f"wrote {args.output} ({len(report.findings)} finding(s) in "
            f"{report.files_scanned} file(s))"
        )
    else:
        print(rendered)
    return 0 if report.ok else 1


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from ..fuzz import FuzzConfig, run_fuzz

    config = FuzzConfig(
        seed=args.seed,
        budget=args.budget,
        corpus=args.corpus,
        time_budget=args.time_budget,
    )
    report = run_fuzz(config, progress=print)
    for divergence in report.divergences:
        print(divergence.summary())
    return 0 if report.ok else 1


def _cmd_corpus_pack(args: argparse.Namespace) -> int:
    from ..corpus import pack_trace

    if not args.output.endswith(".bcorpus"):
        print("corpus output must end in .bcorpus", file=sys.stderr)
        return 2
    writer = pack_trace(
        args.trace, args.output, segment_events=args.segment_events
    )
    print(
        f"wrote {args.output}: {writer.events_written} events in "
        f"{writer.segments_written} segment(s), {writer.bytes_written} bytes"
    )
    return 0


def _cmd_corpus_info(args: argparse.Namespace) -> int:
    from ..corpus import CorpusReader

    with CorpusReader(args.corpus) as reader:
        stats = reader.stats
        span = (
            f"{stats[0].time_first:.2f}..{stats[-1].time_last:.2f} s"
            if stats
            else "empty"
        )
        print(f"{args.corpus}: trace {reader.name!r} ({reader.description})")
        print(
            f"  {reader.total_events} events in {reader.segment_count} "
            f"segment(s) of <= {reader.segment_events}, {span}"
        )
        if args.segments:
            for i, stat in enumerate(stats):
                print(f"  segment {i}: {stat.summary_line()}")
    return 0


def _cmd_corpus_verify(args: argparse.Namespace) -> int:
    from ..corpus import CorpusError, CorpusReader, map_segments, verify_segment_job

    try:
        # Reader-level pass first: footer/header/crc coverage in-process.
        with CorpusReader(args.corpus) as reader:
            checked = reader.verify()
        # Then the sharded stats re-derivation, one job per segment.
        map_segments(
            functools.partial(verify_segment_job, engine=args.engine),
            args.corpus,
            jobs=_jobs(args),
        )
    except CorpusError as error:
        print(f"corrupt: {error}", file=sys.stderr)
        return 1
    print(f"{args.corpus}: OK ({checked} segment(s) verified)")
    return 0


def _cmd_convert_strace(args: argparse.Namespace) -> int:
    log, stats = convert_file(args.strace_log, name=args.name)
    _save_trace(log, args.output)
    print(stats.summary())
    print(f"wrote {args.output} ({len(log)} events)")
    return 0


def _engine_arg(text: str) -> str:
    if text == "numpy" and not numpy_available():
        raise argparse.ArgumentTypeError(
            "numpy engine requested but numpy is unavailable "
            "(not installed, or disabled via REPRO_NO_NUMPY)"
        )
    return text


def _add_engine_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--engine", choices=ENGINES, default="auto", type=_engine_arg,
        help="scan implementation: auto picks the numpy fast path when "
        "available, python/numpy force one side (results are identical)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fs",
        description=(
            "Trace-driven analysis of the UNIX 4.2 BSD file system "
            "(SOSP 1985 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="synthesize a trace from a machine profile")
    p.add_argument("--profile", choices=sorted(PROFILES), default="A5")
    p.add_argument(
        "--profile-file",
        help="JSON profile definition (overrides --profile)",
        default=None,
    )
    p.add_argument("--hours", type=float, default=4.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("-o", "--output", required=True)
    p.add_argument("--seeds", type=_positive_int, default=1,
                   help="generate this many traces with consecutive seeds "
                   "(output takes a {seed} placeholder or gets -s<seed> "
                   "inserted before its extension)")
    p.add_argument("--jobs", type=_positive_int, default=None,
                   help="worker processes for multi-seed generation "
                   "(default: CPU count, capped)")
    p.add_argument("--spool", action="store_true",
                   help="stream events to the .btrace output incrementally, "
                   "keeping only --spool-buffer events in memory")
    p.add_argument("--spool-buffer", type=_positive_int, default=8192,
                   help="events buffered before each spool flush")
    p.set_defaults(func=_cmd_generate)

    p = sub.add_parser("stats", help="Table III statistics for a trace")
    p.add_argument("trace")
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser("validate", help="check trace integrity")
    p.add_argument("trace")
    p.add_argument("--max-problems", type=_positive_int,
                   default=DEFAULT_MAX_PROBLEMS,
                   help="cap on reported problems before truncation "
                   f"(default: {DEFAULT_MAX_PROBLEMS})")
    _add_engine_arg(p)
    p.set_defaults(func=_cmd_validate)

    p = sub.add_parser("analyze", help="reference-pattern analysis")
    p.add_argument("trace")
    p.add_argument(
        "--report",
        choices=["activity", "sequentiality", "opentimes", "sizes",
                 "lifetimes", "users", "burstiness", "all"],
        default="all",
    )
    _add_engine_arg(p)
    p.set_defaults(func=_cmd_analyze)

    p = sub.add_parser("simulate", help="one block-cache simulation")
    p.add_argument("trace")
    p.add_argument("--cache-mb", type=float, default=4.0)
    p.add_argument("--block-size", type=int, default=4096)
    p.add_argument("--policy", choices=sorted(_POLICIES), default="delayed-write")
    p.add_argument("--replacement", choices=list(REPLACEMENT_NAMES), default="lru",
                   help="block replacement policy (the paper's is lru)")
    p.add_argument("--paging", action="store_true", help="simulate execve page-in")
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser("sweep", help="cache parameter sweeps (Tables VI/VII, Fig 7)")
    p.add_argument("trace")
    p.add_argument("--kind", choices=["policy", "blocksize", "paging"], default="policy")
    p.add_argument("--policy", choices=list(REPLACEMENT_NAMES), default="lru",
                   help="block replacement policy (the paper's is lru)")
    p.add_argument("--csv", help="also write the grid as CSV", default=None)
    p.add_argument("--jobs", type=_positive_int, default=None,
                   help="worker processes (default: CPU count, capped; "
                   "1 forces the serial reference path)")
    p.add_argument("--pack-cache", default=None, metavar="DIR",
                   help="directory of shared .bpack packed-stream files; "
                   "workers mmap these instead of receiving pickled "
                   "arrays (created and reused across runs)")
    _add_engine_arg(p)
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser(
        "twolevel", help="client/server two-level cache simulation"
    )
    p.add_argument("trace")
    p.add_argument("--client-kb", type=float, default=512.0)
    p.add_argument("--server-mb", type=float, default=16.0)
    p.add_argument("--block-size", type=int, default=4096)
    p.add_argument("--client-policy", choices=sorted(_POLICIES),
                   default="write-through")
    p.set_defaults(func=_cmd_twolevel)

    p = sub.add_parser(
        "netfs",
        help="discrete-event network file service simulation "
        "(clients + Ethernet + RPC + server queue + consistency)",
    )
    p.add_argument(
        "trace", nargs="?", default=None,
        help="trace file (omitted: generate one from --profile)",
    )
    p.add_argument("--profile", choices=sorted(PROFILES), default="A5")
    p.add_argument("--hours", type=float, default=1.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--clients", type=_positive_int, default=None,
                   help="workstations to fold users onto (default: one per user)")
    p.add_argument("--client-cache", type=_parse_size, default="512K",
                   help="per-workstation cache (e.g. 512K, 2M)")
    p.add_argument("--server-cache", type=_parse_size, default="16M")
    p.add_argument("--block-size", type=int, default=4096)
    p.add_argument("--protocol", choices=["callbacks", "ownership"],
                   default="callbacks")
    p.add_argument("--queue-limit", type=int, default=64,
                   help="server request-queue bound")
    p.add_argument("--load-scale", type=_positive_int, default=1,
                   help="replay N disjoint copies of the trace in parallel")
    p.add_argument("--jobs", type=_positive_int, default=None,
                   help="worker processes for sweeps beneath this run "
                   "(default: CPU count, capped)")
    p.set_defaults(func=_cmd_netfs)

    p = sub.add_parser(
        "export-figures", help="write Figures 1-4 curves as CSV files"
    )
    p.add_argument("trace")
    p.add_argument("-d", "--directory", default="figures")
    p.set_defaults(func=_cmd_export_figures)

    p = sub.add_parser("experiment", help="reproduce a paper exhibit")
    p.add_argument("trace")
    p.add_argument("--id", help="experiment id (see --all for the list)")
    p.add_argument("--all", action="store_true", help="run every exhibit")
    p.add_argument("--jobs", type=_positive_int, default=None,
                   help="worker processes (default: CPU count, capped; "
                   "1 forces the serial reference path)")
    p.add_argument("--policy", choices=list(REPLACEMENT_NAMES), default="lru",
                   help="block replacement policy for the cache exhibits "
                   "(the paper's is lru)")
    _add_engine_arg(p)
    p.set_defaults(func=_cmd_experiment)

    p = sub.add_parser(
        "report", help="write a paper-vs-measured markdown report"
    )
    p.add_argument("trace")
    p.add_argument("-o", "--output", required=True)
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("slice", help="cut a time window out of a trace")
    p.add_argument("trace")
    p.add_argument("--start", type=float, default=0.0)
    p.add_argument("--end", type=float, default=None)
    p.add_argument("-o", "--output", required=True)
    p.set_defaults(func=_cmd_slice)

    p = sub.add_parser("filter", help="restrict a trace to users/files")
    p.add_argument("trace")
    p.add_argument("--users", help="comma-separated user ids")
    p.add_argument("--files", help="comma-separated file ids")
    p.add_argument("-o", "--output", required=True)
    p.set_defaults(func=_cmd_filter)

    p = sub.add_parser("merge", help="merge traces into one time-ordered trace")
    p.add_argument("traces", nargs="+")
    p.add_argument("-o", "--output", required=True)
    p.set_defaults(func=_cmd_merge)

    p = sub.add_parser(
        "system",
        help="live-kernel experiments (Leffler comparison, other-I/O, "
        "static scan) — generates its own system",
    )
    p.add_argument("--profile", choices=sorted(PROFILES), default="A5")
    p.add_argument("--hours", type=float, default=1.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--id", default=None)
    p.add_argument("--all", action="store_true")
    p.set_defaults(func=_cmd_system)

    p = sub.add_parser(
        "lint",
        help="AST invariant linter (determinism, parallel-safety, "
        "hot-path hygiene, trace-schema drift)",
    )
    p.add_argument(
        "paths", nargs="*", default=[],
        help="files or directories to lint (default: the "
        "[tool.repro.statics] paths from pyproject.toml, else src)",
    )
    p.add_argument(
        "--format", choices=["text", "json", "sarif"], default="text"
    )
    p.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="JSON baseline of grandfathered findings to ignore "
        "(default: the [tool.repro.statics] baseline from pyproject.toml)",
    )
    p.add_argument(
        "--write-baseline", default=None, metavar="PATH",
        help="write the current findings as a new baseline and exit 0",
    )
    p.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the effective baseline file with the current "
        "unsuppressed findings (instead of hand-editing it) and exit 0",
    )
    p.add_argument(
        "--changed", nargs="?", const="origin/main", default=None,
        metavar="REF",
        help="lint only files touched vs. the merge-base with REF "
        "(default origin/main); whole-program rules are skipped",
    )
    p.add_argument(
        "--callgraph-cache", default=None, metavar="PATH",
        help="persist per-file call-graph facts here between runs "
        "(digest-validated; used by the cross-module engine rules)",
    )
    p.add_argument(
        "--output", default=None, metavar="PATH",
        help="write the rendered report to PATH instead of stdout "
        "(the exit code still reflects findings)",
    )
    p.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog"
    )
    p.set_defaults(func=_cmd_lint)

    p = sub.add_parser(
        "fuzz",
        help="differential fuzzing + fault injection across the pipeline "
        "(syscall replay oracle, I/O/analysis/cache differentials, "
        "corruption and netfs faults; failures shrink to a corpus)",
    )
    p.add_argument("--seed", type=int, default=0,
                   help="base seed; every round is a pure function of "
                   "(seed, round index)")
    p.add_argument("--budget", type=_positive_int, default=1000,
                   help="work items to spend (syscalls executed, events "
                   "through oracles, corruption cases)")
    p.add_argument("--corpus", default=None, metavar="DIR",
                   help="directory of shrunk repros: replayed first, and "
                   "new failures are written here")
    p.add_argument("--time-budget", type=float, default=None, metavar="SECONDS",
                   help="also stop at a wall-clock deadline (for CI)")
    p.set_defaults(func=_cmd_fuzz)

    p = sub.add_parser(
        "corpus",
        help="out-of-core sharded corpora: pack traces into .bcorpus "
        "files, inspect the segment index, verify checksums and stats",
    )
    csub = p.add_subparsers(dest="corpus_command", required=True)
    c = csub.add_parser("pack", help="pack a trace file into a .bcorpus")
    c.add_argument("trace", help="source trace (.btrace, .trace, or text)")
    c.add_argument("-o", "--output", required=True)
    c.add_argument("--segment-events", type=_positive_int, default=65536,
                   help="events per segment (default: 65536)")
    c.set_defaults(func=_cmd_corpus_pack)
    c = csub.add_parser("info", help="print the corpus header and index")
    c.add_argument("corpus")
    c.add_argument("--segments", action="store_true",
                   help="also print one line per segment")
    c.set_defaults(func=_cmd_corpus_info)
    c = csub.add_parser(
        "verify", help="recompute every segment checksum and statistic"
    )
    c.add_argument("corpus")
    c.add_argument("--jobs", type=_positive_int, default=None,
                   help="worker processes for the per-segment pass "
                   "(default: CPU count, capped)")
    _add_engine_arg(c)
    c.set_defaults(func=_cmd_corpus_verify)

    p = sub.add_parser("convert-strace", help="convert strace -f -ttt output")
    p.add_argument("strace_log")
    p.add_argument("-o", "--output", required=True)
    p.add_argument("--name", default=None)
    p.set_defaults(func=_cmd_convert_strace)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
