"""Simulated clocks.

Everything in this repository runs against a virtual clock so that traces
are deterministic and a multi-day trace can be generated in seconds.  The
file system takes any zero-argument callable returning the current time;
:class:`Clock` is the canonical implementation and is what the workload
engine's event loop advances.
"""

from __future__ import annotations

__all__ = ["Clock"]


class Clock:
    """A manually advanced monotonic clock (seconds as float)."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def __call__(self) -> float:
        return self._now

    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, dt: float) -> float:
        """Move the clock forward by *dt* seconds; returns the new time."""
        if dt < 0:
            raise ValueError(f"cannot advance clock by negative dt={dt}")
        self._now += dt
        return self._now

    def set(self, t: float) -> None:
        """Jump the clock to absolute time *t* (must not move backwards)."""
        if t < self._now:
            raise ValueError(f"clock cannot move backwards ({t} < {self._now})")
        self._now = float(t)

    def __repr__(self) -> str:
        return f"Clock(t={self._now:.3f})"
