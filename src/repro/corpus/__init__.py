"""Out-of-core trace corpora: segmented columnar storage with a stats index.

The paper's traces fit in RAM; the scaled synthetic workloads this repo
aims at do not.  A *corpus* (``.bcorpus``) stores one trace as a run of
fixed-width columnar segments — the exact ``TraceColumns`` buffer
layouts — plus a footer index carrying per-segment statistics, so
readers can seek, skip, shard, and verify without materializing events:

- :class:`CorpusWriter` / :class:`CorpusSpool` build corpora append-only
  with bounded memory (``generate_many`` spools straight into one when
  the output path ends in ``.bcorpus``).
- :class:`CorpusReader` mmaps a corpus and serves zero-copy
  ``TraceColumns`` views of individual segments.
- :func:`analyze_corpus` / :func:`validate_corpus` stream segments
  through the one-pass analyzer and validator, bit-identical to the
  in-RAM paths.
- :func:`map_segments` shards one corpus across worker processes by
  segment via ``repro.parallel.run_jobs`` with deterministic merge
  order.
- :func:`write_segment_packs` compiles per-segment ``.bpack``
  block-access shards (:mod:`repro.parallel.bpack`) so cache sweeps can
  fan segments out to workers zero-copy.

Format spec: ``DESIGN.md`` §11 and :mod:`repro.corpus.format`.
"""

from .format import (
    DEFAULT_SEGMENT_EVENTS,
    FORMAT_VERSION,
    SCHEMA_DIGESTS,
    CorpusError,
    SegmentStat,
    schema_digest,
)
from .packs import segment_pack_path, write_segment_packs
from .parallel import map_segments, segment_kind_counts, verify_segment_job
from .reader import CorpusReader, read_corpus_columns
from .stream import analyze_corpus, validate_corpus
from .writer import CorpusSpool, CorpusWriter, pack_columns, pack_trace

__all__ = [
    "CorpusError",
    "CorpusReader",
    "CorpusSpool",
    "CorpusWriter",
    "DEFAULT_SEGMENT_EVENTS",
    "FORMAT_VERSION",
    "SCHEMA_DIGESTS",
    "SegmentStat",
    "analyze_corpus",
    "map_segments",
    "pack_columns",
    "pack_trace",
    "read_corpus_columns",
    "schema_digest",
    "segment_kind_counts",
    "segment_pack_path",
    "validate_corpus",
    "verify_segment_job",
    "write_segment_packs",
]
