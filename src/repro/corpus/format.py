"""The on-disk corpus format: constants, structs, and schema versioning.

A *corpus* is a segmented, mmap-friendly container for one trace too
large to hold in RAM: fixed-width columnar segments (the exact
``TraceColumns`` buffer layouts) followed by a footer index carrying
per-segment statistics, so readers can seek, skip, shard and verify
without materializing a single event.  See ``DESIGN.md`` §11 for the
narrative spec; this module is the normative one.

File layout (every multi-byte field little-endian, ``<`` structs)::

    header   magic           8 bytes  b"BSDCORP" + version byte
             name            u16 length + utf-8 bytes
             desc            u16 length + utf-8 bytes
             segment_events  u32 (writer's nominal segment size)
             padding         zero bytes to the next 8-byte boundary
    segment* each segment, starting on an 8-byte boundary:
             times           f64 x count   (exact floats, no quantizing)
             open_ids        i64 x count
             file_ids        i64 x count
             user_ids        i64 x count
             sizes           i64 x count
             positions       i64 x count
             kinds           u8  x count
             flags           u8  x count
             padding         zero bytes to the next 8-byte boundary
    footer   magic           8 bytes  b"BSDCIDX" + version byte
             header_crc      u32 crc32 of the header bytes (padding included)
             reserved        u32 zero
             record*         one 200-byte SEGMENT_STAT_STRUCT per segment
    trailer  footer_offset   u64 absolute byte offset of the footer
             total_events    u64 (must equal the sum of segment counts)
             segment_count   u32
             footer_crc      u32 crc32 of the footer bytes
             end magic       8 bytes  b"BSDCEND" + version byte

The numeric columns come first inside a segment and segments start
8-aligned, so a reader can ``memoryview.cast`` them straight out of an
``mmap`` with zero copies.  Column buffers are stored little-endian;
on a big-endian host the codec byteswaps on the way in and out (the
file format never changes with the host).

Versioning: the format version appears as the final byte of all three
magics and as :data:`FORMAT_VERSION`.  Any change to the segment layout,
the stat record, or the magics MUST bump the version and register the
new schema digest in :data:`SCHEMA_DIGESTS` — the ``REP-S002`` lint rule
recomputes the digest from this file's literals and fails the build on
silent drift.
"""

from __future__ import annotations

import hashlib
import struct

from ..trace.io_binary import BinaryTraceError

__all__ = [
    "FORMAT_VERSION",
    "MAGIC",
    "FOOTER_MAGIC",
    "END_MAGIC",
    "COLUMN_LAYOUT",
    "SEGMENT_STAT_FIELDS",
    "SEGMENT_STAT_STRUCT",
    "FLAG_HIST_BINS",
    "BYTES_PER_EVENT",
    "DEFAULT_SEGMENT_EVENTS",
    "CorpusError",
    "SegmentStat",
    "SCHEMA_DIGESTS",
    "schema_digest",
]


class CorpusError(BinaryTraceError):
    """A corpus file is corrupt, truncated, or unrecognized.

    Subclasses :class:`~repro.trace.io_binary.BinaryTraceError` so every
    caller that already handles damaged ``.btrace`` files handles
    damaged corpora the same way; messages name the byte offset that
    disappointed the reader.
    """


#: Bump on ANY layout change, together with a new SCHEMA_DIGESTS entry.
FORMAT_VERSION = 1

MAGIC = b"BSDCORP\x01"
FOOTER_MAGIC = b"BSDCIDX\x01"
END_MAGIC = b"BSDCEND\x01"

#: Column order inside one segment (numeric 8-byte columns first, so an
#: 8-aligned segment start keeps them castable; the two byte columns
#: trail).  Typecodes match TraceColumns exactly.
COLUMN_LAYOUT = (
    ("times", "d"),
    ("open_ids", "q"),
    ("file_ids", "q"),
    ("user_ids", "q"),
    ("sizes", "q"),
    ("positions", "q"),
    ("kinds", "B"),
    ("flags", "B"),
)

#: Fields of one footer stat record, in struct order.
SEGMENT_STAT_FIELDS = (
    "offset",
    "count",
    "time_first",
    "time_last",
    "user_lo",
    "user_hi",
    "file_lo",
    "file_hi",
    "crc32",
    "flag_hist",
)

#: Histogram bins: exact counts of flag byte values 0..15 (every defined
#: flag combination).  Bytes outside 0..15 fall in no bin, so a hist
#: summing short of ``count`` is itself a corruption signal.
FLAG_HIST_BINS = 16

SEGMENT_STAT_STRUCT = "<QQddqqqqQ16Q"

#: Storage cost of one event inside a segment (6 x 8-byte + 2 x 1-byte).
BYTES_PER_EVENT = 50

#: Writer default: ~3.2 MB of segment data, small enough that dozens of
#: segments stream through a worker without memory pressure, large
#: enough that footer overhead (200 bytes/segment) is noise.
DEFAULT_SEGMENT_EVENTS = 65536

_SCHEMA_DIGEST_V1 = "40178e9a0265"

#: version -> expected schema digest; REP-S002 recomputes and compares.
SCHEMA_DIGESTS = {1: _SCHEMA_DIGEST_V1}

HEADER_STR = struct.Struct("<H")
HEADER_SEGEVENTS = struct.Struct("<I")
FOOTER_HEAD = struct.Struct("<II")  # header_crc, reserved
SEGMENT_REC = struct.Struct(SEGMENT_STAT_STRUCT)
TRAILER = struct.Struct("<QQII8s")  # footer_offset total_events nseg footer_crc end_magic


class SegmentStat:
    """One footer index record: where a segment lives and what is in it."""

    __slots__ = SEGMENT_STAT_FIELDS

    def __init__(
        self,
        offset: int,
        count: int,
        time_first: float,
        time_last: float,
        user_lo: int,
        user_hi: int,
        file_lo: int,
        file_hi: int,
        crc32: int,
        flag_hist: tuple[int, ...],
    ):
        self.offset = offset
        self.count = count
        self.time_first = time_first
        self.time_last = time_last
        self.user_lo = user_lo
        self.user_hi = user_hi
        self.file_lo = file_lo
        self.file_hi = file_hi
        self.crc32 = crc32
        self.flag_hist = flag_hist

    @property
    def data_bytes(self) -> int:
        """Unpadded byte length of the segment's column data."""
        return self.count * BYTES_PER_EVENT

    def pack(self) -> bytes:
        return SEGMENT_REC.pack(
            self.offset,
            self.count,
            self.time_first,
            self.time_last,
            self.user_lo,
            self.user_hi,
            self.file_lo,
            self.file_hi,
            self.crc32,
            *self.flag_hist,
        )

    @classmethod
    def unpack_from(cls, buf, offset: int) -> "SegmentStat":
        values = SEGMENT_REC.unpack_from(buf, offset)
        return cls(*values[:9], flag_hist=values[9:])

    def __eq__(self, other) -> bool:
        if not isinstance(other, SegmentStat):
            return NotImplemented
        return all(
            getattr(self, name) == getattr(other, name)
            for name in SEGMENT_STAT_FIELDS
        )

    def __repr__(self) -> str:
        return (
            f"SegmentStat(offset={self.offset}, count={self.count}, "
            f"t=[{self.time_first}, {self.time_last}])"
        )

    def summary_line(self) -> str:
        return (
            f"{self.count} events, t [{self.time_first:.2f}, "
            f"{self.time_last:.2f}], users <= {self.user_hi}, "
            f"files <= {self.file_hi}, crc {self.crc32:#010x}"
        )


def schema_digest() -> str:
    """Digest of everything that defines the on-disk layout.

    The same canonical string is rebuilt from this module's *literals* by
    the ``REP-S002`` lint rule, so the digest can be recomputed without
    importing the package.  Changing any input without bumping
    :data:`FORMAT_VERSION` (and recording the new digest) fails lint.
    """
    canonical = repr(
        {
            "version": FORMAT_VERSION,
            "magic": MAGIC,
            "footer_magic": FOOTER_MAGIC,
            "end_magic": END_MAGIC,
            "column_layout": COLUMN_LAYOUT,
            "stat_fields": SEGMENT_STAT_FIELDS,
            "stat_struct": SEGMENT_STAT_STRUCT,
            "flag_hist_bins": FLAG_HIST_BINS,
            "bytes_per_event": BYTES_PER_EVENT,
        }
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]


def pad_to_8(n: int) -> int:
    """Bytes of zero padding needed to align *n* up to an 8-byte boundary."""
    return -n % 8
