"""Per-segment ``.bpack`` shards of a corpus.

A sweep over a corpus-sized trace starts by compiling block-access
streams, and doing that once per worker (or once per run) wastes the
dominant setup cost.  :func:`write_segment_packs` walks a ``.bcorpus``
segment by segment and writes one :mod:`repro.parallel.bpack` file per
segment — the packed stream for that segment's events at one block
size.  Shards are content-addressed by position and parameters (the
filename carries the segment index, block size, and row count), written
atomically, and skipped when already present, so re-running is cheap
and concurrent writers converge on identical files.

Workers then map shard paths through
:func:`repro.parallel.bpack.cached_bpack` and replay zero-copy from the
page cache — the same fan-out shape ``cache/sweep.py`` uses for single
streams, scaled out to one file per segment.
"""

from __future__ import annotations

import os
import re
from typing import Union

from ..cache.stream import build_stream
from ..parallel.bpack import write_bpack
from ..parallel.packed import pack_stream
from .reader import CorpusReader

__all__ = ["segment_pack_path", "write_segment_packs"]

_PathLike = Union[str, os.PathLike]


def _safe_name(name: str) -> str:
    return re.sub(r"[^A-Za-z0-9._-]+", "_", name) or "trace"


def segment_pack_path(
    out_dir: _PathLike, name: str, index: int, block_size: int
) -> str:
    """The shard filename for one ``(segment, block size)`` pair."""
    fname = f"{_safe_name(name)}-seg{index:05d}-bs{block_size}.bpack"
    return os.path.join(os.fspath(out_dir), fname)


def write_segment_packs(
    src: _PathLike,
    block_size: int,
    out_dir: _PathLike,
    include_paging: bool = False,
    engine: str = "auto",
    overwrite: bool = False,
) -> list[str]:
    """Compile every segment of the corpus at *src* into ``.bpack`` shards.

    Returns the shard paths in segment order.  Existing shards are left
    alone unless *overwrite* is set (the writes are atomic, so a present
    file is a complete one).  *engine* picks the stream compiler —
    either way the bytes on disk are identical, which is what the
    engine-differential fuzz pillar pins.
    """
    out_dir = os.fspath(out_dir)
    os.makedirs(out_dir, exist_ok=True)
    paths: list[str] = []
    with CorpusReader(src) as reader:
        for index in range(reader.segment_count):
            cols = reader.segment(index)
            path = segment_pack_path(out_dir, cols.name, index, block_size)
            if overwrite or not os.path.exists(path):
                log = cols.to_log()
                stream = build_stream(log, include_paging=include_paging)
                packed = pack_stream(
                    stream,
                    block_size,
                    start_time=log.start_time,
                    engine=engine,
                )
                write_bpack(packed, path)
            paths.append(path)
    return paths
