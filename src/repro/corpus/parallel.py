"""Parallel-by-segment execution over one corpus.

:func:`map_segments` shards a corpus *within* one file: each job is
``(segment_index,)`` against a payload of ``(corpus_path, fn)``, run
through :func:`repro.parallel.run_jobs`, which guarantees results come
back in segment order regardless of completion order — so a sharded run
is deterministically identical to the serial loop.  Workers open the
corpus themselves (an mmap cannot usefully cross a pickle boundary) and
cache the reader per process, so a worker that handles many segments
parses the footer once.

Two module-level segment functions ship with the machinery because the
CLI needs them picklable: :func:`segment_kind_counts` (``corpus info``)
and :func:`verify_segment_job` (``corpus verify``).
"""

from __future__ import annotations

import os
from typing import Any, Callable, Sequence, Union

from ..parallel.executor import run_jobs
from ..trace.columns import TraceColumns
from ..trace.npview import resolve_engine
from .format import CorpusError
from .reader import CorpusReader

__all__ = ["map_segments", "segment_kind_counts", "verify_segment_job"]

_PathLike = Union[str, os.PathLike]

# Per-process reader cache: one parsed footer per (worker, corpus path).
_READERS: dict[str, CorpusReader] = {}


def _cached_reader(path: str) -> CorpusReader:
    reader = _READERS.get(path)
    if reader is None:
        if len(_READERS) >= 4:  # workers only ever see a path or two
            for stale in _READERS.values():
                stale.close()
            _READERS.clear()
        reader = _READERS[path] = CorpusReader(path)
    return reader


def _segment_job(payload: tuple[str, Callable[..., Any]], index: int) -> Any:
    path, fn = payload
    reader = _cached_reader(path)
    return fn(reader.segment(index), reader.stats[index], index)


def map_segments(
    fn: Callable[..., Any],
    path: _PathLike,
    jobs: int | None = None,
    indices: Sequence[int] | None = None,
) -> list[Any]:
    """Run ``fn(columns, stat, index)`` over each segment of the corpus.

    *fn* must be a module-level function (it crosses the process
    boundary) and its result picklable.  Results are returned in segment
    order — identical to the serial loop — whatever the completion
    order; *jobs* follows the :func:`~repro.parallel.executor.run_jobs`
    convention (``None`` = ambient context, serial by default).
    *indices* restricts the run to a subset of segments, preserving the
    order given.
    """
    path = os.fspath(path)
    if indices is None:
        with CorpusReader(path) as reader:
            segment_count = reader.segment_count
        indices = range(segment_count)
    return run_jobs(_segment_job, list(indices), payload=(path, fn), jobs=jobs)


def segment_kind_counts(
    cols: TraceColumns, stat: Any, index: int
) -> dict[int, int]:
    """Per-segment tally of kind tags (the ``corpus info`` detail rows)."""
    return {kind: n for kind in range(1, 8) if (n := cols.kinds.count(kind))}


def verify_segment_job(
    cols: TraceColumns, stat: Any, index: int, engine: str = "auto"
) -> str:
    """Re-derive one segment's footer statistics from its data.

    Returns ``"ok"``; a mismatch raises :class:`CorpusError`.  Note this
    checks stats-vs-data consistency from inside the worker's own view;
    the crc check lives in :meth:`CorpusReader.verify_segment` (workers
    re-reading the segment through a fresh reader exercise that path via
    ``map_segments(verify_segment_job, ..., )`` only indirectly, so
    ``corpus verify`` runs the reader-level check too).  *engine* picks
    how the min/max/histogram scans run; both raise identical errors.
    """
    n = len(cols.kinds)
    if n != stat.count:
        raise CorpusError(
            f"segment {index}: {n} rows decoded but footer recorded "
            f"{stat.count}"
        )
    if resolve_engine(engine) == "numpy":
        from ..trace.npview import column_views, np

        v = column_views(cols)
        checks = (
            ("first time", float(v.times[0]), stat.time_first),
            ("last time", float(v.times[n - 1]), stat.time_last),
            ("min user id", int(v.user_ids.min()), stat.user_lo),
            ("max user id", int(v.user_ids.max()), stat.user_hi),
            ("min file id", int(v.file_ids.min()), stat.file_lo),
            ("max file id", int(v.file_ids.max()), stat.file_hi),
        )
        hist = tuple(
            np.bincount(v.flags, minlength=len(stat.flag_hist))[
                : len(stat.flag_hist)
            ].tolist()
        )
    else:
        checks = (
            ("first time", cols.times[0], stat.time_first),
            ("last time", cols.times[n - 1], stat.time_last),
            ("min user id", min(cols.user_ids), stat.user_lo),
            ("max user id", max(cols.user_ids), stat.user_hi),
            ("min file id", min(cols.file_ids), stat.file_lo),
            ("max file id", max(cols.file_ids), stat.file_hi),
        )
        hist = tuple(cols.flags.count(v) for v in range(len(stat.flag_hist)))
    for label, got, want in checks:
        if got != want:
            raise CorpusError(
                f"segment {index}: {label} is {got} but footer recorded "
                f"{want}"
            )
    if hist != tuple(stat.flag_hist):
        raise CorpusError(
            f"segment {index}: flag histogram {hist} does not match "
            f"footer {tuple(stat.flag_hist)}"
        )
    return "ok"
