"""Reading sharded corpora: mmap, footer index, zero-copy segment views.

:class:`CorpusReader` opens a corpus back-to-front — trailer, footer,
header — so the cost of opening is O(segments), not O(events).  Each
:meth:`~CorpusReader.segment` call returns a :class:`TraceColumns` whose
numeric columns are ``memoryview.cast`` slices straight into the mmap:
no bytes are copied for the six 8-byte columns (the two byte columns are
copied, as ``TraceColumns`` needs real ``bytes`` for ``.count``).  On a
big-endian host the numeric columns are instead decoded through
byteswapped ``array`` copies; the file stays little-endian either way.

Every structural check that fails raises :class:`CorpusError` naming the
byte offset that disappointed the reader — never a bare ``struct.error``
or ``IndexError``.
"""

from __future__ import annotations

import mmap
import os
import sys
import zlib
from array import array
from typing import IO, Iterator, Union

from ..trace.columns import TraceColumns
from ..trace.records import TraceEvent
from .format import (
    END_MAGIC,
    FLAG_HIST_BINS,
    FOOTER_HEAD,
    FOOTER_MAGIC,
    HEADER_SEGEVENTS,
    HEADER_STR,
    MAGIC,
    SEGMENT_REC,
    TRAILER,
    CorpusError,
    SegmentStat,
    pad_to_8,
)

__all__ = ["CorpusReader", "read_corpus_columns"]

_PathOrBytes = Union[str, os.PathLike, bytes, bytearray, memoryview]

_BIG_ENDIAN = sys.byteorder == "big"


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise CorpusError(message)


class CorpusReader:
    """Random access to a corpus without materializing events.

    *src* is a path (mmapped) or an in-memory buffer.  Opening parses
    and checks the trailer, footer (crc), and header (crc); per-segment
    payload crcs are **not** checked on open — call
    :meth:`verify_segment`/:meth:`verify`, or pass ``verify=True`` to
    :meth:`segment`, to pay for that when it matters.
    """

    def __init__(self, src: _PathOrBytes):
        self._fh: IO[bytes] | None = None
        self._mm: mmap.mmap | None = None
        if isinstance(src, (bytes, bytearray, memoryview)):
            self._buf = memoryview(src)
            self.path = "<memory>"
        else:
            self.path = os.fspath(src)
            self._fh = open(self.path, "rb")
            size = os.fstat(self._fh.fileno()).st_size
            if size == 0:
                self._fh.close()
                self._fh = None
                raise CorpusError(f"{self.path}: empty file is not a corpus")
            self._mm = mmap.mmap(
                self._fh.fileno(), 0, access=mmap.ACCESS_READ
            )
            self._buf = memoryview(self._mm)
        try:
            self._parse()
        except Exception:
            self.close()
            raise

    # -- parsing -------------------------------------------------------------

    def _parse(self) -> None:
        buf = self._buf
        size = len(buf)
        _check(
            size >= len(MAGIC) and bytes(buf[: len(MAGIC)]) == MAGIC,
            f"{self.path}: not a corpus file (bad magic at byte 0, "
            f"expected {MAGIC!r})",
        )
        _check(
            size >= TRAILER.size,
            f"{self.path}: truncated corpus: {size} bytes is shorter than "
            f"the {TRAILER.size}-byte trailer",
        )
        trailer_at = size - TRAILER.size
        (
            footer_offset,
            total_events,
            segment_count,
            footer_crc,
            end_magic,
        ) = TRAILER.unpack_from(buf, trailer_at)
        _check(
            end_magic == END_MAGIC,
            f"{self.path}: truncated or corrupt corpus: trailer at byte "
            f"{trailer_at} does not end with {END_MAGIC!r} (the file was "
            "cut off before the writer finished, or the tail was damaged)",
        )
        _check(
            footer_offset < trailer_at,
            f"{self.path}: corrupt trailer at byte {trailer_at}: footer "
            f"offset {footer_offset} does not precede the trailer",
        )
        footer = bytes(buf[footer_offset:trailer_at])
        _check(
            zlib.crc32(footer) == footer_crc,
            f"{self.path}: footer checksum mismatch over bytes "
            f"[{footer_offset}, {trailer_at}): the segment index is "
            "corrupt",
        )
        _check(
            footer[: len(FOOTER_MAGIC)] == FOOTER_MAGIC,
            f"{self.path}: bad footer magic at byte {footer_offset}",
        )
        expected_len = (
            len(FOOTER_MAGIC) + FOOTER_HEAD.size + segment_count * SEGMENT_REC.size
        )
        _check(
            len(footer) == expected_len,
            f"{self.path}: footer at byte {footer_offset} is "
            f"{len(footer)} bytes but {segment_count} segments need "
            f"{expected_len}",
        )
        header_crc, _reserved = FOOTER_HEAD.unpack_from(
            footer, len(FOOTER_MAGIC)
        )

        # Header: name, description, nominal segment size, padding.
        at = len(MAGIC)
        self.name, at = self._read_str(at, "trace name")
        self.description, at = self._read_str(at, "trace description")
        _check(
            at + HEADER_SEGEVENTS.size <= footer_offset,
            f"{self.path}: truncated header at byte {at}: no room for the "
            "segment-size field",
        )
        (self.segment_events,) = HEADER_SEGEVENTS.unpack_from(buf, at)
        at += HEADER_SEGEVENTS.size
        header_end = at + pad_to_8(at)
        _check(
            zlib.crc32(bytes(buf[:header_end])) == header_crc,
            f"{self.path}: header checksum mismatch over bytes "
            f"[0, {header_end}): the name/description block is corrupt",
        )

        stats = []
        rec_at = len(FOOTER_MAGIC) + FOOTER_HEAD.size
        data_at = header_end
        for i in range(segment_count):
            stat = SegmentStat.unpack_from(footer, rec_at)
            rec_at += SEGMENT_REC.size
            _check(
                stat.offset == data_at,
                f"{self.path}: segment {i} claims offset {stat.offset} "
                f"but the previous segment ends at byte {data_at}",
            )
            data_at += stat.data_bytes + pad_to_8(stat.data_bytes)
            _check(
                data_at <= footer_offset,
                f"{self.path}: segment {i} at byte {stat.offset} runs past "
                f"the footer at byte {footer_offset}",
            )
            stats.append(stat)
        _check(
            data_at == footer_offset,
            f"{self.path}: {footer_offset - data_at} unindexed bytes "
            f"between the last segment (ending at byte {data_at}) and the "
            f"footer at byte {footer_offset}",
        )
        counted = sum(stat.count for stat in stats)
        _check(
            counted == total_events,
            f"{self.path}: trailer claims {total_events} events but the "
            f"segment index counts {counted}",
        )
        self.stats: list[SegmentStat] = stats
        self.total_events = total_events
        self.footer_offset = footer_offset

    def _read_str(self, at: int, what: str) -> tuple[str, int]:
        buf = self._buf
        _check(
            at + HEADER_STR.size <= len(buf),
            f"{self.path}: truncated header: no length field for the "
            f"{what} at byte {at}",
        )
        (n,) = HEADER_STR.unpack_from(buf, at)
        at += HEADER_STR.size
        _check(
            at + n <= len(buf),
            f"{self.path}: truncated header: {what} at byte {at} wants "
            f"{n} bytes past the end of the file",
        )
        try:
            text = bytes(buf[at : at + n]).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise CorpusError(
                f"{self.path}: corrupt header: {what} at byte {at} is not "
                f"valid UTF-8 ({exc.reason} at byte {at + exc.start})"
            ) from None
        return text, at + n

    # -- segment access ------------------------------------------------------

    @property
    def segment_count(self) -> int:
        return len(self.stats)

    def __len__(self) -> int:
        return self.total_events

    def segment(self, index: int, verify: bool = False) -> TraceColumns:
        """Columns for one segment, zero-copy where the host allows.

        With ``verify=True`` the segment's crc and footer statistics are
        recomputed and checked first (one extra pass over the bytes).
        """
        if index < 0:
            index += len(self.stats)
        if not 0 <= index < len(self.stats):
            raise IndexError(
                f"segment {index} out of range ({len(self.stats)} segments)"
            )
        if verify:
            self.verify_segment(index)
        stat = self.stats[index]
        buf, n, at = self._buf, stat.count, stat.offset
        numeric = []
        for typecode in ("d", "q", "q", "q", "q", "q"):
            view = buf[at : at + 8 * n]
            if _BIG_ENDIAN:
                column = array(typecode)
                column.frombytes(view)
                column.byteswap()
                numeric.append(column)
            else:
                numeric.append(view.cast(typecode))
            at += 8 * n
        kinds = bytes(buf[at : at + n])
        flags = bytes(buf[at + n : at + 2 * n])
        return TraceColumns(
            name=self.name,
            description=self.description,
            kinds=kinds,
            times=numeric[0],
            open_ids=numeric[1],
            file_ids=numeric[2],
            user_ids=numeric[3],
            sizes=numeric[4],
            positions=numeric[5],
            flags=flags,
        )

    def iter_segments(self, verify: bool = False) -> Iterator[TraceColumns]:
        for i in range(len(self.stats)):
            yield self.segment(i, verify=verify)

    def iter_events(self) -> Iterator[TraceEvent]:
        """Event objects one at a time, O(segment) memory."""
        for cols in self.iter_segments():
            yield from cols

    def to_columns(self) -> TraceColumns:
        """Materialize the whole corpus as one in-RAM ``TraceColumns``.

        The oracle path for tests and small corpora — deliberately NOT
        bounded-memory.
        """
        kinds = bytearray()
        flags = bytearray()
        times = array("d")
        ids = [array("q") for _ in range(5)]
        for cols in self.iter_segments():
            kinds += cols.kinds
            flags += cols.flags
            times.frombytes(memoryview(cols.times).tobytes())
            for buffer, column in zip(
                ids,
                (cols.open_ids, cols.file_ids, cols.user_ids, cols.sizes,
                 cols.positions),
            ):
                buffer.frombytes(memoryview(column).tobytes())
        return TraceColumns(
            name=self.name,
            description=self.description,
            kinds=bytes(kinds),
            times=times,
            open_ids=ids[0],
            file_ids=ids[1],
            user_ids=ids[2],
            sizes=ids[3],
            positions=ids[4],
            flags=bytes(flags),
        )

    # -- verification --------------------------------------------------------

    def verify_segment(self, index: int) -> None:
        """Recompute one segment's crc and statistics against the footer."""
        stat = self.stats[index]
        data = self._buf[stat.offset : stat.offset + stat.data_bytes]
        _check(
            zlib.crc32(data) == stat.crc32,
            f"{self.path}: segment {index} checksum mismatch over bytes "
            f"[{stat.offset}, {stat.offset + stat.data_bytes})",
        )
        n = stat.count
        if _BIG_ENDIAN:
            times = array("d")
            times.frombytes(data[: 8 * n])
            times.byteswap()
        else:
            times = data[: 8 * n].cast("d")
        for label, got, want in (
            ("first time", times[0], stat.time_first),
            ("last time", times[n - 1], stat.time_last),
        ):
            _check(
                got == want,
                f"{self.path}: segment {index} {label} is {got} but the "
                f"footer recorded {want}",
            )
        for name, slot, (lo_name, hi_name) in (
            ("user_ids", 3, ("user_lo", "user_hi")),
            ("file_ids", 2, ("file_lo", "file_hi")),
        ):
            view = data[8 * n * slot : 8 * n * (slot + 1)]
            if _BIG_ENDIAN:
                column = array("q")
                column.frombytes(view)
                column.byteswap()
            else:
                column = view.cast("q")
            lo, hi = min(column), max(column)
            _check(
                lo == getattr(stat, lo_name) and hi == getattr(stat, hi_name),
                f"{self.path}: segment {index} {name} range [{lo}, {hi}] "
                f"does not match the footer "
                f"[{getattr(stat, lo_name)}, {getattr(stat, hi_name)}]",
            )
        flags = bytes(data[8 * n * 6 + n : 8 * n * 6 + 2 * n])
        hist = tuple(flags.count(v) for v in range(FLAG_HIST_BINS))
        _check(
            hist == tuple(stat.flag_hist),
            f"{self.path}: segment {index} flag histogram {hist} does not "
            f"match the footer {tuple(stat.flag_hist)}",
        )

    def verify(self) -> int:
        """Verify every segment; returns the number checked."""
        for i in range(len(self.stats)):
            self.verify_segment(i)
        return len(self.stats)

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Release the mmap and file handle.

        If zero-copy segment views are still alive the mmap cannot be
        unmapped; the handle is dropped and the OS reclaims the mapping
        when the last view dies.
        """
        buf, self._buf = getattr(self, "_buf", None), None  # type: ignore[assignment]
        if buf is not None:
            buf.release()
        if self._mm is not None:
            try:
                self._mm.close()
            except BufferError:  # zero-copy views still outstanding
                pass
            self._mm = None
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "CorpusReader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"CorpusReader({self.path!r}, events={self.total_events}, "
            f"segments={len(self.stats)})"
        )


def read_corpus_columns(src: _PathOrBytes) -> TraceColumns:
    """Read a whole corpus into one in-RAM ``TraceColumns``."""
    with CorpusReader(src) as reader:
        return reader.to_columns()
