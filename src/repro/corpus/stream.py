"""Streaming analysis and validation over a corpus, segment by segment.

Both entry points fold segments through the same state machines the
in-RAM paths use — :class:`~repro.analysis.onepass.OnePassCollector` and
the validator's ``_OpenTracker`` — so their results are **bit-identical**
to loading the whole corpus into one ``TraceColumns`` and running
``analyze_onepass`` / ``validate_columns`` on it, while peak memory
stays O(segment) plus O(live analysis state).  The whole-trace facts the
analyzer needs up front (start time and duration, which size the
burstiness windows) come from the footer index, not from event data.
"""

from __future__ import annotations

import os
from typing import Union

from ..analysis.onepass import OnePassCollector, OnePassReport
from ..trace.npview import resolve_engine
from ..trace.validate import (
    DEFAULT_MAX_PROBLEMS,
    ValidationReport,
    _OpenTracker,
    validate_columns_into,
)
from .reader import CorpusReader

__all__ = ["analyze_corpus", "validate_corpus"]

_ReaderOrPath = Union[CorpusReader, str, os.PathLike]


def _open(src: _ReaderOrPath) -> tuple[CorpusReader, bool]:
    if isinstance(src, CorpusReader):
        return src, False
    return CorpusReader(src), True


def analyze_corpus(
    src: _ReaderOrPath,
    long_window: float = 600.0,
    short_window: float = 10.0,
    burst_window: float = 10.0,
    engine: str = "auto",
) -> OnePassReport:
    """Run the full one-pass analysis over a corpus without loading it.

    *src* is a :class:`CorpusReader` (left open) or a path (opened and
    closed here).  The report is bit-identical to
    ``analyze_onepass(reader.to_columns())`` — checked continuously by
    the fuzz harness's corpus pillar.  *engine* picks the scan
    implementation; the numpy path views each segment's columns zero-copy
    (straight into the mmap) and falls back to the Python collector by
    re-reading the corpus when the input needs it.
    """
    reader, own = _open(src)
    try:
        stats = reader.stats
        start = stats[0].time_first if stats else 0.0
        duration = (stats[-1].time_last - start) if stats else 0.0
        if resolve_engine(engine) == "numpy":
            from ..analysis.vectorized import VectorFallback, VectorizedCollector

            try:
                collector = VectorizedCollector(
                    reader.name,
                    start,
                    duration,
                    long_window=long_window,
                    short_window=short_window,
                    burst_window=burst_window,
                )
                for cols in reader.iter_segments():
                    collector.feed(cols)
                return collector.finish()
            except VectorFallback:
                pass  # segments re-iterate cleanly; rerun in Python
        collector = OnePassCollector(
            reader.name,
            start,
            duration,
            long_window=long_window,
            short_window=short_window,
            burst_window=burst_window,
        )
        for cols in reader.iter_segments():
            collector.feed(cols)
        return collector.finish()
    finally:
        if own:
            reader.close()


def validate_corpus(
    src: _ReaderOrPath,
    max_problems: int = DEFAULT_MAX_PROBLEMS,
    engine: str = "auto",
) -> ValidationReport:
    """Check every tracer invariant across a corpus, segment by segment.

    Problem messages carry global event indices (the tracker state and
    the index base persist across segment boundaries), so the report
    matches ``validate_columns(reader.to_columns())`` exactly.  *engine*
    picks the implementation; both produce identical reports.
    """
    reader, own = _open(src)
    try:
        if resolve_engine(engine) == "numpy":
            from ..analysis.vectorized import VectorizedValidator

            validator = VectorizedValidator(
                len(reader), max_problems=max_problems
            )
            base = 0
            for cols in reader.iter_segments():
                validator.feed(cols, base)
                base += len(cols.kinds)
            return validator.finish()
        report = ValidationReport(
            event_count=len(reader), max_problems=max_problems
        )
        tracker = _OpenTracker(report)
        base = 0
        for cols in reader.iter_segments():
            validate_columns_into(cols, tracker, base)
            base += len(cols.kinds)
        return tracker.finish()
    finally:
        if own:
            reader.close()
