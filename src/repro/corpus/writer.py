"""Writing sharded corpora: segment buffering, stats, and spooled sinks.

:class:`CorpusWriter` is strictly sequential — header, segments, footer,
trailer — so it needs no seeks and can target a pipe-like object as well
as a path.  Events (or bulk column slices) accumulate in typed column
buffers; each time the buffer reaches ``segment_events`` rows it is
flushed as one segment, its statistics computed column-at-a-time at C
speed (``min``/``max`` over the typed arrays, ``count`` over the flag
bytes, one ``crc32`` per column chunk) and recorded for the footer.

:class:`CorpusSpool` is the corpus twin of
:class:`~repro.trace.io_binary.TraceSpool`: a ``TraceLog``-shaped sink
the workload generator can write through with O(segment) memory, so
``generate(..., spool="out.bcorpus")`` emits a sharded corpus directly
without ever holding the whole trace.

:func:`pack_trace` streams an existing ``.btrace``/``.trace`` file (or
an in-memory log/columns) into a corpus, also with bounded memory.
"""

from __future__ import annotations

import os
import sys
import zlib
from array import array
from typing import IO, Iterable, Union

from ..trace.columns import (
    FLAG_CREATED,
    FLAG_NEW_FILE,
    KIND_CLOSE,
    KIND_CREATE,
    KIND_EXEC,
    KIND_OPEN,
    KIND_SEEK,
    KIND_TRUNC,
    KIND_UNLINK,
    TraceColumns,
)
from ..trace.io_binary import iter_binary
from ..trace.log import TraceLog
from ..trace.records import (
    CloseEvent,
    CreateEvent,
    ExecEvent,
    OpenEvent,
    SeekEvent,
    TraceEvent,
    TruncateEvent,
    UnlinkEvent,
)
from .format import (
    DEFAULT_SEGMENT_EVENTS,
    END_MAGIC,
    FLAG_HIST_BINS,
    FOOTER_HEAD,
    FOOTER_MAGIC,
    HEADER_SEGEVENTS,
    HEADER_STR,
    MAGIC,
    TRAILER,
    CorpusError,
    SegmentStat,
    pad_to_8,
)

__all__ = ["CorpusWriter", "CorpusSpool", "pack_trace", "pack_columns"]

_PathOrFile = Union[str, os.PathLike, IO[bytes]]

_BIG_ENDIAN = sys.byteorder == "big"


def _le_bytes(column: array) -> bytes:
    """The column's buffer as little-endian bytes (the on-disk order)."""
    if _BIG_ENDIAN:
        swapped = array(column.typecode, column)
        swapped.byteswap()
        return swapped.tobytes()
    return column.tobytes()


class CorpusWriter:
    """Sequential corpus writer (see the module docstring).

    Not valid until :meth:`close` has written the footer and trailer;
    use as a context manager.
    """

    def __init__(
        self,
        dest: _PathOrFile,
        name: str = "trace",
        description: str = "",
        segment_events: int = DEFAULT_SEGMENT_EVENTS,
    ):
        if segment_events < 1:
            raise ValueError("segment_events must be >= 1")
        self._own = not hasattr(dest, "write")
        fh: IO[bytes] = open(dest, "wb") if self._own else dest  # type: ignore[assignment]
        self._fh = fh
        self.name = name
        self.description = description
        self.segment_events = segment_events
        self.events_written = 0
        self.bytes_written = 0
        self.stats: list[SegmentStat] = []
        self._closed = False
        self._last_time: float | None = None
        self._new_buffers()

        nameb = name.encode("utf-8")
        descb = description.encode("utf-8")
        header = b"".join(
            (
                MAGIC,
                HEADER_STR.pack(len(nameb)),
                nameb,
                HEADER_STR.pack(len(descb)),
                descb,
                HEADER_SEGEVENTS.pack(segment_events),
            )
        )
        header += b"\x00" * pad_to_8(len(header))
        self._header_crc = zlib.crc32(header)
        fh.write(header)
        self.bytes_written = len(header)

    @property
    def segments_written(self) -> int:
        return len(self.stats)

    @property
    def buffered_events(self) -> int:
        return len(self._kinds)

    def _new_buffers(self) -> None:
        self._kinds = bytearray()
        self._flags = bytearray()
        self._times = array("d")
        self._open_ids = array("q")
        self._file_ids = array("q")
        self._user_ids = array("q")
        self._sizes = array("q")
        self._positions = array("q")

    # -- appending ----------------------------------------------------------

    def append(self, event: TraceEvent) -> None:
        """Append one event (same column mapping as ``TraceColumns.from_log``)."""
        if self._closed:
            raise CorpusError("corpus writer is closed")
        kind = oid = fid = uid = size = pos = fl = 0
        if isinstance(event, OpenEvent):
            kind = KIND_OPEN
            oid = event.open_id
            fid = event.file_id
            uid = event.user_id
            size = event.size
            pos = event.initial_pos
            fl = (
                int(event.mode)
                | (FLAG_CREATED if event.created else 0)
                | (FLAG_NEW_FILE if event.new_file else 0)
            )
        elif isinstance(event, CloseEvent):
            kind = KIND_CLOSE
            oid = event.open_id
            pos = event.final_pos
        elif isinstance(event, SeekEvent):
            kind = KIND_SEEK
            oid = event.open_id
            size = event.prev_pos
            pos = event.new_pos
        elif isinstance(event, CreateEvent):
            kind = KIND_CREATE
            fid = event.file_id
            uid = event.user_id
        elif isinstance(event, UnlinkEvent):
            kind = KIND_UNLINK
            fid = event.file_id
        elif isinstance(event, TruncateEvent):
            kind = KIND_TRUNC
            fid = event.file_id
            size = event.new_length
        elif isinstance(event, ExecEvent):
            kind = KIND_EXEC
            fid = event.file_id
            uid = event.user_id
            size = event.size
        else:
            raise CorpusError(
                f"cannot serialize event of type {type(event).__name__}"
            )
        self._kinds.append(kind)
        self._flags.append(fl)
        self._times.append(event.time)
        self._open_ids.append(oid)
        self._file_ids.append(fid)
        self._user_ids.append(uid)
        self._sizes.append(size)
        self._positions.append(pos)
        self.events_written += 1
        if len(self._kinds) >= self.segment_events:
            self.flush_segment()

    def extend(self, events: Iterable[TraceEvent]) -> None:
        for event in events:
            self.append(event)

    def append_columns(self, cols: TraceColumns) -> None:
        """Bulk-append a columnar trace, slicing it into segments.

        Column slices move as raw buffers (``frombytes``), never as
        per-event Python objects.
        """
        if self._closed:
            raise CorpusError("corpus writer is closed")
        n = len(cols)
        at = 0
        kinds = memoryview(cols.kinds)
        flags = memoryview(cols.flags)
        numeric = (
            ("_times", memoryview(cols.times)),
            ("_open_ids", memoryview(cols.open_ids)),
            ("_file_ids", memoryview(cols.file_ids)),
            ("_user_ids", memoryview(cols.user_ids)),
            ("_sizes", memoryview(cols.sizes)),
            ("_positions", memoryview(cols.positions)),
        )
        while at < n:
            take = min(self.segment_events - len(self._kinds), n - at)
            self._kinds += kinds[at : at + take]
            self._flags += flags[at : at + take]
            for attr, view in numeric:
                # re-read per chunk: flush_segment swaps in fresh buffers
                getattr(self, attr).frombytes(view[at : at + take].tobytes())
            self.events_written += take
            at += take
            if len(self._kinds) >= self.segment_events:
                self.flush_segment()

    # -- flushing -----------------------------------------------------------

    def flush_segment(self) -> None:
        """Write the buffered rows out as one segment (no-op when empty)."""
        count = len(self._kinds)
        if count == 0:
            return
        offset = self.bytes_written
        chunks = [
            _le_bytes(self._times),
            _le_bytes(self._open_ids),
            _le_bytes(self._file_ids),
            _le_bytes(self._user_ids),
            _le_bytes(self._sizes),
            _le_bytes(self._positions),
            bytes(self._kinds),
            bytes(self._flags),
        ]
        crc = 0
        for chunk in chunks:
            self._fh.write(chunk)
            crc = zlib.crc32(chunk, crc)
            self.bytes_written += len(chunk)
        pad = pad_to_8(self.bytes_written)
        if pad:
            self._fh.write(b"\x00" * pad)
            self.bytes_written += pad
        self.stats.append(
            SegmentStat(
                offset=offset,
                count=count,
                time_first=self._times[0],
                time_last=self._times[-1],
                user_lo=min(self._user_ids),
                user_hi=max(self._user_ids),
                file_lo=min(self._file_ids),
                file_hi=max(self._file_ids),
                crc32=crc,
                flag_hist=tuple(
                    self._flags.count(v) for v in range(FLAG_HIST_BINS)
                ),
            )
        )
        self._new_buffers()

    def close(self) -> None:
        """Flush the last partial segment and write the footer + trailer."""
        if self._closed:
            return
        self.flush_segment()
        footer = bytearray(FOOTER_MAGIC)
        footer += FOOTER_HEAD.pack(self._header_crc, 0)
        for stat in self.stats:
            footer += stat.pack()
        footer_offset = self.bytes_written
        self._fh.write(footer)
        self.bytes_written += len(footer)
        trailer = TRAILER.pack(
            footer_offset,
            self.events_written,
            len(self.stats),
            zlib.crc32(footer),
            END_MAGIC,
        )
        self._fh.write(trailer)
        self.bytes_written += len(trailer)
        self._closed = True
        if self._own:
            self._fh.close()
        else:
            self._fh.flush()

    def __enter__(self) -> "CorpusWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class CorpusSpool:
    """A ``TraceLog``-shaped sink that spools events into a corpus.

    The corpus twin of :class:`~repro.trace.io_binary.TraceSpool`: quacks
    like a log for producers (``name``/``description``, an ``events``
    list, a time-ordered ``append``) while draining full segments to a
    lazily created :class:`CorpusWriter`, so memory stays O(segment)
    however long the synthesis runs.  The buffer *is* one segment:
    ``buffer_events`` doubles as the corpus ``segment_events``.
    """

    def __init__(
        self,
        dest: _PathOrFile,
        name: str = "trace",
        description: str = "",
        buffer_events: int = DEFAULT_SEGMENT_EVENTS,
    ):
        if buffer_events < 1:
            raise ValueError("buffer_events must be >= 1")
        self._dest = dest
        self.name = name
        self.description = description
        self.buffer_events = buffer_events
        self.events: list[TraceEvent] = []
        self.events_spooled = 0
        self.peak_buffered = 0
        self._writer: CorpusWriter | None = None
        self._last_time: float | None = None
        self._closed = False

    def append(self, event: TraceEvent) -> None:
        if self._closed:
            raise CorpusError("corpus spool is closed")
        if self._last_time is not None and event.time < self._last_time:
            raise ValueError(
                f"event at t={event.time} appended after t={self._last_time}; "
                "trace events must be in time order"
            )
        self._last_time = event.time
        self.events.append(event)
        if len(self.events) > self.peak_buffered:
            self.peak_buffered = len(self.events)
        if len(self.events) >= self.buffer_events:
            self._drain()

    def extend(self, events: Iterable[TraceEvent]) -> None:
        for event in events:
            self.append(event)

    def __len__(self) -> int:
        return self.events_spooled + len(self.events)

    @property
    def segments_spooled(self) -> int:
        return self._writer.segments_written if self._writer is not None else 0

    def _drain(self) -> None:
        if self._writer is None:
            self._writer = CorpusWriter(
                self._dest,
                name=self.name,
                description=self.description,
                segment_events=self.buffer_events,
            )
        self._writer.extend(self.events)
        self.events_spooled += len(self.events)
        self.events.clear()

    def close(self) -> None:
        """Drain the buffer and finalize the corpus (valid even if empty)."""
        if self._closed:
            return
        self._drain()
        assert self._writer is not None  # _drain always creates it
        self._writer.close()
        self._closed = True

    def __enter__(self) -> "CorpusSpool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def pack_columns(
    cols: TraceColumns,
    dest: _PathOrFile,
    segment_events: int = DEFAULT_SEGMENT_EVENTS,
) -> CorpusWriter:
    """Pack an in-memory columnar trace into a corpus at *dest*."""
    with CorpusWriter(
        dest,
        name=cols.name,
        description=cols.description,
        segment_events=segment_events,
    ) as writer:
        writer.append_columns(cols)
    return writer


def pack_trace(
    src,
    dest: _PathOrFile,
    segment_events: int = DEFAULT_SEGMENT_EVENTS,
) -> CorpusWriter:
    """Pack *src* into a corpus at *dest*; returns the closed writer.

    *src* may be a :class:`TraceLog`, a :class:`TraceColumns`, or a path
    to a ``.btrace``/text trace.  Binary sources stream event-at-a-time
    through :func:`~repro.trace.io_binary.iter_binary`, so packing a
    ``.btrace`` far larger than RAM costs O(segment) memory; text traces
    (small by construction) load through ``read_text`` first.
    """
    if isinstance(src, TraceColumns):
        return pack_columns(src, dest, segment_events=segment_events)
    if isinstance(src, TraceLog):
        writer = CorpusWriter(
            dest,
            name=src.name,
            description=src.description,
            segment_events=segment_events,
        )
        with writer:
            writer.extend(src.events)
        return writer
    path = os.fspath(src)
    if not path.endswith(".btrace"):
        from ..trace.io_text import read_text

        return pack_trace(read_text(path), dest, segment_events=segment_events)
    with iter_binary(path) as stream:
        writer = CorpusWriter(
            dest,
            name=stream.name,
            description=stream.description,
            segment_events=segment_events,
        )
        with writer:
            writer.extend(stream)
    return writer
