"""Disk service-time modelling.

Converts the cache simulator's disk-I/O counts into disk *time* using a
mid-1980s disk model, so the block-size tradeoff of Figure 6 can be
re-examined in seconds rather than operation counts (large blocks cost
proportionally more platter time per operation).
"""

from .model import FUJITSU_EAGLE, DiskModel, DiskTimeEstimate

__all__ = ["DiskModel", "FUJITSU_EAGLE", "DiskTimeEstimate"]
