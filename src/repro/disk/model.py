"""A service-time model for a mid-1980s disk.

The paper's principal metric is the disk I/O *count*; turning counts into
*time* needs a disk model, and the block-size conclusion in particular
deserves one — a 32 KB transfer takes four times as long on the platter
as an 8 KB transfer, so "fewest I/Os" and "least disk time" can disagree.
The default parameters approximate the Fujitsu Eagle (M2351) that
Berkeley hung off its VAXes: ~18 ms average seek, 3600 rpm (8.33 ms
half-rotation average latency), ~1.8 MB/s transfer.

The model is deliberately simple — average seek + average rotational
latency + size-proportional transfer — because the traces are logical:
there are no block addresses to drive a seek-distance model (the paper's
traces had none either).  A locality discount on the seek term stands in
for the FFS allocator's cylinder-group clustering.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cache.metrics import CacheMetrics

__all__ = ["DiskModel", "FUJITSU_EAGLE", "DiskTimeEstimate"]


@dataclass(frozen=True)
class DiskModel:
    """Seek + rotation + transfer timing for one disk."""

    name: str
    avg_seek_s: float
    rotation_s: float  # one full revolution
    transfer_bytes_per_s: float
    #: Fraction of I/Os that pay no seek (sequential-block clustering).
    locality: float = 0.3

    def __post_init__(self):
        if self.avg_seek_s < 0 or self.rotation_s <= 0:
            raise ValueError("seek/rotation times must be non-negative/positive")
        if self.transfer_bytes_per_s <= 0:
            raise ValueError("transfer rate must be positive")
        if not 0.0 <= self.locality < 1.0:
            raise ValueError("locality must be in [0, 1)")

    def service_time(self, nbytes: int) -> float:
        """Expected seconds to service one I/O of *nbytes*."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size {nbytes}")
        positioning = (1.0 - self.locality) * self.avg_seek_s + self.rotation_s / 2
        return positioning + nbytes / self.transfer_bytes_per_s

    def ios_per_second(self, nbytes: int) -> float:
        """Sustained I/O rate at the given transfer size."""
        return 1.0 / self.service_time(nbytes)


#: The disk of the paper's era (default model).
FUJITSU_EAGLE = DiskModel(
    name="Fujitsu Eagle M2351",
    avg_seek_s=0.018,
    rotation_s=60.0 / 3600.0,
    transfer_bytes_per_s=1.8e6,
)


@dataclass(frozen=True)
class DiskTimeEstimate:
    """Disk time implied by a simulation's I/O counts."""

    model: DiskModel
    block_size: int
    disk_ios: int
    busy_seconds: float
    trace_seconds: float

    @property
    def utilization(self) -> float:
        """Fraction of the trace the disk spent busy (can exceed 1 if the
        workload would saturate it)."""
        if self.trace_seconds <= 0:
            return 0.0
        return self.busy_seconds / self.trace_seconds

    def render(self) -> str:
        return (
            f"{self.disk_ios:,} I/Os of {self.block_size // 1024} KB on a "
            f"{self.model.name}: {self.busy_seconds:.1f} s busy over "
            f"{self.trace_seconds:.0f} s of trace "
            f"({100 * self.utilization:.1f}% utilization)"
        )

    @classmethod
    def from_metrics(
        cls,
        metrics: CacheMetrics,
        block_size: int,
        trace_seconds: float,
        model: DiskModel = FUJITSU_EAGLE,
    ) -> "DiskTimeEstimate":
        busy = metrics.disk_ios * model.service_time(block_size)
        return cls(
            model=model,
            block_size=block_size,
            disk_ios=metrics.disk_ios,
            busy_seconds=busy,
            trace_seconds=trace_seconds,
        )
