"""Per-exhibit reproduction drivers.

One module per table and figure in the paper's evaluation.  Importing
this package registers them all; use :func:`run_all` /
:func:`run_one` or the CLI (``repro-fs experiment``).
"""

from . import (  # noqa: F401  (imported for registration side effects)
    burstiness,
    comparison,
    exposure,
    fig1,
    fig2,
    fig3,
    fig4,
    fig7,
    intervals,
    metadata,
    netfs,
    residency,
    table1,
    table3,
    table4,
    table5,
    table6_fig5,
    table6_policies,
    table7_fig6,
)
from .base import REGISTRY, Experiment, ExperimentResult, all_ids, get
from .runner import paper_vs_measured, run_all, run_one
from .system import (
    SYSTEM_REGISTRY,
    all_system_ids,
    run_system_experiment,
)

__all__ = [
    "REGISTRY",
    "Experiment",
    "ExperimentResult",
    "all_ids",
    "get",
    "run_one",
    "run_all",
    "paper_vs_measured",
    "SYSTEM_REGISTRY",
    "all_system_ids",
    "run_system_experiment",
]
