"""Experiment framework.

Every table and figure in the paper's evaluation is reproduced by one
module in this package.  An experiment takes a trace (synthetic, loaded
from disk, or converted from strace) and returns an
:class:`ExperimentResult` carrying both the rendered text exhibit and the
raw numbers, so benchmarks can assert on shapes and ``EXPERIMENTS.md``
can record paper-vs-measured.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol

from ..trace.log import TraceLog

__all__ = ["ExperimentResult", "Experiment", "REGISTRY", "register", "get", "all_ids"]


@dataclass
class ExperimentResult:
    """The outcome of one experiment run."""

    experiment_id: str
    title: str
    rendered: str
    data: dict = field(default_factory=dict)

    def __str__(self) -> str:
        return f"=== {self.experiment_id}: {self.title} ===\n{self.rendered}"


class ExperimentFn(Protocol):
    def __call__(self, log: TraceLog) -> ExperimentResult: ...


@dataclass(frozen=True)
class Experiment:
    """A registered experiment."""

    experiment_id: str
    title: str
    paper_claim: str  # what the paper reports, for side-by-side records
    run: ExperimentFn


REGISTRY: dict[str, Experiment] = {}


def register(
    experiment_id: str, title: str, paper_claim: str
) -> Callable[[ExperimentFn], ExperimentFn]:
    """Decorator registering an experiment under *experiment_id*."""

    def wrap(fn: ExperimentFn) -> ExperimentFn:
        if experiment_id in REGISTRY:
            raise ValueError(f"duplicate experiment id {experiment_id}")
        REGISTRY[experiment_id] = Experiment(
            experiment_id=experiment_id,
            title=title,
            paper_claim=paper_claim,
            run=fn,
        )
        return fn

    return wrap


def get(experiment_id: str) -> Experiment:
    try:
        return REGISTRY[experiment_id]
    except KeyError:
        known = ", ".join(sorted(REGISTRY))
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        ) from None


def all_ids() -> list[str]:
    return sorted(REGISTRY)
