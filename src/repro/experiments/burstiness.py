"""Burstiness (Sections 4, 5.1 and 8).

Not a numbered exhibit, but three quantified claims the paper makes about
burstiness are checked here: the peak open rate ("about 2-3 files were
opened per second" during peak hours), the per-user burst rates ("as high
as 10 kbytes/sec recorded for some users in some intervals"), and the
overall conclusion that "file system activity is bursty".
"""

from __future__ import annotations

from ..analysis.burstiness import analyze_burstiness
from ..trace.log import TraceLog
from .base import ExperimentResult, register


@register(
    "burstiness",
    "Activity burstiness: open rates and per-user extremes",
    "2-3 opens/second at peak; user bursts up to ~10 KB/s; activity is "
    "bursty (10-second rates far above 10-minute averages)",
)
def run(log: TraceLog) -> ExperimentResult:
    report = analyze_burstiness(log, window=10.0)
    return ExperimentResult(
        experiment_id="burstiness",
        title="Activity burstiness: open rates and per-user extremes",
        rendered=report.render(),
        data={
            "mean_open_rate": report.mean_open_rate,
            "peak_open_rate": report.peak_open_rate,
            "peak_to_mean": report.peak_to_mean,
            "idle_window_fraction": report.idle_window_fraction,
            "max_user_rate": report.max_user_rate,
        },
    )
