"""Section 7: the cross-machine comparison.

The paper's generality argument rests on running the same analyses on
three different machines (ucbarpa, ucbernie, ucbcad) and finding the
headline numbers similar.  This experiment re-makes that argument around
whatever trace it is given: it synthesizes companion traces for the other
two machine profiles — in parallel across processes when a ``--jobs``
context is active — and renders all three side by side.
"""

from __future__ import annotations

from ..analysis.comparison import headline, render_comparison
from ..trace.log import TraceLog
from ..workload.generator import generate_many
from ..workload.profiles import UCBARPA, UCBCAD, UCBERNIE
from .base import ExperimentResult, register

_MACHINES = (UCBARPA, UCBERNIE, UCBCAD)

#: Seed for the synthesized companion traces (arbitrary but fixed).
_COMPANION_SEED = 7


@register(
    "section7",
    "Cross-machine comparison of headline results",
    "Section 7: \"The generality of our conclusions is also supported by "
    "the similarity of the results for the three different traces\" — "
    "per-user throughput, sequentiality, size, open-time, lifetime and "
    "cache numbers agree across ucbarpa, ucbernie and ucbcad",
)
def run(log: TraceLog) -> ExperimentResult:
    # Companion traces long enough to be meaningful, short enough that the
    # experiment stays interactive even when the input trace spans days.
    duration = min(max(log.duration, 600.0), 1800.0)
    others = [p for p in _MACHINES if p.trace_name != log.name]
    companions = generate_many(
        [(p, _COMPANION_SEED) for p in others], duration=duration
    )
    logs = [log, *companions]
    heads = [headline(entry) for entry in logs]
    return ExperimentResult(
        experiment_id="section7",
        title="Cross-machine comparison of headline results",
        rendered=render_comparison(heads),
        data={
            h.name: {
                "events": h.events,
                "per_user_bytes_sec": h.per_user_bytes_sec,
                "whole_file_read_pct": h.whole_file_read_pct,
                "sequential_read_pct": h.sequential_read_pct,
                "accesses_under_10k_pct": h.accesses_under_10k_pct,
                "opens_under_half_s_pct": h.opens_under_half_s_pct,
                "files_dead_200s_pct": h.files_dead_200s_pct,
                "daemon_spike_pct": h.daemon_spike_pct,
                "miss_ratio_4mb": h.miss_ratio_4mb,
            }
            for h in heads
        },
    )
