"""Section 6.2's crash-exposure tradeoff, quantified.

The paper rejects pure delayed-write because "some blocks could reside in
the cache a long time before they are written to disk ... System crashes
could cause large amounts of information to be lost", and offers
flush-back as the compromise.  This experiment measures the exposure
directly: the time-averaged and worst-case amount of dirty (unwritten)
data sitting in a 4 MB cache under each policy, next to the disk-write
savings the policy buys.
"""

from __future__ import annotations

from ..cache.policies import DELAYED_WRITE, FLUSH_30S, FLUSH_5MIN, WRITE_THROUGH
from ..cache.simulator import BlockCacheSimulator
from ..cache.stream import cached_stream
from ..trace.log import TraceLog
from .base import ExperimentResult, register

_MB = 1024 * 1024


@register(
    "exposure",
    "Crash exposure vs write savings, by policy (4 MB cache)",
    "Delayed-write leaves data unwritten indefinitely (with a 4 MB cache "
    "a substantial fraction of blocks stay cached over 20 minutes); "
    "flush-back bounds the loss to its interval while keeping most of "
    "the write savings",
)
def run(log: TraceLog) -> ExperimentResult:
    stream = cached_stream(log)
    duration = max(log.duration, 1e-9)
    rows = []
    data = {}
    baseline_writes = None
    for policy in (WRITE_THROUGH, FLUSH_30S, FLUSH_5MIN, DELAYED_WRITE):
        sim = BlockCacheSimulator(4 * _MB, policy=policy, track_exposure=True)
        metrics = sim.run(stream)
        if baseline_writes is None:
            baseline_writes = metrics.disk_writes
        avg_kb = sim.exposure.average_dirty_blocks(duration) * sim.block_size / 1024
        max_kb = sim.exposure.max_dirty_blocks * sim.block_size / 1024
        saved = (
            100 * (1 - metrics.disk_writes / baseline_writes)
            if baseline_writes
            else 0.0
        )
        rows.append(
            f"{policy.label:<13}: avg {avg_kb:8.1f} KB dirty, worst "
            f"{max_kb:8.1f} KB at risk, write savings {saved:5.1f}%"
        )
        key = policy.label.replace(" ", "_")
        data[f"avg_kb_{key}"] = avg_kb
        data[f"max_kb_{key}"] = max_kb
        data[f"write_savings_{key}"] = saved
    rows.append(
        "Flush-back buys most of delayed-write's savings at a small "
        "fraction of its exposure — the paper's recommendation."
    )
    return ExperimentResult(
        experiment_id="exposure",
        title="Crash exposure vs write savings, by policy (4 MB cache)",
        rendered="\n".join(rows),
        data=data,
    )
