"""Figure 1: cumulative distributions of sequential run lengths."""

from __future__ import annotations

from ..analysis.report import render_cdf_ascii
from ..analysis.sequentiality import run_length_cdfs
from ..trace.log import TraceLog
from .base import ExperimentResult, register

#: X grid in bytes (the paper plots 0-100 kilobytes).
GRID = [512, 1024, 2048, 4096, 8192, 16384, 25600, 51200, 102400]


def _kb(x: float) -> str:
    return f"{x / 1024:g} KB"


@register(
    "fig1",
    "Sequential run lengths, by runs (a) and by bytes (b)",
    "70-75% of runs are under 4 kbytes (jumps at 1 KB and 4 KB from stdio "
    "granules); 30-40% of all bytes move in runs longer than 25 kbytes",
)
def run(log: TraceLog) -> ExperimentResult:
    by_runs, by_bytes = run_length_cdfs(log)
    rendered = "\n".join(
        [
            "(a) weighted by number of runs:",
            render_cdf_ascii(by_runs, GRID, "run length", x_format=_kb),
            "",
            "(b) weighted by bytes transferred:",
            render_cdf_ascii(by_bytes, GRID, "run length", x_format=_kb),
        ]
    )
    return ExperimentResult(
        experiment_id="fig1",
        title="Sequential run lengths, by runs (a) and by bytes (b)",
        rendered=rendered,
        data={
            "runs_under_4k": by_runs.fraction_at_or_below(4096),
            "bytes_over_25k": 1.0 - by_bytes.fraction_at_or_below(25 * 1024),
            "curve_runs": by_runs.evaluate(GRID),
            "curve_bytes": by_bytes.evaluate(GRID),
        },
    )
