"""Figure 2: dynamic distribution of file sizes at close."""

from __future__ import annotations

from ..analysis.report import render_cdf_ascii
from ..analysis.sizes import file_size_cdfs
from ..trace.log import TraceLog
from .base import ExperimentResult, register

#: X grid in bytes (the paper plots 0-200 kilobytes).
GRID = [
    1024,
    2048,
    4096,
    10 * 1024,
    20 * 1024,
    50 * 1024,
    100 * 1024,
    200 * 1024,
    1024 * 1024,
]


def _kb(x: float) -> str:
    return f"{x / 1024:g} KB"


@register(
    "fig2",
    "Dynamic file sizes at close, by accesses (a) and by bytes (b)",
    "80% of accesses are to files under 10 kbytes, but they carry only "
    "~30% of the bytes; a few ~1 MB administrative files account for "
    "almost 20% of accesses",
)
def run(log: TraceLog) -> ExperimentResult:
    by_accesses, by_bytes = file_size_cdfs(log)
    rendered = "\n".join(
        [
            "(a) weighted by number of file accesses:",
            render_cdf_ascii(by_accesses, GRID, "file size", x_format=_kb),
            "",
            "(b) weighted by bytes transferred:",
            render_cdf_ascii(by_bytes, GRID, "file size", x_format=_kb),
        ]
    )
    return ExperimentResult(
        experiment_id="fig2",
        title="Dynamic file sizes at close, by accesses (a) and by bytes (b)",
        rendered=rendered,
        data={
            "accesses_under_10k": by_accesses.fraction_at_or_below(10 * 1024),
            "bytes_under_10k": by_bytes.fraction_at_or_below(10 * 1024),
            "accesses_over_200k": 1.0 - by_accesses.fraction_at_or_below(200 * 1024),
            "curve_accesses": by_accesses.evaluate(GRID),
            "curve_bytes": by_bytes.evaluate(GRID),
        },
    )
