"""Figure 3: distribution of times files were open."""

from __future__ import annotations

from ..analysis.opentimes import open_time_cdf
from ..analysis.report import render_cdf_ascii
from ..trace.log import TraceLog
from .base import ExperimentResult, register

#: X grid in seconds (the paper plots 0-10 seconds).
GRID = [0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 30.0, 60.0, 300.0]


@register(
    "fig3",
    "Distribution of times that files were open",
    "~75% of files are open less than 0.5 second and ~90% less than "
    "10 seconds; editor temporaries form a long tail",
)
def run(log: TraceLog) -> ExperimentResult:
    cdf = open_time_cdf(log)
    return ExperimentResult(
        experiment_id="fig3",
        title="Distribution of times that files were open",
        rendered=render_cdf_ascii(
            cdf, GRID, "open time", x_format=lambda x: f"{x:g} s"
        ),
        data={
            "under_half_second": cdf.fraction_at_or_below(0.5),
            "under_ten_seconds": cdf.fraction_at_or_below(10.0),
            "median": cdf.median(),
            "curve": cdf.evaluate(GRID),
        },
    )
