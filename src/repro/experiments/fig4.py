"""Figure 4: cumulative distributions of new-file lifetimes."""

from __future__ import annotations

from ..analysis.lifetimes import (
    collect_lifetimes,
    daemon_spike_fraction,
    lifetime_cdfs,
)
from ..analysis.report import render_cdf_ascii
from ..trace.log import TraceLog
from .base import ExperimentResult, register

#: X grid in seconds (the paper plots 0-500 seconds).
GRID = [10, 30, 60, 120, 178, 182, 200, 300, 400, 500]


@register(
    "fig4",
    "New-file lifetimes, by files (a) and by bytes created (b)",
    "~80% of new files die within ~200 seconds; 30-40% of lifetimes land "
    "at 179-181 s (network status daemons); data deleted within 200 s "
    "accounts for ~40% of bytes written to new files",
)
def run(log: TraceLog) -> ExperimentResult:
    lifetimes = collect_lifetimes(log)
    by_files, by_bytes = lifetime_cdfs(log, lifetimes)
    rendered = "\n".join(
        [
            "(a) weighted by number of files:",
            render_cdf_ascii(
                by_files, GRID, "lifetime", x_format=lambda x: f"{x:g} s"
            ),
            "",
            "(b) weighted by bytes created:",
            render_cdf_ascii(
                by_bytes, GRID, "lifetime", x_format=lambda x: f"{x:g} s"
            ),
            "",
            f"lifetimes in the 179-181 s daemon band: "
            f"{100 * daemon_spike_fraction(lifetimes):.0f}% of all new files",
        ]
    )
    return ExperimentResult(
        experiment_id="fig4",
        title="New-file lifetimes, by files (a) and by bytes created (b)",
        rendered=rendered,
        data={
            "files_under_200s": by_files.fraction_at_or_below(200.0),
            "bytes_under_200s": by_bytes.fraction_at_or_below(200.0),
            "daemon_spike": daemon_spike_fraction(lifetimes),
            "new_files": len(lifetimes),
            "curve_files": by_files.evaluate(GRID),
            "curve_bytes": by_bytes.evaluate(GRID),
        },
    )
