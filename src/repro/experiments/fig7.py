"""Figure 7: miss ratio with execve paging approximated."""

from __future__ import annotations

from ..cache.sweep import paging_comparison
from ..trace.log import TraceLog
from .base import ExperimentResult, register


@register(
    "fig7",
    "Miss ratio with paging approximated by whole-file program reads",
    "Simulated page-in degrades small caches (program files grow the "
    "working set) but improves large-cache miss ratios: program accesses "
    "are at least as local as file data",
)
def run(log: TraceLog) -> ExperimentResult:
    comparison = paging_comparison(log)
    sizes = comparison.cache_sizes
    small, large = sizes[0], sizes[-1]
    return ExperimentResult(
        experiment_id="fig7",
        title="Miss ratio with paging approximated by whole-file program reads",
        rendered=comparison.render(),
        data={
            "ignored": {s: comparison.ignored[s].miss_ratio for s in sizes},
            "simulated": {s: comparison.simulated[s].miss_ratio for s in sizes},
            "small_cache_delta": comparison.simulated[small].miss_ratio
            - comparison.ignored[small].miss_ratio,
            "large_cache_delta": comparison.simulated[large].miss_ratio
            - comparison.ignored[large].miss_ratio,
        },
    )
