"""Section 3.1: inter-event interval bounds on transfer times."""

from __future__ import annotations

from ..trace.intervals import interval_stats
from ..trace.log import TraceLog
from .base import ExperimentResult, register


@register(
    "intervals",
    "Intervals between successive trace events for the same open file",
    "75% of intervals < 0.5 s, 90% < 10 s, 99% < 30 s",
)
def run(log: TraceLog) -> ExperimentResult:
    stats = interval_stats(log)
    return ExperimentResult(
        experiment_id="intervals",
        title="Intervals between successive trace events for the same open file",
        rendered=stats.render(),
        data={
            "count": stats.count,
            "p75": stats.p75,
            "p90": stats.p90,
            "p99": stats.p99,
            "max": stats.maximum,
        },
    )
