"""Section 8's frontier, measured: metadata I/O and whether caching tames it.

The paper estimates that i-node and directory accesses "could come to
more than half of all disk block references" and sees "indications that
the other accesses can also be handled efficiently by caching".  This
experiment interleaves modelled i-node/directory transfers into the
stream (see :mod:`repro.cache.metadata`) and compares cache behaviour
with and without them.
"""

from __future__ import annotations

from ..cache.metadata import cached_stream_with_metadata
from ..cache.simulator import BlockCacheSimulator
from ..cache.stream import cached_stream
from ..trace.log import TraceLog
from .base import ExperimentResult, register

_MB = 1024 * 1024


@register(
    "metadata",
    "I/O for i-nodes and directories, with and without a cache",
    "Section 8: more than half of all disk block references could come "
    "from non-file-data accesses, and those accesses can also be handled "
    "efficiently by caching",
)
def run(log: TraceLog) -> ExperimentResult:
    plain = cached_stream(log)
    with_meta = cached_stream_with_metadata(log)

    lines = []
    data = {}
    for cache_bytes in (400 * 1024, 4 * _MB):
        base = BlockCacheSimulator(cache_bytes).run(plain)
        full = BlockCacheSimulator(cache_bytes).run(with_meta)
        meta_accesses = full.block_accesses - base.block_accesses
        meta_share = meta_accesses / full.block_accesses
        label = (
            f"{cache_bytes // 1024} KB" if cache_bytes < _MB
            else f"{cache_bytes // _MB} MB"
        )
        lines.append(
            f"{label} cache: metadata adds {meta_accesses:,} block accesses "
            f"({100 * meta_share:.0f}% of all references); miss ratio "
            f"{100 * base.miss_ratio:.1f}% -> {100 * full.miss_ratio:.1f}% "
            f"with metadata included"
        )
        data[f"meta_share_{cache_bytes}"] = meta_share
        data[f"miss_plain_{cache_bytes}"] = base.miss_ratio
        data[f"miss_meta_{cache_bytes}"] = full.miss_ratio
    lines.append(
        "Metadata references cache even better than file data (tiny, "
        "heavily shared i-node and directory blocks), so including them "
        "*lowers* the large-cache miss ratio — the paper's 'indication' "
        "confirmed."
    )
    return ExperimentResult(
        experiment_id="metadata",
        title="I/O for i-nodes and directories, with and without a cache",
        rendered="\n".join(lines),
        data=data,
    )
