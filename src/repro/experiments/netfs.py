"""Network file service sweep: clients x client cache x protocol.

Not a paper exhibit — the paper stopped at counting network blocks
(Section 5.1) and explicitly set cache consistency aside.  This
experiment is the follow-through its conclusions ask for: the same
trace pushed through the discrete-event service (:mod:`repro.netfs`),
swept over workstation consolidation, client cache size, and the two
consistency protocols, reporting end-to-end latency and resource
utilization instead of counts.
"""

from __future__ import annotations

from ..netfs import simulate_netfs
from ..parallel.executor import run_jobs
from ..trace.log import TraceLog
from .base import ExperimentResult, register

CLIENT_COUNTS = (4, 16)
CLIENT_CACHES = (128 * 1024, 512 * 1024)
NETFS_PROTOCOLS = ("callbacks", "ownership")


def _netfs_job(log: TraceLog, config: tuple):
    """One grid cell (module-level so the executor can ship it)."""
    protocol, clients, cache_bytes = config
    return simulate_netfs(
        log,
        clients=clients,
        client_cache_bytes=cache_bytes,
        protocol=protocol,
    )


@register(
    "netfs",
    "Network file service: latency/utilization vs clients, cache, protocol",
    "Beyond the paper: Section 5.1 bounds the Ethernet at a few percent "
    "average utilization and Section 6 sizes the caches; the discrete-event "
    "service turns those counts into request latency, queueing and "
    "consistency traffic",
)
def run(log: TraceLog) -> ExperimentResult:
    rows: list[str] = [
        f"{'protocol':<10} {'clients':>7} {'cache':>7} "
        f"{'mean ms':>8} {'p99 ms':>8} {'eth %':>6} {'disk %':>7} {'consis':>7}"
    ]
    data: dict = {}
    grid = [
        (protocol, clients, cache_bytes)
        for protocol in NETFS_PROTOCOLS
        for clients in CLIENT_COUNTS
        for cache_bytes in CLIENT_CACHES
    ]
    # Every cell replays the whole trace through the discrete-event
    # service: the natural fan-out unit.  The worker count comes from the
    # ambient jobs context (serial when none is active).
    for (protocol, clients, cache_bytes), result in zip(
        grid, run_jobs(_netfs_job, grid, payload=log)
    ):
        key = (protocol, clients, cache_bytes)
        data[key] = {
            "mean_latency_s": result.request_latency.mean,
            "p99_latency_s": result.request_latency.p99,
            "ethernet_utilization": result.ethernet_utilization,
            "disk_utilization": result.disk_utilization,
            "consistency_messages": result.consistency_messages,
            "network_messages": result.network_messages,
        }
        rows.append(
            f"{protocol:<10} {result.clients:>7} "
            f"{cache_bytes // 1024:>6}K "
            f"{1e3 * result.request_latency.mean:>8.2f} "
            f"{1e3 * result.request_latency.p99:>8.2f} "
            f"{100 * result.ethernet_utilization:>6.2f} "
            f"{100 * result.disk_utilization:>7.2f} "
            f"{result.consistency_messages:>7,}"
        )
    return ExperimentResult(
        experiment_id="netfs",
        title="Network file service: latency/utilization vs clients, cache, protocol",
        rendered="\n".join(rows),
        data=data,
    )
