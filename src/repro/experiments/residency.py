"""Section 6.2: block residency times under delayed-write.

The paper's caveat about delayed-write is crash exposure: blocks can sit
dirty in the cache for a long time.  It reports that with a 4 MB cache a
substantial fraction of blocks stay resident for longer than 20 minutes,
and that the flush-back policies bound the exposure: about 25% of newly
written blocks die within 30 seconds and about 50% within 5 minutes
(which is why those flush intervals recover 25% / 50% of the writes).
"""

from __future__ import annotations

from ..cache.simulator import BlockCacheSimulator
from ..cache.stream import cached_stream
from ..trace.log import TraceLog
from .base import ExperimentResult, register


@register(
    "residency",
    "Block residency and dirty-block fate under delayed-write (4 MB)",
    "With a 4 MB cache ~20% of blocks stay in the cache longer than 20 "
    "minutes; with large caches ~75% of newly-written blocks die before "
    "ejection and are never written to disk",
)
def run(log: TraceLog) -> ExperimentResult:
    stream = cached_stream(log)
    sim = BlockCacheSimulator(4 * 1024 * 1024, track_residency=True)
    metrics = sim.run(stream)
    big = BlockCacheSimulator(16 * 1024 * 1024)
    big_metrics = big.run(stream)
    frac_20min = sim.residency.fraction_longer_than(20 * 60)
    rendered = "\n".join(
        [
            f"4 MB delayed-write cache over trace {log.name}:",
            f"  blocks resident longer than 20 minutes: {100 * frac_20min:.0f}%",
            f"  dirty blocks that died in the cache (never written): "
            f"{100 * metrics.dirty_discard_fraction:.0f}%",
            f"16 MB cache: dirty blocks dying unwritten: "
            f"{100 * big_metrics.dirty_discard_fraction:.0f}%",
        ]
    )
    return ExperimentResult(
        experiment_id="residency",
        title="Block residency and dirty-block fate under delayed-write (4 MB)",
        rendered=rendered,
        data={
            "resident_over_20min": frac_20min,
            "dirty_discard_4mb": metrics.dirty_discard_fraction,
            "dirty_discard_16mb": big_metrics.dirty_discard_fraction,
        },
    )
