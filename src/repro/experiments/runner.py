"""Run experiments against a trace.

``run_all`` reproduces every registered exhibit; ``run_one`` a single
one.  ``paper_vs_measured`` renders the side-by-side record used in
``EXPERIMENTS.md``.
"""

from __future__ import annotations

from ..trace.log import TraceLog
from .base import REGISTRY, ExperimentResult, all_ids, get

__all__ = ["run_one", "run_all", "paper_vs_measured"]


def run_one(experiment_id: str, log: TraceLog) -> ExperimentResult:
    """Run one experiment by id."""
    return get(experiment_id).run(log)


def run_all(log: TraceLog) -> list[ExperimentResult]:
    """Run every registered experiment, in id order."""
    return [REGISTRY[eid].run(log) for eid in all_ids()]


def paper_vs_measured(log: TraceLog) -> str:
    """Every exhibit with the paper's claim next to our measurement."""
    sections: list[str] = []
    for eid in all_ids():
        experiment = REGISTRY[eid]
        result = experiment.run(log)
        sections.append(
            "\n".join(
                [
                    f"## {eid}: {experiment.title}",
                    "",
                    f"**Paper:** {experiment.paper_claim}",
                    "",
                    "**Measured:**",
                    "```",
                    result.rendered,
                    "```",
                ]
            )
        )
    return "\n\n".join(sections)
