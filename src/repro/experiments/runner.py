"""Run experiments against a trace.

``run_all`` reproduces every registered exhibit; ``run_one`` a single
one.  ``paper_vs_measured`` renders the side-by-side record used in
``EXPERIMENTS.md``.

All three accept ``jobs``: experiment entry points take only a trace, so
the worker count travels as an ambient default
(:func:`~repro.parallel.executor.jobs_context`) that the sweeps beneath
pick up.  ``jobs=None`` keeps the serial reference path; the derived
streams are still memoized per trace, so back-to-back experiments stop
rebuilding them either way.
"""

from __future__ import annotations

from ..parallel.executor import jobs_context
from ..trace.log import TraceLog
from .base import REGISTRY, ExperimentResult, all_ids, get

__all__ = ["run_one", "run_all", "paper_vs_measured"]


def run_one(
    experiment_id: str, log: TraceLog, jobs: int | None = None
) -> ExperimentResult:
    """Run one experiment by id."""
    if jobs is None:
        return get(experiment_id).run(log)
    with jobs_context(jobs):
        return get(experiment_id).run(log)


def run_all(log: TraceLog, jobs: int | None = None) -> list[ExperimentResult]:
    """Run every registered experiment, in id order."""
    if jobs is None:
        return [REGISTRY[eid].run(log) for eid in all_ids()]
    with jobs_context(jobs):
        return [REGISTRY[eid].run(log) for eid in all_ids()]


def paper_vs_measured(log: TraceLog, jobs: int | None = None) -> str:
    """Every exhibit with the paper's claim next to our measurement."""
    sections: list[str] = []
    for result in run_all(log, jobs=jobs):
        experiment = REGISTRY[result.experiment_id]
        sections.append(
            "\n".join(
                [
                    f"## {result.experiment_id}: {experiment.title}",
                    "",
                    f"**Paper:** {experiment.paper_claim}",
                    "",
                    "**Measured:**",
                    "```",
                    result.rendered,
                    "```",
                ]
            )
        )
    return "\n\n".join(sections)
