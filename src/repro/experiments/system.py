"""System experiments: exhibits that need the live kernel, not just the trace.

Three of the paper's discussions compare its trace-driven predictions
against the *running system*:

* **Section 6.4 (Leffler comparison)** — the measured kernel buffer-cache
  miss ratio vs. the simulator's prediction for the same cache size and
  the 30-second sync policy;
* **Section 8 (other accesses)** — how much disk I/O comes from things
  the traces exclude: name lookup, i-nodes and program page-in;
* **prior-work methodology** — what a static disk scan (Satyanarayanan's
  method) sees vs. the dynamic per-access measurements of Figure 2.

These take a :class:`~repro.workload.generator.GenerationResult` (trace +
live file system) rather than a bare trace, so they live in their own
registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..analysis.sizes import file_size_cdfs
from ..analysis.staticscan import scan_disk
from ..cache.policies import FLUSH_30S
from ..cache.simulator import BlockCacheSimulator, simulate_cache
from ..cache.stream import build_stream
from ..trace.records import ExecEvent
from ..trace.stats import total_bytes_transferred
from ..workload.generator import GenerationResult
from .base import ExperimentResult

__all__ = [
    "SYSTEM_REGISTRY",
    "run_system_experiment",
    "all_system_ids",
    "leffler_comparison",
    "other_io_estimate",
    "static_vs_dynamic",
]


@dataclass(frozen=True)
class SystemExperiment:
    experiment_id: str
    title: str
    paper_claim: str
    run: Callable[[GenerationResult], ExperimentResult]


SYSTEM_REGISTRY: dict[str, SystemExperiment] = {}


def _register(experiment_id: str, title: str, paper_claim: str):
    def wrap(fn):
        SYSTEM_REGISTRY[experiment_id] = SystemExperiment(
            experiment_id=experiment_id, title=title, paper_claim=paper_claim,
            run=fn,
        )
        return fn

    return wrap


def all_system_ids() -> list[str]:
    return sorted(SYSTEM_REGISTRY)


def run_system_experiment(experiment_id: str, result: GenerationResult) -> ExperimentResult:
    try:
        experiment = SYSTEM_REGISTRY[experiment_id]
    except KeyError:
        known = ", ".join(all_system_ids())
        raise KeyError(
            f"unknown system experiment {experiment_id!r}; known: {known}"
        ) from None
    return experiment.run(result)


@_register(
    "leffler",
    "Measured kernel cache vs. trace-driven prediction (Section 6.4)",
    "Typical 4.2 BSD systems (400 KB cache, 30 s sync) should see about a "
    "2x disk-access reduction per the simulations, while Leffler et al. "
    "measured ~15% miss ratios — the gap comes from sub-block requests "
    "and from paging/directory/i-node accesses the traces exclude",
)
def leffler_comparison(result: GenerationResult) -> ExperimentResult:
    fs = result.fs
    live = fs.buffer_cache.stats
    simulated = simulate_cache(
        result.trace,
        cache_bytes=fs.buffer_cache.capacity_blocks * fs.buffer_cache.block_size,
        block_size=fs.buffer_cache.block_size,
        policy=FLUSH_30S,
    )
    rendered = "\n".join(
        [
            f"Live kernel buffer cache ({fs.buffer_cache.capacity_blocks} "
            f"blocks, 30 s sync):",
            f"  {live.accesses:,} block accesses, miss ratio "
            f"{100 * live.miss_ratio:.1f}% "
            f"(read hit ratio {100 * live.read_hit_ratio:.1f}%)",
            "Trace-driven simulation of the same configuration:",
            f"  {simulated.summary()}",
            f"Difference: {100 * abs(live.miss_ratio - simulated.miss_ratio):.1f} "
            f"percentage points (billing-time and request-granularity effects)",
        ]
    )
    return ExperimentResult(
        experiment_id="leffler",
        title="Measured kernel cache vs. trace-driven prediction",
        rendered=rendered,
        data={
            "live_miss_ratio": live.miss_ratio,
            "simulated_miss_ratio": simulated.miss_ratio,
            "live_accesses": live.accesses,
        },
    )


@_register(
    "other_io",
    "Disk I/O for things other than file data (Section 8)",
    "Program files hold 1.2-2.0x as many bytes as all logical file I/O; "
    "the directory cache hits ~85%; 'more than half of all disk block "
    "references could come from these other accesses'",
)
def other_io_estimate(result: GenerationResult) -> ExperimentResult:
    fs = result.fs
    trace = result.trace
    data_bytes = total_bytes_transferred(trace)
    exec_bytes = sum(
        e.size for e in trace.events if isinstance(e, ExecEvent)
    )
    exec_ratio = exec_bytes / data_bytes if data_bytes else 0.0

    dnlc = fs.resolver.dnlc.counters
    inode = fs.inode_cache.counters
    # Paper Section 3.2: each uncached pathname component costs a minimum
    # of two block accesses (the directory's descriptor and its contents).
    directory_ios = 2 * dnlc.misses
    inode_ios = inode.misses

    file_data_ios = simulate_cache(
        trace, cache_bytes=400 * 1024, policy=FLUSH_30S
    ).disk_ios
    other_ios = directory_ios + inode_ios
    other_fraction = other_ios / (other_ios + file_data_ios)

    rendered = "\n".join(
        [
            f"Logical file data moved: {data_bytes / 1e6:.1f} MB; program "
            f"images execve'd: {exec_bytes / 1e6:.1f} MB "
            f"({exec_ratio:.2f}x of file data — paper saw 1.2-2.0x)",
            f"Name lookup: DNLC hit ratio {100 * dnlc.hit_ratio:.0f}% "
            f"({dnlc.misses:,} misses -> ~{directory_ios:,} directory disk reads)",
            f"I-nodes: cache hit ratio {100 * inode.hit_ratio:.0f}% "
            f"({inode.misses:,} misses -> ~{inode_ios:,} i-node disk reads)",
            f"File-data disk I/Os (400 KB cache, 30 s sync): {file_data_ios:,}",
            f"Other accesses would be {100 * other_fraction:.0f}% of total disk "
            f"I/O even before paging — the paper's Section 8 point",
        ]
    )
    return ExperimentResult(
        experiment_id="other_io",
        title="Disk I/O for things other than file data",
        rendered=rendered,
        data={
            "exec_ratio": exec_ratio,
            "dnlc_hit_ratio": dnlc.hit_ratio,
            "inode_hit_ratio": inode.hit_ratio,
            "directory_ios": directory_ios,
            "inode_ios": inode_ios,
            "file_data_ios": file_data_ios,
            "other_fraction": other_fraction,
        },
    )


@_register(
    "static_scan",
    "Static disk scan vs. dynamic per-access measurement",
    "Prior studies scanned disks statically and so missed files living "
    "less than a day; Satyanarayanan's static sizes are nonetheless "
    "roughly comparable (~50% of files under 2.5 KB), while dynamic "
    "access-weighted sizes skew smaller still",
)
def static_vs_dynamic(result: GenerationResult) -> ExperimentResult:
    scan = scan_disk(result.fs)
    dynamic, _by_bytes = file_size_cdfs(result.trace)
    rendered = "\n".join(
        [
            scan.render(),
            f"Dynamic (per-access, Figure 2a): "
            f"{100 * dynamic.fraction_at_or_below(10 * 1024):.0f}% of accesses "
            f"to files <= 10 KB (median {dynamic.median() / 1024:.1f} KB)",
            "The static scan cannot see the temporary files that dominate "
            "Figure 4 — they are born and dead between scans.",
        ]
    )
    return ExperimentResult(
        experiment_id="static_scan",
        title="Static disk scan vs. dynamic per-access measurement",
        rendered=rendered,
        data={
            "static_files": scan.file_count,
            "static_under_10k": scan.size_cdf.fraction_at_or_below(10 * 1024),
            "dynamic_under_10k": dynamic.fraction_at_or_below(10 * 1024),
            "static_median": scan.size_cdf.median(),
            "dynamic_median": dynamic.median(),
        },
    )
