"""Table I: the paper's selected-results summary, recomputed."""

from __future__ import annotations

from ..analysis.accesses import reconstruct_accesses
from ..analysis.activity import analyze_activity
from ..analysis.lifetimes import collect_lifetimes, lifetime_cdfs
from ..analysis.opentimes import open_time_cdf
from ..analysis.sequentiality import analyze_sequentiality
from ..cache.policies import DELAYED_WRITE, WRITE_THROUGH
from ..cache.simulator import simulate_cache
from ..cache.sweep import block_size_sweep
from ..trace.log import TraceLog
from .base import ExperimentResult, register


@register(
    "table1",
    "Selected results (the paper's Table I)",
    "~300-600 bytes/sec per active user; ~70% whole-file accesses moving "
    "~50% of bytes; 75% of opens < 0.5 s, 90% < 10 s; 20-30% of new data "
    "dead in 30 s, ~50% in 5 min; a 4 MB cache removes 65-90% of disk "
    "accesses depending on write policy; best block size 8 KB at 400 KB "
    "cache, 16 KB at 4 MB",
)
def run(log: TraceLog) -> ExperimentResult:
    accesses = reconstruct_accesses(log)
    activity = analyze_activity(log)
    seq = analyze_sequentiality(log, accesses)
    opens = open_time_cdf(log, accesses)
    lifetimes = collect_lifetimes(log)
    _lt_files, lt_bytes = lifetime_cdfs(log, lifetimes)

    four_mb = 4 * 1024 * 1024
    wt = simulate_cache(log, four_mb, policy=WRITE_THROUGH)
    dw = simulate_cache(log, four_mb, policy=DELAYED_WRITE)
    blocks = block_size_sweep(
        log, cache_sizes=(400 * 1024, four_mb)
    )

    whole_accesses = seq.read.whole_file + seq.write.whole_file
    all_rw_accesses = seq.read.accesses + seq.write.accesses
    lines = [
        f"Per active user (10-minute intervals): "
        f"{activity.ten_minute.mean_user_throughput:.0f} bytes/second",
        f"Whole-file transfers: {100 * whole_accesses / max(1, all_rw_accesses):.0f}% "
        f"of accesses, {seq.percent_bytes_whole_file:.0f}% of bytes",
        f"Files open < 0.5 s: {100 * opens.fraction_at_or_below(0.5):.0f}%; "
        f"< 10 s: {100 * opens.fraction_at_or_below(10.0):.0f}%",
        f"New data dead within 30 s: "
        f"{100 * lt_bytes.fraction_at_or_below(30.0):.0f}% of bytes; "
        f"within 5 min: {100 * lt_bytes.fraction_at_or_below(300.0):.0f}%",
        f"4-Mbyte cache eliminates "
        f"{100 * (1 - dw.miss_ratio):.0f}% (delayed-write) to "
        f"{100 * (1 - wt.miss_ratio):.0f}% (write-through) of disk accesses",
        f"Best block size: {blocks.best_block_size(400 * 1024) // 1024} KB at a "
        f"400 KB cache, {blocks.best_block_size(four_mb) // 1024} KB at 4 MB",
    ]
    return ExperimentResult(
        experiment_id="table1",
        title="Selected results (the paper's Table I)",
        rendered="\n".join(lines),
        data={
            "per_user_bytes_sec": activity.ten_minute.mean_user_throughput,
            "whole_file_access_pct": 100 * whole_accesses / max(1, all_rw_accesses),
            "whole_file_bytes_pct": seq.percent_bytes_whole_file,
            "open_half_s": opens.fraction_at_or_below(0.5),
            "open_ten_s": opens.fraction_at_or_below(10.0),
            "bytes_dead_30s": lt_bytes.fraction_at_or_below(30.0),
            "bytes_dead_5min": lt_bytes.fraction_at_or_below(300.0),
            "eliminated_delayed_4mb": 1 - dw.miss_ratio,
            "eliminated_wt_4mb": 1 - wt.miss_ratio,
            "best_block_small": blocks.best_block_size(400 * 1024),
            "best_block_4mb": blocks.best_block_size(four_mb),
        },
    )
