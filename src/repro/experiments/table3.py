"""Table III: overall trace statistics."""

from __future__ import annotations

from ..trace.log import TraceLog
from ..trace.stats import compute_stats
from .base import ExperimentResult, register


@register(
    "table3",
    "Overall statistics for the trace",
    "A5: 1,017,000 records over 2-3 days; opens ~32%, closes ~36%, "
    "seeks ~19%, creates ~4%, unlinks ~4%, execve ~6%, truncates ~0.1%",
)
def run(log: TraceLog) -> ExperimentResult:
    stats = compute_stats(log)
    return ExperimentResult(
        experiment_id="table3",
        title="Overall statistics for the trace",
        rendered=stats.render(),
        data={
            "record_count": stats.record_count,
            "duration_hours": stats.duration_hours,
            "data_mbytes": stats.data_transferred_mbytes,
            "kind_counts": dict(stats.kind_counts),
            "kind_percents": {
                kind: stats.kind_percent(kind) for kind in stats.kind_counts
            },
        },
    )
