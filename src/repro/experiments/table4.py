"""Table IV: system activity and per-active-user throughput."""

from __future__ import annotations

from ..analysis.activity import analyze_activity
from ..trace.log import TraceLog
from .base import ExperimentResult, register


@register(
    "table4",
    "System activity: active users and throughput per active user",
    "A5: ~11.7 active users over 10-minute intervals at ~370 bytes/sec "
    "each; over 10-second intervals ~2.5 active users at a few "
    "kilobytes/sec each",
)
def run(log: TraceLog) -> ExperimentResult:
    report = analyze_activity(log)
    return ExperimentResult(
        experiment_id="table4",
        title="System activity: active users and throughput per active user",
        rendered=report.render(),
        data={
            "mean_throughput": report.mean_throughput,
            "total_users": report.total_users,
            "active_10min": report.ten_minute.mean_active_users,
            "active_10min_std": report.ten_minute.std_active_users,
            "per_user_10min": report.ten_minute.mean_user_throughput,
            "active_10s": report.ten_second.mean_active_users,
            "per_user_10s": report.ten_second.mean_user_throughput,
            "max_active_10min": report.ten_minute.max_active_users,
        },
    )
