"""Table V: sequentiality of file accesses."""

from __future__ import annotations

from ..analysis.sequentiality import analyze_sequentiality
from ..trace.log import TraceLog
from .base import ExperimentResult, register


@register(
    "table5",
    "Sequentiality: whole-file and sequential access fractions",
    "63-70% of read-only and 81-85% of write-only accesses are whole-file "
    "transfers carrying ~50% of all bytes; >90% of read-only and >96% of "
    "write-only accesses are sequential; read-write accesses are "
    "sequential only 19-35% of the time; ~67% of bytes move sequentially",
)
def run(log: TraceLog) -> ExperimentResult:
    report = analyze_sequentiality(log)
    return ExperimentResult(
        experiment_id="table5",
        title="Sequentiality: whole-file and sequential access fractions",
        rendered=report.render(),
        data={
            "whole_read_pct": report.read.percent_whole(),
            "whole_write_pct": report.write.percent_whole(),
            "seq_read_pct": report.read.percent_sequential(),
            "seq_write_pct": report.write.percent_sequential(),
            "seq_rw_pct": report.read_write.percent_sequential(),
            "rw_accesses": report.read_write.accesses,
            "bytes_whole_pct": report.percent_bytes_whole_file,
            "bytes_seq_pct": report.percent_bytes_sequential,
        },
    )
