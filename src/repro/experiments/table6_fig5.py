"""Table VI / Figure 5: miss ratio vs cache size and write policy."""

from __future__ import annotations

from ..cache.policies import DELAYED_WRITE, WRITE_THROUGH
from ..cache.sweep import cache_size_policy_sweep
from ..trace.log import TraceLog
from .base import ExperimentResult, register


@register(
    "table6",
    "Miss ratio vs cache size and write policy (4 KB blocks)",
    "A5: write-through 57.6% at 390 KB falling to 33.5% at 16 MB; "
    "delayed-write 43.1% at 390 KB falling to 9.6% at 16 MB; flush-back "
    "policies in between, 5-minute flush cutting write-through's writes "
    "about in half",
)
def run(log: TraceLog) -> ExperimentResult:
    sweep = cache_size_policy_sweep(log)
    four_mb = 4 * 1024 * 1024
    sixteen_mb = 16 * 1024 * 1024
    return ExperimentResult(
        experiment_id="table6",
        title="Miss ratio vs cache size and write policy (4 KB blocks)",
        rendered=sweep.render(),
        data={
            "miss_ratios": {
                (size, policy.label): sweep.miss_ratio(size, policy)
                for size in sweep.cache_sizes
                for policy in sweep.policies
            },
            "wt_4mb": sweep.miss_ratio(four_mb, WRITE_THROUGH),
            "delayed_4mb": sweep.miss_ratio(four_mb, DELAYED_WRITE),
            "delayed_16mb": sweep.miss_ratio(sixteen_mb, DELAYED_WRITE),
        },
    )
