"""Table VI revisited: the replacement-policy zoo, ranked.

The paper fixed LRU replacement and swept write policies (Table VI).
This exhibit holds the best write policy fixed (delayed-write, the
paper's winner) and sweeps the *replacement* policy instead, across the
three paper machines plus a modern strace-captured compile pipeline.
Every cell is an exact packed replay (:func:`replay_packed`) — the
non-LRU zoo policies are replay-only, so the numpy curve kernel
declines them and both engines answer identically (DESIGN.md §16).
"""

from __future__ import annotations

import textwrap

from ..cache.policies import DELAYED_WRITE
from ..cache.replacement import REPLACEMENT_NAMES
from ..parallel.packed import cached_packed_stream
from ..parallel.veccache import replay_packed
from ..strace import convert_calls, parse_lines
from ..trace.log import TraceLog
from ..workload.generator import generate_many
from ..workload.profiles import UCBARPA, UCBCAD, UCBERNIE
from .base import ExperimentResult, register

_MACHINES = (UCBARPA, UCBERNIE, UCBCAD)

#: Seed for the synthesized companion traces (matches section7's).
_COMPANION_SEED = 7

#: The ranking cache sizes: the paper's smallest (390 kbytes), its
#: headline 2 Mbytes, and a large 8 Mbytes where policies converge.
_SIZES = (399360, 2 * 1024 * 1024, 8 * 1024 * 1024)

#: The size the rendered ranking is ordered by.
_RANK_SIZE = 2 * 1024 * 1024

_BLOCK_SIZE = 4096

#: Compilation units in the synthetic strace workload.
_STRACE_UNITS = 24

#: Shared headers re-read by every unit (the reuse the caches feed on).
_STRACE_HEADERS = 6


def _strace_workload() -> TraceLog:
    """A deterministic compile-pipeline strace, parsed and converted.

    Mirrors ``examples/analyze_strace.py``'s bundled sample, scaled up:
    each unit reads a pool of shared headers plus its own source, writes
    a temporary ``.s`` file, assembles it into a ``.o`` (re-reading the
    temporary, then unlinking it), and a final link pass re-reads every
    object.  The header re-reads give LRU-friendly reuse; the unlinked
    temporaries exercise invalidation; the one-shot link scan is the
    sequential flood that trips LRU but not 2Q/ARC.
    """
    lines: list[str] = []
    t = 10.0

    def emit(pid: int, call: str) -> None:
        nonlocal t
        lines.append(f"{pid} {t:.6f} {call}")
        t += 0.01

    for unit in range(_STRACE_UNITS):
        pid = 100 + unit
        emit(pid, f'execve("/usr/bin/cc", ["cc", "u{unit}.c"], 0x7f /* 30 vars */) = 0')
        for header in range(_STRACE_HEADERS):
            emit(pid, f'openat(AT_FDCWD, "/usr/include/h{header}.h", O_RDONLY) = 3')
            size = 8192 + 512 * header
            emit(pid, f'read(3, "...", 16384) = {size}')
            emit(pid, 'read(3, "", 16384) = 0')
            emit(pid, "close(3) = 0")
        emit(pid, f'openat(AT_FDCWD, "u{unit}.c", O_RDONLY) = 3')
        emit(pid, f'read(3, "...", 16384) = {3000 + 137 * unit}')
        emit(pid, 'read(3, "", 16384) = 0')
        emit(pid, "close(3) = 0")
        asm = 9000 + 211 * unit
        emit(pid, f'openat(AT_FDCWD, "/tmp/cc_u{unit}.s", '
                  "O_WRONLY|O_CREAT|O_TRUNC, 0600) = 4")
        emit(pid, f'write(4, "...", {asm}) = {asm}')
        emit(pid, "close(4) = 0")
        emit(pid, f'openat(AT_FDCWD, "/tmp/cc_u{unit}.s", O_RDONLY) = 3')
        emit(pid, f'read(3, "...", 16384) = {asm}')
        emit(pid, 'read(3, "", 16384) = 0')
        emit(pid, "close(3) = 0")
        obj = 5000 + 97 * unit
        emit(pid, f'openat(AT_FDCWD, "u{unit}.o", O_WRONLY|O_CREAT|O_TRUNC, 0644) = 4')
        emit(pid, f'write(4, "...", {obj}) = {obj}')
        emit(pid, "close(4) = 0")
        emit(pid, f'unlink("/tmp/cc_u{unit}.s") = 0')
    pid = 100 + _STRACE_UNITS
    emit(pid, 'execve("/usr/bin/ld", ["ld", "*.o"], 0x7f /* 30 vars */) = 0')
    for unit in range(_STRACE_UNITS):
        obj = 5000 + 97 * unit
        emit(pid, f'openat(AT_FDCWD, "u{unit}.o", O_RDONLY) = 3')
        emit(pid, f'read(3, "...", 16384) = {obj}')
        emit(pid, 'read(3, "", 16384) = 0')
        emit(pid, "close(3) = 0")
    out = sum(5000 + 97 * unit for unit in range(_STRACE_UNITS))
    emit(pid, 'openat(AT_FDCWD, "a.out", O_WRONLY|O_CREAT|O_TRUNC, 0755) = 4')
    emit(pid, f'write(4, "...", {out}) = {out}')
    emit(pid, "close(4) = 0")
    log, _stats = convert_calls(parse_lines(lines), name="strace")
    return log


def _grid(log: TraceLog) -> dict[str, dict[int, float]]:
    """Miss ratio per (replacement policy, cache size) for one workload."""
    packed = cached_packed_stream(log, _BLOCK_SIZE)
    out: dict[str, dict[int, float]] = {}
    for name in REPLACEMENT_NAMES:
        row: dict[int, float] = {}
        for size in _SIZES:
            run = replay_packed(
                packed,
                size,
                DELAYED_WRITE,
                replacement=name,
                flush_epoch=packed.start_time,
            )
            row[size] = run.metrics.miss_ratio
        out[name] = row
    return out


def _render(grids: dict[str, dict[str, dict[int, float]]]) -> str:
    workloads = list(grids)
    mean = {
        name: sum(grids[w][name][_RANK_SIZE] for w in workloads) / len(workloads)
        for name in REPLACEMENT_NAMES
    }
    ranked = sorted(REPLACEMENT_NAMES, key=lambda name: (mean[name], name))
    header = ["Rank", "Policy", *workloads, "mean"]
    rows = [header]
    for rank, name in enumerate(ranked, start=1):
        rows.append(
            [
                str(rank),
                name,
                *(f"{100 * grids[w][name][_RANK_SIZE]:.1f}%" for w in workloads),
                f"{100 * mean[name]:.1f}%",
            ]
        )
    widths = [max(len(r[i]) for r in rows) for i in range(len(header))]
    lines = [
        "Table VI revisited: delayed-write miss ratio by replacement "
        "policy (4096-byte blocks, 2 Mbyte cache)"
    ]
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    lines.append("")
    lines.append(
        textwrap.fill(
            "Every cell is an exact per-access replay under delayed-write; "
            "the 390 kbyte and 8 Mbyte grids are in the data payload. "
            "LRU is the paper's configuration — the zoo measures how much "
            "of Table VI's story is the write policy (most of it) versus "
            "the replacement policy.",
            width=78,
        )
    )
    return "\n".join(lines)


@register(
    "table6rev",
    "Table VI revisited: replacement-policy zoo ranking",
    "Section 6 fixed LRU replacement and found the write policy dominant; "
    "re-running the sweep across FIFO/CLOCK/LFU/2Q/ARC (and an online "
    "ensemble) on all three machines plus a modern strace workload tests "
    "whether that conclusion survives the replacement policy changing",
)
def run(log: TraceLog) -> ExperimentResult:
    duration = min(max(log.duration, 600.0), 1800.0)
    others = [p for p in _MACHINES if p.trace_name != log.name]
    companions = generate_many(
        [(p, _COMPANION_SEED) for p in others], duration=duration
    )
    workloads = [log, *companions, _strace_workload()]
    grids = {wl.name: _grid(wl) for wl in workloads}
    return ExperimentResult(
        experiment_id="table6rev",
        title="Table VI revisited: replacement-policy zoo ranking",
        rendered=_render(grids),
        data={
            wl: {
                name: {str(size): row[size] for size in _SIZES}
                for name, row in grid.items()
            }
            for wl, grid in grids.items()
        },
    )
