"""Table VII / Figure 6: disk I/Os vs block size and cache size."""

from __future__ import annotations

from ..cache.sweep import block_size_sweep
from ..trace.log import TraceLog
from .base import ExperimentResult, register


@register(
    "table7",
    "Disk I/Os vs block size and cache size (delayed-write)",
    "Large blocks cut disk I/O even for small caches: ~8 KB is best for a "
    "400 KB cache, ~16 KB for a 4 MB cache, and at 32 KB the curves turn "
    "up because the cache holds too few blocks",
)
def run(log: TraceLog) -> ExperimentResult:
    sweep = block_size_sweep(log)
    return ExperimentResult(
        experiment_id="table7",
        title="Disk I/Os vs block size and cache size (delayed-write)",
        rendered=sweep.render(),
        data={
            "disk_ios": {
                (bs, cache): sweep.disk_ios(bs, cache)
                for bs in sweep.block_sizes
                for cache in sweep.cache_sizes
            },
            "no_cache": dict(sweep.no_cache),
            "best_small_cache": sweep.best_block_size(400 * 1024),
            "best_4mb_cache": sweep.best_block_size(4 * 1024 * 1024),
        },
    )
