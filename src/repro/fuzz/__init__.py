"""Differential fuzzing and fault injection for the whole pipeline.

The repo's correctness story is a chain of bit-identical pairs: the
event and columnar binary writers, the nine per-module analyzers versus
:func:`~repro.analysis.onepass.analyze_onepass`, and
:class:`~repro.cache.simulator.BlockCacheSimulator` versus the packed
replayer and the Mattson LRU stack.  This package turns each asserted
pair into a continuously machine-checked invariant over *generated*
inputs:

* :mod:`repro.fuzz.gen` — one seeded input model (random well-formed
  traces and random-but-valid syscall sequences) shared by the fuzzer
  and the hypothesis property tests;
* :mod:`repro.fuzz.replay` — the kernel oracle: after every fuzzed
  syscall the emitted Table II records must replay to the kernel's own
  logical state, and ``fsck`` must stay clean;
* :mod:`repro.fuzz.oracles` — the differential oracles over trace I/O,
  analysis and cache simulation;
* :mod:`repro.fuzz.faults` — :class:`FaultPlan` corruption of serialized
  traces (truncation, bit flips, header lies) plus netfs fault injection
  (dropped/duplicated RPCs, disk stalls) with a convergence check;
* :mod:`repro.fuzz.corpus` — the out-of-core corpus codec pillar:
  write-path equivalence, bit-exact segment round-trips,
  streamed-vs-in-RAM analyze/validate differentials, and
  :class:`CorpusFaultPlan` corruption schedules;
* :mod:`repro.fuzz.engines` — the vectorized-engine pillar: the numpy
  kernels of :mod:`repro.analysis.vectorized` (analyzer, validator,
  packed-stream compiler) versus their pure-Python twins, required
  bit-identical (skipped when numpy is not installed);
* :mod:`repro.fuzz.policies` — the replacement-policy pillar: every zoo
  policy (:mod:`repro.cache.replacement`) replayed through the full
  simulator and the packed replayer, the engine dispatcher's two legs,
  and a three-way arc/lru/2q no-reuse oracle, all bit-identical;
* :mod:`repro.fuzz.shrink` — ddmin-style reduction of failing event and
  op sequences, and the on-disk repro corpus;
* :mod:`repro.fuzz.runner` — the budgeted driver behind ``repro-fs
  fuzz``.
"""

from .corpus import (
    CorpusFaultPlan,
    check_corpus_all,
    check_corpus_corruption,
    check_corpus_roundtrip,
    check_corpus_streaming,
)
from .engines import check_engines
from .faults import FaultPlan, NetfsFaults
from .gen import SyscallOp, random_ops, random_trace
from .oracles import Divergence
from .policies import check_policies
from .runner import FuzzConfig, FuzzReport, run_fuzz

__all__ = [
    "CorpusFaultPlan",
    "Divergence",
    "FaultPlan",
    "FuzzConfig",
    "FuzzReport",
    "NetfsFaults",
    "SyscallOp",
    "check_corpus_all",
    "check_corpus_corruption",
    "check_corpus_roundtrip",
    "check_corpus_streaming",
    "check_engines",
    "check_policies",
    "random_ops",
    "random_trace",
    "run_fuzz",
]
