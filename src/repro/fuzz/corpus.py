"""Pillar 4: the out-of-core corpus codec under differential fire.

(Naming note: this module fuzzes ``repro.corpus`` — the sharded trace
container — which is unrelated to the fuzz harness's *repro corpus*
directory of shrunk failures.)

Three oracles, mirroring the standing claims of ``repro.corpus``:

* :func:`check_corpus_roundtrip` — the event-append and bulk-column
  write paths must emit byte-identical files, and reading back through
  zero-copy segment views must reproduce the original columns bit for
  bit (including event materialization straight off the mmap-style
  views);
* :func:`check_corpus_streaming` — the segment-streamed
  :func:`~repro.corpus.analyze_corpus` and
  :func:`~repro.corpus.validate_corpus` must agree field-for-field with
  the in-RAM ``analyze_onepass`` / ``validate_columns`` on the same
  data;
* :func:`check_corpus_corruption` — a :class:`CorpusFaultPlan` damages a
  pristine corpus.  Guaranteed-detection corruptions (truncation
  anywhere, bad magics, index lies) must raise a
  :class:`~repro.corpus.CorpusError`; and because every non-padding byte
  of the format is covered by some crc32 (header crc, per-segment crc,
  footer crc), a **single bit flip anywhere outside padding** must also
  be detected by open + :meth:`~repro.corpus.CorpusReader.verify` —
  there is no "well-formed different file" escape hatch like the flat
  binary format's.
"""

from __future__ import annotations

import dataclasses
import io
import random
import struct

from ..analysis.onepass import analyze_onepass
from ..corpus.format import CorpusError
from ..corpus.parallel import verify_segment_job
from ..corpus.reader import CorpusReader
from ..corpus.stream import analyze_corpus, validate_corpus
from ..corpus.writer import CorpusWriter
from ..trace.columns import TraceColumns
from ..trace.log import TraceLog
from ..trace.npview import numpy_available
from ..trace.validate import validate_columns

__all__ = [
    "CORPUS_SEGMENT_EVENTS",
    "CorpusFaultPlan",
    "check_corpus_all",
    "check_corpus_corruption",
    "check_corpus_roundtrip",
    "check_corpus_streaming",
]

#: Deliberately tiny, so every fuzzed trace spans several segments and
#: every segment boundary is a potential off-by-one.
CORPUS_SEGMENT_EVENTS = 32

_TRAILER_SIZE = struct.calcsize("<QQII8s")


def _pack_via_columns(cols: TraceColumns, segment_events: int) -> bytes:
    buf = io.BytesIO()
    with CorpusWriter(
        buf, name=cols.name, description=cols.description,
        segment_events=segment_events,
    ) as writer:
        writer.append_columns(cols)
    return buf.getvalue()


def _pack_via_events(log: TraceLog, segment_events: int) -> bytes:
    buf = io.BytesIO()
    with CorpusWriter(
        buf, name=log.name, description=log.description,
        segment_events=segment_events,
    ) as writer:
        writer.extend(log.events)
    return buf.getvalue()


def check_corpus_roundtrip(
    log: TraceLog, segment_events: int = CORPUS_SEGMENT_EVENTS
) -> str | None:
    """Write-path equivalence and bit-exact read-back (see module doc)."""
    cols = TraceColumns.from_log(log)
    by_columns = _pack_via_columns(cols, segment_events)
    by_events = _pack_via_events(log, segment_events)
    if by_columns != by_events:
        return (
            "CorpusWriter.append_columns and per-event append produced "
            "different bytes for the same trace"
        )
    with CorpusReader(by_columns) as reader:
        if (reader.name, reader.description) != (cols.name, cols.description):
            return "corpus round-trip lost the trace name/description"
        back = reader.to_columns()
        for column in ("kinds", "flags"):
            if getattr(back, column) != getattr(cols, column):
                return f"corpus round-trip changed the {column} column"
        for column in (
            "times", "open_ids", "file_ids", "user_ids", "sizes", "positions"
        ):
            if list(getattr(back, column)) != list(getattr(cols, column)):
                return f"corpus round-trip changed the {column} column"
        # Event materialization straight off the zero-copy segment views.
        streamed = list(reader.iter_events())
        if streamed != log.events:
            return (
                "events materialized from corpus segment views differ "
                "from the originals"
            )
        try:
            reader.verify()
        except CorpusError as exc:
            return f"freshly written corpus failed verify(): {exc}"
    return None


def check_corpus_streaming(
    log: TraceLog, segment_events: int = CORPUS_SEGMENT_EVENTS
) -> str | None:
    """Segment-streamed analyze/validate vs the in-RAM references."""
    cols = TraceColumns.from_log(log)
    data = _pack_via_columns(cols, segment_events)
    with CorpusReader(data) as reader:
        streamed = analyze_corpus(reader)
        in_ram = analyze_onepass(cols)
        for f in dataclasses.fields(in_ram):
            if getattr(streamed, f.name) != getattr(in_ram, f.name):
                return (
                    f"analyze_corpus disagrees with in-RAM analyze_onepass "
                    f"on {f.name}"
                )
        streamed_v = validate_corpus(reader)
        in_ram_v = validate_columns(cols)
        if (
            streamed_v.problems != in_ram_v.problems
            or streamed_v.event_count != in_ram_v.event_count
            or streamed_v.open_count != in_ram_v.open_count
            or streamed_v.unmatched_opens != in_ram_v.unmatched_opens
        ):
            return "validate_corpus disagrees with in-RAM validate_columns"
        # Engine differential: the per-segment footer re-derivation must
        # behave identically under the numpy scan and the python loop —
        # same "ok", or a CorpusError with the very same message.
        for index in range(reader.segment_count):
            seg = reader.segment(index)
            stat = reader.stats[index]
            outcomes = []
            engines = ("python", "numpy") if numpy_available() else ("python",)
            for engine in engines:
                try:
                    outcomes.append(verify_segment_job(seg, stat, index, engine))
                except CorpusError as exc:
                    outcomes.append(f"CorpusError: {exc}")
            if outcomes[0] != "ok":
                return (
                    f"verify_segment_job rejected a freshly written segment "
                    f"{index}: {outcomes[0]}"
                )
            if len(outcomes) == 2 and outcomes[0] != outcomes[1]:
                return (
                    f"verify_segment_job engines disagree on segment "
                    f"{index}: python={outcomes[0]!r} numpy={outcomes[1]!r}"
                )
    return None


def check_corpus_all(log: TraceLog) -> tuple[str, str] | None:
    """Both equivalence oracles; returns ("corpus", detail) or None."""
    detail = check_corpus_roundtrip(log)
    if detail is not None:
        return ("corpus", detail)
    detail = check_corpus_streaming(log)
    if detail is not None:
        return ("corpus", detail)
    return None


# -- corruption ----------------------------------------------------------------


def _covered_intervals(data: bytes) -> list[tuple[int, int]]:
    """Byte ranges of *data* covered by some crc32 (everything but padding
    and the trailer's self-describing fields)."""
    with CorpusReader(data) as reader:
        # header crc covers [0, first segment offset), padding included
        header_end = (
            reader.stats[0].offset if reader.stats else reader.footer_offset
        )
        intervals = [(0, header_end)]
        for stat in reader.stats:
            intervals.append((stat.offset, stat.offset + stat.data_bytes))
        # footer (crc-covered) + the trailer fields whose damage the
        # bounds/magic/sum checks catch deterministically
        intervals.append((reader.footer_offset, len(data)))
    return intervals


class CorpusFaultPlan:
    """A deterministic schedule of corruptions for one serialized corpus."""

    def __init__(self, seed: str, cases: int = 16):
        self.seed = seed
        self.cases = cases

    def corruptions(self, data: bytes):
        """Yield ``(label, corrupted_bytes)`` tuples.

        Every yielded corruption must be detected: the corpus format has
        no undetectable single-bit damage outside padding.
        """
        rng = random.Random(f"corpus-faults:{self.seed}")
        yield "empty file", b""
        yield "header magic damaged", bytes([data[0] ^ 0x40]) + data[1:]
        yield "end magic damaged", data[:-1] + bytes([data[-1] ^ 0x40])
        cut = rng.randint(1, len(data) - 1)
        yield f"truncated at byte {cut}", data[:cut]
        yield "trailer cut off", data[: len(data) - _TRAILER_SIZE]
        intervals = _covered_intervals(data)
        spans = [hi - lo for lo, hi in intervals]
        total = sum(spans)
        emitted = 5
        while emitted < self.cases and total:
            pick = rng.randrange(total)
            for (lo, hi), span in zip(intervals, spans):
                if pick < span:
                    at = lo + pick
                    break
                pick -= span
            bit = 1 << rng.randint(0, 7)
            flipped = bytearray(data)
            flipped[at] ^= bit
            yield f"bit {bit:#04x} flipped at byte {at}", bytes(flipped)
            emitted += 1


def check_corpus_corruption(
    log: TraceLog,
    plan: CorpusFaultPlan,
    segment_events: int = CORPUS_SEGMENT_EVENTS,
) -> tuple[str | None, int]:
    """Apply *plan* to *log*'s corpus serialization; (divergence, cases)."""
    pristine = _pack_via_columns(TraceColumns.from_log(log), segment_events)
    cases = 0
    for label, corrupted in plan.corruptions(pristine):
        cases += 1
        try:
            with CorpusReader(corrupted) as reader:
                reader.verify()
                reader.to_columns()
        except CorpusError:
            continue  # rejected with a diagnostic: the contract
        except Exception as exc:  # noqa: BLE001 - any crash is the finding
            return (
                f"reading a corrupted corpus ({label}) crashed with "
                f"{type(exc).__name__}: {exc}",
                cases,
            )
        return (
            f"CorpusReader accepted a corrupted corpus ({label}) that "
            "must be rejected",
            cases,
        )
    return None, cases
