"""Pillar 5: the vectorized engine vs the pure-Python reference.

Every numpy kernel in :mod:`repro.analysis.vectorized` claims
bit-identity with its pure-Python twin; this pillar is the machine check
of that claim on every seeded trace:

* :func:`~repro.analysis.onepass.analyze_onepass` with
  ``engine="numpy"`` vs ``engine="python"``, field for field including
  the users dict order — single-shot and chunk-fed (the corpus segment
  shape) at seed-chosen chunk sizes;
* :func:`~repro.trace.validate.validate_columns` on the clean trace
  *and* on a deterministically spoiled copy (mutations drawn from the
  round seed hit every problem family: time regressions, out-of-range
  and NaN times, unknown kinds, bad flag bytes, negative fields,
  duplicated open ids), at several ``max_problems`` including the
  suppression boundary;
* :func:`~repro.parallel.packed.pack_stream` with both engines, row for
  row, at two block sizes;
* the vectorized cache engine (:mod:`repro.parallel.veccache`) vs the
  one-pass stack oracle: the full miss/hit/eviction curve at
  seed-chosen cache sizes (small ones included — they maximize hole
  traffic), exact :class:`~repro.cache.metrics.CacheMetrics` per size,
  checkpoint snapshots and both simulator knobs; plus the batched
  write-through replay vs :func:`~repro.parallel.packed.simulate_packed`
  at one seed-chosen capacity.

Everything here is a no-op without numpy — the pillar checks an
equivalence, and with one side missing there is nothing to compare.
"""

from __future__ import annotations

import random
from array import array

from ..analysis.onepass import analyze_onepass
from ..cache.policies import WRITE_THROUGH
from ..cache.stream import build_stream
from ..parallel.packed import pack_stream, simulate_packed
from ..parallel.stack import simulate_stack
from ..parallel.veccache import simulate_packed_numpy, stack_curve_numpy
from ..trace.columns import KIND_CLOSE, KIND_OPEN, KIND_SEEK, TraceColumns
from ..trace.log import TraceLog
from ..trace.npview import numpy_available
from ..trace.validate import validate_columns

__all__ = ["check_engines", "check_engines_all"]

#: Every OnePassReport field with a == comparison (the lazy object
#: fields materialize on access, which is the point: the differential
#: must cover them too).
_REPORT_FIELDS = (
    "accesses",
    "transfers",
    "lifetimes",
    "activity",
    "sequentiality",
    "run_length_by_runs",
    "run_length_by_bytes",
    "open_times",
    "size_by_accesses",
    "size_by_bytes",
    "popularity",
    "users",
    "burstiness",
    "lifetime_by_files",
    "lifetime_by_bytes",
    "daemon_spike",
)

_PACK_BLOCK_SIZES = (4096, 100)


def _reports_differ(fast, ref, label: str) -> str | None:
    for name in _REPORT_FIELDS:
        if getattr(fast, name) != getattr(ref, name):
            return f"{label}: numpy engine disagrees on {name}"
    if list(fast.users) != list(ref.users):
        return f"{label}: numpy engine orders the users dict differently"
    return None


def _slice_columns(cols: TraceColumns, lo: int, hi: int) -> TraceColumns:
    return TraceColumns(
        name=cols.name,
        kinds=cols.kinds[lo:hi],
        times=cols.times[lo:hi],
        open_ids=cols.open_ids[lo:hi],
        file_ids=cols.file_ids[lo:hi],
        user_ids=cols.user_ids[lo:hi],
        sizes=cols.sizes[lo:hi],
        positions=cols.positions[lo:hi],
        flags=cols.flags[lo:hi],
    )


def _chunked_report(cols: TraceColumns, size: int):
    from ..analysis.vectorized import VectorizedCollector

    n = len(cols)
    start = cols.times[0] if n else 0.0
    duration = (cols.times[-1] - start) if n else 0.0
    collector = VectorizedCollector(cols.name, start, duration)
    for lo in range(0, n, size):
        collector.feed(_slice_columns(cols, lo, lo + size))
    return collector.finish()


def _spoiled_copy(cols: TraceColumns, rng: random.Random) -> TraceColumns:
    """A mutated clone covering every validator problem family."""
    out = TraceColumns(
        name=cols.name,
        kinds=bytearray(cols.kinds),
        times=array("d", cols.times),
        open_ids=array("q", cols.open_ids),
        file_ids=array("q", cols.file_ids),
        user_ids=array("q", cols.user_ids),
        sizes=array("q", cols.sizes),
        positions=array("q", cols.positions),
        flags=bytearray(cols.flags),
    )
    n = len(out)
    for _ in range(max(4, n // 4)):
        r = rng.randrange(n)
        choice = rng.randrange(12)
        if choice == 0:
            out.times[r] = -rng.random() * 10.0
        elif choice == 1:
            out.times[r] = 2.0**33
        elif choice == 2:
            out.times[r] = float("nan")
        elif choice == 3:
            out.kinds[r] = rng.randrange(100, 256)
        elif choice == 4:
            out.flags[r] = rng.randrange(1, 256)
        elif choice == 5:
            out.flags[r] = 0  # open rows: no mode bits
        elif choice == 6:
            out.sizes[r] = -rng.randrange(1, 100)
        elif choice == 7:
            out.positions[r] = -rng.randrange(1, 100)
        elif choice == 8:
            out.open_ids[r] = out.open_ids[rng.randrange(n)]
        elif choice == 9:
            out.kinds[r] = KIND_CLOSE
        elif choice == 10:
            out.kinds[r] = KIND_SEEK
        else:
            out.kinds[r] = KIND_OPEN
            out.positions[r] = out.sizes[r] + rng.randrange(1, 1000)
    for _ in range(max(2, n // 16)):
        r = rng.randrange(1, n) if n > 1 else 0
        out.times[r] = out.times[r - 1] - 1.0
    return out


def _validators_differ(cols: TraceColumns, max_problems: int, label: str) -> str | None:
    fast = validate_columns(cols, max_problems=max_problems, engine="numpy")
    ref = validate_columns(cols, max_problems=max_problems, engine="python")
    if fast != ref:
        return (
            f"{label}: numpy validator disagrees at "
            f"max_problems={max_problems} ({fast} vs {ref})"
        )
    return None


def check_engines(log: TraceLog, seed: str = "0") -> str | None:
    """Compare every vectorized kernel against its Python twin on *log*.

    Returns ``None`` (including when numpy is unavailable) or a
    first-divergence description.  Deterministic per ``(log, seed)``.
    """
    if not numpy_available():
        return None
    rng = random.Random(f"engines:{seed}")
    cols = TraceColumns.from_log(log)
    n = len(cols)

    # Analyzer: single shot, then chunk-fed like a segmented corpus.
    ref = analyze_onepass(cols, engine="python")
    detail = _reports_differ(analyze_onepass(cols, engine="numpy"), ref, "analyze")
    if detail is not None:
        return detail
    if n > 1:
        size = rng.randrange(1, n)
        detail = _reports_differ(
            _chunked_report(cols, size), ref, f"analyze[chunk={size}]"
        )
        if detail is not None:
            return detail

    # Validator: the clean trace, then a spoiled copy at several caps
    # (the spoiled run crosses the suppression boundary).
    detail = _validators_differ(cols, 50, "validate[clean]")
    if detail is not None:
        return detail
    if n:
        spoiled = _spoiled_copy(cols, rng)
        for max_problems in (1, 8, 50):
            detail = _validators_differ(
                spoiled, max_problems, "validate[spoiled]"
            )
            if detail is not None:
                return detail

    # Packed-stream compiler: row-for-row equality at two block sizes.
    stream = build_stream(log)
    for bs in _PACK_BLOCK_SIZES:
        fast = pack_stream(stream, bs, start_time=log.start_time, engine="numpy")
        ref_p = pack_stream(stream, bs, start_time=log.start_time, engine="python")
        if fast != ref_p:
            return f"pack_stream(block_size={bs}): numpy engine diverges"
        detail = _curves_differ(ref_p, rng, f"veccache[bs={bs}]")
        if detail is not None:
            return detail
    return None


def _curves_differ(packed, rng: random.Random, label: str) -> str | None:
    """The vectorized cache engine vs the stack/replay oracles."""
    from ..analysis.vectorized import VectorFallback

    bs = packed.block_size
    # Seed-chosen capacities, small ones first: a 1-2 block cache keeps
    # the stack boundary pointers inside the hole churn, which is where
    # the vectorized removal-sequence reconstruction can go wrong.
    caps = sorted({1, 2, rng.randrange(1, 64), rng.randrange(1, 2048)})
    sizes = tuple(c * bs for c in caps)
    knobs = {
        "read_elision": rng.random() < 0.5,
        "invalidate_on_delete": rng.random() < 0.5,
    }
    if rng.random() < 0.5 and len(packed.times):
        lo = packed.times[0]
        hi = packed.times[-1]
        knobs["checkpoint_time"] = lo + rng.random() * (hi - lo)
    ref = simulate_stack(packed, sizes, WRITE_THROUGH, **knobs)
    try:
        fast = stack_curve_numpy(packed, sizes, WRITE_THROUGH, **knobs)
    except VectorFallback:
        # The kernel declined this input (out-of-range keys); dispatch
        # would rerun the oracle, so there is nothing to compare.
        return None
    for size in sizes:
        if fast.metrics(size) != ref.metrics(size):
            return f"{label}: curve metrics diverge at {size} bytes"
        if fast.checkpoint(size) != ref.checkpoint(size):
            return f"{label}: curve checkpoint diverges at {size} bytes"
    cache_bytes = rng.choice(sizes)
    rep_ref = simulate_packed(
        packed,
        cache_bytes,
        WRITE_THROUGH,
        flush_epoch=packed.start_time,
        **knobs,
    )
    rep_fast = simulate_packed_numpy(
        packed,
        cache_bytes,
        WRITE_THROUGH,
        flush_epoch=packed.start_time,
        **knobs,
    )
    if rep_fast.metrics != rep_ref.metrics:
        return f"{label}: write-through replay diverges at {cache_bytes} bytes"
    if rep_fast.checkpoint != rep_ref.checkpoint:
        return f"{label}: write-through replay checkpoint diverges"
    return None


def check_engines_all(log: TraceLog, seed: str = "0") -> tuple[str, str] | None:
    """:func:`check_engines` in the runner's ``(pillar, detail)`` shape."""
    detail = check_engines(log, seed=seed)
    if detail is not None:
        return ("engine", detail)
    return None
