"""Pillar 3: fault injection — corrupt artifacts and lossy networks.

Two fault surfaces, both driven by deterministic seeded schedules:

**Trace-file corruption** (:class:`FaultPlan`).  A pristine serialized
trace is mutated — truncated mid-record, magic damaged, header count
inflated, or a single bit flipped — and both decode paths are run on
the result.  The contract has two tiers:

* *guaranteed-detection* corruptions (truncation, bad magic, count
  inflation, undefined flag bits) must be rejected by both readers with
  a :class:`~repro.trace.io_binary.BinaryTraceError` diagnostic — never
  a crash, never a silent success;
* *arbitrary bit flips* may decode (a flipped position bit yields a
  different but well-formed trace — undetectable in principle), but the
  two readers must agree: both reject, or both accept with identical
  events.  If exactly one side rejects, ``validate`` of the surviving
  side's result (raw columns for the columnar reader, so flag-byte
  damage is still visible) must report the damage — anything less is a
  divergence.  This tier has already paid for itself: it caught the
  columnar reader folding a flipped mode bit into the created/new-file
  flags and decoding a *clean-looking different trace*, and an
  ``OverflowError`` crash on set high bits of u64 fields.

**netfs faults** (:class:`NetfsFaults`).  Installed into a
:func:`~repro.netfs.simulator.simulate_netfs` run, drops the first
deliveries of selected RPCs (the retransmit timer recovers them),
re-delivers others (the server's duplicate-request cache absorbs them),
and stretches disk service times.  Because clients submit open-loop at
trace time, every *count* the clients produce is timing-independent —
:func:`check_netfs_convergence` asserts the faulty run converges to the
clean run's counters with zero RPC failures.
"""

from __future__ import annotations

import io
import random
import struct

from ..trace.io_binary import (
    MAGIC,
    BinaryTraceError,
    read_binary,
    read_binary_columns,
    write_binary,
)
from ..trace.log import TraceLog
from ..trace.validate import validate

__all__ = [
    "FaultPlan",
    "NetfsFaults",
    "check_corruption",
    "check_netfs_convergence",
]

_HEADER_STR = struct.Struct("<H")
_HEADER_COUNT = struct.Struct("<Q")


def _count_offset(data: bytes) -> int:
    """Byte offset of the header's u64 event count."""
    off = len(MAGIC)
    (name_len,) = _HEADER_STR.unpack_from(data, off)
    off += _HEADER_STR.size + name_len
    (desc_len,) = _HEADER_STR.unpack_from(data, off)
    off += _HEADER_STR.size + desc_len
    return off


class FaultPlan:
    """A deterministic schedule of corruptions for one serialized trace."""

    def __init__(self, seed: str, cases: int = 16):
        self.seed = seed
        self.cases = cases

    def corruptions(self, data: bytes):
        """Yield ``(label, corrupted_bytes, guaranteed)`` tuples.

        ``guaranteed`` marks corruptions every reader must reject;
        bit flips are checked for reader agreement instead.
        """
        rng = random.Random(f"faults:{self.seed}")
        count_at = _count_offset(data)
        body_start = count_at + _HEADER_COUNT.size

        yield "empty file", b"", True
        yield "magic damaged", bytes([data[0] ^ 0x40]) + data[1:], True
        if len(data) > body_start:
            cut = rng.randint(body_start, len(data) - 1)
            yield f"truncated at byte {cut}", data[:cut], True
            cut = rng.randint(1, body_start)
            yield f"truncated in header at byte {cut}", data[:cut], True
        (count,) = _HEADER_COUNT.unpack_from(data, count_at)
        for label, lie in (
            ("count inflated by one", count + 1),
            ("count inflated 1000x", (count + 1) * 1000),
            ("count inflated to 2^56", 1 << 56),
        ):
            yield (
                label,
                data[:count_at] + _HEADER_COUNT.pack(lie) + data[body_start:],
                True,
            )
        remaining = self.cases - 7
        for _ in range(max(remaining, 0)):
            if len(data) <= body_start:
                break
            at = rng.randint(body_start, len(data) - 1)
            bit = 1 << rng.randint(0, 7)
            flipped = bytearray(data)
            flipped[at] ^= bit
            yield f"bit {bit:#04x} flipped at byte {at}", bytes(flipped), False


def _decode_both(data: bytes):
    """Run both readers; returns ((events|None, error), (columns|None, error)).

    ``ValueError`` (which covers :class:`BinaryTraceError` and the
    ``UnicodeDecodeError`` a damaged name field raises) counts as a
    rejection-with-diagnostic.  Anything else — ``MemoryError`` from an
    unchecked allocation, say — propagates to the caller as a finding.
    The columnar side returns the raw :class:`TraceColumns` so the caller
    can validate the columns themselves (flag bytes included), not just
    their materialization.
    """
    try:
        event_log = read_binary(io.BytesIO(data))
        event_side = (event_log.events, None)
    except ValueError as exc:
        event_side = (None, exc)
    try:
        cols = read_binary_columns(io.BytesIO(data))
        col_side = (cols, None)
    except ValueError as exc:
        col_side = (None, exc)
    return event_side, col_side


def check_corruption(log: TraceLog, plan: FaultPlan) -> tuple[str | None, int]:
    """Apply *plan* to *log*'s serialization; returns (divergence, cases run)."""
    buf = io.BytesIO()
    write_binary(log, buf)
    pristine = buf.getvalue()
    cases = 0
    for label, corrupted, guaranteed in plan.corruptions(pristine):
        cases += 1
        try:
            (event_events, event_err), (col_cols, col_err) = _decode_both(corrupted)
        except Exception as exc:  # noqa: BLE001 - any crash is the finding
            return (
                f"decoding a corrupted trace ({label}) crashed with "
                f"{type(exc).__name__}: {exc}",
                cases,
            )
        if guaranteed:
            for reader, err in (("read_binary", event_err),
                                ("read_binary_columns", col_err)):
                if err is None:
                    return (
                        f"{reader} accepted a corrupted trace ({label}) "
                        "that must be rejected",
                        cases,
                    )
                if not isinstance(err, BinaryTraceError):
                    return (
                        f"{reader} rejected a corrupted trace ({label}) with "
                        f"{type(err).__name__} instead of a BinaryTraceError "
                        "diagnostic",
                        cases,
                    )
            continue
        # Bit flips: the two readers must tell the same story.
        if (event_err is None) and (col_err is None):
            try:
                materialized = col_cols.to_log().events
            except ValueError as exc:
                return (
                    f"read_binary_columns accepted a bit-flipped trace "
                    f"({label}) whose own to_log() then rejected it: {exc}",
                    cases,
                )
            if event_events != materialized:
                return (
                    f"readers disagree on a bit-flipped trace ({label}): "
                    "both accepted but decoded different events",
                    cases,
                )
            report = validate(TraceLog(name=log.name, events=event_events))
            _ = report.ok  # must complete without raising; verdict may be either
        elif (event_err is None) != (col_err is None):
            # One side rejected.  Both readers apply the same field checks
            # today, so this branch firing usually IS the finding — unless
            # the surviving side's validator can still see the damage
            # (validate dispatches TraceColumns to validate_columns, which
            # inspects the raw flag bytes the event reader never keeps).
            if event_err is None:
                report = validate(TraceLog(name=log.name, events=event_events))
            else:
                report = validate(col_cols)
            if report.ok:
                return (
                    f"readers disagree on a bit-flipped trace ({label}): one "
                    "rejected, the other accepted a trace validate calls clean",
                    cases,
                )
    return None, cases


# -- netfs fault injection -----------------------------------------------------


class _StallingDisk:
    """Wraps a :class:`~repro.disk.model.DiskModel`, stretching selected
    service times by a deterministic per-visit schedule."""

    def __init__(self, disk, rng: random.Random, stall_rate: float, stall_s: float):
        self._disk = disk
        self._rng = rng
        self._stall_rate = stall_rate
        self._stall_s = stall_s
        self.stalls_injected = 0

    def service_time(self, nbytes: int) -> float:
        base = self._disk.service_time(nbytes)
        if self._rng.random() < self._stall_rate:
            self.stalls_injected += 1
            return base + self._stall_s
        return base

    def __getattr__(self, name):
        return getattr(self._disk, name)


class NetfsFaults:
    """Deterministic RPC drops, duplicate deliveries and disk stalls.

    Passed to ``simulate_netfs(..., faults=...)``; :meth:`install` wraps
    the server's ``receive`` and disk model.  Drop decisions hash the
    ``rpc_id`` with the seed, so they are independent of delivery order;
    at most ``max_drops`` deliveries of one RPC are ever dropped, which
    stays below the RPC layer's retry limit — recovery is guaranteed.
    """

    def __init__(
        self,
        seed: int = 0,
        drop_rate: float = 0.15,
        dup_rate: float = 0.10,
        max_drops: int = 2,
        stall_rate: float = 0.10,
        stall_s: float = 0.02,
    ):
        self.seed = seed
        self.drop_rate = drop_rate
        self.dup_rate = dup_rate
        self.max_drops = max_drops
        self.stall_rate = stall_rate
        self.stall_s = stall_s
        self.drops_injected = 0
        self.dups_injected = 0
        self._deliveries: dict[int, int] = {}
        self._disk: _StallingDisk | None = None

    def _die(self, rpc_id: int, purpose: str) -> float:
        return random.Random(f"netfs:{self.seed}:{purpose}:{rpc_id}").random()

    @property
    def stalls_injected(self) -> int:
        return self._disk.stalls_injected if self._disk is not None else 0

    def install(self, server) -> None:
        """Interpose on *server*'s request intake and disk."""
        self._disk = _StallingDisk(
            server.disk,
            random.Random(f"netfs:{self.seed}:stall"),
            self.stall_rate,
            self.stall_s,
        )
        server.disk = self._disk
        real_receive = server.receive

        def receive(rpc) -> bool:
            seen = self._deliveries.get(rpc.rpc_id, 0)
            self._deliveries[rpc.rpc_id] = seen + 1
            if (
                seen < self.max_drops
                and self._die(rpc.rpc_id, "drop") < self.drop_rate
            ):
                # Lost on the wire: the sender's timer discovers it.
                self.drops_injected += 1
                return False
            if self._die(rpc.rpc_id, "dup") < self.dup_rate:
                # The frame arrives twice; the duplicate-request cache
                # must absorb the echo.
                self.dups_injected += 1
                real_receive(rpc)
            return real_receive(rpc)

        server.receive = receive


#: NetfsResult fields that cannot depend on timing: clients submit
#: open-loop at trace time, so everything they *count* (as opposed to
#: how long it took) is fixed by the trace alone.
_CONVERGENT_FIELDS = (
    "clients",
    "protocol",
    "requests",
    "local_hits",
    "rpcs",
)


def check_netfs_convergence(log: TraceLog, seed: int = 0, **fault_kwargs) -> str | None:
    """Clean run vs faulty run: same converged counters, zero failures."""
    from ..netfs.simulator import simulate_netfs

    clean = simulate_netfs(log, seed=seed)
    faults = NetfsFaults(seed=seed, **fault_kwargs)
    faulty = simulate_netfs(log, seed=seed, faults=faults)

    if faulty.failures:
        return (
            f"netfs faults caused {faulty.failures} RPC failure(s); bounded "
            "drops must always be recovered by retry/backoff"
        )
    for name in _CONVERGENT_FIELDS:
        a, b = getattr(clean, name), getattr(faulty, name)
        if a != b:
            return (
                f"netfs did not converge under faults: {name} is {a} clean "
                f"but {b} faulty"
            )
    if clean.client_metrics != faulty.client_metrics:
        return (
            "netfs did not converge under faults: client cache metrics "
            "differ between the clean and faulty runs"
        )
    if clean.consistency != faulty.consistency:
        return (
            "netfs did not converge under faults: consistency message "
            "counts differ between the clean and faulty runs"
        )
    if faults.drops_injected and faulty.retries < faults.drops_injected:
        return (
            f"{faults.drops_injected} deliveries dropped but only "
            f"{faulty.retries} retransmissions observed"
        )
    return None
