"""The shared input model: seeded generators for traces and syscalls.

Both halves of the harness draw from here.  The fuzzer feeds the
generators a ``random.Random`` seeded from the run seed, so every
failure is replayable from ``(seed, round)`` alone; the hypothesis
strategies in :func:`trace_strategy`/:func:`ops_strategy` map drawn
seeds through the *same* generators, so property tests and fuzzing
exercise one input distribution instead of two drifting ones.

:func:`random_trace` builds well-formed Table II event lists directly
(every trace it returns passes :func:`repro.trace.validate.validate`
and fits the binary format's field widths).  :func:`random_ops` builds
random-but-valid syscall sequences against a shadow namespace model;
:func:`apply_ops` executes them on a real traced
:class:`~repro.unixfs.filesystem.FileSystem`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..clock import Clock
from ..trace.log import TraceLog
from ..trace.records import (
    AccessMode,
    CloseEvent,
    CreateEvent,
    ExecEvent,
    OpenEvent,
    SeekEvent,
    TraceEvent,
    TruncateEvent,
    UnlinkEvent,
)
from ..unixfs.content import MemoryContentStore
from ..unixfs.errors import UnixFsError
from ..unixfs.filesystem import FileSystem, Whence
from ..unixfs.tracer import KernelTracer

__all__ = [
    "MAX_FILE_SIZE",
    "MAX_STEP_CS",
    "SyscallOp",
    "OpResult",
    "apply_ops",
    "ops_strategy",
    "random_ops",
    "random_trace",
    "trace_strategy",
]

#: Largest file size/position the generators produce.  Small enough that
#: cache simulations over a fuzzed trace stay fast, large enough to span
#: many 4 KB blocks.
MAX_FILE_SIZE = 1 << 22

#: Largest time step between consecutive events, in centiseconds (the
#: binary format's resolution).  Two seconds keeps fuzzed traces well
#: inside the u32 centisecond range at any budget.
MAX_STEP_CS = 200

_MODES = (AccessMode.READ, AccessMode.WRITE, AccessMode.READ_WRITE)


# -- random well-formed traces -------------------------------------------------


def random_trace(rng: random.Random, n_events: int, name: str = "fuzz") -> TraceLog:
    """A well-formed random trace of roughly *n_events* events.

    Maintains the tracer's invariants by construction: times are
    non-decreasing centiseconds, open ids are unique and referenced only
    while open, ``initial_pos <= size``, and positions are non-negative.
    Event mix and field distributions are arbitrary beyond that — the
    point is to reach states hand-written fixtures do not (backward
    seeks, zero-byte accesses, re-created files, opens left open at
    trace end, truncates racing opens).
    """
    events: list[TraceEvent] = []
    t_cs = 0
    next_open_id = 1
    next_file_id = 1
    files: dict[int, int] = {}  # file_id -> size hint
    opens: dict[int, int] = {}  # open_id -> file_id

    def tick() -> float:
        nonlocal t_cs
        t_cs += rng.randint(0, MAX_STEP_CS)
        return t_cs / 100.0

    def new_file_id() -> int:
        nonlocal next_file_id
        fid = next_file_id
        next_file_id += 1
        return fid

    def do_open() -> None:
        nonlocal next_open_id
        create = not files or rng.random() < 0.3
        if create:
            fid = new_file_id()
            size = 0
            created = True
            new_file = True
            if rng.random() < 0.5:
                # The creat() path logs a CreateEvent before its open.
                events.append(
                    CreateEvent(time=tick(), file_id=fid, user_id=rng.randint(0, 7))
                )
        else:
            fid = rng.choice(list(files))
            size = files[fid]
            created = rng.random() < 0.1  # O_TRUNC reuse
            new_file = False
            if created:
                size = 0
        initial_pos = size if rng.random() < 0.2 else 0  # append vs. plain
        oid = next_open_id
        next_open_id += 1
        events.append(
            OpenEvent(
                time=tick(),
                open_id=oid,
                file_id=fid,
                user_id=rng.randint(0, 7),
                size=size,
                mode=rng.choice(_MODES),
                created=created,
                new_file=new_file,
                initial_pos=initial_pos,
            )
        )
        files[fid] = size
        opens[oid] = fid

    def rand_pos(fid: int) -> int:
        size = files.get(fid, 0)
        limit = max(size * 2, 4 * 4096)
        pos = rng.randint(0, limit)
        return min(pos, MAX_FILE_SIZE)

    while len(events) < n_events:
        roll = rng.random()
        if roll < 0.30 or not opens:
            do_open()
        elif roll < 0.55:
            oid = rng.choice(list(opens))
            fid = opens[oid]
            events.append(
                SeekEvent(
                    time=tick(),
                    open_id=oid,
                    prev_pos=rand_pos(fid),
                    new_pos=rand_pos(fid),
                )
            )
        elif roll < 0.75:
            oid = rng.choice(list(opens))
            fid = opens.pop(oid)
            final = rand_pos(fid)
            if fid in files:  # the file may have been unlinked while open
                files[fid] = max(files[fid], final)
            events.append(CloseEvent(time=tick(), open_id=oid, final_pos=final))
        elif roll < 0.83 and files:
            fid = rng.choice(list(files))
            del files[fid]
            events.append(UnlinkEvent(time=tick(), file_id=fid))
        elif roll < 0.90 and files:
            fid = rng.choice(list(files))
            length = rng.randint(0, files[fid]) if files[fid] else 0
            files[fid] = length
            events.append(
                TruncateEvent(time=tick(), file_id=fid, new_length=length)
            )
        elif files:
            fid = rng.choice(list(files))
            events.append(
                ExecEvent(
                    time=tick(),
                    file_id=fid,
                    user_id=rng.randint(0, 7),
                    size=files[fid],
                )
            )
    # Close a random subset of the still-open ids; traces legitimately
    # end with files open, so some stay that way.
    for oid in list(opens):
        if rng.random() < 0.7:
            fid = opens.pop(oid)
            events.append(
                CloseEvent(time=tick(), open_id=oid, final_pos=rand_pos(fid))
            )
    return TraceLog(name=name, events=events)


# -- random valid syscall sequences --------------------------------------------

_OP_KINDS = (
    "open", "close", "read", "write", "lseek", "creat",
    "unlink", "truncate", "execve", "dup", "mkdir",
)


@dataclass(frozen=True, slots=True)
class SyscallOp:
    """One syscall in a fuzzed sequence (JSON-serializable for the corpus).

    ``fd_slot`` indexes the executor's list of live descriptors at the
    moment the op runs, so a shrunk sequence stays meaningful: dropping
    an earlier open shifts which descriptor a later op touches instead
    of dangling a hard-coded fd number.
    """

    kind: str
    path: str = ""
    fd_slot: int = 0
    mode: str = "r"
    uid: int = 0
    length: int = 0
    offset: int = 0
    whence: int = 0
    create: bool = False
    truncate: bool = False
    append: bool = False

    def to_json(self) -> dict:
        return {
            "kind": self.kind, "path": self.path, "fd_slot": self.fd_slot,
            "mode": self.mode, "uid": self.uid, "length": self.length,
            "offset": self.offset, "whence": self.whence,
            "create": self.create, "truncate": self.truncate,
            "append": self.append,
        }

    @classmethod
    def from_json(cls, data: dict) -> "SyscallOp":
        return cls(**data)


def random_ops(rng: random.Random, n_ops: int) -> list[SyscallOp]:
    """A random-but-valid syscall sequence of *n_ops* operations.

    Built against a shadow model of the namespace and descriptor table,
    so on a fresh file system every op succeeds.  (After shrinking the
    model no longer matches — :func:`apply_ops` tolerates the resulting
    ``UnixFsError``s.)
    """
    ops: list[SyscallOp] = []
    paths: list[str] = []  # regular files that exist in the shadow model
    dirs = ["/"]
    fd_modes: list[str] = []  # live descriptors, mirroring apply_ops's list
    next_name = 0

    def fresh_path() -> str:
        nonlocal next_name
        next_name += 1
        return f"{rng.choice(dirs)}/f{next_name}".replace("//", "/")

    while len(ops) < n_ops:
        roll = rng.random()
        if roll < 0.22 or (not paths and not fd_modes):
            path = fresh_path()
            if rng.random() < 0.5:
                ops.append(SyscallOp(kind="creat", path=path, uid=rng.randint(0, 7)))
                fd_modes.append("w")
            else:
                mode = rng.choice(("w", "rw"))
                ops.append(
                    SyscallOp(
                        kind="open",
                        path=path,
                        mode=mode,
                        uid=rng.randint(0, 7),
                        create=True,
                        append=rng.random() < 0.2,
                    )
                )
                fd_modes.append(mode)
            paths.append(path)
        elif roll < 0.32 and paths:
            mode = rng.choice(("r", "w", "rw"))
            ops.append(
                SyscallOp(
                    kind="open",
                    path=rng.choice(paths),
                    mode=mode,
                    uid=rng.randint(0, 7),
                    truncate=mode != "r" and rng.random() < 0.15,
                    append=rng.random() < 0.2,
                )
            )
            fd_modes.append(mode)
        elif roll < 0.47 and fd_modes:
            # Pick a descriptor, then an operation its mode permits.
            slot = rng.randrange(len(fd_modes))
            mode = fd_modes[slot]
            kind = {"r": "read", "w": "write"}.get(
                mode, rng.choice(("read", "write"))
            )
            ops.append(
                SyscallOp(
                    kind=kind,
                    fd_slot=slot,
                    length=rng.choice((0, 1, 511, 4096, 4097, 65536)),
                )
            )
        elif roll < 0.57 and fd_modes:
            ops.append(
                SyscallOp(
                    kind="lseek",
                    fd_slot=rng.randrange(len(fd_modes)),
                    offset=rng.randint(0, MAX_FILE_SIZE // 64),
                    whence=int(rng.choice((Whence.SET, Whence.SET, Whence.CUR))),
                )
            )
        elif roll < 0.70 and fd_modes:
            slot = rng.randrange(len(fd_modes))
            ops.append(SyscallOp(kind="close", fd_slot=slot))
            fd_modes.pop(slot)
        elif roll < 0.76 and paths:
            path = rng.choice(paths)
            paths.remove(path)
            ops.append(SyscallOp(kind="unlink", path=path))
        elif roll < 0.82 and paths:
            ops.append(
                SyscallOp(
                    kind="truncate",
                    path=rng.choice(paths),
                    length=rng.choice((0, 1, 4096, 10_000)),
                )
            )
        elif roll < 0.88 and paths:
            ops.append(
                SyscallOp(
                    kind="execve", path=rng.choice(paths), uid=rng.randint(0, 7)
                )
            )
        elif roll < 0.93 and fd_modes:
            slot = rng.randrange(len(fd_modes))
            ops.append(SyscallOp(kind="dup", fd_slot=slot))
            fd_modes.append(fd_modes[slot])
        else:
            path = f"{rng.choice(dirs)}/d{len(dirs)}".replace("//", "/")
            ops.append(SyscallOp(kind="mkdir", path=path))
            dirs.append(path)
    return ops


@dataclass
class OpResult:
    """What :func:`apply_ops` hands back."""

    fs: FileSystem
    tracer: KernelTracer
    executed: int = 0
    skipped: int = 0  # ops that raised UnixFsError (legal after shrinking)
    open_fds: list[int] = field(default_factory=list)


def apply_ops(
    ops: list[SyscallOp],
    on_step=None,
    clock_step: float = 0.25,
) -> OpResult:
    """Execute *ops* on a fresh traced file system.

    ``on_step(result, op)`` is called after every executed op — the
    replay oracle hooks in there.  Ops that no longer apply (their file
    vanished during shrinking, say) raise :class:`UnixFsError` and are
    counted as skipped; any *other* exception propagates, because a
    crash in the syscall layer is itself a finding.
    """
    clock = Clock()
    tracer = KernelTracer(name="fuzz-ops")
    fs = FileSystem(clock=clock, tracer=tracer, content=MemoryContentStore())
    result = OpResult(fs=fs, tracer=tracer)
    fds = result.open_fds
    for op in ops:
        clock.advance(clock_step)
        try:
            if op.kind == "open":
                fd = fs.open(
                    op.path,
                    AccessMode.from_label(op.mode),
                    uid=op.uid,
                    create=op.create,
                    truncate=op.truncate,
                    append=op.append,
                )
                fds.append(fd)
            elif op.kind == "creat":
                fds.append(fs.creat(op.path, uid=op.uid))
            elif op.kind == "close":
                if not fds:
                    result.skipped += 1
                    continue
                fs.close(fds.pop(op.fd_slot % len(fds)))
            elif op.kind == "read":
                if not fds:
                    result.skipped += 1
                    continue
                fs.read(fds[op.fd_slot % len(fds)], op.length)
            elif op.kind == "write":
                if not fds:
                    result.skipped += 1
                    continue
                fs.write(fds[op.fd_slot % len(fds)], op.length)
            elif op.kind == "lseek":
                if not fds:
                    result.skipped += 1
                    continue
                fs.lseek(fds[op.fd_slot % len(fds)], op.offset, Whence(op.whence))
            elif op.kind == "unlink":
                fs.unlink(op.path)
            elif op.kind == "truncate":
                fs.truncate(op.path, op.length)
            elif op.kind == "execve":
                fs.execve(op.path, uid=op.uid)
            elif op.kind == "dup":
                if not fds:
                    result.skipped += 1
                    continue
                fds.append(fs.dup(fds[op.fd_slot % len(fds)]))
            elif op.kind == "mkdir":
                fs.makedirs(op.path)
            else:
                raise ValueError(f"unknown op kind {op.kind!r}")
        except UnixFsError:
            result.skipped += 1
            continue
        result.executed += 1
        if on_step is not None:
            on_step(result, op)
    return result


# -- hypothesis strategies (lazy import: src never requires hypothesis) --------


def trace_strategy(min_events: int = 1, max_events: int = 80):
    """A hypothesis strategy yielding :func:`random_trace` outputs.

    Drawing a seed and mapping it through the generator keeps property
    tests and the fuzzer on one input model; hypothesis shrinks over the
    (seed, size) pair rather than the event list, which is coarse but
    faithful — any failure it finds is a plain ``random_trace`` output
    the fuzzer's own ddmin shrinker can then minimize.
    """
    from hypothesis import strategies as st

    return st.builds(
        lambda seed, n: random_trace(random.Random(f"trace:{seed}"), n),
        st.integers(min_value=0, max_value=2**48),
        st.integers(min_value=min_events, max_value=max_events),
    )


def ops_strategy(min_ops: int = 1, max_ops: int = 60):
    """A hypothesis strategy yielding :func:`random_ops` outputs."""
    from hypothesis import strategies as st

    return st.builds(
        lambda seed, n: random_ops(random.Random(f"ops:{seed}"), n),
        st.integers(min_value=0, max_value=2**48),
        st.integers(min_value=min_ops, max_value=max_ops),
    )
