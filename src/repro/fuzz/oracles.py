"""Pillar 2: differential oracles over serialization, analysis, caching.

Each oracle takes a trace and returns ``None`` or a first-divergence
description.  They are the machine-checked versions of the repo's
standing bit-identical claims:

* event writer vs columnar writer (byte-for-byte), and both readers
  round-tripping to the original events (:func:`check_io`);
* :func:`~repro.analysis.onepass.analyze_onepass` vs the nine
  per-module reference analyses, field for field (:func:`check_analysis`);
* :class:`~repro.cache.simulator.BlockCacheSimulator` vs
  :func:`~repro.parallel.packed.simulate_packed` across write policies,
  and vs :func:`~repro.parallel.stack.simulate_stack` under
  write-through (:func:`check_cache`).
"""

from __future__ import annotations

import dataclasses
import io
from dataclasses import dataclass, field

from ..analysis.accesses import iter_transfers, reconstruct_accesses
from ..analysis.activity import analyze_activity
from ..analysis.burstiness import analyze_burstiness
from ..analysis.lifetimes import (
    collect_lifetimes,
    daemon_spike_fraction,
    lifetime_cdfs,
)
from ..analysis.onepass import analyze_onepass
from ..analysis.opentimes import open_time_cdf
from ..analysis.popularity import analyze_popularity
from ..analysis.sequentiality import analyze_sequentiality, run_length_cdfs
from ..analysis.sizes import file_size_cdfs
from ..analysis.users import per_user_summary
from ..cache.policies import DELAYED_WRITE, FLUSH_30S, WRITE_THROUGH
from ..cache.simulator import BlockCacheSimulator
from ..cache.stream import build_stream
from ..parallel.packed import pack_stream, simulate_packed
from ..parallel.stack import simulate_stack
from ..trace.columns import TraceColumns
from ..trace.io_binary import read_binary, read_binary_columns, write_binary, \
    write_binary_columns
from ..trace.io_text import read_text, write_text
from ..trace.log import TraceLog

__all__ = [
    "Divergence",
    "canonicalize_times",
    "check_all",
    "check_analysis",
    "check_cache",
    "check_io",
]

#: Cache sizes the cache oracle sweeps — one smaller than most fuzzed
#: working sets (evictions happen) and one larger (they mostly don't).
ORACLE_CACHE_SIZES = (64 * 1024, 1024 * 1024)

ORACLE_BLOCK_SIZE = 4096

_ORACLE_POLICIES = (WRITE_THROUGH, FLUSH_30S, DELAYED_WRITE)


@dataclass
class Divergence:
    """One confirmed failure, as reported and written to the corpus."""

    pillar: str  # "replay" | "io" | "analysis" | "cache" | "fault" | "corpus" | "netfs" | "engine"
    detail: str
    seed: str = ""  # generator seed string that produced the input
    shrunk_events: int | None = None  # repro size after shrinking
    shrunk_ops: int | None = None
    corpus_entry: str | None = None  # basename of the written repro, if any
    extra: dict = field(default_factory=dict)

    def summary(self) -> str:
        parts = [f"[{self.pillar}] {self.detail}"]
        if self.seed:
            parts.append(f"seed={self.seed}")
        if self.shrunk_events is not None:
            parts.append(f"shrunk to {self.shrunk_events} events")
        if self.shrunk_ops is not None:
            parts.append(f"shrunk to {self.shrunk_ops} ops")
        if self.corpus_entry:
            parts.append(f"repro={self.corpus_entry}")
        return "; ".join(parts)


# -- serialization -------------------------------------------------------------


def canonicalize_times(log: TraceLog) -> TraceLog:
    """Rewrite event times into the binary format's ``cs / 100.0`` floats.

    The kernel tracer quantizes with ``round(t / 0.01) * 0.01``, which for
    ~14% of centisecond values differs from ``cs / 100.0`` in the last
    bit (0.01 is not a binary fraction).  The byte-level round-trip
    oracle needs times the format can represent exactly, so kernel
    traces pass through here first; :func:`repro.fuzz.gen.random_trace`
    output is already canonical.
    """
    events = [
        dataclasses.replace(event, time=round(event.time * 100) / 100.0)
        for event in log.events
    ]
    return TraceLog(name=log.name, description=log.description, events=events)


def check_io(log: TraceLog) -> str | None:
    """Binary event vs columnar writers, all readers, and the text format."""
    event_buf = io.BytesIO()
    write_binary(log, event_buf)
    event_bytes = event_buf.getvalue()

    cols = TraceColumns.from_log(log)
    col_buf = io.BytesIO()
    write_binary_columns(cols, col_buf)
    col_bytes = col_buf.getvalue()

    if event_bytes != col_bytes:
        at = next(
            (i for i, (a, b) in enumerate(zip(event_bytes, col_bytes)) if a != b),
            min(len(event_bytes), len(col_bytes)),
        )
        return (
            f"event and columnar writers diverge at byte {at} "
            f"({len(event_bytes)} vs {len(col_bytes)} bytes total)"
        )

    decoded = read_binary(io.BytesIO(event_bytes))
    if decoded.events != log.events:
        at = _first_event_mismatch(decoded.events, log.events)
        return f"read_binary round trip differs at event {at}"
    if (decoded.name, decoded.description) != (log.name, log.description):
        return "read_binary round trip lost the trace name/description"

    decoded_cols = read_binary_columns(io.BytesIO(event_bytes))
    from_cols = decoded_cols.to_log()
    if from_cols.events != log.events:
        at = _first_event_mismatch(from_cols.events, log.events)
        return f"read_binary_columns round trip differs at event {at}"

    text_buf = io.StringIO()
    write_text(log, text_buf)
    text_buf.seek(0)
    from_text = read_text(text_buf)
    if from_text.events != log.events:
        at = _first_event_mismatch(from_text.events, log.events)
        return f"text round trip differs at event {at}"
    return None


def _first_event_mismatch(a: list, b: list) -> int:
    for i, (x, y) in enumerate(zip(a, b)):
        if x != y:
            return i
    return min(len(a), len(b))


# -- analysis ------------------------------------------------------------------


def check_analysis(log: TraceLog) -> str | None:
    """The fused one-pass analyzer vs every per-module reference, both on
    the event log and on its columnar view."""
    for source_label, source in (("events", log), ("columns", TraceColumns.from_log(log))):
        r = analyze_onepass(source)
        lifetimes = collect_lifetimes(log)
        pairs = (
            ("accesses", r.accesses, reconstruct_accesses(log)),
            ("transfers", r.transfers, list(iter_transfers(log))),
            ("lifetimes", r.lifetimes, lifetimes),
            ("activity", r.activity, analyze_activity(log)),
            ("sequentiality", r.sequentiality, analyze_sequentiality(log)),
            (
                "run_length_cdfs",
                (r.run_length_by_runs, r.run_length_by_bytes),
                run_length_cdfs(log),
            ),
            ("open_times", r.open_times, open_time_cdf(log)),
            (
                "file_size_cdfs",
                (r.size_by_accesses, r.size_by_bytes),
                file_size_cdfs(log),
            ),
            ("popularity", r.popularity, analyze_popularity(log)),
            ("users", r.users, per_user_summary(log)),
            ("burstiness", r.burstiness, analyze_burstiness(log)),
            (
                "lifetime_cdfs",
                (r.lifetime_by_files, r.lifetime_by_bytes),
                lifetime_cdfs(log),
            ),
            ("daemon_spike", r.daemon_spike, daemon_spike_fraction(lifetimes)),
        )
        for name, fused, reference in pairs:
            if fused != reference:
                return (
                    f"analyze_onepass({source_label}) disagrees with the "
                    f"{name} reference"
                )
        if list(r.users) != list(per_user_summary(log)):
            return (
                f"analyze_onepass({source_label}) users dict ordered "
                "differently from per_user_summary"
            )
    return None


# -- cache simulation ----------------------------------------------------------


def check_cache(
    log: TraceLog,
    cache_sizes: tuple[int, ...] = ORACLE_CACHE_SIZES,
    block_size: int = ORACLE_BLOCK_SIZE,
) -> str | None:
    """Reference simulator vs packed replayer vs LRU stack."""
    stream = build_stream(log)
    packed = pack_stream(stream, block_size, start_time=log.start_time)
    for policy in _ORACLE_POLICIES:
        for cache_bytes in cache_sizes:
            ref = BlockCacheSimulator(
                cache_bytes=cache_bytes, block_size=block_size, policy=policy
            )
            ref.run(stream, flush_epoch=log.start_time)
            fast = simulate_packed(
                packed, cache_bytes, policy, flush_epoch=log.start_time
            )
            if ref.metrics != fast.metrics:
                return (
                    f"simulate_packed diverges from BlockCacheSimulator "
                    f"(policy={policy.label}, cache={cache_bytes}): "
                    f"{_metrics_diff(ref.metrics, fast.metrics)}"
                )
    curve = simulate_stack(packed, cache_sizes)
    for cache_bytes in cache_sizes:
        ref = BlockCacheSimulator(
            cache_bytes=cache_bytes, block_size=block_size, policy=WRITE_THROUGH
        )
        ref.run(stream, flush_epoch=log.start_time)
        stacked = curve.metrics(cache_bytes)
        if ref.metrics != stacked:
            return (
                f"simulate_stack diverges from BlockCacheSimulator "
                f"(write-through, cache={cache_bytes}): "
                f"{_metrics_diff(ref.metrics, stacked)}"
            )
    return None


def _metrics_diff(a, b) -> str:
    fields = (
        "read_accesses", "write_accesses", "disk_reads", "disk_writes",
        "evictions", "invalidated_blocks", "dirty_blocks_created",
        "dirty_blocks_discarded", "read_elisions",
    )
    for name in fields:
        left, right = getattr(a, name), getattr(b, name)
        if left != right:
            return f"{name} {left} vs {right}"
    return "metrics differ"


def check_all(log: TraceLog) -> tuple[str, str] | None:
    """Run every trace-level oracle; returns (pillar, detail) or None."""
    detail = check_io(log)
    if detail is not None:
        return ("io", detail)
    detail = check_analysis(log)
    if detail is not None:
        return ("analysis", detail)
    detail = check_cache(log)
    if detail is not None:
        return ("cache", detail)
    return None
