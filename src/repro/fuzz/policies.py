"""Pillar 6: the replacement-policy zoo differential.

The policy objects in :mod:`repro.cache.replacement` are driven by two
independent hosts — the full :class:`~repro.cache.simulator.BlockCacheSimulator`
(tuple keys, entry records, residency hooks) and the packed replayer
(:func:`~repro.parallel.packed.simulate_packed`, int keys, flat
bookkeeping).  Their contract is bit-identical
:class:`~repro.cache.metrics.CacheMetrics` for *every* zoo policy, not
just the paper's LRU.  This pillar is the machine check:

* for each registered policy, replay the seeded trace through both
  hosts at seed-chosen capacities, write policies and semantics knobs
  (checkpoint included) — metrics and checkpoint snapshots must match
  field for field;
* the engine dispatcher (:func:`~repro.parallel.veccache.replay_packed`)
  must answer identically under ``engine="numpy"`` and
  ``engine="python"`` — the numpy kernel either serves the LRU
  write-through curve exactly or declines and the oracle reruns, so a
  difference means a dispatch bug, not an approximation;
* a three-way sanity oracle: on a no-reuse workload (every key touched
  once) ARC, LRU and 2Q must produce *identical* metrics — with no
  reuse there is nothing for adaptivity or ghost lists to exploit, so
  any difference is a bookkeeping bug in one of the fancier policies.
"""

from __future__ import annotations

import random
from array import array

from ..cache.policies import DELAYED_WRITE, FLUSH_30S, WRITE_THROUGH
from ..cache.replacement import REPLACEMENT_NAMES
from ..cache.simulator import BlockCacheSimulator
from ..cache.stream import build_stream
from ..parallel.packed import OP_READ, PackedStream, pack_stream, simulate_packed
from ..parallel.veccache import replay_packed
from ..trace.log import TraceLog
from ..trace.npview import numpy_available

__all__ = ["check_policies", "check_policies_all"]

_WRITE_POLICIES = (WRITE_THROUGH, FLUSH_30S, DELAYED_WRITE)

_BLOCK_SIZE = 4096

#: The no-reuse oracle's policy trio (adaptive vs plain vs scan-resistant).
_TRIO = ("arc", "lru", "2q")


def _no_reuse_stream(rng: random.Random) -> PackedStream:
    """A packed stream of distinct single-read keys (no reuse at all)."""
    n = 48 + rng.randrange(48)
    keys = array("q", [(i << 8) | (i % 7) for i in range(n)])
    times = array("d", [float(i) for i in range(n)])
    return PackedStream(
        block_size=_BLOCK_SIZE,
        start_time=0.0,
        ops=bytes([OP_READ]) * n,
        keys=keys,
        times=times,
        n_accesses=n,
    )


def check_policies(log: TraceLog, seed: str = "0") -> str | None:
    """Differential-test every replacement policy on *log*.

    Returns ``None`` or a first-divergence description.  Deterministic
    per ``(log, seed)``.
    """
    rng = random.Random(f"policies:{seed}")
    stream = build_stream(log)
    packed = pack_stream(stream, _BLOCK_SIZE, start_time=log.start_time)
    # Seed-chosen capacities, tiny ones first: a 1-2 block cache keeps
    # every policy's victim logic (CLOCK's hand, ARC's REPLACE, 2Q's
    # A1in drain) under constant pressure.
    caps = sorted({1, 2, rng.randrange(1, 64), rng.randrange(1, 512)})
    knobs = {
        "read_elision": rng.random() < 0.5,
        "invalidate_on_delete": rng.random() < 0.5,
    }
    checkpoint_time = None
    if rng.random() < 0.5 and len(packed.times):
        lo = packed.times[0]
        hi = packed.times[-1]
        checkpoint_time = lo + rng.random() * (hi - lo)
    for name in REPLACEMENT_NAMES:
        for cap in caps:
            cache_bytes = cap * _BLOCK_SIZE
            write_policy = _WRITE_POLICIES[rng.randrange(len(_WRITE_POLICIES))]
            label = f"policy[{name},{write_policy.label},cap={cap}]"
            sim = BlockCacheSimulator(
                cache_bytes,
                _BLOCK_SIZE,
                write_policy,
                replacement=name,
                **knobs,
            )
            sim.run(
                stream,
                checkpoint_time=checkpoint_time,
                flush_epoch=log.start_time,
            )
            run = simulate_packed(
                packed,
                cache_bytes,
                write_policy,
                replacement=name,
                checkpoint_time=checkpoint_time,
                flush_epoch=log.start_time,
                **knobs,
            )
            if run.metrics != sim.metrics:
                return f"{label}: packed replay diverges from the full simulator"
            if run.checkpoint != sim.checkpoint:
                return f"{label}: packed replay checkpoint diverges"
            if numpy_available():
                fast = replay_packed(
                    packed,
                    cache_bytes,
                    write_policy,
                    replacement=name,
                    checkpoint_time=checkpoint_time,
                    flush_epoch=log.start_time,
                    engine="numpy",
                    **knobs,
                )
                if fast.metrics != run.metrics:
                    return f"{label}: numpy engine dispatch diverges"
                if fast.checkpoint != run.checkpoint:
                    return f"{label}: numpy engine checkpoint diverges"
    # Three-way no-reuse oracle: nothing to adapt to, so the adaptive
    # policies must collapse onto plain LRU's numbers exactly.
    no_reuse = _no_reuse_stream(rng)
    cache_bytes = (1 + rng.randrange(16)) * _BLOCK_SIZE
    runs = {
        name: simulate_packed(
            no_reuse, cache_bytes, WRITE_THROUGH, replacement=name
        ).metrics
        for name in _TRIO
    }
    if not (runs["arc"] == runs["lru"] == runs["2q"]):
        return (
            f"policy[no-reuse,cap={cache_bytes // _BLOCK_SIZE}]: "
            "arc/lru/2q metrics differ on a reuse-free workload"
        )
    return None


def check_policies_all(log: TraceLog, seed: str = "0") -> tuple[str, str] | None:
    """:func:`check_policies` in the runner's ``(pillar, detail)`` shape."""
    detail = check_policies(log, seed=seed)
    if detail is not None:
        return ("policy", detail)
    return None
