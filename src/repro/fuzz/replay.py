"""Pillar 1: the kernel's trace must replay to the kernel's own state.

The paper's tracer records no reads or writes — positions at open, seek
and close are the whole story.  That makes byte conservation checkable
exactly: between two position-recording events a descriptor's offset
moves only forward (reads and writes advance it; any other movement is
an lseek, which is traced), so at every step

    bytes moved through an open  ==  runs already billed by its trace
                                     events
                                  +  (current offset - last recorded
                                     position)

and at close the two sides must meet exactly.  :class:`ReplayChecker`
maintains the right-hand side incrementally from the emitted events —
O(live opens) per syscall, so it runs after *every* fuzzed step — and a
periodic full check layers on :func:`repro.trace.validate.validate`,
:func:`repro.analysis.accesses.reconstruct_accesses` and
:func:`repro.unixfs.check.fsck`.
"""

from __future__ import annotations

from ..analysis.accesses import reconstruct_accesses
from ..trace.log import TraceLog
from ..trace.records import CloseEvent, OpenEvent, SeekEvent
from ..trace.validate import validate
from ..unixfs.check import fsck
from ..unixfs.fdtable import OpenFile
from ..unixfs.filesystem import FileSystem

__all__ = ["ReplayChecker"]


class ReplayChecker:
    """Incremental trace-vs-kernel oracle for one fuzzed file system."""

    def __init__(self, fs: FileSystem, log: TraceLog):
        self.fs = fs
        self.log = log
        self._scanned = 0  # events already folded into the mirror
        self._last_pos: dict[int, int] = {}  # open_id -> last recorded position
        self._billed: dict[int, int] = {}  # open_id -> bytes billed so far
        self._entries: dict[int, OpenFile] = {}  # open_id -> live entry
        self._closed_billed = 0  # total billed at closes (round summary)
        self._closed_opens = 0

    def note_entry(self, entry: OpenFile) -> None:
        """Register a freshly opened descriptor's table entry."""
        self._entries[entry.open_id] = entry

    # -- per-step check ---------------------------------------------------------

    def check_step(self) -> str | None:
        """Fold new trace events in; return a divergence description or None."""
        events = self.log.events
        for i in range(self._scanned, len(events)):
            event = events[i]
            if isinstance(event, OpenEvent):
                if event.open_id in self._last_pos:
                    return f"open_id {event.open_id} traced open twice"
                self._last_pos[event.open_id] = event.initial_pos
                self._billed[event.open_id] = 0
            elif isinstance(event, SeekEvent):
                last = self._last_pos.get(event.open_id)
                if last is None:
                    return f"seek traced on unknown open_id {event.open_id}"
                self._billed[event.open_id] += max(0, event.prev_pos - last)
                self._last_pos[event.open_id] = event.new_pos
            elif isinstance(event, CloseEvent):
                last = self._last_pos.pop(event.open_id, None)
                if last is None:
                    return f"close traced on unknown open_id {event.open_id}"
                billed = self._billed.pop(event.open_id) + max(
                    0, event.final_pos - last
                )
                entry = self._entries.pop(event.open_id, None)
                if entry is None:
                    return f"close traced for untracked open_id {event.open_id}"
                actual = entry.bytes_read + entry.bytes_written
                if billed != actual:
                    return (
                        f"open_id {event.open_id}: trace bills {billed} bytes "
                        f"but the kernel moved {actual}"
                    )
                self._closed_billed += billed
                self._closed_opens += 1
        self._scanned = len(events)

        # Live opens: the trace-so-far plus untraced forward motion must
        # account for every byte moved.
        for open_id, entry in self._entries.items():
            last = self._last_pos.get(open_id)
            if last is None:
                return f"open_id {open_id} live in the kernel but closed in the trace"
            actual = entry.bytes_read + entry.bytes_written
            expected = self._billed[open_id] + (entry.offset - last)
            if entry.offset < last:
                return (
                    f"open_id {open_id}: offset {entry.offset} behind the last "
                    f"traced position {last} with no seek event"
                )
            if actual != expected:
                return (
                    f"open_id {open_id}: kernel moved {actual} bytes but trace "
                    f"accounts for {expected} "
                    f"(billed {self._billed[open_id]}, offset {entry.offset}, "
                    f"last recorded {last})"
                )
        return None

    # -- periodic / end-of-round check ------------------------------------------

    def check_full(self) -> str | None:
        """Validator + access reconstruction + fsck over the whole state."""
        step = self.check_step()
        if step is not None:
            return step
        report = validate(self.log)
        if not report.ok:
            return f"kernel trace fails validate: {report.problems[0]}"
        accesses = reconstruct_accesses(self.log)
        reconstructed = sum(a.bytes_transferred for a in accesses)
        if len(accesses) != self._closed_opens:
            return (
                f"reconstruct_accesses found {len(accesses)} closed accesses "
                f"but the kernel closed {self._closed_opens}"
            )
        if reconstructed != self._closed_billed:
            return (
                f"reconstruct_accesses bills {reconstructed} bytes for closed "
                f"accesses but the incremental mirror billed {self._closed_billed}"
            )
        fsck_report = fsck(self.fs)
        if not fsck_report.ok:
            return f"fsck not clean: {fsck_report.problems[0]}"
        return None
