"""The fuzz driver behind ``repro-fs fuzz``.

One *round* = one seeded burst through all six pillars:

1. generate a random-but-valid syscall sequence, execute it on a fresh
   traced kernel with the :class:`~repro.fuzz.replay.ReplayChecker`
   running after every step, a full validate+reconstruct+fsck check at
   the end;
2. run the differential oracles (I/O, analysis, cache) on the kernel's
   own trace *and* on an independently generated random well-formed
   trace (which exercises event shapes the kernel never emits —
   CreateEvents, orphan closes survive slicing, etc.);
3. corrupt the synthetic trace's serialization per the round's
   :class:`~repro.fuzz.faults.FaultPlan`, and periodically run the netfs
   fault-convergence check;
4. shard the synthetic trace through the out-of-core corpus codec
   (:mod:`repro.fuzz.corpus`): write-path equivalence, bit-exact
   read-back, streamed-vs-in-RAM analyze/validate, and a
   :class:`~repro.fuzz.corpus.CorpusFaultPlan` corruption schedule;
5. compare the vectorized (numpy) analysis engine against its
   pure-Python twin on the synthetic trace (:mod:`repro.fuzz.engines`):
   analyzer, validator (clean and spoiled), and packed-stream compiler,
   all required bit-identical.  Skipped when numpy is not installed.
6. replay the synthetic trace through every replacement policy in the
   zoo (:mod:`repro.fuzz.policies`): the packed replayer vs the full
   simulator, the engine dispatcher's two legs, and the three-way
   arc/lru/2q no-reuse oracle — all required bit-identical.

Every round is a pure function of ``(seed, round_index)``, so any
failure is replayable; failures are ddmin-shrunk to a minimal event
list or op list and written to the corpus, which later runs replay
first.  The budget counts work items (syscalls executed, events pushed
through oracles, corruption cases) so ``--budget 2000`` means the same
amount of fuzzing on any machine; ``--time-budget`` additionally stops
at a wall-clock deadline for CI jobs.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable

from ..trace.log import TraceLog
from ..trace.npview import numpy_available
from .corpus import CorpusFaultPlan, check_corpus_all, check_corpus_corruption
from .engines import check_engines_all
from .faults import FaultPlan, check_corruption, check_netfs_convergence
from .gen import SyscallOp, apply_ops, random_ops, random_trace
from .oracles import Divergence, canonicalize_times, check_all
from .policies import check_policies_all
from .replay import ReplayChecker
from .shrink import ddmin, replay_corpus, write_corpus_entry

__all__ = ["FuzzConfig", "FuzzReport", "run_fuzz"]

#: Work items per round, split across the pillars.
OPS_PER_ROUND = 120
EVENTS_PER_ROUND = 120
CORRUPTIONS_PER_ROUND = 16

#: Run the (comparatively slow) netfs convergence oracle every N rounds.
NETFS_EVERY = 8

#: Full validate+fsck cadence during pillar 1, in executed ops.
FULL_CHECK_EVERY = 16


@dataclass
class FuzzConfig:
    """Knobs of one fuzz run (mirrors the CLI flags)."""

    seed: int = 0
    budget: int = 1000
    corpus: str | None = None
    time_budget: float | None = None


@dataclass
class FuzzReport:
    """What a fuzz run did and found."""

    seed: int = 0
    rounds: int = 0
    steps: int = 0  # work items consumed against the budget
    ops_executed: int = 0
    events_checked: int = 0
    corruption_cases: int = 0
    corpus_events: int = 0
    corpus_corruptions: int = 0
    netfs_checks: int = 0
    engine_events: int = 0
    policy_events: int = 0
    corpus_replayed: int = 0
    divergences: list[Divergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.divergences)} divergence(s)"
        return (
            f"fuzz: {status}; seed {self.seed}, {self.rounds} rounds, "
            f"{self.steps} steps ({self.ops_executed} syscalls, "
            f"{self.events_checked} events through oracles, "
            f"{self.corruption_cases} corruptions, "
            f"{self.corpus_events} events through the corpus codec, "
            f"{self.corpus_corruptions} corpus corruptions, "
            f"{self.netfs_checks} netfs convergence runs, "
            f"{self.engine_events} events through the engine differential, "
            f"{self.policy_events} events through the policy zoo, "
            f"{self.corpus_replayed} corpus repros replayed)"
        )


def _check_ops(ops: list[SyscallOp]) -> tuple[str, str] | None:
    """Run one op sequence through the kernel with the replay oracle."""
    failure: list[tuple[str, str]] = []

    def on_step(result, op) -> None:
        if failure:
            return
        if checker[0] is None:
            checker[0] = ReplayChecker(result.fs, result.tracer.log)
        chk = checker[0]
        for entry in result.fs.fds.open_files():
            chk.note_entry(entry)
        if result.executed % FULL_CHECK_EVERY == 0:
            detail = chk.check_full()
        else:
            detail = chk.check_step()
        if detail is not None:
            failure.append(("replay", detail))

    checker: list[ReplayChecker | None] = [None]
    result = apply_ops(ops, on_step=on_step)
    if failure:
        return failure[0]
    if checker[0] is not None:
        detail = checker[0].check_full()
        if detail is not None:
            return ("replay", detail)
    # The kernel's own trace must satisfy the differential oracles too.
    kernel_log = canonicalize_times(result.tracer.log)
    return check_all(kernel_log)


def _shrink_ops(
    ops: list[SyscallOp], pillar: str
) -> tuple[list[SyscallOp], str]:
    def still_fails(candidate: list[SyscallOp]) -> bool:
        result = _check_ops(candidate)
        return result is not None and result[0] == pillar

    shrunk = ddmin(ops, still_fails)
    result = _check_ops(shrunk)
    detail = result[1] if result is not None else "shrunk repro stopped failing"
    return shrunk, detail


def _shrink_events(
    events: list, pillar: str, check: Callable = check_all
) -> tuple[list, str]:
    def still_fails(candidate: list) -> bool:
        result = check(TraceLog(name="shrink", events=candidate))
        return result is not None and result[0] == pillar

    shrunk = ddmin(events, still_fails)
    result = check(TraceLog(name="shrink", events=shrunk))
    detail = result[1] if result is not None else "shrunk repro stopped failing"
    return shrunk, detail


def run_fuzz(
    config: FuzzConfig,
    progress: Callable[[str], None] | None = None,
) -> FuzzReport:
    """Run the full harness until the budget (or deadline) is spent."""
    report = FuzzReport(seed=config.seed)
    say = progress if progress is not None else lambda _msg: None
    deadline = None
    if config.time_budget is not None:
        # Wall-clock deadline for CI jobs; the fuzzed inputs themselves
        # remain pure functions of (seed, round).
        deadline = time.monotonic() + config.time_budget  # repro: allow[REP-D001] -- CI budget knob, never reaches generated inputs

    def out_of_budget() -> bool:
        if report.steps >= config.budget:
            return True
        return deadline is not None and time.monotonic() > deadline  # repro: allow[REP-D001] -- CI budget knob, never reaches generated inputs

    # -- corpus first: yesterday's repros are today's regression tests ----------
    if config.corpus:
        replayed, failing = replay_corpus(
            config.corpus,
            check_events=lambda log: (
                check_all(canonicalize_times(log))
                or check_corpus_all(canonicalize_times(log))
                or check_engines_all(canonicalize_times(log))
                or check_policies_all(canonicalize_times(log))
            ),
            check_ops=_check_ops,
        )
        report.corpus_replayed = replayed
        for name, pillar, detail in failing:
            report.divergences.append(
                Divergence(
                    pillar=pillar,
                    detail=detail,
                    seed=f"corpus:{name}",
                    corpus_entry=name,
                )
            )
        if replayed:
            say(
                f"corpus: {replayed} repro(s) replayed, "
                f"{len(failing)} still failing"
            )

    # -- rounds ------------------------------------------------------------------
    round_index = 0
    while not out_of_budget():
        round_index += 1
        report.rounds = round_index
        round_seed = f"{config.seed}:{round_index}"

        # Pillar 1: syscall fuzzing under the replay oracle.
        ops = random_ops(random.Random(f"ops:{round_seed}"), OPS_PER_ROUND)
        result = _check_ops(ops)
        report.ops_executed += len(ops)
        report.steps += len(ops)
        if result is not None:
            pillar, detail = result
            say(f"round {round_index}: FAIL [{pillar}] {detail}; shrinking ...")
            shrunk, detail = _shrink_ops(ops, pillar)
            entry = None
            if config.corpus:
                entry = write_corpus_entry(
                    config.corpus,
                    name=f"ops-{config.seed}-{round_index}",
                    pillar=pillar,
                    detail=detail,
                    seed=round_seed,
                    ops=shrunk,
                )
            report.divergences.append(
                Divergence(
                    pillar=pillar,
                    detail=detail,
                    seed=round_seed,
                    shrunk_ops=len(shrunk),
                    corpus_entry=entry,
                )
            )

        if out_of_budget():
            break

        # Pillar 2: differential oracles on an independent synthetic trace.
        synthetic = random_trace(
            random.Random(f"trace:{round_seed}"), EVENTS_PER_ROUND
        )
        result = check_all(synthetic)
        report.events_checked += len(synthetic.events)
        report.steps += len(synthetic.events)
        if result is not None:
            pillar, detail = result
            say(f"round {round_index}: FAIL [{pillar}] {detail}; shrinking ...")
            shrunk, detail = _shrink_events(list(synthetic.events), pillar)
            entry = None
            if config.corpus:
                entry = write_corpus_entry(
                    config.corpus,
                    name=f"trace-{config.seed}-{round_index}",
                    pillar=pillar,
                    detail=detail,
                    seed=round_seed,
                    events=shrunk,
                )
            report.divergences.append(
                Divergence(
                    pillar=pillar,
                    detail=detail,
                    seed=round_seed,
                    shrunk_events=len(shrunk),
                    corpus_entry=entry,
                )
            )

        # Pillar 3: corrupted artifacts must be rejected, not crash.
        plan = FaultPlan(seed=round_seed, cases=CORRUPTIONS_PER_ROUND)
        detail, cases = check_corruption(synthetic, plan)
        report.corruption_cases += cases
        report.steps += cases
        if detail is not None:
            entry = None
            if config.corpus:
                entry = write_corpus_entry(
                    config.corpus,
                    name=f"fault-{config.seed}-{round_index}",
                    pillar="fault",
                    detail=detail,
                    seed=round_seed,
                    events=list(synthetic.events),
                )
            report.divergences.append(
                Divergence(
                    pillar="fault",
                    detail=detail,
                    seed=round_seed,
                    corpus_entry=entry,
                )
            )

        # Pillar 4: the out-of-core corpus codec, on the same synthetic
        # trace — write-path equivalence, streamed-vs-in-RAM
        # differentials, then its own corruption schedule.
        result = check_corpus_all(synthetic)
        report.corpus_events += len(synthetic.events)
        report.steps += len(synthetic.events)
        if result is not None:
            pillar, detail = result
            say(f"round {round_index}: FAIL [{pillar}] {detail}; shrinking ...")
            shrunk, detail = _shrink_events(
                list(synthetic.events), pillar, check=check_corpus_all
            )
            entry = None
            if config.corpus:
                entry = write_corpus_entry(
                    config.corpus,
                    name=f"corpus-{config.seed}-{round_index}",
                    pillar=pillar,
                    detail=detail,
                    seed=round_seed,
                    events=shrunk,
                )
            report.divergences.append(
                Divergence(
                    pillar=pillar,
                    detail=detail,
                    seed=round_seed,
                    shrunk_events=len(shrunk),
                    corpus_entry=entry,
                )
            )

        corpus_plan = CorpusFaultPlan(seed=round_seed, cases=CORRUPTIONS_PER_ROUND)
        detail, cases = check_corpus_corruption(synthetic, corpus_plan)
        report.corpus_corruptions += cases
        report.steps += cases
        if detail is not None:
            entry = None
            if config.corpus:
                entry = write_corpus_entry(
                    config.corpus,
                    name=f"corpus-fault-{config.seed}-{round_index}",
                    pillar="corpus",
                    detail=detail,
                    seed=round_seed,
                    events=list(synthetic.events),
                )
            report.divergences.append(
                Divergence(
                    pillar="corpus",
                    detail=detail,
                    seed=round_seed,
                    corpus_entry=entry,
                )
            )

        # Pillar 5: the vectorized engine vs the pure-Python reference,
        # on the same synthetic trace (no-op without numpy — there is
        # nothing to compare against).
        if numpy_available():
            check = lambda log: check_engines_all(log, seed=round_seed)  # noqa: E731
            result = check(synthetic)
            report.engine_events += len(synthetic.events)
            report.steps += len(synthetic.events)
            if result is not None:
                pillar, detail = result
                say(
                    f"round {round_index}: FAIL [{pillar}] {detail}; shrinking ..."
                )
                shrunk, detail = _shrink_events(
                    list(synthetic.events), pillar, check=check
                )
                entry = None
                if config.corpus:
                    entry = write_corpus_entry(
                        config.corpus,
                        name=f"engine-{config.seed}-{round_index}",
                        pillar=pillar,
                        detail=detail,
                        seed=round_seed,
                        events=shrunk,
                    )
                report.divergences.append(
                    Divergence(
                        pillar=pillar,
                        detail=detail,
                        seed=round_seed,
                        shrunk_events=len(shrunk),
                        corpus_entry=entry,
                    )
                )

        # Pillar 6: the replacement-policy zoo — every policy replayed
        # through the full simulator and the packed replayer (plus the
        # engine dispatcher and the no-reuse arc/lru/2q oracle).
        policy_check = lambda log: check_policies_all(log, seed=round_seed)  # noqa: E731
        result = policy_check(synthetic)
        report.policy_events += len(synthetic.events)
        report.steps += len(synthetic.events)
        if result is not None:
            pillar, detail = result
            say(f"round {round_index}: FAIL [{pillar}] {detail}; shrinking ...")
            shrunk, detail = _shrink_events(
                list(synthetic.events), pillar, check=policy_check
            )
            entry = None
            if config.corpus:
                entry = write_corpus_entry(
                    config.corpus,
                    name=f"policy-{config.seed}-{round_index}",
                    pillar=pillar,
                    detail=detail,
                    seed=round_seed,
                    events=shrunk,
                )
            report.divergences.append(
                Divergence(
                    pillar=pillar,
                    detail=detail,
                    seed=round_seed,
                    shrunk_events=len(shrunk),
                    corpus_entry=entry,
                )
            )

        # Pillar 3, network half: lossy RPC must converge (periodically —
        # the event-loop run is the most expensive oracle here).
        if round_index % NETFS_EVERY == 1:
            detail = check_netfs_convergence(synthetic, seed=config.seed)
            report.netfs_checks += 1
            report.steps += len(synthetic.events)
            if detail is not None:
                report.divergences.append(
                    Divergence(pillar="netfs", detail=detail, seed=round_seed)
                )

        if round_index % 10 == 0:
            say(
                f"round {round_index}: {report.steps}/{config.budget} steps, "
                f"{len(report.divergences)} divergence(s)"
            )

    say(report.summary())
    return report
