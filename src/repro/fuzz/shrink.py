"""Shrinking and the repro corpus.

:func:`ddmin` is the classic delta-debugging loop over a sequence:
remove ever-smaller chunks (halving granularity, bisection-style) while
the caller's predicate still reports the *same* failure, then retry
single elements until a pass removes nothing.  The predicate receives a
candidate subsequence and must return True only when the original
oracle still fails for the original reason — dropping events can break
trace well-formedness, and a differently-failing trace is a different
bug, not a smaller repro.

The corpus is a flat directory: each entry is a ``<name>.json``
metadata file plus, for event repros, a ``<name>.btrace`` binary trace.
:func:`replay_corpus` loads every entry and re-runs its oracle —
repros found on earlier runs are the first thing a new run checks.
"""

from __future__ import annotations

import json
import os
from typing import Callable, Sequence

from ..trace.io_binary import read_binary, write_binary
from ..trace.log import TraceLog
from .gen import SyscallOp

__all__ = ["ddmin", "load_corpus", "replay_corpus", "write_corpus_entry"]


def ddmin(items: Sequence, still_fails: Callable[[list], bool]) -> list:
    """Minimize *items* under *still_fails* (which must hold for *items*)."""
    current = list(items)
    chunk = max(len(current) // 2, 1)
    while chunk >= 1:
        removed_any = True
        while removed_any and len(current) > 1:
            removed_any = False
            start = 0
            while start < len(current):
                candidate = current[:start] + current[start + chunk:]
                if candidate and still_fails(candidate):
                    current = candidate
                    removed_any = True
                else:
                    start += chunk
        if chunk == 1:
            break
        chunk //= 2
    return current


# -- corpus --------------------------------------------------------------------


def write_corpus_entry(
    corpus: str,
    name: str,
    pillar: str,
    detail: str,
    seed: str,
    events: list | None = None,
    ops: list[SyscallOp] | None = None,
) -> str:
    """Write one repro; returns the entry's basename."""
    os.makedirs(corpus, exist_ok=True)
    meta = {"pillar": pillar, "detail": detail, "seed": seed}
    if events is not None:
        log = TraceLog(name=name, events=list(events))
        write_binary(log, os.path.join(corpus, f"{name}.btrace"))
        meta["trace"] = f"{name}.btrace"
    if ops is not None:
        meta["ops"] = [op.to_json() for op in ops]
    with open(os.path.join(corpus, f"{name}.json"), "w", encoding="utf-8") as fh:
        json.dump(meta, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return name


def load_corpus(corpus: str) -> list[dict]:
    """Load every corpus entry's metadata (and its trace, if any)."""
    entries = []
    if not corpus or not os.path.isdir(corpus):
        return entries
    for fname in sorted(os.listdir(corpus)):
        if not fname.endswith(".json"):
            continue
        path = os.path.join(corpus, fname)
        with open(path, encoding="utf-8") as fh:
            meta = json.load(fh)
        meta["name"] = fname[: -len(".json")]
        if "trace" in meta:
            meta["log"] = read_binary(os.path.join(corpus, meta["trace"]))
        if "ops" in meta:
            meta["op_list"] = [SyscallOp.from_json(op) for op in meta["ops"]]
        entries.append(meta)
    return entries


def replay_corpus(
    corpus: str,
    check_events: Callable[[TraceLog], tuple[str, str] | None],
    check_ops: Callable[[list[SyscallOp]], tuple[str, str] | None],
) -> tuple[int, list[tuple[str, str, str]]]:
    """Re-run every stored repro; returns (replayed, still-failing list).

    Each still-failing item is ``(entry name, pillar, detail)``.  Entries
    that now pass are left in place — they document fixed bugs and cost
    one replay each.
    """
    replayed = 0
    failing: list[tuple[str, str, str]] = []
    for entry in load_corpus(corpus):
        replayed += 1
        if "log" in entry:
            result = check_events(entry["log"])
            if result is not None:
                failing.append((entry["name"], result[0], result[1]))
        if "op_list" in entry:
            result = check_ops(entry["op_list"])
            if result is not None:
                failing.append((entry["name"], result[0], result[1]))
    return replayed, failing
