"""repro.netfs — a discrete-event network file service simulator.

The counting layers (:mod:`repro.cache.twolevel`) answer the paper's
diskless-workstation question in blocks; this package answers it in
seconds: per-workstation client caches in front of an RPC layer, a
shared 10 Mbit Ethernet with FIFO contention, a file server with a
bounded request queue and a :class:`repro.disk.DiskModel` behind its
cache, and two pluggable cache-consistency protocols
(write-through-with-callbacks and Sprite-style ownership leases) whose
control messages are billed on the wire.

Entry point::

    from repro.netfs import simulate_netfs

    result = simulate_netfs(trace, clients=8, protocol="ownership")
    print(result.render())
"""

from .client import Workstation
from .consistency import (
    PROTOCOLS,
    ConsistencyProtocol,
    OwnershipLeases,
    WriteThroughCallbacks,
)
from .events import EventHandle, EventLoop
from .metrics import LatencySampler, LatencySummary, NetfsResult, QueueTracker
from .network import TEN_MBIT, Ethernet, EthernetModel
from .rpc import Rpc, RpcConfig, RpcLayer
from .server import FileServer
from .simulator import simulate_netfs

__all__ = [
    "EventLoop",
    "EventHandle",
    "Ethernet",
    "EthernetModel",
    "TEN_MBIT",
    "Rpc",
    "RpcConfig",
    "RpcLayer",
    "FileServer",
    "Workstation",
    "ConsistencyProtocol",
    "WriteThroughCallbacks",
    "OwnershipLeases",
    "PROTOCOLS",
    "LatencySampler",
    "LatencySummary",
    "QueueTracker",
    "NetfsResult",
    "simulate_netfs",
]
