"""One diskless workstation.

A workstation owns a private block cache (the same
:class:`BlockCacheSimulator` the counting layers use, under the write
policy its consistency protocol dictates) and turns each billed transfer
from the trace into zero, one or two RPCs:

* a read miss fetches the missing blocks from the server (payload on the
  reply);
* a write-back ships dirty blocks to the server (payload on the
  request) — every written block under write-through, eviction victims
  under delayed-write.

A request's latency runs from its trace arrival to the completion of its
last RPC; a request the cache absorbs entirely costs only the local
overhead.  The request stream is open-loop — requests arrive when the
trace says they did, regardless of how far behind the server is — so a
saturated resource shows up as unbounded queueing rather than politely
throttled input, which is the honest failure mode for sizing questions.
"""

from __future__ import annotations

from ..analysis.accesses import Transfer
from ..cache.simulator import BlockCacheSimulator
from .consistency import ConsistencyProtocol
from .events import EventLoop
from .metrics import LatencySampler
from .rpc import Rpc, RpcLayer

__all__ = ["Workstation"]


class Workstation:
    """A client cache plus the RPC plumbing behind it."""

    def __init__(
        self,
        client_id: int,
        loop: EventLoop,
        rpc_layer: RpcLayer,
        protocol: ConsistencyProtocol,
        cache_bytes: int,
        block_size: int = 4096,
        local_overhead_s: float = 0.0002,
    ):
        self.client_id = client_id
        self.loop = loop
        self.rpc_layer = rpc_layer
        self.protocol = protocol
        self.block_size = block_size
        self.local_overhead_s = local_overhead_s
        self.cache = BlockCacheSimulator(
            cache_bytes=cache_bytes,
            block_size=block_size,
            policy=protocol.client_policy,
        )
        self.requests = 0
        self.local_hits = 0
        self.failed_requests = 0
        self.latencies = LatencySampler()

    # -- consistency hooks -----------------------------------------------------

    def drop_file(self, file_id: int, from_byte: int = 0) -> None:
        """Invalidate our cached copy (callback / lease revocation)."""
        self.cache.drop_file(file_id, from_byte, now=self.loop.now)

    def flush_file(self, file_id: int) -> int:
        """Write out our dirty blocks of *file_id*; returns block count."""
        return self.cache.flush_file(file_id)

    # -- the request path ------------------------------------------------------

    def submit(self, item: Transfer) -> None:
        """One billed transfer arrives from the trace, now."""
        arrived = self.loop.now
        self.requests += 1
        if item.is_write:
            self.protocol.note_write(self.client_id, item.file_id)
        else:
            self.protocol.note_read(self.client_id, item.file_id)

        before_reads = self.cache.metrics.disk_reads
        before_writes = self.cache.metrics.disk_writes
        self.cache.run([item])
        fetched = self.cache.metrics.disk_reads - before_reads
        written_back = self.cache.metrics.disk_writes - before_writes

        if not fetched and not written_back:
            self.local_hits += 1
            self.latencies.add(self.local_overhead_s)
            return

        # Mirror twolevel's range-capping: misses lie inside the item's
        # range, so bill contiguous runs from its first block.
        first = item.start // self.block_size
        outstanding = {"count": 0, "failed": False}

        def done(rpc: Rpc, ok: bool) -> None:
            if not ok:
                outstanding["failed"] = True
            outstanding["count"] -= 1
            if outstanding["count"] == 0:
                if outstanding["failed"]:
                    self.failed_requests += 1
                self.latencies.add(self.loop.now - arrived + self.local_overhead_s)

        if fetched:
            outstanding["count"] += 1
        if written_back:
            outstanding["count"] += 1
        if fetched:
            self.rpc_layer.call(
                client_id=self.client_id,
                file_id=item.file_id,
                start=first * self.block_size,
                end=(first + fetched) * self.block_size,
                is_write=False,
                on_done=done,
            )
        if written_back:
            self.rpc_layer.call(
                client_id=self.client_id,
                file_id=item.file_id,
                start=first * self.block_size,
                end=(first + written_back) * self.block_size,
                is_write=True,
                on_done=done,
            )
