"""Cache-consistency protocols for the network file service.

The paper explicitly punted ("we did not consider the problems of cache
consistency"), and `repro.cache.twolevel` inherited the punt: it
broadcasts invalidations to every client cache for free.  Here the
messages are real — each control message is a minimum-size frame on the
shared Ethernet — and two protocols from the paper's direct descendants
are pluggable:

* **write-through-with-callbacks** — clients write through to the
  server, which tracks who caches each file and sends a callback
  (invalidation) to every other cacher on each write.  This is what
  ``twolevel``'s free broadcast silently assumed, now with its traffic
  billed.  (AFS-style callbacks over NFS-style write-through.)
* **ownership** — Sprite-flavoured invalidate leases: the server grants
  a client *write ownership* of a file; the owner writes locally
  (delayed-write) with no per-write traffic.  When another client
  accesses the file the server recalls the lease — the owner flushes its
  dirty blocks back and the copies of concurrent readers are
  invalidated.  Single-writer workloads pay one grant instead of a
  message per write.

Grants piggybacked on a data reply cost no extra frame; dedicated
messages (callbacks, invalidates, recalls, grants on transfer) each cost
one control frame.  Both protocols share the server-side directory of
which client caches which file.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from ..cache.policies import DELAYED_WRITE, WRITE_THROUGH, PolicySpec
from .events import EventLoop
from .network import Ethernet

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from .client import Workstation

__all__ = [
    "ConsistencyProtocol",
    "WriteThroughCallbacks",
    "OwnershipLeases",
    "PROTOCOLS",
]

#: Size of one dedicated consistency control message (header-only frame).
CONTROL_FRAME_BYTES = 96


class ConsistencyProtocol:
    """Shared machinery: the who-caches-what directory and control frames."""

    name: str = "abstract"
    #: Write policy the protocol imposes on client caches.
    client_policy: PolicySpec = WRITE_THROUGH

    def __init__(self, loop: EventLoop, ether: Ethernet):
        self.loop = loop
        self.ether = ether
        #: client_id -> Workstation, filled in by the simulator.
        self.clients: dict[int, "Workstation"] = {}
        #: file_id -> {client_id: None} (an ordered set: dict keys).
        self.cachers: dict[int, dict[int, None]] = {}
        #: Message counts by kind.
        self.counts: dict[str, int] = {}
        #: Called with (client_id, file_id, blocks) when a lease recall
        #: forces a flush; the simulator turns it into a write RPC.
        self.issue_writeback: Callable[[int, int, int], None] | None = None

    def _control(self, kind: str) -> None:
        """One dedicated control frame on the wire."""
        self.counts[kind] = self.counts.get(kind, 0) + 1
        self.ether.send(self.loop.now, CONTROL_FRAME_BYTES)

    def _drop(self, client_id: int, file_id: int, from_byte: int = 0) -> None:
        ws = self.clients.get(client_id)
        if ws is not None:
            ws.drop_file(file_id, from_byte)

    def _flush(self, client_id: int, file_id: int) -> None:
        ws = self.clients.get(client_id)
        if ws is None:
            return
        blocks = ws.flush_file(file_id)
        if blocks and self.issue_writeback is not None:
            self.issue_writeback(client_id, file_id, blocks)

    # -- hooks the workstation calls before touching its cache ----------------

    def note_read(self, client_id: int, file_id: int) -> None:
        raise NotImplementedError

    def note_write(self, client_id: int, file_id: int) -> None:
        raise NotImplementedError

    def note_invalidation(self, file_id: int, from_byte: int = 0) -> None:
        """A file died (unlink/truncate): every cached copy is stale."""
        for client_id in list(self.cachers.get(file_id, ())):
            self._control("invalidate")
            self._drop(client_id, file_id, from_byte)
        if from_byte == 0:
            self.cachers.pop(file_id, None)


class WriteThroughCallbacks(ConsistencyProtocol):
    """Write-through clients; the server calls back every other cacher."""

    name = "callbacks"
    client_policy = WRITE_THROUGH

    def note_read(self, client_id: int, file_id: int) -> None:
        # Callback promise piggybacks on the read reply: no extra frame.
        self.cachers.setdefault(file_id, {})[client_id] = None

    def note_write(self, client_id: int, file_id: int) -> None:
        holders = self.cachers.setdefault(file_id, {})
        for other in [c for c in holders if c != client_id]:
            self._control("callback")
            self._drop(other, file_id)
            del holders[other]
        holders[client_id] = None


class OwnershipLeases(ConsistencyProtocol):
    """Sprite-style leases: one writer owns the file, others are recalled."""

    name = "ownership"
    client_policy = DELAYED_WRITE

    def __init__(self, loop: EventLoop, ether: Ethernet):
        super().__init__(loop, ether)
        #: file_id -> owning client_id (only while write-owned).
        self.owner: dict[int, int] = {}

    def _recall(self, file_id: int) -> None:
        owner = self.owner.pop(file_id, None)
        if owner is None:
            return
        self._control("recall")
        self._flush(owner, file_id)

    def note_read(self, client_id: int, file_id: int) -> None:
        if self.owner.get(file_id) not in (None, client_id):
            # Someone else owns it dirty: recall so the server can serve
            # current data.  The old owner keeps a clean read copy.
            self._recall(file_id)
        self.cachers.setdefault(file_id, {})[client_id] = None

    def note_write(self, client_id: int, file_id: int) -> None:
        if self.owner.get(file_id) == client_id:
            return  # free: the whole point of the lease
        self._recall(file_id)
        holders = self.cachers.setdefault(file_id, {})
        for other in [c for c in holders if c != client_id]:
            self._control("invalidate")
            self._drop(other, file_id)
            del holders[other]
        self._control("grant")
        self.owner[file_id] = client_id
        holders[client_id] = None

    def note_invalidation(self, file_id: int, from_byte: int = 0) -> None:
        if from_byte == 0:
            self.owner.pop(file_id, None)
        super().note_invalidation(file_id, from_byte)


PROTOCOLS: dict[str, type[ConsistencyProtocol]] = {
    WriteThroughCallbacks.name: WriteThroughCallbacks,
    OwnershipLeases.name: OwnershipLeases,
}
