"""A heap-based discrete-event loop.

The rest of the repository replays traces *atemporally* — counters move,
the clock is just a timestamp carried on each record.  The network file
service cannot be simulated that way: queueing delay at the Ethernet and
at the server depends on what else is in flight *right now*.  This module
supplies the missing machinery: a classic discrete-event engine driving
the same :class:`repro.clock.Clock` the workload engine uses, so netfs
time and trace time share one axis.

Events fire in ``(time, schedule order)`` order — ties are broken by the
order in which :meth:`EventLoop.schedule` was called, mirroring the
``(time, original event order)`` rule of
:func:`repro.cache.stream.build_stream`.  Handles returned by
``schedule`` can be cancelled (lazily: cancelled entries are skipped when
popped), which is how RPC retransmission timers are disarmed by replies.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from ..clock import Clock

__all__ = ["EventHandle", "EventLoop"]


class EventHandle:
    """A scheduled callback; ``cancel()`` keeps it from firing."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time:.6f}, seq={self.seq}, {state})"


class EventLoop:
    """A monotonic, deterministic discrete-event scheduler."""

    __slots__ = ("clock", "_heap", "_seq", "_fired")

    def __init__(self, clock: Clock | None = None):
        self.clock = clock if clock is not None else Clock()
        self._heap: list[EventHandle] = []
        self._seq = 0
        self._fired = 0

    @property
    def now(self) -> float:
        return self.clock.now()

    @property
    def events_fired(self) -> int:
        """Events executed so far (cancelled events excluded)."""
        return self._fired

    def schedule(self, time: float, fn: Callable[..., Any], *args) -> EventHandle:
        """Run ``fn(*args)`` at simulated *time* (>= now)."""
        if time < self.clock.now():
            raise ValueError(
                f"cannot schedule in the past ({time} < {self.clock.now()})"
            )
        handle = EventHandle(time, self._seq, fn, args)
        self._seq += 1
        heapq.heappush(self._heap, handle)
        return handle

    def call_after(self, delay: float, fn: Callable[..., Any], *args) -> EventHandle:
        """Run ``fn(*args)`` *delay* seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        return self.schedule(self.clock.now() + delay, fn, *args)

    def run(self, until: float | None = None) -> float:
        """Fire events in order until the heap drains (or past *until*).

        Returns the final simulated time.  Callbacks may schedule further
        events; the loop keeps going until nothing is pending.
        """
        while self._heap:
            if until is not None and self._heap[0].time > until:
                break
            handle = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            self.clock.set(handle.time)
            self._fired += 1
            handle.fn(*handle.args)
        return self.clock.now()
