"""Latency and utilization metrics for the network file service.

The existing cache layers report *counts*; netfs reports *time*.  The
unit of accounting is one client request (one billed transfer from the
trace), decomposed into the components the design questions care about:
time queued for the Ethernet, time on the wire, time waiting in the
server's request queue, and time being serviced (CPU + disk).  Each
component keeps full percentile statistics so a saturated resource shows
up as a fat tail, not just a bigger mean.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..cache.metrics import CacheMetrics

__all__ = ["LatencySummary", "LatencySampler", "QueueTracker", "NetfsResult"]


@dataclass(frozen=True)
class LatencySummary:
    """Order statistics of one latency component (seconds)."""

    count: int = 0
    mean: float = 0.0
    p50: float = 0.0
    p95: float = 0.0
    p99: float = 0.0
    max: float = 0.0

    def render(self, label: str) -> str:
        if not self.count:
            return f"{label}: no samples"
        return (
            f"{label}: mean {1e3 * self.mean:.2f} ms, "
            f"p50 {1e3 * self.p50:.2f} ms, p95 {1e3 * self.p95:.2f} ms, "
            f"p99 {1e3 * self.p99:.2f} ms, max {1e3 * self.max:.2f} ms "
            f"({self.count:,} samples)"
        )


class LatencySampler:
    """Accumulates raw samples; ``summarize`` folds them to a summary."""

    __slots__ = ("samples",)

    def __init__(self):
        self.samples: list[float] = []

    def add(self, value: float) -> None:
        self.samples.append(value)

    @staticmethod
    def _percentile(ordered: list[float], q: float) -> float:
        """Nearest-rank percentile on a pre-sorted list."""
        if not ordered:
            return 0.0
        index = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
        return ordered[index]

    def summarize(self) -> LatencySummary:
        if not self.samples:
            return LatencySummary()
        ordered = sorted(self.samples)
        n = len(ordered)
        return LatencySummary(
            count=n,
            mean=sum(ordered) / n,
            p50=self._percentile(ordered, 0.50),
            p95=self._percentile(ordered, 0.95),
            p99=self._percentile(ordered, 0.99),
            max=ordered[-1],
        )


@dataclass
class QueueTracker:
    """Time-weighted depth of one queue (the server's request queue)."""

    depth: int = 0
    max_depth: int = 0
    _integral: float = 0.0
    _last_time: float = 0.0
    _started: bool = False

    def update(self, now: float, depth: int) -> None:
        if self._started:
            self._integral += self.depth * max(0.0, now - self._last_time)
        self._started = True
        self._last_time = now
        self.depth = depth
        self.max_depth = max(self.max_depth, depth)

    def mean_depth(self, duration: float) -> float:
        if duration <= 0:
            return 0.0
        return self._integral / duration


@dataclass
class NetfsResult:
    """Everything one netfs simulation measured."""

    # Configuration echo.
    clients: int = 0
    client_cache_bytes: int = 0
    server_cache_bytes: int = 0
    block_size: int = 4096
    protocol: str = ""
    duration: float = 0.0

    # Traffic counts.
    requests: int = 0
    local_hits: int = 0  # requests satisfied without any RPC
    rpcs: int = 0
    retries: int = 0
    timeouts: int = 0
    queue_drops: int = 0
    failures: int = 0
    frames: int = 0
    network_payload_bytes: int = 0

    # Latency decomposition.
    request_latency: LatencySummary = field(default_factory=LatencySummary)
    network_wait: LatencySummary = field(default_factory=LatencySummary)
    server_queue_wait: LatencySummary = field(default_factory=LatencySummary)
    service_time: LatencySummary = field(default_factory=LatencySummary)

    # Resource pressure.
    ethernet_utilization: float = 0.0
    disk_utilization: float = 0.0
    server_queue_max: int = 0
    server_queue_mean: float = 0.0

    # Consistency traffic, by message kind.
    consistency: dict[str, int] = field(default_factory=dict)

    # Underlying cache behaviour.
    client_metrics: CacheMetrics = field(default_factory=CacheMetrics)
    server_metrics: CacheMetrics = field(default_factory=CacheMetrics)

    @property
    def consistency_messages(self) -> int:
        """Total cache-consistency control messages."""
        return sum(self.consistency.values())

    @property
    def network_messages(self) -> int:
        """Every message on the wire: RPC requests/replies + control."""
        return self.frames

    @property
    def network_bytes_per_second(self) -> float:
        if self.duration <= 0:
            return 0.0
        return self.network_payload_bytes / self.duration

    def render(self) -> str:
        con = ", ".join(
            f"{kind}: {count:,}" for kind, count in sorted(self.consistency.items())
        ) or "none"
        lines = [
            f"netfs: {self.clients} clients x "
            f"{self.client_cache_bytes // 1024} KB cache, "
            f"{self.server_cache_bytes // (1024 * 1024)} MB server cache, "
            f"{self.block_size // 1024} KB blocks, "
            f"{self.protocol} consistency, "
            f"{self.duration:.0f} s of trace",
            f"  requests: {self.requests:,} "
            f"({self.local_hits:,} satisfied locally), "
            f"{self.rpcs:,} RPCs, {self.retries:,} retries, "
            f"{self.timeouts:,} timeouts, {self.queue_drops:,} queue drops, "
            f"{self.failures:,} failures",
            "  " + self.request_latency.render("request latency"),
            "    " + self.network_wait.render("network wait"),
            "    " + self.server_queue_wait.render("server queue"),
            "    " + self.service_time.render("service"),
            f"  Ethernet: {100 * self.ethernet_utilization:.1f}% utilized "
            f"({self.frames:,} frames, "
            f"{self.network_bytes_per_second / 1000:.1f} KB/s payload)",
            f"  server disk: {100 * self.disk_utilization:.1f}% utilized; "
            f"queue depth mean {self.server_queue_mean:.2f}, "
            f"max {self.server_queue_max}",
            f"  consistency messages: {self.consistency_messages:,} ({con})",
        ]
        return "\n".join(lines)
