"""The shared 10 Mbit Ethernet.

Section 5.1 of the paper asks whether "a 10 Mbit/second network such as
Ethernet" can carry a community of diskless workstations and answers in
*average bandwidth*.  This model answers in *time*: the cable is a single
FIFO resource, every frame serializes over it, and a frame that arrives
while the cable is busy waits for everything already committed — so
queueing delay rises with utilization exactly the way a loaded CSMA/CD
segment's does (without modelling collisions; the FIFO captures the
first-order knee).

Frames pay a fixed per-frame overhead (preamble, header, CRC, interframe
gap — 38 bytes on classic Ethernet) and are padded to the 64-byte minimum
frame, so small RPC control messages are not free.  Payloads larger than
the 1500-byte MTU are fragmented into multiple frames, which is how an
8 KB read reply really crossed a 1985 segment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["EthernetModel", "Ethernet", "TEN_MBIT"]


@dataclass(frozen=True)
class EthernetModel:
    """Static parameters of one shared segment."""

    name: str = "10 Mbit Ethernet"
    bits_per_second: float = 10e6
    mtu_bytes: int = 1500
    overhead_bytes: int = 38  # preamble + header + CRC + interframe gap
    min_frame_bytes: int = 64

    def __post_init__(self):
        if self.bits_per_second <= 0:
            raise ValueError("bandwidth must be positive")
        if self.mtu_bytes <= 0 or self.min_frame_bytes < 0:
            raise ValueError("frame sizes must be positive")

    def frames_for(self, payload_bytes: int) -> int:
        """Frames needed to move *payload_bytes* (at least one)."""
        if payload_bytes <= self.mtu_bytes:
            return 1
        return -(-payload_bytes // self.mtu_bytes)

    def wire_time(self, payload_bytes: int) -> float:
        """Seconds of cable time to transmit *payload_bytes*."""
        if payload_bytes < 0:
            raise ValueError(f"negative payload {payload_bytes}")
        frames = self.frames_for(payload_bytes)
        on_wire = max(payload_bytes + frames * self.overhead_bytes,
                      frames * self.min_frame_bytes)
        return on_wire * 8 / self.bits_per_second


#: The paper's network, with classic framing overheads.
TEN_MBIT = EthernetModel()


@dataclass
class Ethernet:
    """The dynamic state of one segment during a simulation.

    ``send`` reserves cable time FIFO and returns when the transmission
    will finish; the caller schedules frame delivery at that instant.
    The difference between "asked to send" and "started sending" is the
    queueing delay the latency percentiles report.
    """

    model: EthernetModel = field(default_factory=lambda: TEN_MBIT)
    busy_until: float = 0.0
    busy_seconds: float = 0.0
    frames_sent: int = 0
    payload_bytes_sent: int = 0
    queue_delays: list[float] = field(default_factory=list)

    def send(self, now: float, payload_bytes: int) -> tuple[float, float]:
        """Reserve the cable for one message; returns (start, finish)."""
        start = max(now, self.busy_until)
        wire = self.model.wire_time(payload_bytes)
        finish = start + wire
        self.busy_until = finish
        self.busy_seconds += wire
        self.frames_sent += self.model.frames_for(payload_bytes)
        self.payload_bytes_sent += payload_bytes
        self.queue_delays.append(start - now)
        return start, finish

    def utilization(self, duration: float) -> float:
        """Fraction of *duration* the cable spent transmitting."""
        if duration <= 0:
            return 0.0
        return self.busy_seconds / duration
