"""The request/response layer between workstations and the server.

Every client-cache miss and write-back becomes one RPC: a request frame
over the shared Ethernet, service at the file server, a reply frame back.
The failure handling is the part the counting simulations cannot see:

* a request that reaches a full server queue is silently dropped;
* the client arms a retransmission timer per attempt, with bounded
  exponential backoff (doubling up to a cap) plus a small seeded jitter
  so synchronized clients do not retry in lockstep;
* the server absorbs retransmitted duplicates of requests it is already
  holding (a duplicate-request cache, as NFS servers grew);
* after ``max_retries`` retransmissions the RPC fails and the client
  gives up — failures are reported, never hidden.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from .events import EventHandle, EventLoop
from .metrics import LatencySampler
from .network import Ethernet
from .server import FileServer

__all__ = ["RpcConfig", "Rpc", "RpcLayer"]


@dataclass(frozen=True)
class RpcConfig:
    """Tunable costs and failure-handling parameters."""

    request_header_bytes: int = 96
    reply_header_bytes: int = 96
    client_overhead_s: float = 0.0005  # marshalling + context switches
    timeout_s: float = 0.35
    max_retries: int = 5
    backoff_factor: float = 2.0
    backoff_cap_s: float = 5.0
    retry_jitter_s: float = 0.01

    def __post_init__(self):
        if self.timeout_s <= 0:
            raise ValueError("timeout must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff factor must be >= 1")

    def timeout_for_attempt(self, attempt: int) -> float:
        """Timeout armed for the *attempt*-th transmission (1-based)."""
        return min(
            self.backoff_cap_s,
            self.timeout_s * self.backoff_factor ** (attempt - 1),
        )


class Rpc:
    """One logical remote call and its accumulated timing."""

    __slots__ = (
        "rpc_id", "client_id", "file_id", "start", "end", "is_write",
        "request_payload", "reply_payload", "issued_at", "attempts",
        "network_wait", "server_queue_wait", "service_time",
        "completed", "failed", "timer", "on_done",
    )

    def __init__(
        self,
        rpc_id: int,
        client_id: int,
        file_id: int,
        start: int,
        end: int,
        is_write: bool,
        request_payload: int,
        reply_payload: int,
        issued_at: float,
        on_done: Callable[["Rpc", bool], None],
    ):
        self.rpc_id = rpc_id
        self.client_id = client_id
        self.file_id = file_id
        self.start = start
        self.end = end
        self.is_write = is_write
        self.request_payload = request_payload
        self.reply_payload = reply_payload
        self.issued_at = issued_at
        self.attempts = 0
        self.network_wait = 0.0
        self.server_queue_wait = 0.0
        self.service_time = 0.0
        self.completed = False
        self.failed = False
        self.timer: EventHandle | None = None
        self.on_done = on_done


class RpcLayer:
    """Issues RPCs for all clients and runs their retry state machines."""

    def __init__(
        self,
        loop: EventLoop,
        ether: Ethernet,
        server: FileServer,
        config: RpcConfig | None = None,
        rng: random.Random | None = None,
    ):
        self.loop = loop
        self.ether = ether
        self.server = server
        self.config = config if config is not None else RpcConfig()
        self.rng = rng if rng is not None else random.Random(0)
        self.server.on_complete = self._request_serviced
        self._next_id = 0
        self.rpcs = 0
        self.retries = 0
        self.timeouts = 0
        self.failures = 0
        self.network_waits = LatencySampler()

    def call(
        self,
        client_id: int,
        file_id: int,
        start: int,
        end: int,
        is_write: bool,
        on_done: Callable[[Rpc, bool], None],
    ) -> Rpc:
        """Issue one RPC now.  Writes carry their payload in the request,
        reads in the reply."""
        nbytes = end - start
        rpc = Rpc(
            rpc_id=self._next_id,
            client_id=client_id,
            file_id=file_id,
            start=start,
            end=end,
            is_write=is_write,
            request_payload=nbytes if is_write else 0,
            reply_payload=0 if is_write else nbytes,
            issued_at=self.loop.now,
            on_done=on_done,
        )
        self._next_id += 1
        self.rpcs += 1
        self._transmit(rpc)
        return rpc

    # -- state machine ---------------------------------------------------------

    def _transmit(self, rpc: Rpc) -> None:
        rpc.attempts += 1
        nbytes = self.config.request_header_bytes + rpc.request_payload
        sent, delivered = self.ether.send(self.loop.now, nbytes)
        rpc.network_wait += sent - self.loop.now
        self.loop.schedule(delivered, self._deliver_request, rpc)
        rpc.timer = self.loop.call_after(
            self.config.timeout_for_attempt(rpc.attempts), self._timed_out, rpc
        )

    def _deliver_request(self, rpc: Rpc) -> None:
        if rpc.completed or rpc.failed:
            return
        # A drop leaves the timer to discover the loss.
        self.server.receive(rpc)

    def _request_serviced(self, rpc: Rpc, now: float) -> None:
        if rpc.completed or rpc.failed:
            return
        nbytes = self.config.reply_header_bytes + rpc.reply_payload
        sent, delivered = self.ether.send(now, nbytes)
        rpc.network_wait += sent - now
        self.loop.schedule(delivered, self._deliver_reply, rpc)

    def _deliver_reply(self, rpc: Rpc) -> None:
        if rpc.completed or rpc.failed:
            return
        rpc.completed = True
        if rpc.timer is not None:
            rpc.timer.cancel()
        self.network_waits.add(rpc.network_wait)
        rpc.on_done(rpc, True)

    def _timed_out(self, rpc: Rpc) -> None:
        if rpc.completed or rpc.failed:
            return
        self.timeouts += 1
        if rpc.attempts > self.config.max_retries:
            rpc.failed = True
            self.failures += 1
            rpc.on_done(rpc, False)
            return
        self.retries += 1
        jitter = self.rng.uniform(0.0, self.config.retry_jitter_s)
        self.loop.call_after(jitter, self._retransmit, rpc)

    def _retransmit(self, rpc: Rpc) -> None:
        if rpc.completed or rpc.failed:
            return
        self._transmit(rpc)
