"""The shared file server: bounded request queue + cache + disk.

The two-level simulation (`repro.cache.twolevel`) already knows *which*
blocks reach the server; this module adds *when they get serviced*.  The
server is a single service station: requests wait in a bounded FIFO
queue, the server cache (a :class:`BlockCacheSimulator`, delayed-write
like the 4.2 BSD buffer cache) decides which blocks actually touch the
platter, and each miss pays :meth:`repro.disk.DiskModel.service_time`.

A request that arrives to a full queue is *dropped* — the 1985 reality
of a diskless client hammering an overloaded server — and the RPC layer's
timeout/retransmit machinery is what recovers, exactly the dynamic that
made Sun put a duplicate-request cache in NFS servers.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable

from ..analysis.accesses import Transfer
from ..cache.policies import DELAYED_WRITE, PolicySpec
from ..cache.simulator import BlockCacheSimulator
from ..disk.model import FUJITSU_EAGLE, DiskModel
from .events import EventLoop
from .metrics import LatencySampler, QueueTracker

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from .rpc import Rpc

__all__ = ["FileServer"]


class FileServer:
    """One file server shared by every workstation on the segment."""

    def __init__(
        self,
        loop: EventLoop,
        cache_bytes: int = 16 * 1024 * 1024,
        block_size: int = 4096,
        policy: PolicySpec = DELAYED_WRITE,
        disk: DiskModel = FUJITSU_EAGLE,
        queue_limit: int = 64,
        cpu_overhead_s: float = 0.001,
    ):
        if queue_limit < 1:
            raise ValueError(f"queue limit must be >= 1, got {queue_limit}")
        self.loop = loop
        self.disk = disk
        self.block_size = block_size
        self.cpu_overhead_s = cpu_overhead_s
        self.queue_limit = queue_limit
        self.cache = BlockCacheSimulator(
            cache_bytes=cache_bytes, block_size=block_size, policy=policy
        )
        self._queue: deque[tuple["Rpc", float]] = deque()
        self._busy = False
        self._pending_ids: set[int] = set()
        self.queue_tracker = QueueTracker()
        self.queue_waits = LatencySampler()
        self.service_times = LatencySampler()
        self.disk_busy_seconds = 0.0
        self.queue_drops = 0
        self.duplicates_suppressed = 0
        #: Called with (rpc, finish_time) when a request completes.
        self.on_complete: Callable[["Rpc", float], None] | None = None

    # -- request intake --------------------------------------------------------

    def receive(self, rpc: "Rpc") -> bool:
        """A request frame arrived; returns False if it was dropped."""
        if rpc.rpc_id in self._pending_ids:
            # Duplicate-request cache: a retransmission of something we
            # are already working on is absorbed, not serviced twice.
            self.duplicates_suppressed += 1
            return True
        if len(self._queue) >= self.queue_limit:
            self.queue_drops += 1
            return False
        self._pending_ids.add(rpc.rpc_id)
        self._queue.append((rpc, self.loop.now))
        self.queue_tracker.update(self.loop.now, len(self._queue))
        if not self._busy:
            self._start_next()
        return True

    # -- the service station ---------------------------------------------------

    def _start_next(self) -> None:
        rpc, enqueued_at = self._queue.popleft()
        self.queue_tracker.update(self.loop.now, len(self._queue))
        wait = self.loop.now - enqueued_at
        self.queue_waits.add(wait)
        rpc.server_queue_wait += wait
        self._busy = True
        service = self._service_time(rpc)
        self.service_times.add(service)
        rpc.service_time += service
        self.loop.call_after(service, self._finish, rpc)

    def _service_time(self, rpc: "Rpc") -> float:
        """CPU overhead plus a disk visit for every server-cache miss."""
        before = self.cache.metrics.disk_ios
        self.cache.run([
            Transfer(
                time=self.loop.now,
                file_id=rpc.file_id,
                user_id=rpc.client_id,
                start=rpc.start,
                end=rpc.end,
                is_write=rpc.is_write,
            )
        ])
        misses = self.cache.metrics.disk_ios - before
        disk_time = misses * self.disk.service_time(self.block_size)
        self.disk_busy_seconds += disk_time
        return self.cpu_overhead_s + disk_time

    def _finish(self, rpc: "Rpc") -> None:
        self._pending_ids.discard(rpc.rpc_id)
        self._busy = False
        if self.on_complete is not None:
            self.on_complete(rpc, self.loop.now)
        if self._queue:
            self._start_next()

    def invalidate(self, file_id: int, from_byte: int = 0) -> None:
        """Drop a dead file's blocks from the server cache (free: the
        queue models data movement, not metadata bookkeeping)."""
        self.cache.drop_file(file_id, from_byte)

    def disk_utilization(self, duration: float) -> float:
        if duration <= 0:
            return 0.0
        return self.disk_busy_seconds / duration
