"""Drive a trace through the full network file service.

``simulate_netfs`` is to :func:`repro.cache.twolevel.simulate_two_level`
what a queueing simulation is to a spreadsheet: the same transfers cross
the same two cache levels, but every hop now takes time on a contended
resource, and the answer comes back as latency percentiles and
utilizations instead of counts.

Workstation mapping: by default every trace user is one diskless
workstation (the paper's one-user-one-machine reading); ``clients=N``
folds users onto N workstations round-robin.  ``load_scale=K`` replays K
shifted copies of the trace side by side — K independent communities with
disjoint users and files sharing one Ethernet and one server — which is
how the design examples push the network past its knee.
"""

from __future__ import annotations

import random

from ..analysis.accesses import Transfer
from ..cache.metrics import CacheMetrics
from ..cache.stream import Invalidation, StreamItem, cached_stream
from ..disk.model import FUJITSU_EAGLE, DiskModel
from ..trace.log import TraceLog
from .client import Workstation
from .consistency import PROTOCOLS
from .events import EventLoop
from .metrics import LatencySampler, NetfsResult
from .network import TEN_MBIT, Ethernet, EthernetModel
from .rpc import RpcConfig, RpcLayer
from .server import FileServer

__all__ = ["simulate_netfs"]


#: Per-copy phase offsets cycle within this window so replicated
#: communities are not burst-synchronized (real workstations are not
#: phase-locked; without the stagger every copy's daemon spike lands on
#: the server in the same microsecond and retry storms start long before
#: genuine saturation).
_STAGGER_STEP_S = 7.3
_STAGGER_WINDOW_S = 60.0


def _replicate(stream: list[StreamItem], copies: int) -> list[StreamItem]:
    """*copies* disjoint communities replaying the same trace in parallel."""
    if copies <= 1:
        return stream
    file_stride = 1 + max(
        (i.file_id for i in stream), default=0
    )
    user_stride = 1 + max(
        (i.user_id for i in stream if isinstance(i, Transfer)), default=0
    )
    out: list[StreamItem] = []
    for copy in range(copies):
        offset = (copy * _STAGGER_STEP_S) % _STAGGER_WINDOW_S
        for item in stream:
            if isinstance(item, Invalidation):
                out.append(
                    Invalidation(
                        time=item.time + offset,
                        file_id=item.file_id + copy * file_stride,
                        from_byte=item.from_byte,
                    )
                )
            else:
                out.append(
                    Transfer(
                        time=item.time + offset,
                        file_id=item.file_id + copy * file_stride,
                        user_id=item.user_id + copy * user_stride,
                        start=item.start,
                        end=item.end,
                        is_write=item.is_write,
                    )
                )
    out.sort(key=lambda i: i.time)
    return out


def simulate_netfs(
    log: TraceLog,
    clients: int | None = None,
    client_cache_bytes: int = 512 * 1024,
    server_cache_bytes: int = 16 * 1024 * 1024,
    block_size: int = 4096,
    protocol: str = "callbacks",
    ethernet: EthernetModel = TEN_MBIT,
    rpc: RpcConfig | None = None,
    disk: DiskModel = FUJITSU_EAGLE,
    server_queue_limit: int = 64,
    server_cpu_s: float = 0.001,
    client_overhead_s: float = 0.0002,
    load_scale: int = 1,
    seed: int = 0,
    faults=None,
) -> NetfsResult:
    """Simulate *log*'s transfers through clients, Ethernet, RPC, server.

    ``protocol`` is ``"callbacks"`` (write-through with server
    callbacks) or ``"ownership"`` (Sprite-style invalidate leases); see
    :mod:`repro.netfs.consistency`.

    ``faults`` optionally injects failures: any object with an
    ``install(server)`` method (see
    :class:`repro.fuzz.faults.NetfsFaults`) gets to interpose on the
    server's request intake and disk model before the run starts —
    dropped or duplicated request frames and stretched disk service
    times, which the RPC retry/backoff and duplicate-request cache must
    absorb.
    """
    try:
        protocol_cls = PROTOCOLS[protocol]
    except KeyError:
        known = ", ".join(sorted(PROTOCOLS))
        raise ValueError(f"unknown protocol {protocol!r}; known: {known}") from None
    if load_scale < 1:
        raise ValueError(f"load_scale must be >= 1, got {load_scale}")
    if clients is not None and clients < 1:
        raise ValueError(f"clients must be >= 1, got {clients}")

    stream = _replicate(cached_stream(log), load_scale)

    loop = EventLoop()
    ether = Ethernet(model=ethernet)
    server = FileServer(
        loop,
        cache_bytes=server_cache_bytes,
        block_size=block_size,
        disk=disk,
        queue_limit=server_queue_limit,
        cpu_overhead_s=server_cpu_s,
    )
    if faults is not None:
        faults.install(server)
    rpc_layer = RpcLayer(loop, ether, server, config=rpc, rng=random.Random(seed))
    proto = protocol_cls(loop, ether)

    def issue_writeback(client_id: int, file_id: int, blocks: int) -> None:
        # A lease recall's flush: the old owner's dirty blocks cross the
        # wire as an ordinary write RPC (fire-and-forget: nobody's
        # request latency is charged for it, but the wire and server are).
        rpc_layer.call(
            client_id=client_id,
            file_id=file_id,
            start=0,
            end=blocks * block_size,
            is_write=True,
            on_done=lambda _rpc, _ok: None,
        )

    proto.issue_writeback = issue_writeback

    # Map users to workstations (stable order: first appearance in time).
    users: dict[int, None] = {}
    for item in stream:
        if isinstance(item, Transfer):
            users.setdefault(item.user_id, None)
    station_of: dict[int, int] = {}
    n_stations = len(users) if clients is None else min(clients, max(1, len(users)))
    for index, user_id in enumerate(users):
        station_of[user_id] = index % n_stations

    stations: dict[int, Workstation] = {}
    for sid in range(n_stations):
        ws = Workstation(
            client_id=sid,
            loop=loop,
            rpc_layer=rpc_layer,
            protocol=proto,
            cache_bytes=client_cache_bytes,
            block_size=block_size,
            local_overhead_s=client_overhead_s,
        )
        stations[sid] = ws
        proto.clients[sid] = ws

    def dispatch(item: StreamItem) -> None:
        if isinstance(item, Invalidation):
            proto.note_invalidation(item.file_id, item.from_byte)
            server.invalidate(item.file_id, item.from_byte)
        else:
            stations[station_of[item.user_id]].submit(item)

    for item in stream:
        loop.schedule(item.time, dispatch, item)
    end_time = loop.run()

    duration = max(log.duration, end_time)

    # Aggregate client cache metrics, twolevel-style.
    client_total = CacheMetrics()
    for ws in stations.values():
        snap = ws.cache.metrics
        for name in (
            "read_accesses", "write_accesses", "disk_reads", "disk_writes",
            "evictions", "invalidated_blocks", "dirty_blocks_created",
            "dirty_blocks_discarded", "read_elisions",
        ):
            setattr(client_total, name, getattr(client_total, name) + getattr(snap, name))

    request_latencies = [
        sample for ws in stations.values() for sample in ws.latencies.samples
    ]
    merged = LatencySampler()
    merged.samples = request_latencies

    return NetfsResult(
        clients=n_stations,
        client_cache_bytes=client_cache_bytes,
        server_cache_bytes=server_cache_bytes,
        block_size=block_size,
        protocol=proto.name,
        duration=duration,
        requests=sum(ws.requests for ws in stations.values()),
        local_hits=sum(ws.local_hits for ws in stations.values()),
        rpcs=rpc_layer.rpcs,
        retries=rpc_layer.retries,
        timeouts=rpc_layer.timeouts,
        queue_drops=server.queue_drops,
        failures=rpc_layer.failures,
        frames=ether.frames_sent,
        network_payload_bytes=ether.payload_bytes_sent,
        request_latency=merged.summarize(),
        network_wait=rpc_layer.network_waits.summarize(),
        server_queue_wait=server.queue_waits.summarize(),
        service_time=server.service_times.summarize(),
        ethernet_utilization=ether.utilization(duration),
        disk_utilization=server.disk_utilization(duration),
        server_queue_max=server.queue_tracker.max_depth,
        server_queue_mean=server.queue_tracker.mean_depth(duration),
        consistency=dict(sorted(proto.counts.items())),
        client_metrics=client_total,
        server_metrics=server.cache.metrics,
    )
