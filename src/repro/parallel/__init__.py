"""Fast paths for parameter sweeps.

Three layers, composable but independent:

* :mod:`.packed` — compile a trace's item stream once per block size
  into flat arrays and replay them through a tight single-loop simulator
  (bit-identical metrics to the reference
  :class:`~repro.cache.simulator.BlockCacheSimulator`);
* :mod:`.stack` — one-pass Mattson stack analysis (extended with
  deletion holes) producing the whole cache-size curve in a single
  traversal, exact under write-through;
* :mod:`.executor` — fan independent (payload, job) pairs out to a
  process pool, payload shipped once, results in deterministic order,
  serial fallback when ``jobs=1`` or the pool dies.

The sweeps in :mod:`repro.cache.sweep` keep the reference simulator as
their ``jobs=1`` path, so the fast paths are continuously differentially
tested against it.
"""

from .executor import auto_jobs, jobs_context, resolve_jobs, run_jobs
from .packed import (
    PackedRun,
    PackedStream,
    cached_packed_stream,
    pack_stream,
    simulate_packed,
)
from .stack import StackCurve, simulate_stack

__all__ = [
    "auto_jobs",
    "jobs_context",
    "resolve_jobs",
    "run_jobs",
    "PackedRun",
    "PackedStream",
    "cached_packed_stream",
    "pack_stream",
    "simulate_packed",
    "StackCurve",
    "simulate_stack",
]
