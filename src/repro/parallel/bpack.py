"""``.bpack``: packed streams on disk, mmap-readable like ``.bcorpus``.

A sweep at ``jobs>1`` used to pickle the full :class:`PackedStream`
arrays into every worker (once per worker under ``spawn``, and even the
``fork`` fast path copies them on first write to the refcount pages).
A ``.bpack`` file removes the stream from the payload entirely: the
parent writes the four flat fields once, workers ``mmap`` the file and
cast the columns straight out of the page cache — zero copies, shared
read-only across every process on the host, reusable across runs.

File layout (little-endian, 8-aligned like ``.bcorpus`` segments)::

    header   magic         8 bytes  b"BSDPACK" + version byte
             block_size    u64
             start_time    f64
             n_rows        u64
             n_accesses    u64
    columns  keys          i64 x n_rows   (packed (fid << KEY_SHIFT) | block)
             times         f64 x n_rows
             ops           u8  x n_rows
             padding       zero bytes to the next 8-byte boundary
    trailer  body_crc      u32 crc32 of everything before the trailer
             reserved      u32 zero
             end magic     8 bytes  b"BSDPEND" + version byte

The numeric columns lead and the header is 8-byte sized, so a reader
can ``memoryview.cast`` them with zero copies; the byte column trails.
Columns are stored little-endian; a big-endian host byteswaps copies on
the way in and out (the file never changes with the host).  Everything
here is numpy-free — the python engine leg shares ``.bpack`` files too.

:func:`read_bpack` returns a :class:`PackedStream` whose ``keys`` and
``times`` are memoryviews into the mmap (they keep the mapping alive)
and therefore behaves exactly like an in-RAM stream everywhere one is
consumed: ``tolist()``, ``len``, indexing, ``np.frombuffer`` and
equality against ``array``-backed streams all hold.  The per-process
:func:`cached_bpack` gives sweep workers one verified open per path.
"""

from __future__ import annotations

import mmap
import os
import struct
import sys
from array import array
from typing import Union

from .packed import PackedStream

__all__ = [
    "BPACK_MAGIC",
    "BPACK_END_MAGIC",
    "BpackError",
    "write_bpack",
    "read_bpack",
    "cached_bpack",
]

BPACK_MAGIC = b"BSDPACK\x01"
BPACK_END_MAGIC = b"BSDPEND\x01"

_HEADER = struct.Struct("<8sQdQQ")
_TRAILER = struct.Struct("<II8s")

_LITTLE = sys.byteorder == "little"


class BpackError(Exception):
    """A ``.bpack`` file is corrupt, truncated, or unrecognized."""


def _pad8(n: int) -> int:
    return -n % 8


def _column_bytes(column) -> bytes:
    """*column* (``array``/``memoryview``/``bytes``) as little-endian bytes."""
    if isinstance(column, array) and not _LITTLE:
        swapped = array(column.typecode, column)
        swapped.byteswap()
        return swapped.tobytes()
    return bytes(column)


def write_bpack(packed: PackedStream, path: Union[str, os.PathLike]) -> int:
    """Write *packed* to *path* atomically; returns the byte size.

    Atomic via write-to-temp + rename, so two processes racing to
    populate a shared pack cache can only ever observe complete files.
    """
    import zlib

    n = len(packed.ops)
    header = _HEADER.pack(
        BPACK_MAGIC, packed.block_size, packed.start_time, n, packed.n_accesses
    )
    keys = _column_bytes(packed.keys)
    times = _column_bytes(packed.times)
    ops = bytes(packed.ops)
    pad = b"\x00" * _pad8(len(ops))
    crc = 0
    for chunk in (header, keys, times, ops, pad):
        crc = zlib.crc32(chunk, crc)
    trailer = _TRAILER.pack(crc & 0xFFFFFFFF, 0, BPACK_END_MAGIC)
    path = os.fspath(path)
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "wb") as fh:
            for chunk in (header, keys, times, ops, pad, trailer):
                fh.write(chunk)
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):  # pragma: no cover - only on write failure
            os.unlink(tmp)
    return _HEADER.size + len(keys) + len(times) + len(ops) + len(pad) + _TRAILER.size


def _check(condition: bool, path: str, message: str) -> None:
    if not condition:
        raise BpackError(f"{path}: {message}")


def read_bpack(path: Union[str, os.PathLike], verify: bool = True) -> PackedStream:
    """Map *path* and return it as a zero-copy :class:`PackedStream`.

    The returned stream's ``keys``/``times`` columns are memoryview
    casts into a read-only mmap (which they keep alive); ``ops`` is a
    bytes copy — one byte per row, and the replay loops iterate it
    directly.  ``verify=True`` checks the trailer crc over the whole
    body (one sequential pass; the pages are about to be used anyway).
    On big-endian hosts the columns are byteswapped copies instead.
    """
    path = os.fspath(path)
    with open(path, "rb") as fh:
        try:
            mapped = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
        except ValueError as exc:
            raise BpackError(f"{path}: cannot map: {exc}") from exc
    view = memoryview(mapped)
    size = len(view)
    _check(size >= _HEADER.size + _TRAILER.size, path, "truncated header")
    magic, block_size, start_time, n_rows, n_accesses = _HEADER.unpack_from(view, 0)
    _check(magic == BPACK_MAGIC, path, f"bad magic {magic!r}")
    body = _HEADER.size + 16 * n_rows + n_rows + _pad8(n_rows)
    _check(size == body + _TRAILER.size, path, f"size {size} != expected {body + _TRAILER.size}")
    _check(n_accesses <= n_rows, path, "access count exceeds row count")
    crc_stored, _reserved, end_magic = _TRAILER.unpack_from(view, body)
    _check(end_magic == BPACK_END_MAGIC, path, f"bad end magic {end_magic!r}")
    if verify:
        import zlib

        _check(
            zlib.crc32(view[:body]) & 0xFFFFFFFF == crc_stored,
            path,
            "body crc mismatch",
        )
    at = _HEADER.size
    keys_raw = view[at : at + 8 * n_rows]
    at += 8 * n_rows
    times_raw = view[at : at + 8 * n_rows]
    at += 8 * n_rows
    ops = bytes(view[at : at + n_rows])
    if _LITTLE:
        keys = keys_raw.cast("q")
        times = times_raw.cast("d")
    else:  # pragma: no cover - no big-endian host in CI
        keys = array("q", keys_raw.tobytes())
        keys.byteswap()
        times = array("d", times_raw.tobytes())
        times.byteswap()
    return PackedStream(
        block_size=block_size,
        start_time=start_time,
        ops=ops,
        keys=keys,
        times=times,
        n_accesses=n_accesses,
    )


# Per-process open cache: sweep workers resolve the same path for every
# chunk of jobs; one verified mmap per (path, stat identity) is enough.
_OPEN: dict[tuple[str, int, int], PackedStream] = {}


def cached_bpack(path: Union[str, os.PathLike]) -> PackedStream:
    """Memoized :func:`read_bpack`, keyed by path + size + mtime."""
    path = os.fspath(path)
    st = os.stat(path)
    key = (os.path.abspath(path), st.st_size, st.st_mtime_ns)
    stream = _OPEN.get(key)
    if stream is None:
        if len(_OPEN) >= 16:  # a sweep only ever touches a handful
            _OPEN.clear()
        stream = _OPEN[key] = read_bpack(path)
    return stream
