"""The sweep executor: independent (payload, job) runs on a process pool.

A sweep decomposes into jobs that share one large read-only input (the
pre-decoded streams) and differ only in a small configuration tuple.
:func:`run_jobs` runs them on a :class:`~concurrent.futures.ProcessPoolExecutor`
with the payload shipped **once**: under the ``fork`` start method the
workers inherit it through a module global set before the pool is
created (zero pickling); under ``spawn`` it is pickled once per worker
via the pool initializer, never per job.

Guarantees:

* **deterministic ordering** — results come back in job-list order
  regardless of completion order;
* **serial when asked** — ``jobs=1`` (or a single job) runs in-process
  with no pool, byte-identical to the parallel answer;
* **graceful degradation** — a dead pool, an unpicklable payload or a
  per-job timeout cancels the pool and reruns the whole list serially,
  so callers never see a partial result (a worker whose own logic raises
  will re-raise from the serial rerun, where the traceback is readable).

``jobs_context`` provides an ambient default so a ``--jobs`` flag set at
the CLI reaches sweeps buried under the experiment registry, whose
entry points take only a trace.

A payload may defer its expensive parts entirely: anything defining
``__payload_resolve__()`` is resolved *inside* each worker (and once on
the serial path) before the first job touches it.  That is how sweeps
ship ``.bpack`` paths instead of pickled arrays — the parent sends a
few strings, each worker mmaps the shared file and the page cache does
the fan-out.  Resolution must be deterministic; workers call it
independently and may cache the result per process.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Sequence

__all__ = [
    "auto_jobs",
    "resolve_jobs",
    "resolve_payload",
    "jobs_context",
    "run_jobs",
]

#: Upper bound on worker processes, however many cores the host has.
MAX_JOBS = 8

#: Seconds each job may run before the pool is abandoned for serial.
DEFAULT_JOB_TIMEOUT = 300.0

_ambient_jobs: int | None = None

# The shared payload, stashed in a module global so that fork()ed workers
# inherit it without serialization.  Spawned workers receive it through
# _init_worker instead.
_payload: Any = None


def _init_worker(payload: Any) -> None:
    global _payload
    _payload = payload


def resolve_payload(payload: Any) -> Any:
    """*payload* itself, or what its ``__payload_resolve__()`` returns."""
    resolve = getattr(payload, "__payload_resolve__", None)
    if resolve is not None:
        return resolve()
    return payload


def _call_chunk(worker: Callable[[Any, Any], Any], chunk: Sequence[Any]) -> list[Any]:
    payload = resolve_payload(_payload)
    return [worker(payload, job) for job in chunk]


def auto_jobs() -> int:
    """Default worker count: the CPU count, capped at :data:`MAX_JOBS`."""
    return max(1, min(os.cpu_count() or 1, MAX_JOBS))


def resolve_jobs(jobs: int | None) -> int:
    """Validate an explicit *jobs* or fall back to the ambient default.

    ``None`` means "whatever :func:`jobs_context` established", or serial
    when no context is active — library calls stay serial unless a caller
    (the CLI, a runner) opted into parallelism somewhere above.
    """
    if jobs is None:
        return _ambient_jobs if _ambient_jobs is not None else 1
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


@contextmanager
def jobs_context(jobs: int | None) -> Iterator[int]:
    """Establish the ambient job count for nested sweep calls."""
    global _ambient_jobs
    resolved = resolve_jobs(jobs) if jobs is not None else auto_jobs()
    previous = _ambient_jobs
    _ambient_jobs = resolved
    try:
        yield resolved
    finally:
        _ambient_jobs = previous


def _run_serial(
    worker: Callable[[Any, Any], Any], jobs_list: Sequence[Any], payload: Any
) -> list[Any]:
    payload = resolve_payload(payload)
    return [worker(payload, job) for job in jobs_list]


def run_jobs(
    worker: Callable[[Any, Any], Any],
    jobs_list: Sequence[Any],
    payload: Any = None,
    jobs: int | None = None,
    timeout: float | None = DEFAULT_JOB_TIMEOUT,
) -> list[Any]:
    """Run ``worker(payload, job)`` for each job; results in job order.

    *worker* must be a module-level function and each job's result
    picklable.  With ``jobs=1``, one job, or an unusable pool, everything
    runs serially in-process.
    """
    n = resolve_jobs(jobs)
    jobs_list = list(jobs_list)
    if n <= 1 or len(jobs_list) <= 1:
        return _run_serial(worker, jobs_list, payload)

    global _payload
    _payload = payload
    try:
        context = multiprocessing.get_context()
        if context.get_start_method() == "fork":
            # Workers fork with _payload already in place.
            init, initargs = None, ()
        else:
            init, initargs = _init_worker, (payload,)
        pool = None
        try:
            pool = ProcessPoolExecutor(
                max_workers=min(n, len(jobs_list)),
                mp_context=context,
                initializer=init,
                initargs=initargs,
            )
            # Submit in chunks of a few jobs each (roughly two rounds per
            # worker) so the per-future IPC cost is paid per chunk, not
            # per job, while still leaving the pool room to balance load.
            size = max(1, len(jobs_list) // (2 * n))
            chunks = [
                jobs_list[i : i + size] for i in range(0, len(jobs_list), size)
            ]
            futures = [pool.submit(_call_chunk, worker, chunk) for chunk in chunks]
            # The per-job timeout scales with the chunk it rides in.
            chunk_timeout = None if timeout is None else timeout * size
            return [
                result
                for future in futures
                for result in future.result(timeout=chunk_timeout)
            ]
        except Exception:
            # The pool died, timed out, or could not be built; unpicklable
            # payloads and results surface as pool errors too.  Cancel
            # what is pending and produce the full answer serially — a
            # genuine worker bug re-raises from there, where its
            # traceback is readable.
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)
                pool = None
            return _run_serial(worker, jobs_list, payload)
        finally:
            if pool is not None:
                pool.shutdown(wait=True)
    finally:
        _payload = None
