"""Pre-decoded block-access streams (the sweep fast path's input).

:meth:`~repro.cache.simulator.BlockCacheSimulator.run` pays, for every
item of every configuration of every sweep, the same decode work: split
the byte range into blocks, build a ``(file_id, block)`` tuple key, and
evaluate the whole-block-overwrite / beyond-EOF coverage test against the
evolving known file size.  None of that depends on the cache
configuration — only on the stream and the block size — so
:func:`pack_stream` does it once, compiling the item stream into four
flat arrays (op code, packed 64-bit key, timestamp) that
:func:`simulate_packed` replays with a tight single loop.

The coverage test can be hoisted out of the simulator because the known
file size evolves deterministically from the stream alone (transfers
extend it, invalidations shrink it), independent of cache contents or
policy.  The packed key is ``(file_id << KEY_SHIFT) | block``, which
keeps per-access hashing to a single int and turns the "drop blocks at
or past the truncation point" scan into a plain integer comparison.

:func:`simulate_packed` is differentially tested to produce *bit-identical*
:class:`~repro.cache.metrics.CacheMetrics` against the reference
simulator (``tests/test_parallel.py``); the reference path stays the
oracle and the ``jobs=1`` sweep path.
"""

from __future__ import annotations

from array import array
from collections import OrderedDict
from dataclasses import dataclass

from ..cache.metrics import CacheMetrics
from ..cache.policies import DELAYED_WRITE, PolicySpec, WritePolicy
from ..cache.replacement import make_replacement, validate_replacement
from ..cache.stream import Invalidation, StreamItem, cached_stream, memoize_per_log
from ..trace.log import TraceLog
from ..trace.npview import resolve_engine

__all__ = [
    "OP_READ",
    "OP_WRITE",
    "OP_WRITE_COVERED",
    "OP_INVALIDATE",
    "KEY_SHIFT",
    "PackedStream",
    "PackedRun",
    "pack_stream",
    "cached_packed_stream",
    "simulate_packed",
]

OP_READ = 0
OP_WRITE = 1  # write whose miss would need a read-modify-write
OP_WRITE_COVERED = 2  # write covering the whole block (or beyond EOF)
OP_INVALIDATE = 3

#: Bits reserved for the block index inside a packed key.
KEY_SHIFT = 30
_BLOCK_LIMIT = 1 << KEY_SHIFT


@dataclass(frozen=True, slots=True)
class PackedStream:
    """One item stream compiled for one block size.

    ``ops``/``keys``/``times`` are parallel arrays, one row per block
    access or invalidation.  The whole object pickles compactly (flat
    buffers, no per-item Python objects), which is what lets the sweep
    executor ship it to worker processes once instead of per job.
    """

    block_size: int
    #: Trace start time — the flush-epoch anchor for flush-back policies.
    start_time: float
    ops: bytes
    keys: array  # 'q': (file_id << KEY_SHIFT) | block
    times: array  # 'd': item timestamps (every row of an item shares one)
    #: Block-access rows (equals ``count_block_accesses`` on the source
    #: stream; invalidation rows are not counted).
    n_accesses: int

    def __len__(self) -> int:
        return len(self.ops)


def pack_stream(
    stream: list[StreamItem],
    block_size: int,
    start_time: float = 0.0,
    engine: str = "auto",
) -> PackedStream:
    """Compile *stream* (from ``build_stream``) for *block_size*.

    *engine* selects the implementation: ``"auto"`` expands blocks with
    the numpy fast path when available (bit-identical packed streams;
    fuzz pillar 5 checks this continuously), ``"python"``/``"numpy"``
    force one side.
    """
    if resolve_engine(engine) == "numpy":
        from ..analysis.vectorized import VectorFallback, pack_stream_numpy

        try:
            return pack_stream_numpy(stream, block_size, start_time)
        except VectorFallback:
            pass
    if block_size <= 0:
        raise ValueError(f"block size must be positive, got {block_size}")
    bs = block_size
    ops = bytearray()
    keys = array("q")
    times = array("d")
    known: dict[int, int] = {}
    n_accesses = 0
    ops_append = ops.append
    keys_append = keys.append
    times_append = times.append

    for item in stream:
        if isinstance(item, Invalidation):
            fid = item.file_id
            k = known.get(fid, 0)
            known[fid] = k if k < item.from_byte else item.from_byte
            first_dead = -(-item.from_byte // bs)
            if first_dead > _BLOCK_LIMIT:
                # No real block index can reach this, so the comparison
                # below already drops nothing; clamp to keep fid bits clean.
                first_dead = _BLOCK_LIMIT
            ops_append(OP_INVALIDATE)
            keys_append((fid << KEY_SHIFT) + first_dead)
            times_append(item.time)
            continue
        fid = item.file_id
        start = item.start
        end = item.end
        k = known.get(fid, 0)
        first = start // bs
        last = (end - 1) // bs
        if last >= _BLOCK_LIMIT:
            raise ValueError(
                f"block index {last} does not fit a packed key "
                f"(file {fid}, {bs}-byte blocks); use the item-stream path"
            )
        base = fid << KEY_SHIFT
        t = item.time
        if item.is_write:
            for block in range(first, last + 1):
                bstart = block * bs
                covered = (start <= bstart and end >= bstart + bs) or bstart >= k
                ops_append(OP_WRITE_COVERED if covered else OP_WRITE)
                keys_append(base + block)
                times_append(t)
        else:
            for block in range(first, last + 1):
                ops_append(OP_READ)
                keys_append(base + block)
                times_append(t)
        n_accesses += last - first + 1
        if end > k:
            known[fid] = end
    return PackedStream(
        block_size=bs,
        start_time=start_time,
        ops=bytes(ops),
        keys=keys,
        times=times,
        n_accesses=n_accesses,
    )


def cached_packed_stream(
    log: TraceLog,
    block_size: int,
    include_paging: bool = False,
    engine: str = "auto",
) -> PackedStream:
    """Memoized :func:`pack_stream` per ``(log, block_size, paging, engine)``.

    The memo key carries the *resolved* engine, so a process mixing
    ``--engine python`` and ``--engine numpy`` runs can never be served
    the other engine's compile (they are bit-identical by contract —
    fuzz pillar 5 — but a differential harness must not have its two
    sides silently collapsed into one), while repeated ``auto`` calls
    still share one entry.
    """
    return memoize_per_log(
        log,
        ("packed", block_size, include_paging, resolve_engine(engine)),
        lambda: pack_stream(
            cached_stream(log, include_paging=include_paging),
            block_size,
            start_time=log.start_time,
            engine=engine,
        ),
    )


@dataclass(frozen=True, slots=True)
class PackedRun:
    """Result of one packed replay."""

    metrics: CacheMetrics
    checkpoint: CacheMetrics | None = None


def simulate_packed(
    packed: PackedStream,
    cache_bytes: int,
    policy: PolicySpec = DELAYED_WRITE,
    *,
    replacement: str = "lru",
    read_elision: bool = True,
    invalidate_on_delete: bool = True,
    checkpoint_time: float | None = None,
    flush_epoch: float | None = None,
) -> PackedRun:
    """Replay *packed* through one cache configuration.

    Semantically identical to ``BlockCacheSimulator(...).run(stream,
    checkpoint_time, flush_epoch)`` with the same knobs (the differential
    suite asserts equality field by field), minus the residency/exposure
    trackers, which need per-event hooks the tight loop does not pay for.
    """
    bs = packed.block_size
    capacity = cache_bytes // bs
    if capacity < 1:
        raise ValueError("cache smaller than one block")
    validate_replacement(replacement)
    if replacement not in ("lru", "fifo"):
        # The zoo policies replay through one generic loop driven by a
        # policy object — the same classes, and therefore the same
        # victim sequence, as the full simulator (fuzz pillar 6).
        return _simulate_packed_policy(
            packed,
            capacity,
            policy,
            replacement,
            read_elision=read_elision,
            invalidate_on_delete=invalidate_on_delete,
            checkpoint_time=checkpoint_time,
            flush_epoch=flush_epoch,
        )
    lru = replacement == "lru"
    write_through = policy.policy is WritePolicy.WRITE_THROUGH
    flushing = policy.policy is WritePolicy.FLUSH_BACK

    # Presence and recency order live in the OrderedDict; dirtiness in a
    # separate set, which makes a flush scan O(dirty blocks) instead of
    # O(cache) — the scans at 30 s intervals over a 16 MB cache otherwise
    # dominate the whole replay.
    cache: OrderedDict[int, bool] = OrderedDict()  # key -> True
    dirty_set: set[int] = set()
    by_file: dict[int, set[int]] = {}  # fid -> set of keys
    reads = writes = disk_reads = disk_writes = 0
    evictions = invalidated = 0
    dirty_created = dirty_discarded = elisions = 0
    checkpoint: CacheMetrics | None = None

    get = cache.get
    pop = cache.pop
    popitem = cache.popitem
    move = cache.move_to_end
    dirty_add = dirty_set.add
    dirty_has = dirty_set.__contains__
    dirty_drop = dirty_set.discard

    inf = float("inf")
    timed = flushing or checkpoint_time is not None
    cp_at = checkpoint_time if checkpoint_time is not None else inf
    interval = policy.flush_interval or 0.0
    if flushing:
        if flush_epoch is not None:
            next_flush = flush_epoch + interval
        elif len(packed.times):
            next_flush = packed.times[0] + interval
        else:
            next_flush = inf
    else:
        next_flush = inf

    keys = packed.keys.tolist()

    # Three loop bodies over the same rows: a generic timed one (flush
    # scans, checkpoints, FIFO), and two branch-free specializations for
    # the sweeps' hot cases — LRU delayed-write and LRU write-through
    # with no clock at all.  They must stay behaviorally identical; the
    # differential suite runs all of them against the reference.
    if timed or not lru:
        for op, key, t in zip(packed.ops, keys, packed.times.tolist()):
            if t >= cp_at:
                checkpoint = CacheMetrics(
                    read_accesses=reads,
                    write_accesses=writes,
                    disk_reads=disk_reads,
                    disk_writes=disk_writes,
                    evictions=evictions,
                    invalidated_blocks=invalidated,
                    dirty_blocks_created=dirty_created,
                    dirty_blocks_discarded=dirty_discarded,
                    read_elisions=elisions,
                )
                cp_at = inf
            while t >= next_flush:
                if dirty_set:
                    disk_writes += len(dirty_set)
                    dirty_set.clear()
                next_flush += interval
            if op == OP_INVALIDATE:
                if invalidate_on_delete:
                    fid = key >> KEY_SHIFT
                    s = by_file.get(fid)
                    if s:
                        doomed = sorted(k for k in s if k >= key)
                        if doomed:
                            for k in doomed:
                                pop(k)
                                if dirty_has(k):
                                    dirty_drop(k)
                                    dirty_discarded += 1
                                s.discard(k)
                            invalidated += len(doomed)
                            if not s:
                                del by_file[fid]
                continue
            if get(key) is not None:
                # Hit.
                if lru:
                    move(key)
                if op:
                    writes += 1
                    if write_through:
                        disk_writes += 1
                    elif not dirty_has(key):
                        dirty_add(key)
                        dirty_created += 1
                else:
                    reads += 1
                continue
            # Miss.
            if op:
                writes += 1
                if op == OP_WRITE_COVERED and read_elision:
                    elisions += 1
                else:
                    disk_reads += 1
                if write_through:
                    disk_writes += 1
                else:
                    dirty_created += 1
                    dirty_add(key)
            else:
                reads += 1
                disk_reads += 1
            cache[key] = True
            fid = key >> KEY_SHIFT
            s = by_file.get(fid)
            if s is None:
                s = by_file[fid] = set()
            s.add(key)
            if len(cache) > capacity:
                vkey, _ = popitem(False)
                evictions += 1
                if dirty_has(vkey):
                    dirty_drop(vkey)
                    disk_writes += 1
                vfid = vkey >> KEY_SHIFT
                vs = by_file[vfid]
                vs.discard(vkey)
                if not vs:
                    del by_file[vfid]
    elif write_through:
        # LRU write-through, untimed: nothing is ever dirty.
        for op, key in zip(packed.ops, keys):
            if op == OP_INVALIDATE:
                if invalidate_on_delete:
                    fid = key >> KEY_SHIFT
                    s = by_file.get(fid)
                    if s:
                        doomed = sorted(k for k in s if k >= key)
                        if doomed:
                            for k in doomed:
                                pop(k)
                                s.discard(k)
                            invalidated += len(doomed)
                            if not s:
                                del by_file[fid]
                continue
            if get(key) is not None:
                move(key)
                if op:
                    writes += 1
                    disk_writes += 1
                else:
                    reads += 1
                continue
            if op:
                writes += 1
                disk_writes += 1
                if op == OP_WRITE_COVERED and read_elision:
                    elisions += 1
                else:
                    disk_reads += 1
            else:
                reads += 1
                disk_reads += 1
            cache[key] = True
            fid = key >> KEY_SHIFT
            s = by_file.get(fid)
            if s is None:
                s = by_file[fid] = set()
            s.add(key)
            if len(cache) > capacity:
                vkey, _ = popitem(False)
                evictions += 1
                vfid = vkey >> KEY_SHIFT
                vs = by_file[vfid]
                vs.discard(vkey)
                if not vs:
                    del by_file[vfid]
    else:
        # LRU delayed-write, untimed: disk writes happen only at eviction.
        for op, key in zip(packed.ops, keys):
            if op == OP_INVALIDATE:
                if invalidate_on_delete:
                    fid = key >> KEY_SHIFT
                    s = by_file.get(fid)
                    if s:
                        doomed = sorted(k for k in s if k >= key)
                        if doomed:
                            for k in doomed:
                                pop(k)
                                if dirty_has(k):
                                    dirty_drop(k)
                                    dirty_discarded += 1
                                s.discard(k)
                            invalidated += len(doomed)
                            if not s:
                                del by_file[fid]
                continue
            if get(key) is not None:
                move(key)
                if op:
                    writes += 1
                    if not dirty_has(key):
                        dirty_add(key)
                        dirty_created += 1
                else:
                    reads += 1
                continue
            if op:
                writes += 1
                if op == OP_WRITE_COVERED and read_elision:
                    elisions += 1
                else:
                    disk_reads += 1
                dirty_created += 1
                dirty_add(key)
            else:
                reads += 1
                disk_reads += 1
            cache[key] = True
            fid = key >> KEY_SHIFT
            s = by_file.get(fid)
            if s is None:
                s = by_file[fid] = set()
            s.add(key)
            if len(cache) > capacity:
                vkey, _ = popitem(False)
                evictions += 1
                if dirty_has(vkey):
                    dirty_drop(vkey)
                    disk_writes += 1
                vfid = vkey >> KEY_SHIFT
                vs = by_file[vfid]
                vs.discard(vkey)
                if not vs:
                    del by_file[vfid]

    metrics = CacheMetrics(
        read_accesses=reads,
        write_accesses=writes,
        disk_reads=disk_reads,
        disk_writes=disk_writes,
        evictions=evictions,
        invalidated_blocks=invalidated,
        dirty_blocks_created=dirty_created,
        dirty_blocks_discarded=dirty_discarded,
        read_elisions=elisions,
    )
    return PackedRun(metrics=metrics, checkpoint=checkpoint)


def _simulate_packed_policy(
    packed: PackedStream,
    capacity: int,
    policy: PolicySpec,
    replacement: str,
    *,
    read_elision: bool,
    invalidate_on_delete: bool,
    checkpoint_time: float | None,
    flush_epoch: float | None,
) -> PackedRun:
    """The zoo replay: one generic loop around a policy object.

    Mirrors the generic timed branch of :func:`simulate_packed`, with
    the :class:`OrderedDict` recency bookkeeping replaced by a
    :class:`~repro.cache.replacement.ReplacementPolicy` driven through
    the exact operation sequence the full simulator uses (touch on hit,
    insert on fill, victim/remove on eviction, remove on invalidation)
    — which is what makes the two bit-identical for every policy.
    """
    replacer = make_replacement(replacement, capacity)
    touch = replacer.touch
    admit = replacer.insert
    choose = replacer.victim
    expel = replacer.remove

    write_through = policy.policy is WritePolicy.WRITE_THROUGH
    flushing = policy.policy is WritePolicy.FLUSH_BACK

    resident: set[int] = set()  # membership only; ordering is the policy's
    dirty_set: set[int] = set()
    by_file: dict[int, set[int]] = {}
    reads = writes = disk_reads = disk_writes = 0
    evictions = invalidated = 0
    dirty_created = dirty_discarded = elisions = 0
    checkpoint: CacheMetrics | None = None

    dirty_add = dirty_set.add
    dirty_has = dirty_set.__contains__
    dirty_drop = dirty_set.discard

    inf = float("inf")
    cp_at = checkpoint_time if checkpoint_time is not None else inf
    interval = policy.flush_interval or 0.0
    if flushing:
        if flush_epoch is not None:
            next_flush = flush_epoch + interval
        elif len(packed.times):
            next_flush = packed.times[0] + interval
        else:
            next_flush = inf
    else:
        next_flush = inf

    for op, key, t in zip(packed.ops, packed.keys.tolist(), packed.times.tolist()):
        if t >= cp_at:
            checkpoint = CacheMetrics(
                read_accesses=reads,
                write_accesses=writes,
                disk_reads=disk_reads,
                disk_writes=disk_writes,
                evictions=evictions,
                invalidated_blocks=invalidated,
                dirty_blocks_created=dirty_created,
                dirty_blocks_discarded=dirty_discarded,
                read_elisions=elisions,
            )
            cp_at = inf
        while t >= next_flush:
            if dirty_set:
                disk_writes += len(dirty_set)
                dirty_set.clear()
            next_flush += interval
        if op == OP_INVALIDATE:
            if invalidate_on_delete:
                fid = key >> KEY_SHIFT
                s = by_file.get(fid)
                if s:
                    doomed = sorted(k for k in s if k >= key)
                    if doomed:
                        for k in doomed:
                            resident.discard(k)
                            expel(k)
                            if dirty_has(k):
                                dirty_drop(k)
                                dirty_discarded += 1
                            s.discard(k)
                        invalidated += len(doomed)
                        if not s:
                            del by_file[fid]
            continue
        if key in resident:
            # Hit.
            touch(key)
            if op:
                writes += 1
                if write_through:
                    disk_writes += 1
                elif not dirty_has(key):
                    dirty_add(key)
                    dirty_created += 1
            else:
                reads += 1
            continue
        # Miss.
        if op:
            writes += 1
            if op == OP_WRITE_COVERED and read_elision:
                elisions += 1
            else:
                disk_reads += 1
            if write_through:
                disk_writes += 1
            else:
                dirty_created += 1
                dirty_add(key)
        else:
            reads += 1
            disk_reads += 1
        resident.add(key)
        admit(key)
        fid = key >> KEY_SHIFT
        s = by_file.get(fid)
        if s is None:
            s = by_file[fid] = set()
        s.add(key)
        if len(resident) > capacity:
            vkey = choose()
            resident.discard(vkey)
            expel(vkey, True)
            evictions += 1
            if dirty_has(vkey):
                dirty_drop(vkey)
                disk_writes += 1
            vfid = vkey >> KEY_SHIFT
            vs = by_file[vfid]
            vs.discard(vkey)
            if not vs:
                del by_file[vfid]

    metrics = CacheMetrics(
        read_accesses=reads,
        write_accesses=writes,
        disk_reads=disk_reads,
        disk_writes=disk_writes,
        evictions=evictions,
        invalidated_blocks=invalidated,
        dirty_blocks_created=dirty_created,
        dirty_blocks_discarded=dirty_discarded,
        read_elisions=elisions,
    )
    return PackedRun(metrics=metrics, checkpoint=checkpoint)
