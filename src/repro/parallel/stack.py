"""One-pass LRU miss-count curves (Mattson stack analysis, with deletions).

Every cache-size sweep in the paper replays the same stream once per
cache size, yet LRU caches obey the *inclusion property*: the content of
a C-block cache is always a subset of a larger one's, so a single
traversal that tracks each block's reuse depth yields hit/miss counts
for **all** sizes at once (Mattson et al., "Evaluation techniques for
storage hierarchies", IBM Systems Journal 1970).

The classical algorithm assumes blocks are never removed.  Our streams
delete: unlinks and truncations invalidate cached blocks, and with them
plain inclusion breaks (a block evicted from a small cache may survive in
a large one, so the caches are no longer nested prefixes of one recency
list).  The fix is to keep deleted blocks' *positions* as **holes**:

* the stack is a list of slots, each a live block or a hole;
* invariant: the C-block cache holds exactly the live blocks among the
  first C slots;
* delete  = mark the block's slot as a hole, in place;
* access  = push the block to the front and remove the *shallowest* hole
  (the accessed block's old slot becomes a hole first, so a plain
  move-to-front is the common no-hole case).

Only slots above the removed hole shift down, which keeps every
boundary update local: one pointer per tracked capacity follows the slot
at that depth, counting an eviction whenever a live slot is pushed
across it (the shallowest hole is by definition below no other hole, so
crossing slots are always live).

Metrics: hits and misses, evictions, invalidations and read elisions
depend only on cache *content*, which LRU keeps identical under every
write policy — the policies differ only in when dirty data reaches the
disk.  Under **write-through** no block is ever dirty and every write is
a disk write, so the one-pass curve reconstructs the reference
simulator's full :class:`~repro.cache.metrics.CacheMetrics` exactly
(asserted bit-for-bit by the differential tests).  For the other
policies disk-write counts need the per-capacity dirty state, and the
sweeps fall back to one (packed) simulation per configuration.
"""

from __future__ import annotations

from heapq import heappop, heappush

from ..cache.metrics import CacheMetrics
from ..cache.policies import WRITE_THROUGH, PolicySpec, WritePolicy
from .packed import KEY_SHIFT, OP_INVALIDATE, OP_READ, OP_WRITE_COVERED, PackedStream

__all__ = ["StackCurve", "simulate_stack"]


class _Slot:
    """One stack position: a live block or (after a delete) a hole."""

    __slots__ = ("stamp", "hole", "prev", "next")

    def __init__(self, stamp: int):
        self.stamp = stamp
        self.hole = False
        self.prev: _Slot | None = None  # toward the front (MRU)
        self.next: _Slot | None = None  # toward the tail (LRU)


class StackCurve:
    """Per-cache-size metrics from one stack traversal."""

    __slots__ = ("block_size", "cache_sizes", "_index", "_final", "_checkpoint")

    def __init__(
        self,
        block_size: int,
        cache_sizes: tuple[int, ...],
        index: dict[int, int],
        final: list[CacheMetrics],
        checkpoint: list[CacheMetrics] | None,
    ):
        self.block_size = block_size
        self.cache_sizes = cache_sizes
        self._index = index
        self._final = final
        self._checkpoint = checkpoint

    def metrics(self, cache_bytes: int) -> CacheMetrics:
        return self._final[self._index[cache_bytes]]

    def checkpoint(self, cache_bytes: int) -> CacheMetrics | None:
        if self._checkpoint is None:
            return None
        return self._checkpoint[self._index[cache_bytes]]


def simulate_stack(
    packed: PackedStream,
    cache_sizes: tuple[int, ...],
    policy: PolicySpec = WRITE_THROUGH,
    *,
    read_elision: bool = True,
    invalidate_on_delete: bool = True,
    checkpoint_time: float | None = None,
) -> StackCurve:
    """Metrics for every size in *cache_sizes*, in one pass over *packed*.

    Exact for LRU replacement under write-through (see the module
    docstring for why other policies cannot share one pass).
    """
    if policy.policy is not WritePolicy.WRITE_THROUGH:
        raise ValueError(
            "the one-pass stack simulator is exact only under write-through; "
            f"got {policy.label!r} — use simulate_packed per configuration"
        )
    bs = packed.block_size
    sizes = tuple(cache_sizes)
    caps = sorted({size // bs for size in sizes})
    if not caps:
        raise ValueError("no cache sizes given")
    if caps[0] < 1:
        raise ValueError("cache smaller than one block")
    m = len(caps)
    index = {size: caps.index(size // bs) for size in sizes}
    caps_to_j = {c: j for j, c in enumerate(caps)}

    # Depth regions: an access at stack position p falls in region r when
    # caps[r-1] < p <= caps[r] — a hit for capacities >= caps[r], a miss
    # below.  Region m means deeper than every boundary (or absent): a
    # miss everywhere.  One histogram per access class; per-capacity
    # counts are suffix (misses) / prefix (invalidations) sums at the end.
    h_read = [0] * (m + 1)
    h_cov = [0] * (m + 1)  # covered writes: elidable read-miss cost
    h_unc = [0] * (m + 1)  # uncovered writes: read-modify-write on miss
    h_inv = [0] * (m + 1)
    ev = [0] * m
    reads = writes = 0
    snapshot: tuple | None = None

    slots: dict[int, _Slot] = {}  # packed key -> live slot
    by_file: dict[int, set[int]] = {}
    holes: list[tuple[int, _Slot]] = []  # max-heap of (-stamp, hole slot)
    bounds: list[_Slot | None] = [None] * m
    head: _Slot | None = None
    tail: _Slot | None = None
    n_slots = 0
    stamp = 0

    def _region(slot: _Slot) -> int:
        s = slot.stamp
        for j, bn in enumerate(bounds):
            # The list is always in decreasing-stamp order, so "at or
            # above the boundary slot" is a stamp comparison.
            if bn is None or bn is slot or s > bn.stamp:
                return j
        return m

    def _consume(hole: _Slot) -> None:
        """Remove *hole* (the shallowest) after a push to the front.

        Slots above it shift one position deeper; a live slot pushed
        across a boundary is an eviction at that capacity.  No hole can
        sit above the shallowest one, so crossing slots are live, and a
        boundary sitting *on* the hole just refills from above.
        """
        nonlocal tail
        cs = hole.stamp
        for j, bn in enumerate(bounds):
            if bn is None:
                continue
            if bn is hole:
                bounds[j] = bn.prev
            elif bn.stamp > cs:
                ev[j] += 1
                bounds[j] = bn.prev
        up, down = hole.prev, hole.next
        up.next = down  # never the head: a push just preceded us
        if down is not None:
            down.prev = up
        else:
            tail = up

    use_time = checkpoint_time is not None
    cp_at = checkpoint_time if use_time else 0.0
    inf = float("inf")
    if use_time:
        rows = zip(packed.ops, packed.keys, packed.times)
    else:
        rows = zip(packed.ops, packed.keys)

    for row in rows:
        if use_time:
            op, key, t = row
            if t >= cp_at:
                snapshot = (
                    reads,
                    writes,
                    list(h_read),
                    list(h_cov),
                    list(h_unc),
                    list(h_inv),
                    list(ev),
                )
                cp_at = inf
        else:
            op, key = row

        if op == OP_INVALIDATE:
            if not invalidate_on_delete:
                continue
            fid = key >> KEY_SHIFT
            live = by_file.get(fid)
            if live:
                doomed = sorted(k for k in live if k >= key)
                for k in doomed:
                    slot = slots.pop(k)
                    h_inv[_region(slot)] += 1
                    slot.hole = True
                    heappush(holes, (-slot.stamp, slot))
                    live.discard(k)
                if not live:
                    del by_file[fid]
            continue

        slot = slots.get(key)
        if slot is not None:
            r = _region(slot)
            if op == OP_READ:
                reads += 1
                h_read[r] += 1
            elif op == OP_WRITE_COVERED:
                writes += 1
                h_cov[r] += 1
            else:
                writes += 1
                h_unc[r] += 1
            if slot is head:
                continue
            if holes and slot.stamp < -holes[0][0]:
                # A hole sits above this block, so its old slot stays
                # behind as a (deeper) hole and that shallowest hole is
                # the one consumed.  The block itself moves to a fresh
                # front slot.
                slot.hole = True
                heappush(holes, (-slot.stamp, slot))
                stamp += 1
                fresh = _Slot(stamp)
                fresh.next = head
                head.prev = fresh
                head = fresh
                slots[key] = fresh
                _, hole = heappop(holes)
                _consume(hole)
            else:
                # No hole above: the old slot would be the shallowest
                # hole and be consumed at once — a plain move-to-front.
                s_old = slot.stamp
                for j, bn in enumerate(bounds):
                    if bn is None:
                        continue
                    if bn is slot:
                        bounds[j] = slot.prev
                    elif bn.stamp > s_old:
                        ev[j] += 1
                        up = bn.prev
                        bounds[j] = up if up is not None else slot
                up, down = slot.prev, slot.next
                up.next = down
                if down is not None:
                    down.prev = up
                else:
                    tail = up
                slot.prev = None
                slot.next = head
                head.prev = slot
                head = slot
                stamp += 1
                slot.stamp = stamp
            continue

        # Not in the stack: a miss at every capacity.
        if op == OP_READ:
            reads += 1
            h_read[m] += 1
        elif op == OP_WRITE_COVERED:
            writes += 1
            h_cov[m] += 1
        else:
            writes += 1
            h_unc[m] += 1
        stamp += 1
        fresh = _Slot(stamp)
        fresh.next = head
        if head is not None:
            head.prev = fresh
        else:
            tail = fresh
        head = fresh
        slots[key] = fresh
        fid = key >> KEY_SHIFT
        live = by_file.get(fid)
        if live is None:
            live = by_file[fid] = set()
        live.add(key)
        if holes:
            _, hole = heappop(holes)
            _consume(hole)
        else:
            for j, bn in enumerate(bounds):
                if bn is not None:
                    ev[j] += 1
                    bounds[j] = bn.prev
            n_slots += 1
            j = caps_to_j.get(n_slots)
            if j is not None:
                bounds[j] = tail

    def _assemble(state: tuple) -> list[CacheMetrics]:
        reads, writes, h_read, h_cov, h_unc, h_inv, ev = state
        out = []
        for j in range(m):
            read_misses = sum(h_read[j + 1 :])
            covered_misses = sum(h_cov[j + 1 :])
            uncovered_misses = sum(h_unc[j + 1 :])
            disk_reads = read_misses + uncovered_misses
            elisions = 0
            if read_elision:
                elisions = covered_misses
            else:
                disk_reads += covered_misses
            out.append(
                CacheMetrics(
                    read_accesses=reads,
                    write_accesses=writes,
                    disk_reads=disk_reads,
                    disk_writes=writes,  # write-through: one per write
                    evictions=ev[j],
                    invalidated_blocks=sum(h_inv[: j + 1]),
                    dirty_blocks_created=0,
                    dirty_blocks_discarded=0,
                    read_elisions=elisions,
                )
            )
        return out

    final = _assemble((reads, writes, h_read, h_cov, h_unc, h_inv, ev))
    cp = _assemble(snapshot) if snapshot is not None else None
    return StackCurve(
        block_size=bs,
        cache_sizes=sizes,
        index=index,
        final=final,
        checkpoint=cp,
    )
