"""Vectorized Mattson curves: the cache-simulation half at column speed.

:func:`~repro.parallel.stack.simulate_stack` already collapses a whole
cache-size sweep into one pass, but it still interprets the packed
stream one op at a time in Python.  This module recomputes the
*identical* curve — exact :class:`~repro.cache.metrics.CacheMetrics`
at every tracked size, checkpoint included — with whole-column numpy
kernels.  ``simulate_stack`` stays in the tree as the differential
oracle (fuzz pillar 5 and ``tests/test_veccache.py`` compare them
continuously), exactly as ``analysis/vectorized.py`` treats the
one-pass analyzer.

The reference's stack is a list of slots (live blocks and deletion
holes) whose stamps strictly decrease with depth, so every per-op
decision it makes reduces to *counting stamps*:

* Each pushing access mints stamp ``u`` and removes exactly one older
  stamp ``r_u`` from the stack (the consumed hole, the moved slot's old
  stamp, or nothing, ``r_u = -1``, when the stack grows).  Deletions
  mark slots in place, so they never change the stamp multiset.
* The depth of stamp ``a`` after ``q`` pushes is therefore
  ``1 + (q - a) - T(q, a)`` where ``T(q, a) = #{w <= q : r_w > a}`` —
  a prefix dominance count over the removal sequence.
* A hit's histogram region, an eviction's boundary test
  (``caps[j] < depth``) and an invalidated block's region are all
  instances of that one formula.

The pipeline: previous/next occurrence per key via one stable argsort;
per-file "first invalidation at or past this block after row *i*"
via a sparse-table binary descent (all queries advance in lockstep);
hole-population levels as a reflected random walk (cumsum + running
minimum); the removal sequence inside hole episodes via a bounded
Python mini-loop over only the rows a hole is actually in play for
(the ``vectorized.py`` idiom — everywhere else ``r_u`` is a plain
column expression); and all ``T`` queries answered in one batch by a
wavelet matrix over the removal sequence (``O(log n)`` vectorized
passes for the whole batch).

Like every other kernel pair, bit-identity is the contract:
``stack_curve(..., engine="auto")`` runs the numpy kernel when it can
and silently reruns the Python oracle on :class:`VectorFallback`;
``engine="numpy"`` with numpy unavailable raises instead of degrading.
:func:`simulate_packed_numpy` rides the same machinery for the
write-through/LRU configurations (the only ones whose disk traffic is
content-determined — see the ``stack`` module docstring), so a sweep's
per-configuration replays collapse into curve evaluations too.
"""

from __future__ import annotations

from heapq import heappop, heappush

from ..cache.metrics import CacheMetrics
from ..cache.policies import DELAYED_WRITE, WRITE_THROUGH, PolicySpec, WritePolicy
from ..cache.replacement import validate_replacement
from ..trace.npview import np, resolve_engine
from .packed import (
    KEY_SHIFT,
    OP_INVALIDATE,
    OP_READ,
    OP_WRITE_COVERED,
    PackedRun,
    PackedStream,
    simulate_packed,
)
from .stack import StackCurve, simulate_stack

__all__ = [
    "replay_packed",
    "simulate_packed_numpy",
    "stack_curve",
    "stack_curve_numpy",
]

#: Row counts must stay addressable alongside a shifted file id in one
#: int64 (the per-file boundary searches encode ``fid * 2**30 + row``)
#: and as int32 ranks inside the wavelet-matrix descent.
_ROW_LIMIT = 1 << 30
_FID_LIMIT = 1 << 32


def _require(condition: bool, why: str) -> None:
    if not condition:
        from ..analysis.vectorized import VectorFallback

        raise VectorFallback(why)


def stack_curve(
    packed: PackedStream,
    cache_sizes: tuple[int, ...],
    policy: PolicySpec = WRITE_THROUGH,
    *,
    read_elision: bool = True,
    invalidate_on_delete: bool = True,
    checkpoint_time: float | None = None,
    engine: str = "auto",
) -> StackCurve:
    """One-pass curve for every size, on the fastest engine that can.

    ``"auto"`` uses the numpy kernel when available (bit-identical
    curves), falling back to :func:`simulate_stack` when the kernel
    declines the input; ``"python"``/``"numpy"`` force one side.
    """
    if resolve_engine(engine) == "numpy":
        from ..analysis.vectorized import VectorFallback

        try:
            return stack_curve_numpy(
                packed,
                cache_sizes,
                policy,
                read_elision=read_elision,
                invalidate_on_delete=invalidate_on_delete,
                checkpoint_time=checkpoint_time,
            )
        except VectorFallback:
            pass
    return simulate_stack(
        packed,
        cache_sizes,
        policy,
        read_elision=read_elision,
        invalidate_on_delete=invalidate_on_delete,
        checkpoint_time=checkpoint_time,
    )


def replay_packed(
    packed: PackedStream,
    cache_bytes: int,
    policy: PolicySpec = DELAYED_WRITE,
    *,
    replacement: str = "lru",
    read_elision: bool = True,
    invalidate_on_delete: bool = True,
    checkpoint_time: float | None = None,
    flush_epoch: float | None = None,
    engine: str = "auto",
) -> PackedRun:
    """One configuration replay, vectorized when the policy allows.

    Write-through LRU configurations are curve evaluations (dirty state
    never exists), so the numpy kernel answers them from depth arrays;
    every other policy/replacement keeps the exact Python replay.
    """
    if resolve_engine(engine) == "numpy":
        from ..analysis.vectorized import VectorFallback

        try:
            return simulate_packed_numpy(
                packed,
                cache_bytes,
                policy,
                replacement=replacement,
                read_elision=read_elision,
                invalidate_on_delete=invalidate_on_delete,
                checkpoint_time=checkpoint_time,
                flush_epoch=flush_epoch,
            )
        except VectorFallback:
            pass
    return simulate_packed(
        packed,
        cache_bytes,
        policy,
        replacement=replacement,
        read_elision=read_elision,
        invalidate_on_delete=invalidate_on_delete,
        checkpoint_time=checkpoint_time,
        flush_epoch=flush_epoch,
    )


def simulate_packed_numpy(
    packed: PackedStream,
    cache_bytes: int,
    policy: PolicySpec = DELAYED_WRITE,
    *,
    replacement: str = "lru",
    read_elision: bool = True,
    invalidate_on_delete: bool = True,
    checkpoint_time: float | None = None,
    flush_epoch: float | None = None,
) -> PackedRun:
    """Vectorized :func:`~repro.parallel.packed.simulate_packed`.

    Exact for LRU write-through (timed or not): with no dirty blocks
    the replay's metrics equal the stack curve evaluated at this one
    capacity.  Anything stateful (delayed write, flush-back, or any
    non-LRU zoo policy) raises :class:`VectorFallback` — those replays
    genuinely depend on per-capacity state (dirty blocks, reference
    bits, ghost lists) that the LRU-shaped one-pass curve cannot carry;
    see DESIGN.md §16 for the curve-vs-replay split.
    """
    bs = packed.block_size
    if cache_bytes // bs < 1:
        raise ValueError("cache smaller than one block")
    validate_replacement(replacement)
    _require(
        policy.policy is WritePolicy.WRITE_THROUGH and replacement == "lru",
        f"stateful configuration ({policy.label!r}, {replacement!r}) "
        "needs the per-op replay",
    )
    del flush_epoch  # write-through never flushes; accepted for signature parity
    curve = stack_curve_numpy(
        packed,
        (cache_bytes,),
        WRITE_THROUGH,
        read_elision=read_elision,
        invalidate_on_delete=invalidate_on_delete,
        checkpoint_time=checkpoint_time,
    )
    return PackedRun(
        metrics=curve.metrics(cache_bytes),
        checkpoint=curve.checkpoint(cache_bytes),
    )


def stack_curve_numpy(
    packed: PackedStream,
    cache_sizes: tuple[int, ...],
    policy: PolicySpec = WRITE_THROUGH,
    *,
    read_elision: bool = True,
    invalidate_on_delete: bool = True,
    checkpoint_time: float | None = None,
) -> StackCurve:
    """Vectorized :func:`~repro.parallel.stack.simulate_stack`."""
    if np is None:  # pragma: no cover - guarded by resolve_engine at call sites
        raise RuntimeError("numpy is not available")
    if policy.policy is not WritePolicy.WRITE_THROUGH:
        raise ValueError(
            "the one-pass stack simulator is exact only under write-through; "
            f"got {policy.label!r} — use simulate_packed per configuration"
        )
    bs = packed.block_size
    sizes = tuple(cache_sizes)
    caps_list = sorted({size // bs for size in sizes})
    if not caps_list:
        raise ValueError("no cache sizes given")
    if caps_list[0] < 1:
        raise ValueError("cache smaller than one block")
    m = len(caps_list)
    index = {size: caps_list.index(size // bs) for size in sizes}
    caps = np.asarray(caps_list, dtype=np.int64)

    ops = np.frombuffer(packed.ops, dtype=np.uint8)
    keys = np.frombuffer(packed.keys, dtype=np.int64)
    n = len(ops)
    _require(len(keys) == n, "ops/keys row counts disagree")
    _require(n < _ROW_LIMIT, "stream too long for packed row encoding")
    if n:
        _require(
            int(keys.min()) >= 0 and (int(keys.max()) >> KEY_SHIFT) < _FID_LIMIT,
            "packed keys outside the vector kernel's encodable range",
        )

    # Checkpoint cut: the oracle snapshots before the first row whose
    # timestamp reaches checkpoint_time (NaN never compares true there,
    # matching `t >= cp_at`).  Every counter below increments at a known
    # row, so the snapshot is the same histogram restricted to rows < cut.
    cut = None
    if checkpoint_time is not None:
        times = np.frombuffer(packed.times, dtype=np.float64)
        _require(len(times) == n, "ops/times row counts disagree")
        reached = times >= checkpoint_time
        if bool(reached.any()):
            cut = int(reached.argmax())

    state = _curve_rows(ops, keys, n, caps, m, invalidate_on_delete)
    final = _assemble(state, None, caps, m, read_elision)
    cp = _assemble(state, cut, caps, m, read_elision) if cut is not None else None
    return StackCurve(
        block_size=bs,
        cache_sizes=sizes,
        index=index,
        final=final,
        checkpoint=cp,
    )


def _stable_key_order(keys_a, na):
    """Stable sort order by key, via one quicksort when keys pack.

    A stable mergesort on int64 keys is ~2.5x slower than quicksort
    here; packing the access index into the low bits makes quicksort
    order identical to the stable order whenever the keys leave room.
    """
    shift = int(na - 1).bit_length()
    if shift and int(keys_a.max()) < (1 << (62 - shift)):
        return np.argsort(
            (keys_a << shift) + np.arange(na, dtype=np.int64)
        )
    return np.argsort(keys_a, kind="stable")


def _curve_rows(ops, keys, n, caps, m, invalidate_on_delete):
    """Per-row curve contributions (regions, eviction depths, kills).

    Returns dense arrays carrying, for every access row, its histogram
    class and region, and for every push/kill, the row it lands on —
    enough to histogram both the final state and any row-prefix
    (checkpoint) without a second pass.
    """
    inv_full = ops == OP_INVALIDATE
    acc_mask = ~inv_full
    rows_a = np.flatnonzero(acc_mask).astype(np.int64)
    na = len(rows_a)
    keys_a = keys[rows_a]
    ops_a = ops[rows_a]
    if invalidate_on_delete:
        rows_i = np.flatnonzero(inv_full).astype(np.int64)
    else:
        rows_i = np.zeros(0, dtype=np.int64)
    ni = len(rows_i)

    # Previous/next access of the same key, in access-index space.
    prev_ai = np.full(na, -1, dtype=np.int64)
    next_ai = np.full(na, na, dtype=np.int64)
    if na > 1:
        order = _stable_key_order(keys_a, na)
        ksort = keys_a[order]
        same = ksort[1:] == ksort[:-1]
        prev_ai[order[1:][same]] = order[:-1][same]
        next_ai[order[:-1][same]] = order[1:][same]

    # First qualifying invalidation row after each access: the earliest
    # inval row j > row(i) with inv_fid == fid(key) and inv_key <= key
    # (the oracle's "kill every live k >= inv_key of this file" scan).
    # Only accesses with a same-file invalidation still ahead take part
    # in the binary descent.
    first_inv_row = np.full(na, n, dtype=np.int64)  # n == "never"
    if ni and na:
        inv_keys = keys[rows_i]
        inv_fid = inv_keys >> KEY_SHIFT
        iorder = np.argsort(inv_fid, kind="stable")  # row order kept per fid
        s_fid = inv_fid[iorder]
        s_row = rows_i[iorder]
        s_key = inv_keys[iorder]
        acc_fid = keys_a >> KEY_SHIFT
        enc = s_fid * _ROW_LIMIT + s_row
        t0 = np.searchsorted(enc, acc_fid * _ROW_LIMIT + rows_a, side="right")
        seg_end = np.searchsorted(s_fid, acc_fid, side="right")
        live = np.flatnonzero(t0 < seg_end)
        if len(live):
            pos = _first_leq(s_key, t0[live], seg_end[live], keys_a[live])
            found = pos < seg_end[live]
            first_inv_row[live] = np.where(
                found, s_row[np.minimum(pos, ni - 1)], np.int64(n)
            )

    # Hit/miss, head hits, pushes and stamps.  An access hits iff the
    # key was accessed before and no qualifying inval fell in between;
    # it is a head hit (no push, region 0) iff the immediately
    # preceding access row — invalidation rows don't move the head —
    # was the same key.  A slot's stamp is the push count right after
    # the key's previous access row (head-hit chains keep it stable).
    hit = prev_ai >= 0
    if ni and na:
        hit &= first_inv_row[np.maximum(prev_ai, 0)] > rows_a
    head_hit = hit & (prev_ai == np.arange(na, dtype=np.int64) - 1)
    push = ~head_hit
    p_after = np.cumsum(push)  # stamp minted by access i (when it pushes)
    n_push = int(p_after[-1]) if na else 0
    miss = ~hit

    # Kills: access i's block dies at first_inv_row[i] when that comes
    # before the key's next access; the hole keeps the slot's stamp.
    if ni and na:
        next_row = np.where(
            next_ai < na, rows_a[np.minimum(next_ai, na - 1)], np.int64(n)
        )
        killed = first_inv_row < next_row
    else:
        killed = np.zeros(na, dtype=bool)
    kill_rows = first_inv_row[killed]
    kill_stamps = p_after[killed]

    # Hole population as a reflected walk: +kills at inval rows, -1 at
    # miss pushes (a pushing hit swaps its old stamp in and one out, so
    # it never changes the level).  Misses at level 0 grow the stack.
    delta = np.zeros(n, dtype=np.int64)
    delta[rows_a[miss]] = -1
    if len(kill_rows):
        delta += np.bincount(kill_rows, minlength=n)
    prefix = np.concatenate((np.zeros(1, dtype=np.int64), np.cumsum(delta)))
    level_before = (prefix - np.minimum.accumulate(prefix))[:-1]
    lvl_acc = level_before[rows_a] if na else np.zeros(0, dtype=np.int64)
    growth = miss & (lvl_acc == 0)

    # Removal sequence r[1..P]: r_u is the stamp push u takes out of the
    # stack.  Outside hole episodes it's pure column math (hit: the old
    # stamp; miss: growth, nothing).  Inside an episode the max-stamp
    # hole wins, which is genuinely order-dependent: a bounded heap
    # mini-loop walks only the rows where a hole is in play, merged with
    # the kills in one row-ordered event list.
    r_arr = np.full(n_push + 1, -1, dtype=np.int64)
    plain = hit & push & (lvl_acc == 0)
    if bool(plain.any()):
        pl = np.flatnonzero(plain)
        r_arr[p_after[pl]] = p_after[prev_ai[pl]]
    ep = np.flatnonzero((lvl_acc > 0) & push)
    if len(ep):
        nk = len(kill_rows)
        eorder = np.argsort(np.concatenate((kill_rows, rows_a[ep])))
        # One value per event: kills and pushing hits insert a (negated)
        # stamp, miss pushes insert nothing (positive sentinel).  Kill
        # rows never collide with access rows, so a plain quicksort is
        # a valid event order (ties only happen between kills, whose
        # mutual order is irrelevant — they just enter the hole set).
        enc_val = np.concatenate(
            (-kill_stamps, np.where(hit[ep], -p_after[np.maximum(prev_ai[ep], 0)], 1))
        )[eorder].tolist()
        enc_u = np.concatenate(
            (np.zeros(nk, dtype=np.int64), p_after[ep])
        )[eorder].tolist()
        heap: list[int] = []
        out = r_arr  # local alias; scatter via plain int indices
        hpush, hpop = heappush, heappop
        for v, u in zip(enc_val, enc_u):
            if u:
                if v < 0:
                    hpush(heap, v)
                out[u] = -hpop(heap)
            else:
                hpush(heap, v)

    # Depth queries, answered in one wavelet-matrix batch:
    #   hit region      d = (u - a) - T(u-1, a)
    #   eviction bound  D = (u - r_u) - T(u-1, r_u)   (r_u >= 0)
    #   kill region     d = 1 + (q - a) - T(q, a)
    # where T(q, a) = #{w <= q : r_w > a}.  Two filters keep the batch
    # small: T >= 0 bounds every depth by u - a (or u - r_u), so any
    # query bounded by caps[0] is region 0 / a bin-0 eviction without
    # being asked; and a pushing hit whose removal is its own old stamp
    # (r_u == a — every plain move-to-front) shares its push's query.
    c0 = int(caps[0])
    pu = p_after[push] if na else np.zeros(0, dtype=np.int64)
    ru = r_arr[pu]
    consume = ru >= 0
    sel_ev = np.flatnonzero(consume & (pu - ru > c0))
    q_ev = pu[sel_ev] - 1
    a_ev = ru[sel_ev]
    nh = np.flatnonzero(hit & push)
    u_nh = p_after[nh]
    a_nh = p_after[prev_ai[nh]] if len(nh) else np.zeros(0, dtype=np.int64)
    sel_hit = np.flatnonzero((r_arr[u_nh] != a_nh) & (u_nh - a_nh > c0))
    q_hit = u_nh[sel_hit] - 1
    a_hit = a_nh[sel_hit]
    push_counts = np.bincount(rows_a[push], minlength=n) if na else np.zeros(n)
    p_pref = np.concatenate(
        (np.zeros(1, dtype=np.int64), np.cumsum(push_counts).astype(np.int64))
    )
    q_kill_all = p_pref[kill_rows]
    sel_kill = np.flatnonzero(1 + q_kill_all - kill_stamps > c0)
    q_kill = q_kill_all[sel_kill]
    a_kill = kill_stamps[sel_kill]

    t_ev, t_hit, t_kill = _dominance_batch(
        r_arr[1:], n_push, (q_ev, a_ev), (q_hit, a_hit), (q_kill, a_kill)
    )

    # Eviction depth per push: consumed-hole depth (band-filtered pushes
    # keep a bin-0 sentinel), or stack size + 1 on growth (the reference
    # evicts at every boundary the stack covers).
    depth_push = np.ones(len(pu), dtype=np.int64)
    depth_push[sel_ev] = (q_ev + 1 - a_ev) - t_ev
    if bool(growth.any()):
        g_running = np.cumsum(growth)
        push_idx = np.flatnonzero(push)
        g_on_push = growth[push_idx]
        depth_push[g_on_push] = g_running[push_idx][g_on_push]
    idx_ev = np.searchsorted(caps, depth_push, side="left")

    # Regions: region = #{caps < depth}; band-filtered queries are 0 by
    # construction, r_u == a hits reuse their push's depth.
    reg_acc = np.full(na, m, dtype=np.int64)
    reg_acc[head_hit] = 0
    if len(nh):
        reg_hit = np.zeros(len(nh), dtype=np.int64)
        shared = np.flatnonzero(r_arr[u_nh] == a_nh)
        reg_hit[shared] = np.searchsorted(
            caps, depth_push[u_nh[shared] - 1], side="left"
        )
        reg_hit[sel_hit] = np.searchsorted(
            caps, (q_hit + 1 - a_hit) - t_hit, side="left"
        )
        reg_acc[nh] = reg_hit
    reg_kill = np.zeros(len(kill_rows), dtype=np.int64)
    reg_kill[sel_kill] = np.searchsorted(
        caps, 1 + (q_kill - a_kill) - t_kill, side="left"
    )

    return {
        "rows_a": rows_a,
        "ops_a": ops_a,
        "reg_acc": reg_acc,
        "push_rows": rows_a[push] if na else rows_a,
        "idx_ev": idx_ev,
        "kill_rows": kill_rows,
        "reg_kill": reg_kill,
    }


def _assemble(state, cut, caps, m, read_elision):
    """Histogram + fold into CacheMetrics, optionally row-limited."""
    np_ = np
    rows_a = state["rows_a"]
    ops_a = state["ops_a"]
    reg_acc = state["reg_acc"]
    push_rows = state["push_rows"]
    idx_ev = state["idx_ev"]
    kill_rows = state["kill_rows"]
    reg_kill = state["reg_kill"]
    if cut is not None:
        keep = rows_a < cut
        ops_a = ops_a[keep]
        reg_acc = reg_acc[keep]
        ev_keep = push_rows < cut
        idx_ev = idx_ev[ev_keep]
        k_keep = kill_rows < cut
        reg_kill = reg_kill[k_keep]
    is_read = ops_a == OP_READ
    is_cov = ops_a == OP_WRITE_COVERED
    is_unc = ~(is_read | is_cov)
    h_read = np_.bincount(reg_acc[is_read], minlength=m + 1)
    h_cov = np_.bincount(reg_acc[is_cov], minlength=m + 1)
    h_unc = np_.bincount(reg_acc[is_unc], minlength=m + 1)
    h_inv = np_.bincount(reg_kill, minlength=m + 1)
    ev_cnt = np_.bincount(idx_ev, minlength=m + 1)
    reads = int(is_read.sum())
    writes = int(len(ops_a) - reads)
    # Suffix sums at j+1 (misses/evictions past boundary j) and the
    # inclusive invalidation prefix, for every size in one pass each.
    rm = h_read[::-1].cumsum()[::-1][1 : m + 1].tolist()
    cm = h_cov[::-1].cumsum()[::-1][1 : m + 1].tolist()
    um = h_unc[::-1].cumsum()[::-1][1 : m + 1].tolist()
    ev = ev_cnt[::-1].cumsum()[::-1][1 : m + 1].tolist()
    inv = h_inv.cumsum()[:m].tolist()
    extra = 0 if read_elision else 1
    return [
        CacheMetrics(
            read_accesses=reads,
            write_accesses=writes,
            disk_reads=rm[j] + um[j] + extra * cm[j],
            disk_writes=writes,  # write-through: one per write
            evictions=ev[j],
            invalidated_blocks=inv[j],
            dirty_blocks_created=0,
            dirty_blocks_discarded=0,
            read_elisions=cm[j] if read_elision else 0,
        )
        for j in range(m)
    ]


def _first_leq(values, lo, hi, bound):
    """Per query: first index t in [lo, hi) with values[t] <= bound.

    Returns hi when no such index exists.  A sparse table of window
    minima drives a binary descent; all queries advance in lockstep,
    so the whole batch costs O(log n) vectorized passes.  [lo, hi)
    ranges must not cross the callers' segment boundaries — they don't:
    both bounds come from searches within one file's invalidation run.
    """
    pos = lo.astype(np.int64).copy()
    nvals = len(values)
    if nvals == 0 or len(pos) == 0:
        return pos
    tables = [values]
    step = 1
    while step * 2 <= nvals:
        prev = tables[-1]
        tables.append(np.minimum(prev[: len(prev) - step], prev[step:]))
        step *= 2
    for ell in range(len(tables) - 1, -1, -1):
        width = 1 << ell
        table = tables[ell]
        can = pos + width <= hi
        if bool(can.any()):
            at = pos[can]
            ahead = table[at] > bound[can]
            pos[can] = at + np.where(ahead, width, 0)
    return pos


def _dominance_batch(removals, n_push, *queries):
    """T(q, a) = #{w <= q : r_w > a} for several (q, a) query arrays.

    One wavelet matrix over the removal sequence answers every batch in
    ``O(bits)`` vectorized passes: T = q' - #(values <= a in prefix q'),
    with growth sentinels (-1, never > a) dropped from the sequence and
    every prefix length q remapped to its consuming-only rank q'.  All
    ranks fit int32 (row counts are capped well below 2**31), which
    halves the memory traffic of the descent.
    """
    sizes = [len(q) for q, _ in queries]
    total = sum(sizes)
    if n_push == 0 or total == 0:
        return tuple(np.zeros(s, dtype=np.int64) for s in sizes)
    consume = removals >= 0
    cons_pref = np.concatenate(
        (np.zeros(1, dtype=np.int64), np.cumsum(consume))
    )
    cur = removals[consume].astype(np.int32)
    q_all = cons_pref[np.concatenate([q for q, _ in queries])].astype(np.int32)
    x = (np.concatenate([a for _, a in queries]) + 1).astype(np.int32)
    nbits = max(1, int(n_push + 1).bit_length())
    lo = np.zeros(total, dtype=np.int32)
    hi = q_all.copy()
    ans = np.zeros(total, dtype=np.int32)
    ones = np.empty(len(cur) + 1, dtype=np.int32)
    ones[0] = 0
    for ell in range(nbits - 1, -1, -1):
        bitmask = np.int32(1 << ell)
        bitb = (cur & bitmask).astype(bool)
        np.cumsum(bitb, dtype=np.int32, out=ones[1:])
        n_zero = np.int32(len(cur)) - ones[-1]
        xbb = (x & bitmask).astype(bool)
        ones_lo = ones[lo]
        ones_hi = ones[hi]
        zeros_lo = lo - ones_lo
        zeros_hi = hi - ones_hi
        ans += np.where(xbb, zeros_hi - zeros_lo, 0)
        lo = np.where(xbb, n_zero + ones_lo, zeros_lo)
        hi = np.where(xbb, n_zero + ones_hi, zeros_hi)
        if ell:
            cur = np.concatenate((cur[~bitb], cur[bitb]))
    t = (q_all - ans).astype(np.int64)
    out = []
    start = 0
    for s in sizes:
        out.append(t[start : start + s])
        start += s
    return tuple(out)
