"""repro.statics — an AST-based invariant linter for this repository.

The runtime correctness story (differential oracles, fsck after long
syntheses) rests on invariants no oracle enforces: seeded randomness
only, deterministic iteration order, picklable payloads across
``repro.parallel``, hot-path classes with ``__slots__``, and the trace
schema staying in lock-step across ``records.py`` / ``columns.py`` /
``io_binary.py``.  This package makes each of those a static, CI-checked
property.

Beyond the per-file syntactic rules, the linter is flow-aware: a
project-wide call graph (:mod:`repro.statics.callgraph`) and an
intraprocedural taint interpreter (:mod:`repro.statics.dataflow`) power
rules that follow values through assignments and modules — RNG
provenance, time-unit mixing, and the cross-module engine-parity
contract around every ``resolve_engine`` dispatch.

Entry points::

    repro-fs lint src tests --format json --baseline .statics-baseline.json
    repro-fs lint --changed origin/main          # scoped, pre-commit speed
    repro-fs lint src tests --format sarif       # GitHub code scanning

    from repro.statics import lint_paths
    report = lint_paths(["src"])
    assert report.ok

Rule catalog (see DESIGN.md sections 9 and 14 for the full prose):

=========  ========  =====================================================
id         severity  invariant
=========  ========  =====================================================
REP-D001   error     no wall-clock / OS-entropy reads in deterministic code
REP-D002   error     no unseeded randomness (module-level ``random``)
REP-D003   error     no bare-set iteration / bare ``popitem`` when order
                     is pinned
REP-D004   error     no module-level RNG reached through dataflow aliases
REP-D005   error     no draws from an RNG constructed unseeded upstream
REP-U001   error     float-seconds and u32-centiseconds never mix without
                     an explicit ``* 100`` / ``/ 100`` conversion
REP-P001   error     sweep-executor workers must pickle by reference
REP-P002   error     workers must not mutate module-level state
REP-H001   warning   hot-path classes must define ``__slots__``
REP-H002   error     no float ``==``/``!=`` in simulator code
REP-H003   warning   no per-event loops over trace columns outside the
                     reference-oracle modules (vectorize instead)
REP-S001   error     trace schema agrees across records/columns/io_binary
REP-S002   error     corpus on-disk schema digest matches SCHEMA_DIGESTS
REP-E001   error     every engine dispatch keeps a pure-python oracle twin
                     with a matching signature (call-graph checked)
REP-E002   error     every engine dispatch has a fuzz-pillar differential
REP-A000   error     suppressions must name a rule id and a justification
REP-A001   error     no stale suppressions (allow comments matching nothing)
REP-A002   error     file fails to parse (engine-generated)
=========  ========  =====================================================

Findings are suppressed in place with
``# repro: allow[RULE-ID] -- justification`` and grandfathered in bulk
via a committed baseline file (``repro-fs lint --update-baseline``
rewrites it).
"""

from .baseline import load_baseline, write_baseline
from .callgraph import CallGraph, build_callgraph, extract_facts, load_or_build
from .context import ModuleContext, module_name_for
from .dataflow import FlowResult, TaintPolicy, analyze_flow
from .engine import LintReport, collect_files, lint_paths
from .findings import Finding, Severity
from .registry import CROSS_RULES, RULES, rule_catalog
from .reporters import render_json, render_sarif, render_text
from .rules_engines import check_engine_parity, check_fuzz_coverage
from .rules_schema import check_corpus_schema, check_trace_schema

__all__ = [
    "Finding",
    "Severity",
    "LintReport",
    "ModuleContext",
    "module_name_for",
    "CallGraph",
    "build_callgraph",
    "extract_facts",
    "load_or_build",
    "FlowResult",
    "TaintPolicy",
    "analyze_flow",
    "collect_files",
    "lint_paths",
    "load_baseline",
    "write_baseline",
    "render_json",
    "render_sarif",
    "render_text",
    "rule_catalog",
    "check_corpus_schema",
    "check_trace_schema",
    "check_engine_parity",
    "check_fuzz_coverage",
    "RULES",
    "CROSS_RULES",
]
