"""The committed baseline of grandfathered findings.

A baseline entry identifies a finding by its line-number-free
fingerprint (see :attr:`repro.statics.findings.Finding.fingerprint`), so
grandfathered findings survive edits that merely shift lines.  The file
is JSON, sorted, and meant to be committed; regenerating it is
``repro-fs lint --write-baseline PATH``.
"""

from __future__ import annotations

import json
from pathlib import Path

from .findings import Finding

__all__ = ["load_baseline", "write_baseline"]

_VERSION = 1


def load_baseline(path: str | Path) -> set[str]:
    """Fingerprints grandfathered by the baseline file at *path*."""
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, dict) or data.get("version") != _VERSION:
        raise ValueError(f"unrecognized baseline file format in {path}")
    return {entry["fingerprint"] for entry in data.get("findings", [])}


def write_baseline(path: str | Path, findings: list[Finding]) -> int:
    """Write *findings* as the new baseline; returns the entry count."""
    entries = sorted(
        (
            {
                "fingerprint": f.fingerprint,
                "rule": f.rule_id,
                "path": f.path,
                "message": f.message,
            }
            for f in findings
        ),
        key=lambda e: (e["path"], e["rule"], e["fingerprint"]),
    )
    payload = {
        "version": _VERSION,
        "generated_by": "repro-fs lint --write-baseline",
        "findings": entries,
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=False)
        fh.write("\n")
    return len(entries)
