"""Project-wide symbol table and call graph.

The per-module rules see one file at a time; the engine-parity family
(:mod:`repro.statics.rules_engines`) needs to know *who calls whom
across the tree*: which functions gate on
:func:`repro.trace.npview.resolve_engine`, which fast-path kernels those
gates reach, and whether any :mod:`repro.fuzz` pillar exercises the
pair.  This module builds that view from the same import/scope tracking
:class:`~repro.statics.context.ModuleContext` already does per file.

Construction is two-phase so the expensive half caches:

1. :func:`extract_facts` — per file, a pure function of the source
   text: the module's import map, its top-level symbols (functions,
   classes, methods, with parameter lists), every call/reference site
   with its *unresolved* dotted origin, and any engine-dispatch
   structure (``if resolve_engine(...) == "numpy":`` branches).  Facts
   serialize to JSON keyed by a content digest, which is what
   ``repro-fs lint --callgraph-cache`` stores between runs.
2. :class:`CallGraph` assembly — cross-file: relative imports are
   normalized against the module's package, re-exports are followed
   through ``__init__`` alias chains, and each site is resolved to a
   project symbol where possible.

Shadowing follows runtime semantics closely enough for linting: a
module-level ``def``/``class`` with the same name as an import wins, so
a local ``helper`` is not mistaken for another module's.
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from . import config
from .context import ModuleContext

__all__ = [
    "CallGraph",
    "CallSite",
    "DispatchSite",
    "ModuleFacts",
    "SymbolInfo",
    "build_callgraph",
    "extract_facts",
    "load_or_build",
]

#: Bump when the serialized fact layout changes; stale caches rebuild.
CACHE_VERSION = 2

#: How many ``__init__`` re-export hops to follow before giving up.
_ALIAS_DEPTH = 6


@dataclass(frozen=True, slots=True)
class SymbolInfo:
    """One project-defined function, class, or method."""

    qname: str  # "repro.parallel.veccache.stack_curve_numpy"
    module: str
    name: str  # "stack_curve_numpy", "Cls", or "Cls.method"
    kind: str  # "function" | "class" | "method"
    path: str
    lineno: int
    #: Parameter names in order (``self``/``cls`` dropped for methods;
    #: for a class, the ``__init__`` or dataclass-field parameters).
    params: tuple[str, ...]


@dataclass(frozen=True, slots=True)
class CallSite:
    """One call, or a bare function reference passed as an argument."""

    caller: str  # qname of the enclosing top-level symbol, or <module>
    callee: str  # project qname when resolved, else the dotted origin
    resolved: bool
    path: str
    lineno: int
    #: "numpy" inside an engine-dispatch numpy branch, "fallback"
    #: elsewhere inside a dispatch function, "" outside dispatchers.
    branch: str = ""
    #: True for a function passed by value rather than called.
    ref: bool = False


@dataclass(frozen=True, slots=True)
class DispatchSite:
    """One ``if resolve_engine(...) == "numpy":`` gate."""

    qname: str  # the dispatch function
    module: str
    path: str
    lineno: int
    #: True when a pure-Python path exists: the gate has an ``else``
    #: branch or statements follow it in the same block.
    has_fallback: bool


@dataclass(slots=True)
class ModuleFacts:
    """Everything the graph needs from one file (cacheable)."""

    path: str
    digest: str
    module: str
    is_package: bool
    imports: dict[str, str]
    symbols: list[SymbolInfo] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)
    dispatches: list[DispatchSite] = field(default_factory=list)


def _digest(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()[:16]


def _params_of(
    fn: ast.FunctionDef | ast.AsyncFunctionDef, *, drop_self: bool
) -> tuple[str, ...]:
    args = fn.args
    names = [a.arg for a in (*args.posonlyargs, *args.args)]
    if drop_self and names and names[0] in ("self", "cls"):
        names = names[1:]
    if args.vararg is not None:
        names.append("*" + args.vararg.arg)
    names.extend(a.arg for a in args.kwonlyargs)
    if args.kwarg is not None:
        names.append("**" + args.kwarg.arg)
    return tuple(names)


def _is_gate_call(ctx: ModuleContext, node: ast.expr) -> bool:
    if not isinstance(node, ast.Call):
        return False
    resolved = ctx.resolve(node.func)
    if resolved is None:
        return False
    return resolved.rsplit(".", 1)[-1] in config.ENGINE_GATE_NAMES


def _numpy_gate_test(ctx: ModuleContext, test: ast.expr) -> bool:
    """True for ``resolve_engine(...) == "numpy"`` (either operand order)."""
    if not isinstance(test, ast.Compare) or len(test.ops) != 1:
        return False
    if not isinstance(test.ops[0], ast.Eq):
        return False
    left, right = test.left, test.comparators[0]
    for gate, other in ((left, right), (right, left)):
        if (
            _is_gate_call(ctx, gate)
            and isinstance(other, ast.Constant)
            and other.value == "numpy"
        ):
            return True
    return False


class _FactCollector:
    """Walks one module and fills a :class:`ModuleFacts`."""

    def __init__(self, ctx: ModuleContext, facts: ModuleFacts):
        self.ctx = ctx
        self.facts = facts
        self._local_symbols: set[str] = set()
        self._nodes: dict[str, ast.AST] = {}

    def collect(self) -> None:
        tree = self.ctx.tree
        for node in tree.body:
            self._add_toplevel(node)
        all_defs = {
            node
            for node in ast.walk(tree)
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            )
        }
        self._collect_calls(tree, "<module>", skip=all_defs, branch_map={})
        for sym in list(self.facts.symbols):
            if sym.kind == "class":
                continue
            node = self._nodes.get(sym.qname)
            if node is None:
                continue
            branch_map = self._branch_map(node, sym)
            self._collect_calls(node, sym.qname, skip=None, branch_map=branch_map)

    def _add_toplevel(self, node: ast.stmt) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._add_function(node, owner=None)
        elif isinstance(node, ast.ClassDef):
            self._add_class(node)
        elif isinstance(node, (ast.If, ast.Try)):
            # Conditional defs (version gates, optional-dep fallbacks):
            # record every branch's definitions; later ones win.
            for seq in ("body", "orelse", "finalbody"):
                for sub in getattr(node, seq, ()):
                    self._add_toplevel(sub)

    # -- symbols -----------------------------------------------------------

    def _add_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef, owner: str | None
    ) -> None:
        name = node.name if owner is None else f"{owner}.{node.name}"
        qname = f"{self.facts.module}.{name}"
        self.facts.symbols.append(
            SymbolInfo(
                qname=qname,
                module=self.facts.module,
                name=name,
                kind="function" if owner is None else "method",
                path=self.facts.path,
                lineno=node.lineno,
                params=_params_of(node, drop_self=owner is not None),
            )
        )
        self._local_symbols.add(name.split(".", 1)[0])
        self._nodes[qname] = node

    def _add_class(self, node: ast.ClassDef) -> None:
        init_params: tuple[str, ...] = ()
        methods: list[ast.FunctionDef | ast.AsyncFunctionDef] = []
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                methods.append(stmt)
                if stmt.name == "__init__":
                    init_params = _params_of(stmt, drop_self=True)
        if not init_params:
            # Dataclasses: annotated class-body fields are the signature.
            init_params = tuple(
                stmt.target.id
                for stmt in node.body
                if isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
            )
        self.facts.symbols.append(
            SymbolInfo(
                qname=f"{self.facts.module}.{node.name}",
                module=self.facts.module,
                name=node.name,
                kind="class",
                path=self.facts.path,
                lineno=node.lineno,
                params=init_params,
            )
        )
        self._local_symbols.add(node.name)
        for method in methods:
            self._add_function(method, owner=node.name)

    # -- dispatch structure ------------------------------------------------

    def _branch_map(self, fn: ast.AST, sym: SymbolInfo) -> dict[int, str]:
        """``id(node) -> branch tag`` for nodes inside a dispatch function."""
        gates = [
            node
            for node in ast.walk(fn)
            if isinstance(node, ast.If) and _numpy_gate_test(self.ctx, node.test)
        ]
        if not gates:
            return {}
        numpy_nodes: set[int] = set()
        for gate in gates:
            for stmt in gate.body:
                for sub in ast.walk(stmt):
                    numpy_nodes.add(id(sub))
        branch_map = {
            id(node): ("numpy" if id(node) in numpy_nodes else "fallback")
            for node in ast.walk(fn)
        }
        gate = gates[0]
        has_fallback = bool(gate.orelse)
        if not has_fallback:
            parent = self.ctx.parent(gate)
            for attr in ("body", "orelse", "finalbody"):
                seq = getattr(parent, attr, None)
                if isinstance(seq, list) and gate in seq:
                    has_fallback = seq.index(gate) < len(seq) - 1
                    break
        self.facts.dispatches.append(
            DispatchSite(
                qname=sym.qname,
                module=self.facts.module,
                path=self.facts.path,
                lineno=gate.lineno,
                has_fallback=has_fallback,
            )
        )
        return branch_map

    # -- call sites --------------------------------------------------------

    def _collect_calls(
        self,
        root: ast.AST,
        caller: str,
        skip: set[ast.AST] | None,
        branch_map: dict[int, str],
    ) -> None:
        stack = list(ast.iter_child_nodes(root))
        while stack:
            node = stack.pop()
            if skip is not None and node in skip:
                continue
            if isinstance(node, ast.Call):
                self._record(node.func, caller, node.lineno, branch_map, ref=False)
                for arg in (*node.args, *(kw.value for kw in node.keywords)):
                    # A bare function passed by value (``map_segments(
                    # job, path)``) is a reference edge: the callee runs
                    # it, so coverage flows through it too.
                    if isinstance(arg, (ast.Name, ast.Attribute)):
                        self._record(arg, caller, node.lineno, branch_map, ref=True)
            stack.extend(ast.iter_child_nodes(node))

    def _record(
        self,
        func: ast.expr,
        caller: str,
        lineno: int,
        branch_map: dict[int, str],
        *,
        ref: bool,
    ) -> None:
        if isinstance(func, ast.Name) and func.id in self._local_symbols:
            # A module-level def shadows any same-named import.
            dotted = func.id
        else:
            resolved = self.ctx.resolve(func)
            if resolved is None:
                return
            if "." not in resolved and resolved not in self._local_symbols:
                return  # builtins and plain locals carry no edge
            dotted = resolved
        self.facts.calls.append(
            CallSite(
                caller=caller,
                callee=dotted,
                resolved=False,  # assembly decides
                path=self.facts.path,
                lineno=lineno,
                branch=branch_map.get(id(func), ""),
                ref=ref,
            )
        )


def extract_facts(path: Path, source: str | None = None) -> ModuleFacts:
    """Per-file facts (symbols, raw call sites, dispatch gates)."""
    if source is None:
        source = path.read_text(encoding="utf-8")
    ctx = ModuleContext(path, source, display_path=str(path))
    facts = ModuleFacts(
        path=str(path),
        digest=_digest(source),
        module=ctx.module,
        is_package=path.name == "__init__.py",
        imports=dict(ctx.imports),
    )
    _FactCollector(ctx, facts).collect()
    return facts


def _normalize(module: str, is_package: bool, dotted: str) -> str:
    """Resolve a leading-dots relative origin against *module*.

    The context records ``from .stack import X`` as ``.stack.X`` but
    ``from . import stack`` as ``..stack`` (the join adds a dot when no
    module path follows), so a single trailing segment means the dots
    overcount the level by one.
    """
    if not dotted.startswith("."):
        return dotted
    n = len(dotted) - len(dotted.lstrip("."))
    rest = dotted[n:]
    level = n if "." in rest else n - 1
    level = max(level, 1)
    parts = module.split(".")
    if not is_package:
        parts = parts[:-1]
    if level > 1:
        parts = parts[: len(parts) - (level - 1)]
    base = ".".join(p for p in parts if p)
    if base and rest:
        return f"{base}.{rest}"
    return base or rest


class CallGraph:
    """The assembled cross-module view."""

    def __init__(self, facts: Iterable[ModuleFacts]):
        self.facts: list[ModuleFacts] = sorted(facts, key=lambda f: f.path)
        self.symbols: dict[str, SymbolInfo] = {}
        self.modules: dict[str, ModuleFacts] = {}
        self.calls: list[CallSite] = []
        self.dispatches: list[DispatchSite] = []
        self._callers: dict[str, list[CallSite]] = {}
        self._callees: dict[str, list[CallSite]] = {}
        for f in self.facts:
            self.modules[f.module] = f
            for sym in f.symbols:
                self.symbols[sym.qname] = sym
            self.dispatches.extend(f.dispatches)
        self.dispatches.sort(key=lambda d: (d.path, d.lineno))
        for f in self.facts:
            for site in f.calls:
                target = self._resolve_site(f, site.callee)
                caller = (
                    f"{f.module}.<module>"
                    if site.caller == "<module>"
                    else site.caller
                )
                out = CallSite(
                    caller=caller,
                    callee=target if target is not None else site.callee,
                    resolved=target is not None,
                    path=site.path,
                    lineno=site.lineno,
                    branch=site.branch,
                    ref=site.ref,
                )
                self.calls.append(out)
                if out.resolved:
                    self._callers.setdefault(out.callee, []).append(out)
                self._callees.setdefault(out.caller, []).append(out)

    # -- resolution --------------------------------------------------------

    def _resolve_site(
        self, facts: ModuleFacts, dotted: str, depth: int = 0
    ) -> str | None:
        if depth > _ALIAS_DEPTH:
            return None
        dotted = _normalize(facts.module, facts.is_package, dotted)
        if "." not in dotted:
            qname = f"{facts.module}.{dotted}"
            return qname if qname in self.symbols else None
        if dotted in self.symbols:
            return dotted
        # Longest module prefix + remainder (symbol, or alias to follow
        # through an ``__init__`` re-export).
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            mod = ".".join(parts[:cut])
            owner = self.modules.get(mod)
            if owner is None:
                continue
            rest = ".".join(parts[cut:])
            if f"{mod}.{rest}" in self.symbols:
                return f"{mod}.{rest}"
            alias = owner.imports.get(parts[cut])
            if alias is not None:
                tail = ".".join(parts[cut + 1 :])
                chained = alias + ("." + tail if tail else "")
                return self._resolve_site(owner, chained, depth + 1)
            return None
        return None

    # -- queries -----------------------------------------------------------

    def callers_of(self, qname: str) -> list[CallSite]:
        return self._callers.get(qname, [])

    def callees_of(self, caller: str) -> list[CallSite]:
        return self._callees.get(caller, [])

    def symbol(self, qname: str) -> SymbolInfo | None:
        return self.symbols.get(qname)

    def reachable_from(self, seeds: Iterable[str]) -> set[str]:
        """Transitive closure over resolved call/ref edges (cycle-safe)."""
        seen: set[str] = set()
        stack = list(seeds)
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            for site in self._callees.get(current, []):
                if site.resolved and site.callee not in seen:
                    stack.append(site.callee)
        return seen

    def calling_modules(self, qname: str) -> set[str]:
        """Modules containing a call or reference to *qname*."""
        out: set[str] = set()
        for site in self._callers.get(qname, []):
            owner = site.caller
            if owner.endswith(".<module>"):
                owner = owner[: -len(".<module>")]
            else:
                owner = owner.rsplit(".", 1)[0]
                sym = self.symbols.get(site.caller)
                if sym is not None:
                    owner = sym.module
            out.add(owner)
        return out

    def iter_dispatches(self) -> Iterator[DispatchSite]:
        return iter(self.dispatches)


def build_callgraph(paths: Iterable[Path]) -> CallGraph:
    """Extract facts from every parseable file and assemble the graph."""
    facts = []
    for path in sorted(set(Path(p) for p in paths)):
        try:
            facts.append(extract_facts(path))
        except (OSError, SyntaxError, UnicodeDecodeError, ValueError):
            continue  # the engine reports unreadable files separately
    return CallGraph(facts)


# -- JSON cache ---------------------------------------------------------------


def _as_dict(obj) -> dict:
    out = {}
    for name in obj.__dataclass_fields__:
        value = getattr(obj, name)
        out[name] = list(value) if isinstance(value, tuple) else value
    return out


def _facts_to_json(facts: ModuleFacts) -> dict:
    return {
        "path": facts.path,
        "digest": facts.digest,
        "module": facts.module,
        "is_package": facts.is_package,
        "imports": facts.imports,
        "symbols": [_as_dict(s) for s in facts.symbols],
        "calls": [_as_dict(c) for c in facts.calls],
        "dispatches": [_as_dict(d) for d in facts.dispatches],
    }


def _facts_from_json(data: dict) -> ModuleFacts:
    return ModuleFacts(
        path=data["path"],
        digest=data["digest"],
        module=data["module"],
        is_package=data["is_package"],
        imports=dict(data["imports"]),
        symbols=[
            SymbolInfo(**{**s, "params": tuple(s["params"])})
            for s in data["symbols"]
        ],
        calls=[CallSite(**c) for c in data["calls"]],
        dispatches=[DispatchSite(**d) for d in data["dispatches"]],
    )


def load_or_build(
    paths: Iterable[Path], cache: str | Path | None = None
) -> CallGraph:
    """Build the graph, reusing per-file facts from *cache* where the
    content digest matches; the cache is rewritten with fresh facts."""
    paths = sorted(set(Path(p) for p in paths))
    cached: dict[str, dict] = {}
    if cache is not None:
        try:
            with open(cache, encoding="utf-8") as fh:
                data = json.load(fh)
            if data.get("version") == CACHE_VERSION:
                cached = {
                    entry["path"]: entry for entry in data.get("files", [])
                }
        except (OSError, ValueError, KeyError, TypeError):
            cached = {}
    facts: list[ModuleFacts] = []
    for path in paths:
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError):
            continue
        entry = cached.get(str(path))
        if entry is not None and entry.get("digest") == _digest(source):
            try:
                facts.append(_facts_from_json(entry))
                continue
            except (KeyError, TypeError):
                pass
        try:
            facts.append(extract_facts(path, source))
        except (SyntaxError, ValueError):
            continue
    if cache is not None:
        payload = {
            "version": CACHE_VERSION,
            "files": [_facts_to_json(f) for f in facts],
        }
        try:
            cache_path = Path(cache)
            cache_path.parent.mkdir(parents=True, exist_ok=True)
            with open(cache_path, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, separators=(",", ":"), sort_keys=True)
        except OSError:
            pass  # a cache that cannot be written is just not a cache
    return CallGraph(facts)
