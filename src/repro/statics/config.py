"""Scope lists for the domain rules.

The linter encodes *this repository's* invariants, so the scopes are
named here rather than guessed per file.  Rules consult these tuples via
:func:`in_packages`; tests monkeypatch them to point at fixture modules.
"""

from __future__ import annotations

__all__ = [
    "DETERMINISM_PACKAGES",
    "ORDER_PINNED_PACKAGES",
    "SIMULATOR_PACKAGES",
    "HOT_MODULES",
    "TRACE_COLUMN_ATTRS",
    "PACKED_COLUMN_ATTRS",
    "COLUMN_ATTRS",
    "COLUMN_ORACLE_MODULES",
    "COLUMN_RULE_EXEMPT_PACKAGES",
    "in_packages",
]

#: Packages whose output is pinned by differential oracles and the
#: paper-figure reproductions: wall-clock reads and unseeded randomness
#: here silently corrupt Figures between runs.
DETERMINISM_PACKAGES: tuple[str, ...] = (
    "repro.unixfs",
    "repro.cache",
    "repro.netfs",
    "repro.workload",
    "repro.analysis",
    "repro.fuzz",  # every failure must be replayable from (seed, round)
)

#: Packages whose *iteration order* feeds bit-identical comparisons
#: (the one-pass analyzer and packed replayer are pinned to reference
#: modules field by field).  Iterating a bare ``set`` there trades on
#: hash order.
ORDER_PINNED_PACKAGES: tuple[str, ...] = DETERMINISM_PACKAGES + (
    "repro.parallel",
    "repro.trace",
)

#: Simulator code where a float ``==``/``!=`` is a latent epsilon bug:
#: simulated clocks are sums of float intervals.
SIMULATOR_PACKAGES: tuple[str, ...] = (
    "repro.cache",
    "repro.netfs",
    "repro.disk",
    "repro.parallel",
)

#: Modules on replay/simulation hot paths: every class here must declare
#: ``__slots__`` (directly or via ``@dataclass(slots=True)``) so
#: per-instance dicts never show up millions of times in a sweep.
HOT_MODULES: tuple[str, ...] = (
    "repro.cache.simulator",
    "repro.cache.stream",
    "repro.parallel.packed",
    "repro.parallel.stack",
    "repro.netfs.events",
    "repro.trace.columns",
    "repro.trace.records",
)


#: The eight column attributes of ``TraceColumns`` (the struct-of-arrays
#: row layout shared with ``.bcorpus`` segments and the numpy views).
TRACE_COLUMN_ATTRS: frozenset[str] = frozenset(
    {
        "kinds",
        "times",
        "open_ids",
        "file_ids",
        "user_ids",
        "sizes",
        "positions",
        "flags",
    }
)

#: The flat columns of ``PackedStream`` (one row per block access or
#: invalidation).  ``times`` is shared with the trace layout above, so
#: only the two packed-specific names are listed; together they widen
#: ``REP-H003`` to the cache-simulation half (:mod:`repro.parallel`),
#: where a new per-op Python loop outside the oracle modules is exactly
#: the regression the vectorized engine exists to prevent.
PACKED_COLUMN_ATTRS: frozenset[str] = frozenset({"ops", "keys"})

#: Every column attribute ``REP-H003`` tracks (trace + packed layouts).
COLUMN_ATTRS: frozenset[str] = TRACE_COLUMN_ATTRS | PACKED_COLUMN_ATTRS

#: Modules allowed to loop row-at-a-time over trace columns: the
#: columnar store and codecs themselves, plus the pure-Python reference
#: implementations the vectorized engine is differenced against (the
#: oracle discipline of DESIGN.md — the slow path must stay readable
#: and row-at-a-time *because* it is the spec).  Everywhere else a
#: per-event loop over a column is a latent hot-path regression: route
#: it through :mod:`repro.analysis.vectorized` or justify it with
#: ``# repro: allow[REP-H003]``.
COLUMN_ORACLE_MODULES: tuple[str, ...] = (
    "repro.analysis.onepass",
    "repro.corpus.reader",
    "repro.corpus.stream",
    "repro.corpus.writer",
    "repro.parallel.packed",
    "repro.parallel.stack",
    "repro.trace.columns",
    "repro.trace.io_binary",
    "repro.trace.validate",
)


#: Packages ``REP-H003`` skips outright.  The linter itself walks
#: Python ASTs, whose node fields (``ast.Compare.ops``,
#: ``ast.Dict.keys``) collide with the packed-stream column names —
#: and nothing in it ever touches a trace.
COLUMN_RULE_EXEMPT_PACKAGES: tuple[str, ...] = ("repro.statics",)


def in_packages(module: str, packages: tuple[str, ...]) -> bool:
    """True when dotted *module* is one of *packages* or inside one."""
    return any(
        module == pkg or module.startswith(pkg + ".") for pkg in packages
    )
