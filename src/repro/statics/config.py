"""Scope lists for the domain rules.

The linter encodes *this repository's* invariants, so the scopes are
named here rather than guessed per file.  Rules consult these tuples via
:func:`in_packages`; tests monkeypatch them to point at fixture modules.
"""

from __future__ import annotations

__all__ = [
    "DETERMINISM_PACKAGES",
    "ORDER_PINNED_PACKAGES",
    "SIMULATOR_PACKAGES",
    "HOT_MODULES",
    "TRACE_COLUMN_ATTRS",
    "PACKED_COLUMN_ATTRS",
    "COLUMN_ATTRS",
    "COLUMN_ORACLE_MODULES",
    "COLUMN_RULE_EXEMPT_PACKAGES",
    "UNIT_PACKAGES",
    "RNG_PARAM_NAMES",
    "ENGINE_GATE_NAMES",
    "FAST_PATH_SUFFIXES",
    "FAST_PATH_PREFIXES",
    "FUZZ_PACKAGES",
    "CALLGRAPH_CACHE",
    "SCOPED_RUN",
    "apply_overrides",
    "in_packages",
]

#: Packages whose output is pinned by differential oracles and the
#: paper-figure reproductions: wall-clock reads and unseeded randomness
#: here silently corrupt Figures between runs.
DETERMINISM_PACKAGES: tuple[str, ...] = (
    "repro.unixfs",
    "repro.cache",
    "repro.netfs",
    "repro.workload",
    "repro.analysis",
    "repro.fuzz",  # every failure must be replayable from (seed, round)
)

#: Packages whose *iteration order* feeds bit-identical comparisons
#: (the one-pass analyzer and packed replayer are pinned to reference
#: modules field by field).  Iterating a bare ``set`` there trades on
#: hash order.
ORDER_PINNED_PACKAGES: tuple[str, ...] = DETERMINISM_PACKAGES + (
    "repro.parallel",
    "repro.trace",
)

#: Simulator code where a float ``==``/``!=`` is a latent epsilon bug:
#: simulated clocks are sums of float intervals.
SIMULATOR_PACKAGES: tuple[str, ...] = (
    "repro.cache",
    "repro.netfs",
    "repro.disk",
    "repro.parallel",
)

#: Modules on replay/simulation hot paths: every class here must declare
#: ``__slots__`` (directly or via ``@dataclass(slots=True)``) so
#: per-instance dicts never show up millions of times in a sweep.
HOT_MODULES: tuple[str, ...] = (
    "repro.cache.replacement",
    "repro.cache.simulator",
    "repro.cache.stream",
    "repro.parallel.packed",
    "repro.parallel.stack",
    "repro.netfs.events",
    "repro.trace.columns",
    "repro.trace.records",
)


#: The eight column attributes of ``TraceColumns`` (the struct-of-arrays
#: row layout shared with ``.bcorpus`` segments and the numpy views).
TRACE_COLUMN_ATTRS: frozenset[str] = frozenset(
    {
        "kinds",
        "times",
        "open_ids",
        "file_ids",
        "user_ids",
        "sizes",
        "positions",
        "flags",
    }
)

#: The flat columns of ``PackedStream`` (one row per block access or
#: invalidation).  ``times`` is shared with the trace layout above, so
#: only the two packed-specific names are listed; together they widen
#: ``REP-H003`` to the cache-simulation half (:mod:`repro.parallel`),
#: where a new per-op Python loop outside the oracle modules is exactly
#: the regression the vectorized engine exists to prevent.
PACKED_COLUMN_ATTRS: frozenset[str] = frozenset({"ops", "keys"})

#: Every column attribute ``REP-H003`` tracks (trace + packed layouts).
COLUMN_ATTRS: frozenset[str] = TRACE_COLUMN_ATTRS | PACKED_COLUMN_ATTRS

#: Modules allowed to loop row-at-a-time over trace columns: the
#: columnar store and codecs themselves, plus the pure-Python reference
#: implementations the vectorized engine is differenced against (the
#: oracle discipline of DESIGN.md — the slow path must stay readable
#: and row-at-a-time *because* it is the spec).  Everywhere else a
#: per-event loop over a column is a latent hot-path regression: route
#: it through :mod:`repro.analysis.vectorized` or justify it with a
#: ``repro: allow[REP-H003]`` comment.
COLUMN_ORACLE_MODULES: tuple[str, ...] = (
    "repro.analysis.onepass",
    "repro.corpus.reader",
    "repro.corpus.stream",
    "repro.corpus.writer",
    "repro.parallel.packed",
    "repro.parallel.stack",
    "repro.trace.columns",
    "repro.trace.io_binary",
    "repro.trace.validate",
)


#: Packages ``REP-H003`` skips outright.  The linter itself walks
#: Python ASTs, whose node fields (``ast.Compare.ops``,
#: ``ast.Dict.keys``) collide with the packed-stream column names —
#: and nothing in it ever touches a trace.
COLUMN_RULE_EXEMPT_PACKAGES: tuple[str, ...] = ("repro.statics",)


#: Packages where the unit-taint rule (``REP-U001``) runs: the codecs
#: and corpus layers, where u32-centisecond columns (the on-disk and
#: packed layouts) meet float-seconds event times.  Mixing the two in
#: an arithmetic or comparison expression without an explicit
#: ``* 100`` / ``/ 100`` conversion is exactly the overflow class the
#: fuzzer once found dynamically in ``read_binary_columns``.
UNIT_PACKAGES: tuple[str, ...] = (
    "repro.trace",
    "repro.corpus",
)

#: Parameter names the RNG-taint lattice treats as a *seeded* generator
#: handed in by the caller (the repo's convention for threading
#: determinism).  Annotations mentioning Random/Generator count too.
RNG_PARAM_NAMES: tuple[str, ...] = ("rng", "rnd", "prng", "generator")

#: Functions whose ``== "numpy"`` comparison marks an engine-dispatch
#: gate for the call graph (matched on the last dotted segment).
ENGINE_GATE_NAMES: tuple[str, ...] = ("resolve_engine",)

#: Naming conventions for vectorized fast paths; the engine-parity
#: rules pair every ``*_numpy`` function / ``Vectorized*`` class with
#: its pure-Python oracle twin via the dispatch sites.
FAST_PATH_SUFFIXES: tuple[str, ...] = ("_numpy",)
FAST_PATH_PREFIXES: tuple[str, ...] = ("Vectorized",)

#: Packages that count as differential coverage for ``REP-E002``: each
#: dispatch pair must be driven from here (the fuzz pillars).
FUZZ_PACKAGES: tuple[str, ...] = ("repro.fuzz",)

#: Where the cross-module rules persist per-file call-graph facts
#: between runs (``repro-fs lint --callgraph-cache``); ``None`` means
#: rebuild from scratch every run.
CALLGRAPH_CACHE: str | None = None

#: True while the engine runs on a subset of the tree (``--changed``).
#: Whole-program rules (stale suppressions, engine parity) are skipped
#: then: absence of a caller in a partial scan proves nothing.
SCOPED_RUN: bool = False


#: ``[tool.repro.statics]`` keys the CLI may map onto this module, with
#: the expected shape ("str_tuple" coerces a list of strings).
_OVERRIDABLE: dict[str, str] = {
    "determinism_packages": "DETERMINISM_PACKAGES",
    "unit_packages": "UNIT_PACKAGES",
    "rng_param_names": "RNG_PARAM_NAMES",
    "engine_gate_names": "ENGINE_GATE_NAMES",
    "fast_path_suffixes": "FAST_PATH_SUFFIXES",
    "fast_path_prefixes": "FAST_PATH_PREFIXES",
    "fuzz_packages": "FUZZ_PACKAGES",
    "hot_modules": "HOT_MODULES",
    "column_oracle_modules": "COLUMN_ORACLE_MODULES",
    "callgraph_cache": "CALLGRAPH_CACHE",
    "scoped_run": "SCOPED_RUN",
}


def apply_overrides(overrides: dict[str, object]) -> dict[str, object]:
    """Apply ``[tool.repro.statics]`` lattice/scope overrides.

    Returns the previous values so callers can restore them (the engine
    applies overrides around one run, not process-wide).  Unknown keys
    raise ``ValueError`` rather than being silently ignored: a typo in
    pyproject.toml should not quietly disable a rule family.
    """
    saved: dict[str, object] = {}
    module = globals()
    for key, value in overrides.items():
        attr = _OVERRIDABLE.get(key)
        if attr is None:
            raise ValueError(f"unknown [tool.repro.statics] option: {key!r}")
        if attr == "CALLGRAPH_CACHE":
            if value is not None and not isinstance(value, str):
                raise ValueError("callgraph_cache must be a string path")
        elif attr == "SCOPED_RUN":
            if not isinstance(value, bool):
                raise ValueError("scoped_run must be a boolean")
        else:
            if isinstance(value, str) or not isinstance(value, (list, tuple)):
                raise ValueError(f"{key} must be a list of strings")
            if not all(isinstance(item, str) for item in value):
                raise ValueError(f"{key} must be a list of strings")
            value = tuple(value)
        saved[attr] = module[attr]
        module[attr] = value
    return saved


def restore(saved: dict[str, object]) -> None:
    """Undo :func:`apply_overrides` using its return value."""
    globals().update(saved)


def in_packages(module: str, packages: tuple[str, ...]) -> bool:
    """True when dotted *module* is one of *packages* or inside one."""
    return any(
        module == pkg or module.startswith(pkg + ".") for pkg in packages
    )
