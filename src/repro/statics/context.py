"""Per-module analysis context shared by every rule.

One :class:`ModuleContext` is built per linted file.  It carries the
parsed AST plus the cross-cutting facts most rules need:

* an **import map** (local alias -> dotted origin) so a rule can ask
  "what does this call resolve to?" and get ``random.random`` whether
  the source said ``random.random()``, ``rnd.random()`` or
  ``from random import random``;
* a **parent map** so rules can look outward from a node (is this
  comprehension the argument of ``sorted``?);
* **suppression comments** (``# repro: allow[RULE-ID] -- why``) parsed
  from the token stream;
* simple **set-typed local inference** per scope, for the unordered-
  iteration rule.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["Suppression", "ModuleContext", "module_name_for"]


_ALLOW_RE = re.compile(
    r"#\s*repro:\s*allow\[([A-Za-z0-9_,\s-]+)\]\s*(?:[-—:]*\s*(.*))?$"
)

#: Scope-introducing AST nodes (comprehensions get their own scope at
#: runtime but share the enclosing function's names for our purposes).
_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)


@dataclass(frozen=True, slots=True)
class Suppression:
    """One allow comment: which rules it covers, and why."""

    line: int
    rule_ids: frozenset[str]
    justification: str


def module_name_for(path: Path) -> str:
    """Dotted module name for *path*, anchored at the ``repro`` package.

    Files outside the package (tests, benchmarks, fixtures) get their
    bare stem, which keeps them out of every package-scoped rule.
    """
    parts = list(path.resolve().parts)
    name = path.stem
    if "repro" in parts:
        idx = len(parts) - 1 - parts[::-1].index("repro")
        dotted = [p for p in parts[idx:]]
        dotted[-1] = path.stem
        if dotted[-1] == "__init__":
            dotted = dotted[:-1]
        return ".".join(dotted)
    return name


def _comment_suppressions(source: str) -> dict[int, Suppression]:
    """Parse ``# repro: allow[...]`` comments, keyed by line number."""
    out: dict[int, Suppression] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _ALLOW_RE.search(tok.string)
            if not match:
                continue
            ids = frozenset(
                part.strip() for part in match.group(1).split(",") if part.strip()
            )
            justification = (match.group(2) or "").strip()
            out[tok.start[0]] = Suppression(tok.start[0], ids, justification)
    except tokenize.TokenError:
        pass
    return out


class ModuleContext:
    """Everything a per-module rule needs to know about one file."""

    def __init__(self, path: Path, source: str, display_path: str | None = None):
        self.path = path
        self.display_path = display_path if display_path is not None else str(path)
        self.source = source
        self.lines = source.splitlines()
        self.module = module_name_for(path)
        self.tree = ast.parse(source, filename=str(path))
        self.suppressions = _comment_suppressions(source)
        self.used_suppressions: set[int] = set()
        self._parents: dict[ast.AST, ast.AST] = {}
        self.imports: dict[str, str] = {}
        self._set_names: dict[ast.AST, set[str]] = {}
        self._module_level_names: set[str] = set()
        self._index()

    # -- indexing ---------------------------------------------------------

    def _index(self) -> None:
        for node in ast.walk(self.tree):
            for child in ast.iter_child_nodes(node):
                self._parents[child] = node
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    origin = alias.asname and alias.name or alias.name.split(".")[0]
                    # `import a.b as c` binds c -> a.b; `import a.b` binds a.
                    self.imports[local] = origin
            elif isinstance(node, ast.ImportFrom):
                if node.level or node.module is None:
                    # Relative imports resolve inside this repo; record
                    # them with a leading dot so rules can still match
                    # suffixes like ".parallel.executor.run_jobs".
                    base = "." * node.level + (node.module or "")
                else:
                    base = node.module
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.imports[local] = f"{base}.{alias.name}"
        for stmt in self.tree.body:
            for name in _assigned_names(stmt):
                self._module_level_names.add(name)
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                self._module_level_names.add(stmt.name)
        self._infer_set_names()

    def _infer_set_names(self) -> None:
        """Names assigned/annotated set-valued, grouped per scope."""
        for scope in ast.walk(self.tree):
            if not isinstance(scope, _SCOPE_NODES):
                continue
            names: set[str] = set()
            for node in self._scope_body_walk(scope):
                if isinstance(node, ast.Assign) and self._is_set_expr(node.value):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            names.add(target.id)
                elif isinstance(node, ast.AnnAssign) and isinstance(
                    node.target, ast.Name
                ):
                    if (node.value is not None and self._is_set_expr(node.value)) or (
                        _annotation_is_set(node.annotation)
                    ):
                        names.add(node.target.id)
            if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for arg in [
                    *scope.args.posonlyargs,
                    *scope.args.args,
                    *scope.args.kwonlyargs,
                ]:
                    if arg.annotation is not None and _annotation_is_set(
                        arg.annotation
                    ):
                        names.add(arg.arg)
            self._set_names[scope] = names

    def _scope_body_walk(self, scope: ast.AST):
        """Walk *scope* without descending into nested function scopes."""
        stack = list(ast.iter_child_nodes(scope))
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            stack.extend(ast.iter_child_nodes(node))

    def _is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            resolved = self.resolve(node.func)
            return resolved in ("set", "frozenset")
        if isinstance(node, ast.Assign):  # pragma: no cover - defensive
            return False
        return False

    # -- queries ----------------------------------------------------------

    def parent(self, node: ast.AST) -> ast.AST | None:
        return self._parents.get(node)

    def enclosing_scope(self, node: ast.AST) -> ast.AST:
        current = self._parents.get(node)
        while current is not None and not isinstance(current, _SCOPE_NODES):
            current = self._parents.get(current)
        return current if current is not None else self.tree

    def enclosing_function(
        self, node: ast.AST
    ) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        scope = self.enclosing_scope(node)
        if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return scope
        return None

    def set_typed_names(self, node: ast.AST) -> set[str]:
        """Set-typed local names visible at *node* (its enclosing scope)."""
        return self._set_names.get(self.enclosing_scope(node), set())

    def is_module_level_name(self, name: str) -> bool:
        return name in self._module_level_names

    def resolve(self, node: ast.expr) -> str | None:
        """Resolve a Name/Attribute chain to a dotted origin.

        ``rnd.random`` with ``import random as rnd`` resolves to
        ``random.random``; ``self.rng.random`` resolves to ``None``
        (rooted at a runtime value, not an import).  Bare names that are
        not imports resolve to themselves (builtins, locals).
        """
        parts: list[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        root = current.id
        origin = self.imports.get(root)
        if origin is None:
            if parts:
                return None  # attribute chain rooted at a runtime value
            return root
        parts.append(origin)
        return ".".join(reversed(parts))

    def is_imported_module(self, name: str) -> bool:
        return name in self.imports

    # -- suppression ------------------------------------------------------

    def suppression_for(self, rule_id: str, line: int) -> Suppression | None:
        """The allow comment covering *rule_id* at *line*, if any.

        Same-line comments count, as does an allow on the immediately
        preceding line when that line holds only the comment.
        """
        for candidate in (line, line - 1):
            supp = self.suppressions.get(candidate)
            if supp is None:
                continue
            if candidate == line - 1:
                text = self.lines[candidate - 1].strip() if (
                    0 < candidate <= len(self.lines)
                ) else ""
                if not text.startswith("#"):
                    continue
            if rule_id in supp.rule_ids:
                self.used_suppressions.add(candidate)
                return supp
        return None


def _assigned_names(stmt: ast.stmt) -> list[str]:
    names: list[str] = []
    targets: list[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        targets = [stmt.target]
    for target in targets:
        if isinstance(target, ast.Name):
            names.append(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            names.extend(
                el.id for el in target.elts if isinstance(el, ast.Name)
            )
    return names


def _annotation_is_set(annotation: ast.expr) -> bool:
    """True for ``set``/``frozenset`` annotations, bare or subscripted."""
    node = annotation
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id in ("set", "frozenset", "Set", "FrozenSet")
    if isinstance(node, ast.Attribute):
        return node.attr in ("Set", "FrozenSet")
    return False
