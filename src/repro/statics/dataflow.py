"""Intraprocedural forward dataflow with pluggable taint lattices.

The flow-aware rules (RNG provenance, time-unit mixing) need more than
"what does this name resolve to": they need to know what a value *is*
after it has moved through assignments, conditionals, loops,
comprehensions and calls.  This module provides that as a small abstract
interpreter over one function (or the module body) at a time:

* The abstract value is a frozenset of string **tags** (the taint);
  join is set union, so the lattice is the powerset of the tag alphabet
  and every transfer function is trivially monotone.
* A :class:`TaintPolicy` supplies the semantics: which parameters and
  names introduce taint, how attribute access and calls transform it,
  and how binary operators combine it.  Rules subclass it.
* :func:`analyze_flow` runs the interpreter to a fixpoint (loops are
  iterated until the environment stops changing, with a hard cap) and
  returns a :class:`FlowResult` mapping expression nodes to their final
  joined taints, so rules post-process call sites, operands and
  assignments without re-walking.

Branches join rather than split (both arms of an ``if`` contribute to
the environment downstream), which over-approximates reachability — the
right direction for a linter: a taint that *may* reach a sink is worth
a finding.  Nested function definitions are skipped; each ``def`` is
analyzed in its own scope with taint re-introduced at its parameters.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .context import ModuleContext

__all__ = ["EMPTY", "FlowResult", "TaintPolicy", "analyze_flow", "iter_scopes"]

Taint = frozenset
EMPTY: frozenset[str] = frozenset()

#: Fixpoint cap for loops: taints only ever grow along joins, so real
#: code converges in two or three passes; the cap bounds adversarial
#: inputs.
_MAX_LOOP_PASSES = 8


class TaintPolicy:
    """Semantics of one taint lattice.  Subclass and override."""

    def param_taint(self, ctx: ModuleContext, fn, arg: ast.arg) -> frozenset[str]:
        """Taint introduced by a function parameter."""
        return EMPTY

    def name_taint(self, ctx: ModuleContext, name: str) -> frozenset[str]:
        """Taint of a name with no local binding (imports, globals)."""
        return EMPTY

    def attribute_taint(
        self, ctx: ModuleContext, node: ast.Attribute, base: frozenset[str]
    ) -> frozenset[str]:
        """Taint of ``base.attr`` given the base object's taint."""
        return EMPTY

    def call_taint(
        self,
        ctx: ModuleContext,
        node: ast.Call,
        func: frozenset[str],
        args: list[frozenset[str]],
    ) -> frozenset[str]:
        """Taint of a call result given callee and argument taints."""
        return EMPTY

    def binop_taint(
        self,
        ctx: ModuleContext,
        node: ast.BinOp,
        left: frozenset[str],
        right: frozenset[str],
    ) -> frozenset[str]:
        """Taint of ``left <op> right``; default: union (propagate)."""
        return left | right

    def constant_taint(
        self, ctx: ModuleContext, node: ast.Constant
    ) -> frozenset[str]:
        return EMPTY


class FlowResult:
    """Per-node taints after the fixpoint, plus return-value taint."""

    __slots__ = ("_taints", "returns")

    def __init__(self) -> None:
        self._taints: dict[int, frozenset[str]] = {}
        self.returns: frozenset[str] = EMPTY

    def taint(self, node: ast.AST) -> frozenset[str]:
        return self._taints.get(id(node), EMPTY)

    def _note(self, node: ast.AST, taint: frozenset[str]) -> frozenset[str]:
        key = id(node)
        prior = self._taints.get(key)
        self._taints[key] = taint if prior is None else prior | taint
        return taint


def iter_scopes(
    ctx: ModuleContext,
) -> Iterator[ast.Module | ast.FunctionDef | ast.AsyncFunctionDef]:
    """The module body plus every (nested) function, each its own scope."""
    yield ctx.tree
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def analyze_flow(
    ctx: ModuleContext,
    scope: ast.Module | ast.FunctionDef | ast.AsyncFunctionDef,
    policy: TaintPolicy,
) -> FlowResult:
    """Run *policy* over one scope to a fixpoint."""
    interp = _Interpreter(ctx, policy)
    env: dict[str, frozenset[str]] = {}
    if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
        args = scope.args
        for arg in (
            *args.posonlyargs,
            *args.args,
            *args.kwonlyargs,
            *( [args.vararg] if args.vararg else [] ),
            *( [args.kwarg] if args.kwarg else [] ),
        ):
            taint = policy.param_taint(ctx, scope, arg)
            if taint:
                env[arg.arg] = taint
    interp.exec_block(scope.body, env)
    return interp.result


def _join(
    a: dict[str, frozenset[str]], b: dict[str, frozenset[str]]
) -> dict[str, frozenset[str]]:
    out = dict(a)
    for name, taint in b.items():
        prior = out.get(name)
        out[name] = taint if prior is None else prior | taint
    return out


class _Interpreter:
    """One pass-structured walk; loops re-run bodies until stable."""

    __slots__ = ("ctx", "policy", "result")

    def __init__(self, ctx: ModuleContext, policy: TaintPolicy) -> None:
        self.ctx = ctx
        self.policy = policy
        self.result = FlowResult()

    # -- statements --------------------------------------------------------

    def exec_block(self, body: list[ast.stmt], env: dict) -> None:
        for stmt in body:
            self.exec_stmt(stmt, env)

    def exec_stmt(self, stmt: ast.stmt, env: dict) -> None:
        if isinstance(stmt, ast.Assign):
            taint = self.eval(stmt.value, env)
            for target in stmt.targets:
                self.bind(target, taint, env)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self.bind(stmt.target, self.eval(stmt.value, env), env)
        elif isinstance(stmt, ast.AugAssign):
            taint = self.eval(stmt.value, env)
            if isinstance(stmt.target, ast.Name):
                taint = taint | env.get(stmt.target.id, EMPTY)
            self.bind(stmt.target, taint, env)
        elif isinstance(stmt, (ast.Expr, ast.Assert)):
            value = stmt.value if isinstance(stmt, ast.Expr) else stmt.test
            self.eval(value, env)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.result.returns |= self.eval(stmt.value, env)
        elif isinstance(stmt, ast.If):
            self.eval(stmt.test, env)
            then_env = dict(env)
            self.exec_block(stmt.body, then_env)
            else_env = dict(env)
            self.exec_block(stmt.orelse, else_env)
            env.clear()
            env.update(_join(then_env, else_env))
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_taint = self.eval(stmt.iter, env)
            self.bind(stmt.target, iter_taint, env)
            self._fixpoint(stmt.body, env)
            self.exec_block(stmt.orelse, env)
        elif isinstance(stmt, ast.While):
            self.eval(stmt.test, env)
            self._fixpoint(stmt.body, env)
            self.exec_block(stmt.orelse, env)
        elif isinstance(stmt, ast.Try):
            body_env = dict(env)
            self.exec_block(stmt.body, body_env)
            merged = _join(env, body_env)
            for handler in stmt.handlers:
                handler_env = dict(merged)
                self.exec_block(handler.body, handler_env)
                merged = _join(merged, handler_env)
            else_env = dict(merged)
            self.exec_block(stmt.orelse, else_env)
            merged = _join(merged, else_env)
            env.clear()
            env.update(merged)
            self.exec_block(stmt.finalbody, env)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                taint = self.eval(item.context_expr, env)
                if item.optional_vars is not None:
                    self.bind(item.optional_vars, taint, env)
            self.exec_block(stmt.body, env)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self.eval(stmt.exc, env)
        elif isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            env[stmt.name] = EMPTY  # analyzed as its own scope
        # Import/Pass/Break/Continue/Global/Nonlocal: no flow effect here
        # (imported names fall through to policy.name_taint).

    def _fixpoint(self, body: list[ast.stmt], env: dict) -> None:
        for _ in range(_MAX_LOOP_PASSES):
            trial = dict(env)
            self.exec_block(body, trial)
            merged = _join(env, trial)
            if merged == env:
                return
            env.clear()
            env.update(merged)

    def bind(self, target: ast.expr, taint: frozenset[str], env: dict) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = taint
            self.result._note(target, taint)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self.bind(elt, taint, env)
        elif isinstance(target, ast.Starred):
            self.bind(target.value, taint, env)
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            # No strong update through objects; note the flow so rules
            # can inspect what reached the store.
            self.eval(target.value, env)
            self.result._note(target, taint)

    # -- expressions -------------------------------------------------------

    def eval(self, node: ast.expr, env: dict) -> frozenset[str]:
        taint = self._eval_inner(node, env)
        return self.result._note(node, taint)

    def _eval_inner(self, node: ast.expr, env: dict) -> frozenset[str]:
        policy, ctx = self.policy, self.ctx
        if isinstance(node, ast.Name):
            bound = env.get(node.id)
            if bound is not None:
                return bound
            return policy.name_taint(ctx, node.id)
        if isinstance(node, ast.Constant):
            return policy.constant_taint(ctx, node)
        if isinstance(node, ast.Attribute):
            base = self.eval(node.value, env)
            return policy.attribute_taint(ctx, node, base)
        if isinstance(node, ast.Call):
            func = self.eval(node.func, env)
            args = [self.eval(a, env) for a in node.args]
            args += [self.eval(kw.value, env) for kw in node.keywords]
            return policy.call_taint(ctx, node, func, args)
        if isinstance(node, ast.BinOp):
            left = self.eval(node.left, env)
            right = self.eval(node.right, env)
            return policy.binop_taint(ctx, node, left, right)
        if isinstance(node, ast.BoolOp):
            out = EMPTY
            for value in node.values:
                out |= self.eval(value, env)
            return out
        if isinstance(node, ast.IfExp):
            self.eval(node.test, env)
            return self.eval(node.body, env) | self.eval(node.orelse, env)
        if isinstance(node, ast.Compare):
            self.eval(node.left, env)
            for comparator in node.comparators:
                self.eval(comparator, env)
            return EMPTY  # a bool carries no unit/rng identity
        if isinstance(node, ast.UnaryOp):
            return self.eval(node.operand, env)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            out = EMPTY
            for elt in node.elts:
                out |= self.eval(elt, env)
            return out
        if isinstance(node, ast.Dict):
            out = EMPTY
            for key in node.keys:
                if key is not None:
                    out |= self.eval(key, env)
            for value in node.values:
                out |= self.eval(value, env)
            return out
        if isinstance(node, (ast.Subscript, ast.Starred)):
            return self.eval(node.value, env)
        if isinstance(node, ast.Slice):
            for part in (node.lower, node.upper, node.step):
                if part is not None:
                    self.eval(part, env)
            return EMPTY
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
        ):
            return self._eval_comp(node, env)
        if isinstance(node, ast.NamedExpr):
            taint = self.eval(node.value, env)
            self.bind(node.target, taint, env)
            return taint
        if isinstance(node, ast.JoinedStr):
            for value in node.values:
                self.eval(value, env)
            return EMPTY
        if isinstance(node, ast.FormattedValue):
            self.eval(node.value, env)
            return EMPTY
        if isinstance(node, (ast.Await, ast.YieldFrom)):
            return self.eval(node.value, env)
        if isinstance(node, ast.Yield):
            if node.value is not None:
                return self.eval(node.value, env)
            return EMPTY
        if isinstance(node, ast.Lambda):
            return EMPTY  # not descended; lambdas are opaque values
        return EMPTY

    def _eval_comp(self, node, env: dict) -> frozenset[str]:
        # Comprehension variables live in a copy: the element inherits
        # the iterable's taint (collection ~ element for our lattices).
        inner = dict(env)
        for gen in node.generators:
            iter_taint = self.eval(gen.iter, inner)
            self.bind(gen.target, iter_taint, inner)
            for cond in gen.ifs:
                self.eval(cond, inner)
        if isinstance(node, ast.DictComp):
            out = self.eval(node.key, inner) | self.eval(node.value, inner)
        else:
            out = self.eval(node.elt, inner)
        return out
