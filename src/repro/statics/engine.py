"""The lint engine: collect files, run rules, apply suppressions/baseline.

The engine is deterministic end to end (files sorted, findings sorted),
for the obvious reason that a determinism linter had better not flake.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from . import config
from .context import ModuleContext
from .findings import Finding, Severity
from .registry import CROSS_RULES, RULES, rule

# Importing the rule modules populates the registry.
from . import rules_determinism  # noqa: F401
from . import rules_engines  # noqa: F401
from . import rules_hotpath  # noqa: F401
from . import rules_parallel  # noqa: F401
from . import rules_rng  # noqa: F401
from . import rules_schema  # noqa: F401
from . import rules_units  # noqa: F401

__all__ = ["LintReport", "collect_files", "lint_paths"]

#: Engine-generated rule ids that are valid suppression targets even
#: though they have no registered check function: ``REP-A001`` (stale
#: suppression) and ``REP-A002`` (unparsable/unreadable file).
_ENGINE_RULE_IDS = frozenset({"REP-A001", "REP-A002"})


@rule("REP-A000", "malformed suppression comment")
def check_suppression_hygiene(ctx: ModuleContext) -> Iterator[Finding]:
    known = set(RULES) | set(CROSS_RULES) | _ENGINE_RULE_IDS
    for line, supp in sorted(ctx.suppressions.items()):
        if not supp.justification:
            yield Finding(
                rule_id="REP-A000",
                path=ctx.display_path,
                line=line,
                col=1,
                severity=Severity.ERROR,
                message="suppression comment has no justification; write "
                "`# repro: allow[RULE-ID] -- why this is safe`",
            )
        unknown = sorted(supp.rule_ids - known)
        if unknown:
            yield Finding(
                rule_id="REP-A000",
                path=ctx.display_path,
                line=line,
                col=1,
                severity=Severity.ERROR,
                message=f"suppression names unknown rule id(s) "
                f"{', '.join(unknown)}",
            )


@dataclass(slots=True)
class LintReport:
    """Outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    files_scanned: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    @property
    def suppressed_count(self) -> int:
        return len(self.suppressed)

    @property
    def baselined_count(self) -> int:
        return len(self.baselined)


def collect_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand *paths* into a sorted, de-duplicated list of .py files."""
    seen: set[Path] = set()
    out: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates = sorted(
                p
                for p in path.rglob("*.py")
                if "__pycache__" not in p.parts
                and not any(part.startswith(".") for part in p.parts[:-1])
            )
        elif path.suffix == ".py":
            candidates = [path]
        else:
            candidates = []
        for candidate in candidates:
            key = candidate.resolve()
            if key not in seen:
                seen.add(key)
                out.append(candidate)
    return out


def _parse_error_finding(path: Path, exc: SyntaxError) -> Finding:
    return Finding(
        rule_id="REP-A002",
        path=str(path),
        line=exc.lineno or 1,
        col=(exc.offset or 0) + 1,
        severity=Severity.ERROR,
        message=f"file does not parse: {exc.msg}",
    )


def _stale_suppression_findings(
    contexts: dict[str, ModuleContext],
) -> list[Finding]:
    """``REP-A001``: allow comments that matched no finding this run.

    Only meaningful on a whole-tree run — a rule that did not fire in a
    partial scan says nothing — so the engine skips this when
    ``config.SCOPED_RUN`` is set.  Suppressions naming only unknown
    rule ids are REP-A000's to report, not stale.
    """
    known = set(RULES) | set(CROSS_RULES) | _ENGINE_RULE_IDS
    out: list[Finding] = []
    for ctx in contexts.values():
        for line, supp in sorted(ctx.suppressions.items()):
            if line in ctx.used_suppressions:
                continue
            named = sorted(supp.rule_ids & known)
            if not named:
                continue
            out.append(
                Finding(
                    rule_id="REP-A001",
                    path=ctx.display_path,
                    line=line,
                    col=1,
                    severity=Severity.ERROR,
                    message=f"suppression for {', '.join(named)} no longer "
                    "matches any finding; delete the stale "
                    "`# repro: allow` comment",
                )
            )
    return out


def lint_paths(
    paths: Iterable[str | Path],
    baseline: set[str] | None = None,
    overrides: dict[str, object] | None = None,
    scoped: bool = False,
) -> LintReport:
    """Lint every .py file under *paths*; returns the full report.

    *baseline* is a set of grandfathered fingerprints (see
    :mod:`repro.statics.baseline`); matching findings are reported
    separately and do not fail the run.  *overrides* maps
    ``[tool.repro.statics]`` lattice/scope options onto
    :mod:`repro.statics.config` for the duration of this run.
    *scoped* marks a partial scan (``--changed``): whole-program rules
    (stale suppressions, engine parity) are skipped.
    """
    effective = dict(overrides or {})
    if scoped:
        effective["scoped_run"] = True
    saved = config.apply_overrides(effective) if effective else {}
    try:
        return _lint_paths_inner(paths, baseline)
    finally:
        config.restore(saved)


def _lint_paths_inner(
    paths: Iterable[str | Path],
    baseline: set[str] | None,
) -> LintReport:
    files = collect_files(paths)
    report = LintReport(files_scanned=len(files))
    contexts: dict[str, ModuleContext] = {}
    raw_findings: list[Finding] = []

    for path in files:
        try:
            source = path.read_text(encoding="utf-8")
            ctx = ModuleContext(path, source, display_path=str(path))
        except SyntaxError as exc:
            raw_findings.append(_parse_error_finding(path, exc))
            continue
        except (OSError, UnicodeDecodeError) as exc:
            raw_findings.append(
                Finding(
                    rule_id="REP-A002",
                    path=str(path),
                    line=1,
                    col=1,
                    severity=Severity.ERROR,
                    message=f"file could not be read: {exc}",
                )
            )
            continue
        contexts[ctx.display_path] = ctx
        for rule_obj in RULES.values():
            raw_findings.extend(rule_obj.check(ctx))

    for cross in CROSS_RULES.values():
        raw_findings.extend(cross.check(files))

    baseline = baseline or set()

    def _apply(finding: Finding) -> None:
        ctx = contexts.get(finding.path)
        supp = (
            ctx.suppression_for(finding.rule_id, finding.line)
            if ctx is not None
            else None
        )
        if supp is not None:
            report.suppressed.append(
                Finding(
                    rule_id=finding.rule_id,
                    path=finding.path,
                    line=finding.line,
                    col=finding.col,
                    severity=finding.severity,
                    message=finding.message,
                    suppressed_by=supp.justification,
                )
            )
        elif finding.fingerprint in baseline:
            report.baselined.append(finding)
        else:
            report.findings.append(finding)

    for finding in raw_findings:
        _apply(finding)

    # Staleness is judged after every rule finding has had its chance
    # to consume a suppression; the stale findings themselves can be
    # suppressed (on their own line) or baselined like any other.
    if not config.SCOPED_RUN:
        for finding in _stale_suppression_findings(contexts):
            _apply(finding)

    report.findings.sort(key=lambda f: f.sort_key())
    report.suppressed.sort(key=lambda f: f.sort_key())
    report.baselined.sort(key=lambda f: f.sort_key())
    return report


def parse_ok(source: str) -> bool:
    """Convenience for tests: does *source* parse at all?"""
    try:
        ast.parse(source)
        return True
    except SyntaxError:
        return False
