"""Lint findings.

A :class:`Finding` is one rule violation at one source location.  Its
*message* deliberately excludes the line number: the baseline mechanism
(:mod:`repro.statics.baseline`) fingerprints findings by
``(rule, path, message)`` so that grandfathered findings survive
unrelated edits that shift line numbers.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field

__all__ = ["Severity", "Finding"]


class Severity(enum.Enum):
    """How bad a finding is.  Both levels fail the lint; the split exists
    so reporters can order output and humans can triage."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at ``path:line:col``."""

    rule_id: str
    path: str
    line: int
    col: int
    severity: Severity
    message: str
    #: Justification text when the finding was suppressed (allow comment).
    suppressed_by: str | None = field(default=None, compare=False)

    @property
    def fingerprint(self) -> str:
        """Line-number-free identity used by the baseline file."""
        raw = f"{self.rule_id}|{self.path}|{self.message}"
        return hashlib.sha1(raw.encode("utf-8")).hexdigest()[:16]

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} {self.severity}: {self.message}"
        )

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule_id)
