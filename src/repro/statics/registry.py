"""The rule registry.

Per-module rules receive a :class:`~repro.statics.context.ModuleContext`
and yield findings.  Cross-artifact rules receive the whole set of
scanned files — that is how the trace-schema drift check sees
``records.py``, ``columns.py`` and ``io_binary.py`` together.

Rules register themselves at import time via the decorators; the engine
imports the rule modules and iterates :data:`RULES` / :data:`CROSS_RULES`.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Iterator

from .context import ModuleContext
from .findings import Finding, Severity

__all__ = [
    "Rule",
    "CrossRule",
    "RULES",
    "CROSS_RULES",
    "rule",
    "cross_rule",
    "rule_catalog",
]

ModuleCheck = Callable[[ModuleContext], Iterator[Finding]]
CrossCheck = Callable[[Iterable[Path]], Iterator[Finding]]


@dataclass(frozen=True, slots=True)
class Rule:
    """One per-module invariant check."""

    id: str
    title: str
    severity: Severity
    check: ModuleCheck


@dataclass(frozen=True, slots=True)
class CrossRule:
    """One cross-artifact invariant check over the scanned file set."""

    id: str
    title: str
    severity: Severity
    check: CrossCheck


RULES: dict[str, Rule] = {}
CROSS_RULES: dict[str, CrossRule] = {}


def rule(rule_id: str, title: str, severity: Severity = Severity.ERROR):
    """Register a per-module rule; the decorated function is its check."""

    def decorator(fn: ModuleCheck) -> ModuleCheck:
        if rule_id in RULES or rule_id in CROSS_RULES:
            raise ValueError(f"duplicate rule id {rule_id}")
        RULES[rule_id] = Rule(rule_id, title, severity, fn)
        return fn

    return decorator


def cross_rule(rule_id: str, title: str, severity: Severity = Severity.ERROR):
    """Register a cross-artifact rule run once per lint invocation."""

    def decorator(fn: CrossCheck) -> CrossCheck:
        if rule_id in RULES or rule_id in CROSS_RULES:
            raise ValueError(f"duplicate rule id {rule_id}")
        CROSS_RULES[rule_id] = CrossRule(rule_id, title, severity, fn)
        return fn

    return decorator


def rule_catalog() -> list[tuple[str, str, str]]:
    """(id, severity, title) rows for every registered rule."""
    rows = [(r.id, str(r.severity), r.title) for r in RULES.values()]
    rows += [(r.id, str(r.severity), r.title) for r in CROSS_RULES.values()]
    return sorted(rows)
