"""Text and JSON reporters for lint results."""

from __future__ import annotations

import json

from .engine import LintReport
from .findings import Severity

__all__ = ["render_text", "render_json"]


def render_text(report: LintReport) -> str:
    lines = [f.render() for f in sorted(report.findings, key=lambda f: f.sort_key())]
    errors = sum(1 for f in report.findings if f.severity is Severity.ERROR)
    warnings = len(report.findings) - errors
    summary = (
        f"{len(report.findings)} finding(s) "
        f"({errors} error(s), {warnings} warning(s)) in "
        f"{report.files_scanned} file(s); "
        f"{report.suppressed_count} suppressed, "
        f"{report.baselined_count} baselined"
    )
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    payload = {
        "version": 1,
        "files_scanned": report.files_scanned,
        "suppressed": report.suppressed_count,
        "baselined": report.baselined_count,
        "findings": [
            {
                "rule": f.rule_id,
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "severity": str(f.severity),
                "message": f.message,
                "fingerprint": f.fingerprint,
            }
            for f in sorted(report.findings, key=lambda f: f.sort_key())
        ],
    }
    return json.dumps(payload, indent=2)
