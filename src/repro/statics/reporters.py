"""Text, JSON and SARIF reporters for lint results."""

from __future__ import annotations

import json

from .engine import LintReport
from .findings import Severity
from .registry import rule_catalog

__all__ = ["render_text", "render_json", "render_sarif"]


def render_text(report: LintReport) -> str:
    lines = [f.render() for f in sorted(report.findings, key=lambda f: f.sort_key())]
    errors = sum(1 for f in report.findings if f.severity is Severity.ERROR)
    warnings = len(report.findings) - errors
    summary = (
        f"{len(report.findings)} finding(s) "
        f"({errors} error(s), {warnings} warning(s)) in "
        f"{report.files_scanned} file(s); "
        f"{report.suppressed_count} suppressed, "
        f"{report.baselined_count} baselined"
    )
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    payload = {
        "version": 1,
        "files_scanned": report.files_scanned,
        "suppressed": report.suppressed_count,
        "baselined": report.baselined_count,
        "findings": [
            {
                "rule": f.rule_id,
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "severity": str(f.severity),
                "message": f.message,
                "fingerprint": f.fingerprint,
            }
            for f in sorted(report.findings, key=lambda f: f.sort_key())
        ],
    }
    return json.dumps(payload, indent=2)


#: Engine-generated rule ids with no registered check (kept in the
#: SARIF driver catalog so results always reference a declared rule).
_ENGINE_RULES = (
    ("REP-A001", "error", "stale suppression comment"),
    ("REP-A002", "error", "file does not parse or cannot be read"),
)


def render_sarif(report: LintReport) -> str:
    """SARIF 2.1.0, the schema GitHub code scanning ingests.

    Suppressed and baselined findings are omitted — SARIF is the
    PR-annotation surface, and those are by definition accepted."""
    catalog = list(rule_catalog()) + list(_ENGINE_RULES)
    rules = [
        {
            "id": rule_id,
            "name": rule_id.replace("-", ""),
            "shortDescription": {"text": title},
            "defaultConfiguration": {
                "level": "error" if severity == "error" else "warning"
            },
        }
        for rule_id, severity, title in sorted(set(catalog))
    ]
    index = {entry["id"]: i for i, entry in enumerate(rules)}
    results = [
        {
            "ruleId": f.rule_id,
            "ruleIndex": index.get(f.rule_id, -1),
            "level": "error" if f.severity is Severity.ERROR else "warning",
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": f.path.replace("\\", "/"),
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": f.line,
                            "startColumn": f.col,
                        },
                    }
                }
            ],
            "partialFingerprints": {"reproStaticsFingerprint/v1": f.fingerprint},
        }
        for f in sorted(report.findings, key=lambda f: f.sort_key())
    ]
    payload = {
        "$schema": "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-statics",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2)
