"""Determinism rules.

Every figure and table this repository reproduces is pinned by
differential oracles (one-pass analyzer vs. reference modules, packed
replay vs. ``BlockCacheSimulator``), and those oracles assume the code
under test is a pure function of the trace and the seed.  These rules
make the assumption checkable:

* ``REP-D001`` — no wall-clock or OS-entropy reads inside the
  deterministic packages; simulated time comes from ``repro.clock``.
* ``REP-D002`` — no *unseeded* randomness: calls on the ``random``
  module draw from global interpreter state; components take their own
  ``random.Random(seed)``.
* ``REP-D003`` — no iteration over bare ``set`` values (hash order) and
  no bare ``dict.popitem()`` in order-pinned code; wrap in ``sorted()``
  or use an explicit order.
"""

from __future__ import annotations

import ast
from typing import Iterator

from . import config
from .context import ModuleContext
from .findings import Finding, Severity
from .registry import rule

__all__ = ["WALL_CLOCK_CALLS"]

#: Dotted call origins that read the host clock or OS entropy.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.localtime",
        "time.gmtime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "os.urandom",
        "os.getrandom",
        "uuid.uuid1",
        "uuid.uuid4",
    }
)

#: random-module entry points that are *not* the seeded-instance escape
#: hatch (``random.Random(seed)``).
_RANDOM_MODULE_PREFIXES = ("random.", "numpy.random.")
_RANDOM_ALLOWED = frozenset({"random.Random", "numpy.random.Generator"})

#: Order-insensitive consumers: a set iterated directly inside one of
#: these calls cannot leak hash order into output.
_ORDER_INSENSITIVE_CALLS = frozenset(
    {"sorted", "min", "max", "sum", "len", "any", "all", "set", "frozenset"}
)


def _finding(
    ctx: ModuleContext,
    rule_id: str,
    node: ast.AST,
    severity: Severity,
    message: str,
) -> Finding:
    return Finding(
        rule_id=rule_id,
        path=ctx.display_path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0) + 1,
        severity=severity,
        message=message,
    )


@rule("REP-D001", "wall-clock or OS-entropy read in deterministic code")
def check_wall_clock(ctx: ModuleContext) -> Iterator[Finding]:
    if not config.in_packages(ctx.module, config.DETERMINISM_PACKAGES):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        resolved = ctx.resolve(node.func)
        if resolved is None:
            continue
        if resolved in WALL_CLOCK_CALLS or resolved.startswith("secrets."):
            yield _finding(
                ctx,
                "REP-D001",
                node,
                Severity.ERROR,
                f"call to `{resolved}` reads the host clock or OS entropy; "
                "deterministic code must take time from `repro.clock` and "
                "randomness from a seeded `random.Random`",
            )


@rule("REP-D002", "unseeded randomness in deterministic code")
def check_unseeded_random(ctx: ModuleContext) -> Iterator[Finding]:
    if not config.in_packages(ctx.module, config.DETERMINISM_PACKAGES):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        resolved = ctx.resolve(node.func)
        if resolved is None:
            continue
        if resolved == "random.SystemRandom":
            yield _finding(
                ctx,
                "REP-D002",
                node,
                Severity.ERROR,
                "`random.SystemRandom` draws OS entropy and can never be "
                "seeded; use `random.Random(seed)`",
            )
            continue
        if resolved in _RANDOM_ALLOWED:
            if not node.args and not node.keywords:
                yield _finding(
                    ctx,
                    "REP-D002",
                    node,
                    Severity.ERROR,
                    f"`{resolved}()` without a seed argument is seeded from "
                    "OS entropy; pass an explicit seed",
                )
            continue
        if any(resolved.startswith(p) for p in _RANDOM_MODULE_PREFIXES):
            yield _finding(
                ctx,
                "REP-D002",
                node,
                Severity.ERROR,
                f"module-level `{resolved}` draws from the global "
                "interpreter RNG; use a component-owned "
                "`random.Random(seed)` instance",
            )


def _iter_set_iterations(ctx: ModuleContext):
    """(node, iter_expr) pairs for every for-loop / comprehension clause."""
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node, node.iter
        elif isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            for gen in node.generators:
                yield node, gen.iter


def _is_set_expr(ctx: ModuleContext, site: ast.AST, expr: ast.expr) -> bool:
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call):
        return ctx.resolve(expr.func) in ("set", "frozenset")
    if isinstance(expr, ast.Name):
        return expr.id in ctx.set_typed_names(site)
    return False


def _consumed_order_insensitively(ctx: ModuleContext, node: ast.AST) -> bool:
    """True when *node* (a comprehension/genexp) feeds sorted() et al."""
    parent = ctx.parent(node)
    if isinstance(parent, ast.Call) and node in parent.args:
        resolved = ctx.resolve(parent.func)
        return resolved in _ORDER_INSENSITIVE_CALLS
    return False


@rule("REP-D003", "hash-order iteration in order-pinned code")
def check_set_iteration(ctx: ModuleContext) -> Iterator[Finding]:
    if not config.in_packages(ctx.module, config.ORDER_PINNED_PACKAGES):
        return
    for node, iter_expr in _iter_set_iterations(ctx):
        if not _is_set_expr(ctx, node, iter_expr):
            continue
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            if isinstance(node, (ast.SetComp,)):
                continue  # a set built from a set stays orderless
            if _consumed_order_insensitively(ctx, node):
                continue
        yield _finding(
            ctx,
            "REP-D003",
            iter_expr,
            Severity.ERROR,
            "iteration over a bare `set` leaks hash order into "
            "order-pinned code; wrap the iterable in `sorted(...)` or "
            "keep an explicit order",
        )
    for node in ast.walk(ctx.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "popitem"
            and not node.args
            and not node.keywords
        ):
            yield _finding(
                ctx,
                "REP-D003",
                node,
                Severity.ERROR,
                "bare `.popitem()` removes an unspecified end on plain "
                "dicts; use `OrderedDict.popitem(last=...)` or an "
                "explicit key",
            )
