"""Engine-parity rules (cross-module, call-graph based).

The repo's fast-path discipline (DESIGN.md §12–13) is a three-way
contract around every ``resolve_engine`` dispatch:

1. the numpy branch calls a convention-named kernel (``*_numpy`` /
   ``Vectorized*``);
2. a pure-Python **oracle twin** remains reachable when numpy is
   absent, accepting the same knobs (the slow path *is* the spec);
3. a :mod:`repro.fuzz` pillar drives both engines differentially, so
   "bit-identical" stays an enforced property rather than a comment.

Until now only humans checked 2 and 3 at review time.  These rules
check them from the project call graph
(:mod:`repro.statics.callgraph`):

* ``REP-E001`` — structural parity.  Fires when a dispatch function
  has no pure-Python fallback path, when a fast-path kernel takes a
  parameter that neither the dispatcher nor any fallback callee
  accepts (signature drift: a knob the oracle can no longer mirror),
  or when a public convention-named kernel is never referenced from
  any dispatch numpy branch (an orphan fast path nothing can reach).
* ``REP-E002`` — differential coverage.  Fires when no module in the
  fuzz packages calls (or passes by reference) either the dispatch
  function or one of its fast-path kernels.

Both rules are whole-program statements, so they are skipped on scoped
runs (``repro-fs lint --changed``) and ``REP-E002`` additionally
requires at least one fuzz-package module in the scanned set — the
absence of a caller in a partial scan proves nothing.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Iterable, Iterator

from . import config
from .callgraph import CallGraph, load_or_build
from .findings import Finding, Severity
from .registry import cross_rule

__all__ = ["check_engine_parity", "check_fuzz_coverage", "shared_graph"]

#: One-slot memo so the two cross rules (and tests) share a build per
#: identical file set; keyed by (path, mtime_ns, size) signatures so a
#: rewritten fixture invalidates it.
_memo: dict = {"key": None, "graph": None}


def _stat_key(files: list[Path]) -> tuple:
    sig = []
    for path in files:
        try:
            st = os.stat(path)
            sig.append((str(path), st.st_mtime_ns, st.st_size))
        except OSError:
            sig.append((str(path), -1, -1))
    return tuple(sig)


def shared_graph(files: Iterable[str | Path]) -> CallGraph:
    """The call graph for *files*, memoized across rules in one run."""
    files = sorted({Path(f) for f in files if str(f).endswith(".py")})
    key = _stat_key(files)
    if _memo["key"] != key:
        _memo["graph"] = load_or_build(files, cache=config.CALLGRAPH_CACHE)
        _memo["key"] = key
    return _memo["graph"]


def _is_fast_name(name: str) -> bool:
    base = name.rsplit(".", 1)[-1]
    return base.endswith(tuple(config.FAST_PATH_SUFFIXES)) or base.startswith(
        tuple(config.FAST_PATH_PREFIXES)
    )


def _strip(param: str) -> str:
    return param.lstrip("*")


def _finding(
    path: str, line: int, rule_id: str, message: str
) -> Finding:
    return Finding(
        rule_id=rule_id,
        path=path,
        line=line,
        col=1,
        severity=Severity.ERROR,
        message=message,
    )


def _fast_callees(graph: CallGraph, qname: str) -> list[str]:
    """Resolved convention-named callees inside the numpy branch."""
    out: list[str] = []
    for site in graph.callees_of(qname):
        if site.branch != "numpy" or not site.resolved:
            continue
        sym = graph.symbol(site.callee)
        if sym is not None and _is_fast_name(sym.name) and site.callee not in out:
            out.append(site.callee)
    return out


def check_engine_parity(files: Iterable[str | Path]) -> Iterator[Finding]:
    """``REP-E001``: fallback exists, signatures match, no orphans."""
    graph = shared_graph(files)
    numpy_branch_targets: set[str] = set()
    for dispatch in graph.iter_dispatches():
        if not dispatch.has_fallback:
            yield _finding(
                dispatch.path,
                dispatch.lineno,
                "REP-E001",
                f"`{dispatch.qname}` dispatches to numpy but has no "
                "pure-Python fallback path (no `else` branch and no "
                "trailing statements); the oracle twin is the spec — "
                "keep it reachable",
            )
        # Knobs the python side accepts: the dispatcher's own signature
        # plus everything any fallback-branch callee takes.
        dispatch_sym = graph.symbol(dispatch.qname)
        pool: set[str] = set()
        if dispatch_sym is not None:
            pool.update(_strip(p) for p in dispatch_sym.params)
        for site in graph.callees_of(dispatch.qname):
            if site.branch == "fallback" and site.resolved:
                sym = graph.symbol(site.callee)
                if sym is not None:
                    pool.update(_strip(p) for p in sym.params)
        for fast in _fast_callees(graph, dispatch.qname):
            numpy_branch_targets.add(fast)
            fast_sym = graph.symbol(fast)
            if fast_sym is None:
                continue
            params = [_strip(p) for p in fast_sym.params]
            # The leading positional is the data (columns/stream/packed)
            # and `engine` is the dispatcher's own knob.
            checkable = [p for p in params[1:] if p != "engine"]
            missing = sorted(p for p in checkable if p not in pool)
            if missing:
                yield _finding(
                    dispatch.path,
                    dispatch.lineno,
                    "REP-E001",
                    f"fast path `{fast}` takes parameter(s) "
                    f"{', '.join(missing)} that neither `{dispatch.qname}` "
                    "nor any pure-Python fallback callee accepts; the "
                    "oracle twin's signature has drifted",
                )
    # Orphans: a public convention-named kernel no dispatch can reach.
    if graph.dispatches:
        for site in (s for s in graph.calls if s.branch == "numpy" and s.resolved):
            numpy_branch_targets.add(site.callee)
        for qname, sym in sorted(graph.symbols.items()):
            if sym.kind == "method" or not _is_fast_name(sym.name):
                continue
            if sym.name.rsplit(".", 1)[-1].startswith("_"):
                continue
            if qname not in numpy_branch_targets:
                yield _finding(
                    sym.path,
                    sym.lineno,
                    "REP-E001",
                    f"public fast path `{qname}` is never referenced from "
                    "any `resolve_engine` numpy branch; either wire it "
                    "into a dispatcher or mark it private",
                )


def check_fuzz_coverage(files: Iterable[str | Path]) -> Iterator[Finding]:
    """``REP-E002``: every dispatch pair is driven from a fuzz pillar."""
    graph = shared_graph(files)
    if not any(
        config.in_packages(mod, config.FUZZ_PACKAGES) for mod in graph.modules
    ):
        return  # partial scan: coverage cannot be judged
    for dispatch in graph.iter_dispatches():
        targets = [dispatch.qname, *_fast_callees(graph, dispatch.qname)]
        covered = any(
            config.in_packages(mod, config.FUZZ_PACKAGES)
            for target in targets
            for mod in graph.calling_modules(target)
        )
        if not covered:
            yield _finding(
                dispatch.path,
                dispatch.lineno,
                "REP-E002",
                f"engine dispatch `{dispatch.qname}` has no differential "
                "in any fuzz pillar "
                f"({', '.join(config.FUZZ_PACKAGES)}): neither it nor its "
                "fast path(s) are called there; register an "
                "engine-vs-oracle differential",
            )


@cross_rule("REP-E001", "engine dispatch without a pure-python oracle twin")
def rule_engine_parity(files: Iterable[Path]) -> Iterator[Finding]:
    if config.SCOPED_RUN:
        return
    yield from check_engine_parity(files)


@cross_rule("REP-E002", "engine dispatch without a fuzz differential")
def rule_fuzz_coverage(files: Iterable[Path]) -> Iterator[Finding]:
    if config.SCOPED_RUN:
        return
    yield from check_fuzz_coverage(files)
