"""Hot-path hygiene rules.

* ``REP-H001`` — classes in the declared hot-module list
  (:data:`repro.statics.config.HOT_MODULES`) must define ``__slots__``,
  directly or via ``@dataclass(slots=True)``.  These classes are
  instantiated per event or per cache block; a per-instance ``__dict__``
  costs both memory and attribute-lookup time exactly where sweeps
  spend their cycles.
* ``REP-H002`` — float ``==``/``!=`` comparisons in simulator code are
  errors.  Simulated clocks are running sums of float intervals; exact
  equality against a float literal is a latent never-fires (or
  always-fires) branch.
* ``REP-H003`` — per-event loops over :class:`TraceColumns` or
  :class:`PackedStream` columns (``for t in cols.times``,
  ``enumerate(cols.kinds)``, ``range(len(packed.keys))``, including
  through a local alias — ``keys = packed.keys`` or
  ``keys = packed.keys.tolist()``) are flagged outside the designated
  reference-oracle modules
  (:data:`repro.statics.config.COLUMN_ORACLE_MODULES`).  The oracles
  *must* stay row-at-a-time — they are the spec the vectorized engine
  is differenced against — but anywhere else such a loop is a hot-path
  regression waiting to be profiled: use the numpy views
  (:mod:`repro.trace.npview`) and the kernels in
  :mod:`repro.analysis.vectorized` /
  :mod:`repro.parallel.veccache`, or justify the loop with
  ``# repro: allow[REP-H003]``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from . import config
from .context import ModuleContext
from .findings import Finding, Severity
from .registry import rule

#: Base classes that manage their own storage; requiring ``__slots__``
#: on top of them is wrong or pointless.
_EXEMPT_BASES = frozenset(
    {
        "Exception",
        "BaseException",
        "ValueError",
        "TypeError",
        "RuntimeError",
        "Enum",
        "IntEnum",
        "StrEnum",
        "Flag",
        "IntFlag",
        "NamedTuple",
        "Protocol",
        "TypedDict",
    }
)


def _finding(
    ctx: ModuleContext,
    rule_id: str,
    node: ast.AST,
    severity: Severity,
    message: str,
) -> Finding:
    return Finding(
        rule_id=rule_id,
        path=ctx.display_path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0) + 1,
        severity=severity,
        message=message,
    )


def _base_name(base: ast.expr) -> str:
    if isinstance(base, ast.Name):
        return base.id
    if isinstance(base, ast.Attribute):
        return base.attr
    if isinstance(base, ast.Subscript):
        return _base_name(base.value)
    return ""


def _has_slots(node: ast.ClassDef) -> bool:
    for stmt in node.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    return True
        elif isinstance(stmt, ast.AnnAssign):
            if (
                isinstance(stmt.target, ast.Name)
                and stmt.target.id == "__slots__"
            ):
                return True
    for decorator in node.decorator_list:
        if isinstance(decorator, ast.Call):
            for kw in decorator.keywords:
                if (
                    kw.arg == "slots"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                ):
                    return True
    return False


@rule(
    "REP-H001",
    "hot-path class without __slots__",
    Severity.WARNING,
)
def check_slots(ctx: ModuleContext) -> Iterator[Finding]:
    if ctx.module not in config.HOT_MODULES:
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if any(_base_name(b) in _EXEMPT_BASES for b in node.bases):
            continue
        if any(kw.arg == "metaclass" for kw in node.keywords):
            continue
        if not _has_slots(node):
            yield _finding(
                ctx,
                "REP-H001",
                node,
                Severity.WARNING,
                f"class `{node.name}` in hot module `{ctx.module}` has no "
                "`__slots__`; per-instance dicts are paid on every event "
                "of every sweep — add `__slots__` or "
                "`@dataclass(slots=True)`",
            )


#: Builtins whose iteration is row-at-a-time over their argument.
_ITER_WRAPPERS = frozenset({"zip", "enumerate", "reversed", "iter", "map"})


def _is_column_value(node: ast.expr, bound: frozenset[str]) -> str | None:
    """The column name when *node* evaluates to a trace/packed column.

    Matches a direct ``<anything>.times``-style attribute access and
    local names previously bound from one (``kinds = cols.kinds``).
    """
    if isinstance(node, ast.Attribute) and node.attr in config.COLUMN_ATTRS:
        return node.attr
    if isinstance(node, ast.Name) and node.id in bound:
        return node.id
    return None


def _loops_over_column(
    iter_node: ast.expr, bound: frozenset[str]
) -> str | None:
    """The column name when *iter_node* iterates a column row-at-a-time."""
    direct = _is_column_value(iter_node, bound)
    if direct is not None:
        return direct
    if not (
        isinstance(iter_node, ast.Call)
        and isinstance(iter_node.func, ast.Name)
    ):
        return None
    fname = iter_node.func.id
    if fname in _ITER_WRAPPERS:
        for arg in iter_node.args:
            name = _is_column_value(arg, bound)
            if name is not None:
                return name
    if fname == "range":
        for arg in iter_node.args:
            if (
                isinstance(arg, ast.Call)
                and isinstance(arg.func, ast.Name)
                and arg.func.id == "len"
                and arg.args
            ):
                name = _is_column_value(arg.args[0], bound)
                if name is not None:
                    return name
    return None


def _scope_nodes(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk *scope* without descending into nested function scopes
    (each function gets its own pass with its own local bindings)."""
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _is_column_source(value: ast.expr) -> bool:
    """True when *value* reads a column, directly or through a
    same-length materializing wrapper (``packed.keys.tolist()``,
    ``list(cols.times)`` — still one Python object per row)."""
    if isinstance(value, ast.Attribute) and value.attr in config.COLUMN_ATTRS:
        return True
    if isinstance(value, ast.Call):
        func = value.func
        if isinstance(func, ast.Attribute) and func.attr == "tolist":
            return _is_column_source(func.value)
        if (
            isinstance(func, ast.Name)
            and func.id == "list"
            and len(value.args) == 1
        ):
            return _is_column_source(value.args[0])
    return False


def _column_locals(scope: ast.AST) -> frozenset[str]:
    """Local names assigned from a column attribute in a scope."""
    names: set[str] = set()
    for node in _scope_nodes(scope):
        if not isinstance(node, ast.Assign):
            continue
        if _is_column_source(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return frozenset(names)


_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)


@rule(
    "REP-H003",
    "per-event loop over trace columns outside the reference oracles",
    Severity.WARNING,
)
def check_column_loops(ctx: ModuleContext) -> Iterator[Finding]:
    if not ctx.module.startswith("repro."):
        return
    if ctx.module in config.COLUMN_ORACLE_MODULES:
        return
    if config.in_packages(ctx.module, config.COLUMN_RULE_EXEMPT_PACKAGES):
        return
    for scope in ast.walk(ctx.tree):
        if not isinstance(
            scope, (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            continue
        bound = _column_locals(scope)
        for node in _scope_nodes(scope):
            if isinstance(node, ast.For):
                hits = [(_loops_over_column(node.iter, bound), node)]
            elif isinstance(node, _COMPREHENSIONS):
                hits = [
                    (_loops_over_column(gen.iter, bound), node)
                    for gen in node.generators
                ]
            else:
                continue
            for column, at in hits:
                if column is None:
                    continue
                yield _finding(
                    ctx,
                    "REP-H003",
                    at,
                    Severity.WARNING,
                    f"per-event loop over column `{column}` outside "
                    "the reference oracles; hot paths belong on the "
                    "vectorized engines (repro.trace.npview views, "
                    "repro.analysis.vectorized and repro.parallel.veccache "
                    "kernels) — if this loop IS a reference "
                    "implementation, justify it with "
                    "`# repro: allow[REP-H003]`",
                )


@rule("REP-H002", "float equality comparison in simulator code")
def check_float_equality(ctx: ModuleContext) -> Iterator[Finding]:
    if not config.in_packages(ctx.module, config.SIMULATOR_PACKAGES):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            for side in (left, right):
                if isinstance(side, ast.Constant) and isinstance(
                    side.value, float
                ):
                    yield _finding(
                        ctx,
                        "REP-H002",
                        node,
                        Severity.ERROR,
                        f"exact float comparison against `{side.value!r}`; "
                        "simulated clocks are float sums — compare with a "
                        "tolerance or restructure the condition",
                    )
                    break
