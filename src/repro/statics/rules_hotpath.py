"""Hot-path hygiene rules.

* ``REP-H001`` — classes in the declared hot-module list
  (:data:`repro.statics.config.HOT_MODULES`) must define ``__slots__``,
  directly or via ``@dataclass(slots=True)``.  These classes are
  instantiated per event or per cache block; a per-instance ``__dict__``
  costs both memory and attribute-lookup time exactly where sweeps
  spend their cycles.
* ``REP-H002`` — float ``==``/``!=`` comparisons in simulator code are
  errors.  Simulated clocks are running sums of float intervals; exact
  equality against a float literal is a latent never-fires (or
  always-fires) branch.
"""

from __future__ import annotations

import ast
from typing import Iterator

from . import config
from .context import ModuleContext
from .findings import Finding, Severity
from .registry import rule

#: Base classes that manage their own storage; requiring ``__slots__``
#: on top of them is wrong or pointless.
_EXEMPT_BASES = frozenset(
    {
        "Exception",
        "BaseException",
        "ValueError",
        "TypeError",
        "RuntimeError",
        "Enum",
        "IntEnum",
        "StrEnum",
        "Flag",
        "IntFlag",
        "NamedTuple",
        "Protocol",
        "TypedDict",
    }
)


def _finding(
    ctx: ModuleContext,
    rule_id: str,
    node: ast.AST,
    severity: Severity,
    message: str,
) -> Finding:
    return Finding(
        rule_id=rule_id,
        path=ctx.display_path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0) + 1,
        severity=severity,
        message=message,
    )


def _base_name(base: ast.expr) -> str:
    if isinstance(base, ast.Name):
        return base.id
    if isinstance(base, ast.Attribute):
        return base.attr
    if isinstance(base, ast.Subscript):
        return _base_name(base.value)
    return ""


def _has_slots(node: ast.ClassDef) -> bool:
    for stmt in node.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    return True
        elif isinstance(stmt, ast.AnnAssign):
            if (
                isinstance(stmt.target, ast.Name)
                and stmt.target.id == "__slots__"
            ):
                return True
    for decorator in node.decorator_list:
        if isinstance(decorator, ast.Call):
            for kw in decorator.keywords:
                if (
                    kw.arg == "slots"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                ):
                    return True
    return False


@rule(
    "REP-H001",
    "hot-path class without __slots__",
    Severity.WARNING,
)
def check_slots(ctx: ModuleContext) -> Iterator[Finding]:
    if ctx.module not in config.HOT_MODULES:
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if any(_base_name(b) in _EXEMPT_BASES for b in node.bases):
            continue
        if any(kw.arg == "metaclass" for kw in node.keywords):
            continue
        if not _has_slots(node):
            yield _finding(
                ctx,
                "REP-H001",
                node,
                Severity.WARNING,
                f"class `{node.name}` in hot module `{ctx.module}` has no "
                "`__slots__`; per-instance dicts are paid on every event "
                "of every sweep — add `__slots__` or "
                "`@dataclass(slots=True)`",
            )


@rule("REP-H002", "float equality comparison in simulator code")
def check_float_equality(ctx: ModuleContext) -> Iterator[Finding]:
    if not config.in_packages(ctx.module, config.SIMULATOR_PACKAGES):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            for side in (left, right):
                if isinstance(side, ast.Constant) and isinstance(
                    side.value, float
                ):
                    yield _finding(
                        ctx,
                        "REP-H002",
                        node,
                        Severity.ERROR,
                        f"exact float comparison against `{side.value!r}`; "
                        "simulated clocks are float sums — compare with a "
                        "tolerance or restructure the condition",
                    )
                    break
