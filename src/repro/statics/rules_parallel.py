"""Parallel-safety rules.

``repro.parallel.executor.run_jobs`` ships its worker callable and
payload to worker *processes*.  Two invariants follow:

* ``REP-P001`` — the worker must be picklable by reference: a
  module-level function.  Lambdas, closures defined inside functions and
  bound methods pickle either not at all or by dragging their whole
  enclosing object along; under the executor's graceful-degradation
  contract they silently demote every sweep to serial, which is a
  performance bug that no test fails on.
* ``REP-P002`` — a worker function must not mutate module-level state.
  Under ``fork`` each process mutates its private copy and the parent
  never sees it; under threads it is a race.  Results must flow back
  through return values.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .context import ModuleContext
from .findings import Finding, Severity
from .registry import rule

_SUBMIT_SUFFIX = ".run_jobs"

_MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "clear",
        "add",
        "discard",
        "update",
        "setdefault",
        "pop",
        "popitem",
    }
)


def _finding(
    ctx: ModuleContext, rule_id: str, node: ast.AST, message: str
) -> Finding:
    return Finding(
        rule_id=rule_id,
        path=ctx.display_path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0) + 1,
        severity=Severity.ERROR,
        message=message,
    )


def _is_run_jobs_call(ctx: ModuleContext, node: ast.Call) -> bool:
    resolved = ctx.resolve(node.func)
    if resolved is None:
        return False
    return resolved == "run_jobs" or resolved.endswith(_SUBMIT_SUFFIX)


def _worker_arg(node: ast.Call) -> ast.expr | None:
    if node.args:
        return node.args[0]
    for kw in node.keywords:
        if kw.arg == "worker":
            return kw.value
    return None


def _nested_function_names(ctx: ModuleContext) -> set[str]:
    """Names of functions defined inside another function."""
    nested: set[str] = set()
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if ctx.enclosing_function(node) is not None:
                nested.add(node.name)
    return nested


def _check_worker_expr(
    ctx: ModuleContext, expr: ast.expr, nested: set[str]
) -> Iterator[Finding]:
    if isinstance(expr, ast.Lambda):
        yield _finding(
            ctx,
            "REP-P001",
            expr,
            "lambda passed as a process-pool worker cannot be pickled; "
            "the executor will silently fall back to serial — use a "
            "module-level function",
        )
        return
    if isinstance(expr, ast.Name):
        if expr.id in nested and not ctx.is_module_level_name(expr.id):
            yield _finding(
                ctx,
                "REP-P001",
                expr,
                f"worker `{expr.id}` is a function defined inside another "
                "function; closures cannot be pickled to worker processes "
                "— move it to module level",
            )
        return
    if isinstance(expr, ast.Attribute):
        resolved = ctx.resolve(expr)
        if resolved is None:
            yield _finding(
                ctx,
                "REP-P001",
                expr,
                f"worker `{ast.unparse(expr)}` is a bound method; pickling "
                "it ships the whole instance (or fails outright) — use a "
                "module-level function taking the instance via the payload",
            )
        return
    if isinstance(expr, ast.Call):
        resolved = ctx.resolve(expr.func)
        if resolved in ("functools.partial", "partial") and expr.args:
            yield from _check_worker_expr(ctx, expr.args[0], nested)


@rule("REP-P001", "unpicklable worker passed to the sweep executor")
def check_worker_picklability(ctx: ModuleContext) -> Iterator[Finding]:
    nested: set[str] | None = None
    for node in ast.walk(ctx.tree):
        if not (isinstance(node, ast.Call) and _is_run_jobs_call(ctx, node)):
            continue
        if nested is None:
            nested = _nested_function_names(ctx)
        worker = _worker_arg(node)
        if worker is not None:
            yield from _check_worker_expr(ctx, worker, nested)


def _worker_function_names(ctx: ModuleContext) -> set[str]:
    names: set[str] = set()
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call) and _is_run_jobs_call(ctx, node):
            worker = _worker_arg(node)
            if isinstance(worker, ast.Name):
                names.add(worker.id)
    return names


def _module_mutable_names(ctx: ModuleContext) -> set[str]:
    """Module-level names bound to obviously mutable containers."""
    mutable: set[str] = set()
    for stmt in ctx.tree.body:
        value = None
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            value, targets = stmt.value, list(stmt.targets)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            value, targets = stmt.value, [stmt.target]
        if value is None:
            continue
        is_container = isinstance(
            value, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                    ast.SetComp)
        ) or (
            isinstance(value, ast.Call)
            and ctx.resolve(value.func)
            in (
                "list",
                "dict",
                "set",
                "bytearray",
                "collections.defaultdict",
                "defaultdict",
                "collections.OrderedDict",
                "OrderedDict",
                "collections.Counter",
                "Counter",
                "collections.deque",
                "deque",
            )
        )
        if not is_container:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                mutable.add(target.id)
    return mutable


@rule("REP-P002", "worker function mutates module-level state")
def check_worker_global_mutation(ctx: ModuleContext) -> Iterator[Finding]:
    workers = _worker_function_names(ctx)
    if not workers:
        return
    mutable = _module_mutable_names(ctx)
    for node in ctx.tree.body:
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if node.name not in workers:
            continue
        declared_global: set[str] = set()
        for sub in ast.walk(node):
            if isinstance(sub, ast.Global):
                declared_global.update(sub.names)
        for sub in ast.walk(node):
            if isinstance(sub, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    sub.targets
                    if isinstance(sub, ast.Assign)
                    else [sub.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Name)
                        and target.id in declared_global
                    ):
                        yield _finding(
                            ctx,
                            "REP-P002",
                            sub,
                            f"worker `{node.name}` assigns module global "
                            f"`{target.id}`; under fork each process "
                            "mutates a private copy — return the value "
                            "instead",
                        )
                    elif (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)
                        and target.value.id in mutable
                    ):
                        yield _finding(
                            ctx,
                            "REP-P002",
                            sub,
                            f"worker `{node.name}` writes into module-level "
                            f"container `{target.value.id}`; worker "
                            "processes never share it — return the value "
                            "instead",
                        )
            elif (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr in _MUTATING_METHODS
                and isinstance(sub.func.value, ast.Name)
                and sub.func.value.id in mutable
            ):
                yield _finding(
                    ctx,
                    "REP-P002",
                    sub,
                    f"worker `{node.name}` calls `.{sub.func.attr}()` on "
                    f"module-level container `{sub.func.value.id}`; worker "
                    "processes never share it — return the value instead",
                )
