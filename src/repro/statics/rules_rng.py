"""RNG-provenance rules (flow-aware).

``REP-D002`` catches randomness it can *resolve syntactically*: a call
whose Name/Attribute chain leads back to an import of ``random`` or
``numpy.random``.  The moment the RNG moves through an assignment —

.. code-block:: python

    r = random            # alias the module
    make = random.Random  # alias the factory
    rng = make()          # unseeded, but D002 can no longer see it
    rng.shuffle(files)

— the chain roots at a local variable, ``ctx.resolve`` returns ``None``
and the heuristic goes blind.  These rules close that gap with the
dataflow lattice: taint is introduced at ``random``/``numpy.random``
imports, factories and seeded-generator parameters, propagated by
:mod:`repro.statics.dataflow`, and checked at every call site.

* ``REP-D004`` — a draw reached the *module-level* RNG through
  dataflow (aliased module, aliased draw function).  Same defect class
  as D002's module-draw arm, found through flow instead of syntax.
* ``REP-D005`` — a draw on an RNG instance that was constructed
  *unseeded* (or is a ``SystemRandom``) somewhere upstream.  This is
  the seeded-Generator-bypass shape: code that dutifully accepts an
  ``rng`` parameter but draws from a locally constructed generator.

Values flowing from a seeded construction (``random.Random(seed)``,
``default_rng(seed)``) or from an ``rng``-named/annotated parameter are
clean by definition — threading a seeded generator is exactly the
discipline the repo wants.

Both rules only fire where ``ctx.resolve`` fails on the callee, so a
single defect is never reported by D002 and D004/5 at once.
"""

from __future__ import annotations

import ast
from typing import Iterator

from . import config
from .context import ModuleContext
from .dataflow import EMPTY, TaintPolicy, analyze_flow, iter_scopes
from .findings import Finding, Severity
from .registry import rule
from .rules_determinism import _RANDOM_MODULE_PREFIXES, _finding

__all__ = ["RngPolicy"]

#: Taint tags.
_MODULE = "rng.module"  # the random / numpy.random module object
_NUMPY = "rng.numpy"  # the numpy module (np.random hangs off it)
_FN = "rng.fn"  # a module-level draw function as a value
_FACTORY = "rng.factory"  # Random / Generator / default_rng as a value
_SYS_FACTORY = "rng.sysfactory"  # SystemRandom as a value
_SEEDED = "rng.seeded"  # a generator constructed with a seed, or a param
_UNSEEDED = "rng.unseeded"  # a generator constructed with no arguments
_SYSTEM = "rng.system"  # a SystemRandom instance
_UNSEEDED_METHOD = "rng.unseeded-method"
_SYSTEM_METHOD = "rng.system-method"

_FACTORY_ORIGINS = frozenset(
    {"random.Random", "numpy.random.Generator", "numpy.random.default_rng"}
)
_FACTORY_ATTRS = frozenset({"Random", "Generator", "default_rng"})


def _is_rng_annotation(annotation: ast.expr | None) -> bool:
    if annotation is None:
        return False
    text = ast.dump(annotation)
    return "Random" in text or "Generator" in text


class RngPolicy(TaintPolicy):
    """The RNG-provenance lattice."""

    def param_taint(self, ctx, fn, arg: ast.arg) -> frozenset:
        name = arg.arg.lower()
        if name in config.RNG_PARAM_NAMES or _is_rng_annotation(arg.annotation):
            return frozenset({_SEEDED})
        return EMPTY

    def name_taint(self, ctx: ModuleContext, name: str) -> frozenset:
        origin = ctx.imports.get(name)
        if origin is None:
            return EMPTY
        if origin in ("random", "numpy.random"):
            return frozenset({_MODULE})
        if origin == "numpy":
            return frozenset({_NUMPY})
        if origin in _FACTORY_ORIGINS:
            return frozenset({_FACTORY})
        if origin == "random.SystemRandom":
            return frozenset({_SYS_FACTORY})
        if any(origin.startswith(p) for p in _RANDOM_MODULE_PREFIXES):
            return frozenset({_FN})
        return EMPTY

    def attribute_taint(self, ctx, node: ast.Attribute, base: frozenset) -> frozenset:
        if _NUMPY in base and node.attr == "random":
            return frozenset({_MODULE})
        if _MODULE in base:
            if node.attr in _FACTORY_ATTRS:
                return frozenset({_FACTORY})
            if node.attr == "SystemRandom":
                return frozenset({_SYS_FACTORY})
            return frozenset({_FN})  # bound method of the global RNG
        if _UNSEEDED in base:
            return frozenset({_UNSEEDED_METHOD})
        if _SYSTEM in base:
            return frozenset({_SYSTEM_METHOD})
        return EMPTY

    def call_taint(self, ctx, node: ast.Call, func: frozenset, args) -> frozenset:
        if _FACTORY in func:
            if node.args or node.keywords:
                return frozenset({_SEEDED})
            return frozenset({_UNSEEDED})
        if _SYS_FACTORY in func:
            return frozenset({_SYSTEM})
        return EMPTY


@rule("REP-D004", "module-level RNG reached through dataflow")
def check_rng_module_flow(ctx: ModuleContext) -> Iterator[Finding]:
    yield from _check(ctx, want="D004")


@rule("REP-D005", "unseeded RNG instance reached through dataflow")
def check_rng_unseeded_flow(ctx: ModuleContext) -> Iterator[Finding]:
    yield from _check(ctx, want="D005")


def _scope_nodes(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk *scope* without descending into nested function scopes
    (each nested ``def`` is analyzed as its own scope)."""
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _check(ctx: ModuleContext, want: str) -> Iterator[Finding]:
    if not config.in_packages(ctx.module, config.DETERMINISM_PACKAGES):
        return
    policy = RngPolicy()
    for scope in iter_scopes(ctx):
        flow = analyze_flow(ctx, scope, policy)
        for node in _scope_nodes(scope):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve(node.func)
            if resolved is not None and "." in resolved:
                continue  # import-rooted chain: REP-D002's territory
            func_taint = flow.taint(node.func)
            if want == "D004" and (_FN in func_taint or _MODULE in func_taint):
                yield _finding(
                    ctx,
                    "REP-D004",
                    node,
                    Severity.ERROR,
                    "this call draws from the module-level RNG through an "
                    "alias (dataflow); draw from a seeded `random.Random` / "
                    "`numpy.random.Generator` threaded as a parameter",
                )
            elif want == "D005" and _UNSEEDED_METHOD in func_taint:
                yield _finding(
                    ctx,
                    "REP-D005",
                    node,
                    Severity.ERROR,
                    "this call draws from an RNG constructed without a seed "
                    "upstream (dataflow); construct it as "
                    "`random.Random(seed)` / `default_rng(seed)` or accept "
                    "a seeded generator parameter",
                )
            elif want == "D005" and _SYSTEM_METHOD in func_taint:
                yield _finding(
                    ctx,
                    "REP-D005",
                    node,
                    Severity.ERROR,
                    "this call draws from a `SystemRandom` (OS entropy) "
                    "reached through dataflow; it can never be seeded",
                )
