"""Schema drift detection (cross-artifact).

Two rules guard two schemas:

``REP-S001`` — the trace event schema, which lives in three places that
must agree field-for-field;

``REP-S002`` — the corpus on-disk layout (``corpus/format.py``), whose
version-stamped digest must be recomputed and re-registered on any
layout change.

The trace schema lives in three places that must agree field-for-field:

* ``trace/records.py`` — the event dataclasses (the schema of record);
* ``trace/columns.py`` — the columnar view: ``TraceColumns.from_log``
  must *read* every field, ``TraceColumns.event`` must *construct* with
  every field;
* ``trace/io_binary.py`` — the binary codec: ``_pack_event`` must read
  every field, ``_unpack_event`` must construct with every field.

A field added to a record but forgotten in a codec silently serializes
to its default; a field removed from a record leaves a codec reading a
ghost attribute.  Both went undetected until a runtime failure before —
the u32 centisecond overflow was patched reactively for exactly this
reason.  ``REP-S001`` turns the agreement into a CI property: it parses
all three artifacts and reports any field present in one but missing
from another, in either direction.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from .findings import Finding, Severity
from .registry import cross_rule

__all__ = ["check_corpus_schema", "check_trace_schema", "TRACE_ARTIFACTS"]

#: File names that make up one trace-schema artifact set (all three must
#: sit in the same directory to be checked as a unit).
TRACE_ARTIFACTS = ("records.py", "columns.py", "io_binary.py")


@dataclass(slots=True)
class _ClassUsage:
    """How one artifact consumes one event class."""

    reads: set[str] = field(default_factory=set)
    constructed: set[str] = field(default_factory=set)
    read_lines: dict[str, int] = field(default_factory=dict)
    seen_in_branches: bool = False
    seen_in_constructors: bool = False
    branch_line: int = 1
    constructor_line: int = 1


def _event_classes(tree: ast.Module) -> dict[str, tuple[list[str], int]]:
    """Event dataclasses: name -> (ordered field names, def line).

    An event class is any class whose body assigns a ``kind`` tag —
    the discriminator every codec branches on.
    """
    classes: dict[str, tuple[list[str], int]] = {}
    for node in tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        has_kind = any(
            isinstance(stmt, ast.Assign)
            and any(
                isinstance(t, ast.Name) and t.id == "kind"
                for t in stmt.targets
            )
            for stmt in node.body
        )
        if not has_kind:
            continue
        fields = [
            stmt.target.id
            for stmt in node.body
            if isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
        ]
        classes[node.name] = (fields, node.lineno)
    return classes


def _isinstance_test(node: ast.expr, class_names: set[str]):
    """``isinstance(var, Cls)`` -> (var name, class name), else None."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "isinstance"
        and len(node.args) == 2
        and isinstance(node.args[0], ast.Name)
    ):
        cls = node.args[1]
        if isinstance(cls, ast.Name) and cls.id in class_names:
            return node.args[0].id, cls.id
    return None


def _collect_usage(
    tree: ast.Module, class_names: set[str]
) -> dict[str, _ClassUsage]:
    """Per-class attribute reads and constructor fields in one artifact."""
    usage = {name: _ClassUsage() for name in class_names}

    # Constructor calls anywhere in the module.
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = None
        if isinstance(func, ast.Name) and func.id in class_names:
            name = func.id
        elif isinstance(func, ast.Attribute) and func.attr in class_names:
            name = func.attr
        if name is None:
            continue
        info = usage[name]
        info.seen_in_constructors = True
        info.constructor_line = node.lineno
        for kw in node.keywords:
            if kw.arg is not None:
                info.constructed.add(kw.arg)
        # Positional args map onto the record's field order; the caller
        # resolves indices against the records schema.
        info.constructed.update(
            f"__pos{i}__" for i in range(len(node.args))
        )

    # isinstance-branch attribute reads, per function.
    for fn in ast.walk(tree):
        if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        branches: list[tuple[str, str, ast.If]] = []
        for node in ast.walk(fn):
            if isinstance(node, ast.If):
                test = _isinstance_test(node.test, class_names)
                if test is not None:
                    branches.append((test[0], test[1], node))
        if not branches:
            continue
        var_names = {var for var, _, _ in branches}
        in_branch: set[ast.AST] = set()
        for var, cls, if_node in branches:
            info = usage[cls]
            info.seen_in_branches = True
            info.branch_line = if_node.lineno
            for stmt in if_node.body:
                for sub in ast.walk(stmt):
                    in_branch.add(sub)
                    if (
                        isinstance(sub, ast.Attribute)
                        and isinstance(sub.value, ast.Name)
                        and sub.value.id == var
                    ):
                        info.reads.add(sub.attr)
                        info.read_lines.setdefault(sub.attr, sub.lineno)
        # Reads outside every branch (e.g. `times[i] = event.time` before
        # the dispatch) apply to all classes tested in this function.
        tested = {cls for _, cls, _ in branches}
        for sub in ast.walk(fn):
            if sub in in_branch:
                continue
            if (
                isinstance(sub, ast.Attribute)
                and isinstance(sub.value, ast.Name)
                and sub.value.id in var_names
            ):
                for cls in tested:
                    usage[cls].reads.add(sub.attr)
                    usage[cls].read_lines.setdefault(sub.attr, sub.lineno)
    return usage


def _resolve_positionals(
    constructed: set[str], fields: list[str]
) -> set[str]:
    resolved = set()
    for item in constructed:
        if item.startswith("__pos") and item.endswith("__"):
            index = int(item[5:-2])
            if index < len(fields):
                resolved.add(fields[index])
        else:
            resolved.add(item)
    return resolved


def check_trace_schema(
    records_path: Path, columns_path: Path, io_binary_path: Path
) -> Iterator[Finding]:
    """Cross-check the three schema artifacts; yield drift findings."""

    def _parse(path: Path) -> ast.Module:
        return ast.parse(path.read_text(encoding="utf-8"), filename=str(path))

    records_tree = _parse(records_path)
    classes = _event_classes(records_tree)
    if not classes:
        yield Finding(
            rule_id="REP-S001",
            path=str(records_path),
            line=1,
            col=1,
            severity=Severity.ERROR,
            message="no event classes (classes with a `kind` tag) found in "
            "the records artifact",
        )
        return
    class_names = set(classes)

    consumers = (
        (columns_path, "TraceColumns.from_log", "TraceColumns.event"),
        (io_binary_path, "_pack_event", "_unpack_event"),
    )
    for path, reader_name, builder_name in consumers:
        usage = _collect_usage(_parse(path), class_names)
        for cls, (fields, _line) in classes.items():
            info = usage[cls]
            if not info.seen_in_branches:
                yield Finding(
                    rule_id="REP-S001",
                    path=str(path),
                    line=1,
                    col=1,
                    severity=Severity.ERROR,
                    message=f"event class `{cls}` is never dispatched on "
                    f"(no isinstance branch) in this artifact; "
                    f"`{reader_name}` cannot encode it",
                )
            if not info.seen_in_constructors:
                yield Finding(
                    rule_id="REP-S001",
                    path=str(path),
                    line=1,
                    col=1,
                    severity=Severity.ERROR,
                    message=f"event class `{cls}` is never constructed in "
                    f"this artifact; `{builder_name}` cannot decode it",
                )
            field_set = set(fields)
            constructed = _resolve_positionals(info.constructed, fields)
            if info.seen_in_branches:
                for missing in sorted(field_set - info.reads):
                    yield Finding(
                        rule_id="REP-S001",
                        path=str(path),
                        line=info.branch_line,
                        col=1,
                        severity=Severity.ERROR,
                        message=f"field `{missing}` of `{cls}` is never "
                        f"read by `{reader_name}`; the codec would "
                        "silently drop it",
                    )
                for unknown in sorted(info.reads - field_set):
                    yield Finding(
                        rule_id="REP-S001",
                        path=str(path),
                        line=info.read_lines.get(unknown, info.branch_line),
                        col=1,
                        severity=Severity.ERROR,
                        message=f"`{reader_name}` reads `{cls}.{unknown}`, "
                        "which is not a field of the record; the schema "
                        "has drifted",
                    )
            if info.seen_in_constructors:
                for missing in sorted(field_set - constructed):
                    yield Finding(
                        rule_id="REP-S001",
                        path=str(path),
                        line=info.constructor_line,
                        col=1,
                        severity=Severity.ERROR,
                        message=f"field `{missing}` of `{cls}` is never "
                        f"passed by `{builder_name}`; decoded events "
                        "would silently take the default",
                    )
                for unknown in sorted(constructed - field_set):
                    yield Finding(
                        rule_id="REP-S001",
                        path=str(path),
                        line=info.constructor_line,
                        col=1,
                        severity=Severity.ERROR,
                        message=f"`{builder_name}` passes `{unknown}` to "
                        f"`{cls}`, which is not a field of the record; "
                        "the schema has drifted",
                    )


@cross_rule("REP-S001", "trace-schema drift between records and codecs")
def check_schema_drift(paths: Iterable[Path]) -> Iterator[Finding]:
    by_dir: dict[Path, dict[str, Path]] = {}
    for path in paths:
        if path.name in TRACE_ARTIFACTS:
            by_dir.setdefault(path.parent, {})[path.name] = path
    for directory, found in sorted(by_dir.items()):
        if len(found) == len(TRACE_ARTIFACTS):
            yield from check_trace_schema(
                found["records.py"], found["columns.py"], found["io_binary.py"]
            )


# -- REP-S002: corpus on-disk schema vs its registered digest ------------------

#: Constants of ``corpus/format.py`` that define the on-disk layout, in
#: the exact key order ``schema_digest()`` feeds them into the canonical
#: repr.  (name in format.py, key in the canonical dict)
_CORPUS_DIGEST_INPUTS = (
    ("FORMAT_VERSION", "version"),
    ("MAGIC", "magic"),
    ("FOOTER_MAGIC", "footer_magic"),
    ("END_MAGIC", "end_magic"),
    ("COLUMN_LAYOUT", "column_layout"),
    ("SEGMENT_STAT_FIELDS", "stat_fields"),
    ("SEGMENT_STAT_STRUCT", "stat_struct"),
    ("FLAG_HIST_BINS", "flag_hist_bins"),
    ("BYTES_PER_EVENT", "bytes_per_event"),
)


def _module_constants(tree: ast.Module) -> tuple[dict[str, object], dict[str, int]]:
    """Literal module-level assignments: name -> value, name -> line.

    Resolves one level of name indirection (``SCHEMA_DIGESTS = {1:
    _SCHEMA_DIGEST_V1}``) against earlier literal assignments, which is
    how format.py keeps the registered digest greppable.
    """
    values: dict[str, object] = {}
    lines: dict[str, int] = {}

    def _eval(node: ast.expr):
        if isinstance(node, ast.Name) and node.id in values:
            return values[node.id]
        if isinstance(node, ast.Dict):
            return {
                _eval(k): _eval(v)
                for k, v in zip(node.keys, node.values)
                if k is not None
            }
        if isinstance(node, (ast.Tuple, ast.List)):
            items = tuple(_eval(item) for item in node.elts)
            return items if isinstance(node, ast.Tuple) else list(items)
        return ast.literal_eval(node)

    for stmt in tree.body:
        if not (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
        ):
            continue
        name = stmt.targets[0].id
        try:
            values[name] = _eval(stmt.value)
        except (ValueError, KeyError, TypeError, SyntaxError):
            continue
        lines[name] = stmt.lineno
    return values, lines


def check_corpus_schema(format_path: Path) -> Iterator[Finding]:
    """Recompute the corpus schema digest from source literals.

    Mirrors :func:`repro.corpus.format.schema_digest` without importing
    the package: the canonical string is the repr of a dict built from
    the layout-defining literals, digested with sha256 and truncated to
    12 hex chars.  A layout edit that does not bump ``FORMAT_VERSION``
    and register the new digest in ``SCHEMA_DIGESTS`` is drift.
    """
    tree = ast.parse(
        format_path.read_text(encoding="utf-8"), filename=str(format_path)
    )
    values, lines = _module_constants(tree)

    missing = [name for name, _key in _CORPUS_DIGEST_INPUTS if name not in values]
    if "SCHEMA_DIGESTS" not in values:
        missing.append("SCHEMA_DIGESTS")
    if missing:
        yield Finding(
            rule_id="REP-S002",
            path=str(format_path),
            line=1,
            col=1,
            severity=Severity.ERROR,
            message="cannot recompute the corpus schema digest: no literal "
            f"module-level assignment for {', '.join(sorted(missing))}",
        )
        return

    version = values["FORMAT_VERSION"]
    canonical = repr({key: values[name] for name, key in _CORPUS_DIGEST_INPUTS})
    digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]
    registry = values["SCHEMA_DIGESTS"]

    registered = registry.get(version) if isinstance(registry, dict) else None
    if registered is None:
        yield Finding(
            rule_id="REP-S002",
            path=str(format_path),
            line=lines.get("SCHEMA_DIGESTS", 1),
            col=1,
            severity=Severity.ERROR,
            message=f"SCHEMA_DIGESTS has no entry for FORMAT_VERSION "
            f"{version!r}; register its digest {digest!r}",
        )
    elif registered != digest:
        yield Finding(
            rule_id="REP-S002",
            path=str(format_path),
            line=lines.get("SCHEMA_DIGESTS", 1),
            col=1,
            severity=Severity.ERROR,
            message=f"corpus on-disk schema drifted: recomputed digest "
            f"{digest!r} != registered {registered!r} for version "
            f"{version!r}; bump FORMAT_VERSION and register the new digest",
        )

    if isinstance(version, int) and 0 <= version <= 255:
        for name in ("MAGIC", "FOOTER_MAGIC", "END_MAGIC"):
            magic = values[name]
            if not (isinstance(magic, bytes) and len(magic) == 8):
                yield Finding(
                    rule_id="REP-S002",
                    path=str(format_path),
                    line=lines.get(name, 1),
                    col=1,
                    severity=Severity.ERROR,
                    message=f"{name} must be exactly 8 bytes "
                    f"(7-byte tag + version byte), got {magic!r}",
                )
            elif magic[-1] != version:
                yield Finding(
                    rule_id="REP-S002",
                    path=str(format_path),
                    line=lines.get(name, 1),
                    col=1,
                    severity=Severity.ERROR,
                    message=f"{name} ends with version byte {magic[-1]} but "
                    f"FORMAT_VERSION is {version}; the magics must carry "
                    "the current version",
                )


@cross_rule("REP-S002", "corpus schema drift without a format-version bump")
def check_corpus_schema_drift(paths: Iterable[Path]) -> Iterator[Finding]:
    for path in sorted(set(paths)):
        if path.name == "format.py" and path.parent.name == "corpus":
            yield from check_corpus_schema(path)
