"""Trace-schema drift detection (cross-artifact).

The trace schema lives in three places that must agree field-for-field:

* ``trace/records.py`` — the event dataclasses (the schema of record);
* ``trace/columns.py`` — the columnar view: ``TraceColumns.from_log``
  must *read* every field, ``TraceColumns.event`` must *construct* with
  every field;
* ``trace/io_binary.py`` — the binary codec: ``_pack_event`` must read
  every field, ``_unpack_event`` must construct with every field.

A field added to a record but forgotten in a codec silently serializes
to its default; a field removed from a record leaves a codec reading a
ghost attribute.  Both went undetected until a runtime failure before —
the u32 centisecond overflow was patched reactively for exactly this
reason.  ``REP-S001`` turns the agreement into a CI property: it parses
all three artifacts and reports any field present in one but missing
from another, in either direction.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from .findings import Finding, Severity
from .registry import cross_rule

__all__ = ["check_trace_schema", "TRACE_ARTIFACTS"]

#: File names that make up one trace-schema artifact set (all three must
#: sit in the same directory to be checked as a unit).
TRACE_ARTIFACTS = ("records.py", "columns.py", "io_binary.py")


@dataclass(slots=True)
class _ClassUsage:
    """How one artifact consumes one event class."""

    reads: set[str] = field(default_factory=set)
    constructed: set[str] = field(default_factory=set)
    read_lines: dict[str, int] = field(default_factory=dict)
    seen_in_branches: bool = False
    seen_in_constructors: bool = False
    branch_line: int = 1
    constructor_line: int = 1


def _event_classes(tree: ast.Module) -> dict[str, tuple[list[str], int]]:
    """Event dataclasses: name -> (ordered field names, def line).

    An event class is any class whose body assigns a ``kind`` tag —
    the discriminator every codec branches on.
    """
    classes: dict[str, tuple[list[str], int]] = {}
    for node in tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        has_kind = any(
            isinstance(stmt, ast.Assign)
            and any(
                isinstance(t, ast.Name) and t.id == "kind"
                for t in stmt.targets
            )
            for stmt in node.body
        )
        if not has_kind:
            continue
        fields = [
            stmt.target.id
            for stmt in node.body
            if isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
        ]
        classes[node.name] = (fields, node.lineno)
    return classes


def _isinstance_test(node: ast.expr, class_names: set[str]):
    """``isinstance(var, Cls)`` -> (var name, class name), else None."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "isinstance"
        and len(node.args) == 2
        and isinstance(node.args[0], ast.Name)
    ):
        cls = node.args[1]
        if isinstance(cls, ast.Name) and cls.id in class_names:
            return node.args[0].id, cls.id
    return None


def _collect_usage(
    tree: ast.Module, class_names: set[str]
) -> dict[str, _ClassUsage]:
    """Per-class attribute reads and constructor fields in one artifact."""
    usage = {name: _ClassUsage() for name in class_names}

    # Constructor calls anywhere in the module.
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = None
        if isinstance(func, ast.Name) and func.id in class_names:
            name = func.id
        elif isinstance(func, ast.Attribute) and func.attr in class_names:
            name = func.attr
        if name is None:
            continue
        info = usage[name]
        info.seen_in_constructors = True
        info.constructor_line = node.lineno
        for kw in node.keywords:
            if kw.arg is not None:
                info.constructed.add(kw.arg)
        # Positional args map onto the record's field order; the caller
        # resolves indices against the records schema.
        info.constructed.update(
            f"__pos{i}__" for i in range(len(node.args))
        )

    # isinstance-branch attribute reads, per function.
    for fn in ast.walk(tree):
        if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        branches: list[tuple[str, str, ast.If]] = []
        for node in ast.walk(fn):
            if isinstance(node, ast.If):
                test = _isinstance_test(node.test, class_names)
                if test is not None:
                    branches.append((test[0], test[1], node))
        if not branches:
            continue
        var_names = {var for var, _, _ in branches}
        in_branch: set[ast.AST] = set()
        for var, cls, if_node in branches:
            info = usage[cls]
            info.seen_in_branches = True
            info.branch_line = if_node.lineno
            for stmt in if_node.body:
                for sub in ast.walk(stmt):
                    in_branch.add(sub)
                    if (
                        isinstance(sub, ast.Attribute)
                        and isinstance(sub.value, ast.Name)
                        and sub.value.id == var
                    ):
                        info.reads.add(sub.attr)
                        info.read_lines.setdefault(sub.attr, sub.lineno)
        # Reads outside every branch (e.g. `times[i] = event.time` before
        # the dispatch) apply to all classes tested in this function.
        tested = {cls for _, cls, _ in branches}
        for sub in ast.walk(fn):
            if sub in in_branch:
                continue
            if (
                isinstance(sub, ast.Attribute)
                and isinstance(sub.value, ast.Name)
                and sub.value.id in var_names
            ):
                for cls in tested:
                    usage[cls].reads.add(sub.attr)
                    usage[cls].read_lines.setdefault(sub.attr, sub.lineno)
    return usage


def _resolve_positionals(
    constructed: set[str], fields: list[str]
) -> set[str]:
    resolved = set()
    for item in constructed:
        if item.startswith("__pos") and item.endswith("__"):
            index = int(item[5:-2])
            if index < len(fields):
                resolved.add(fields[index])
        else:
            resolved.add(item)
    return resolved


def check_trace_schema(
    records_path: Path, columns_path: Path, io_binary_path: Path
) -> Iterator[Finding]:
    """Cross-check the three schema artifacts; yield drift findings."""

    def _parse(path: Path) -> ast.Module:
        return ast.parse(path.read_text(encoding="utf-8"), filename=str(path))

    records_tree = _parse(records_path)
    classes = _event_classes(records_tree)
    if not classes:
        yield Finding(
            rule_id="REP-S001",
            path=str(records_path),
            line=1,
            col=1,
            severity=Severity.ERROR,
            message="no event classes (classes with a `kind` tag) found in "
            "the records artifact",
        )
        return
    class_names = set(classes)

    consumers = (
        (columns_path, "TraceColumns.from_log", "TraceColumns.event"),
        (io_binary_path, "_pack_event", "_unpack_event"),
    )
    for path, reader_name, builder_name in consumers:
        usage = _collect_usage(_parse(path), class_names)
        for cls, (fields, _line) in classes.items():
            info = usage[cls]
            if not info.seen_in_branches:
                yield Finding(
                    rule_id="REP-S001",
                    path=str(path),
                    line=1,
                    col=1,
                    severity=Severity.ERROR,
                    message=f"event class `{cls}` is never dispatched on "
                    f"(no isinstance branch) in this artifact; "
                    f"`{reader_name}` cannot encode it",
                )
            if not info.seen_in_constructors:
                yield Finding(
                    rule_id="REP-S001",
                    path=str(path),
                    line=1,
                    col=1,
                    severity=Severity.ERROR,
                    message=f"event class `{cls}` is never constructed in "
                    f"this artifact; `{builder_name}` cannot decode it",
                )
            field_set = set(fields)
            constructed = _resolve_positionals(info.constructed, fields)
            if info.seen_in_branches:
                for missing in sorted(field_set - info.reads):
                    yield Finding(
                        rule_id="REP-S001",
                        path=str(path),
                        line=info.branch_line,
                        col=1,
                        severity=Severity.ERROR,
                        message=f"field `{missing}` of `{cls}` is never "
                        f"read by `{reader_name}`; the codec would "
                        "silently drop it",
                    )
                for unknown in sorted(info.reads - field_set):
                    yield Finding(
                        rule_id="REP-S001",
                        path=str(path),
                        line=info.read_lines.get(unknown, info.branch_line),
                        col=1,
                        severity=Severity.ERROR,
                        message=f"`{reader_name}` reads `{cls}.{unknown}`, "
                        "which is not a field of the record; the schema "
                        "has drifted",
                    )
            if info.seen_in_constructors:
                for missing in sorted(field_set - constructed):
                    yield Finding(
                        rule_id="REP-S001",
                        path=str(path),
                        line=info.constructor_line,
                        col=1,
                        severity=Severity.ERROR,
                        message=f"field `{missing}` of `{cls}` is never "
                        f"passed by `{builder_name}`; decoded events "
                        "would silently take the default",
                    )
                for unknown in sorted(constructed - field_set):
                    yield Finding(
                        rule_id="REP-S001",
                        path=str(path),
                        line=info.constructor_line,
                        col=1,
                        severity=Severity.ERROR,
                        message=f"`{builder_name}` passes `{unknown}` to "
                        f"`{cls}`, which is not a field of the record; "
                        "the schema has drifted",
                    )


@cross_rule("REP-S001", "trace-schema drift between records and codecs")
def check_schema_drift(paths: Iterable[Path]) -> Iterator[Finding]:
    by_dir: dict[Path, dict[str, Path]] = {}
    for path in paths:
        if path.name in TRACE_ARTIFACTS:
            by_dir.setdefault(path.parent, {})[path.name] = path
    for directory, found in sorted(by_dir.items()):
        if len(found) == len(TRACE_ARTIFACTS):
            yield from check_trace_schema(
                found["records.py"], found["columns.py"], found["io_binary.py"]
            )
