"""Time-unit taint rule (``REP-U001``).

The trace formats store event times as **u32 centiseconds** (the 1985
trace resolution) while the in-memory analysis works in **float
seconds**; :mod:`repro.trace.io_binary` converts at the boundary with
``round(time * 100)`` / ``t / 100.0`` and clamps against ``_MAX_CS``.
The fuzzer once caught the failure mode dynamically: a seconds value
compared or added to a centisecond value without the ``* 100``
conversion is off by two orders of magnitude and silently truncates at
the u32 boundary ~497 days early.

This rule makes the mix a static finding.  The lattice tags values by
naming convention and conversion structure:

* ``unit.s`` — names/attributes with a ``time``/``seconds``/
  ``duration`` segment, and ``cs / 100`` results;
* ``unit.cs`` — names with a ``cs``/``centi`` segment (``_MAX_CS``,
  ``start_cs``), results of ``*_cs(...)`` helpers, and ``s * 100``
  results.

A finding fires when one operand of ``+``/``-``, a comparison, an
assignment, or a keyword argument is seconds-tainted and the other is
centisecond-tainted.  Explicit conversions launder the taint, so
``round(time * 100) <= _MAX_CS`` is clean while ``time <= _MAX_CS`` is
the bug.  Deliberately short single letters (``t``) carry no taint:
the rule only trusts names that *declare* a unit.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from . import config
from .context import ModuleContext
from .dataflow import EMPTY, TaintPolicy, analyze_flow, iter_scopes
from .findings import Finding, Severity
from .registry import rule
from .rules_determinism import _finding

__all__ = ["UnitPolicy"]

_S = "unit.s"
_CS = "unit.cs"

#: Name segments declaring a unit (matched on ``_``-split lowercased
#: segments so ``start_cs``, ``_MAX_CS`` and ``time_first`` all match).
_SECONDS_SEGMENTS = frozenset(
    {"time", "times", "seconds", "secs", "duration", "durations", "elapsed"}
)
_CS_SEGMENTS = frozenset({"cs", "centi", "centis", "centisecond", "centiseconds"})

#: Seconds names that are *containers* of times keep the taint too —
#: the column arrays are the common case (``times[i]``).

_SPLIT = re.compile(r"[^a-zA-Z0-9]+")


def _unit_of_name(name: str) -> frozenset:
    segments = {s for s in _SPLIT.split(name.lower()) if s}
    if segments & _CS_SEGMENTS:
        return frozenset({_CS})
    if segments & _SECONDS_SEGMENTS:
        return frozenset({_S})
    return EMPTY


def _conversion_factor(node: ast.expr) -> float | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
        if node.value in (100, 100.0):
            return 100.0
        if node.value == 0.01:
            return 0.01
    return None


class UnitPolicy(TaintPolicy):
    """Seconds/centiseconds lattice with conversion laundering."""

    def param_taint(self, ctx, fn, arg: ast.arg) -> frozenset:
        return _unit_of_name(arg.arg)

    def name_taint(self, ctx: ModuleContext, name: str) -> frozenset:
        if ctx.imports.get(name) is not None:
            return EMPTY  # modules/functions are not quantities
        return _unit_of_name(name)

    def attribute_taint(self, ctx, node: ast.Attribute, base: frozenset) -> frozenset:
        return _unit_of_name(node.attr)

    def call_taint(self, ctx, node: ast.Call, func: frozenset, args) -> frozenset:
        name = None
        if isinstance(node.func, ast.Name):
            name = node.func.id
        elif isinstance(node.func, ast.Attribute):
            name = node.func.attr
        if name is not None:
            # Numeric wrappers preserve the operand's unit.
            if name in ("round", "int", "float", "abs", "min", "max"):
                out = EMPTY
                for taint in args:
                    out |= taint
                return out
            declared = _unit_of_name(name)
            if declared:
                return declared  # _cs(...), parse_time(...) declare units
        return EMPTY

    def binop_taint(self, ctx, node: ast.BinOp, left: frozenset, right: frozenset) -> frozenset:
        if isinstance(node.op, ast.Mult):
            for operand, other in ((node.left, right), (node.right, left)):
                if _conversion_factor(operand) == 100.0:
                    return frozenset({_CS}) if _S in other else EMPTY
                if _conversion_factor(operand) == 0.01:
                    return frozenset({_S}) if _CS in other else EMPTY
        if isinstance(node.op, ast.Div):
            if _conversion_factor(node.right) == 100.0:
                return frozenset({_S}) if _CS in left else EMPTY
        if isinstance(node.op, (ast.Add, ast.Sub, ast.Mod, ast.FloorDiv)):
            return left | right
        return EMPTY  # other operators produce unknown units


def _mixed(a: frozenset, b: frozenset) -> bool:
    """One side unambiguously seconds, the other unambiguously cs."""
    return (_S in a and _CS not in a and _CS in b and _S not in b) or (
        _CS in a and _S not in a and _S in b and _CS not in b
    )


def _scope_nodes(scope: ast.AST) -> Iterator[ast.AST]:
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


_MESSAGE = (
    "mixes float-seconds and u32-centisecond values without an explicit "
    "conversion (`* 100` / `/ 100`); this is the overflow class the "
    "fuzzer found in the binary codec"
)


@rule("REP-U001", "seconds/centiseconds mixed without conversion")
def check_unit_mix(ctx: ModuleContext) -> Iterator[Finding]:
    if not config.in_packages(ctx.module, config.UNIT_PACKAGES):
        return
    policy = UnitPolicy()
    for scope in iter_scopes(ctx):
        flow = analyze_flow(ctx, scope, policy)
        for node in _scope_nodes(scope):
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                if _mixed(flow.taint(node.left), flow.taint(node.right)):
                    yield _finding(
                        ctx,
                        "REP-U001",
                        node,
                        Severity.ERROR,
                        f"arithmetic {_MESSAGE}",
                    )
            elif isinstance(node, ast.Compare):
                operands = [node.left, *node.comparators]
                for a, b in zip(operands, operands[1:]):
                    if _mixed(flow.taint(a), flow.taint(b)):
                        yield _finding(
                            ctx,
                            "REP-U001",
                            node,
                            Severity.ERROR,
                            f"comparison {_MESSAGE}",
                        )
                        break
            elif isinstance(node, ast.Assign):
                value_taint = flow.taint(node.value)
                for target in node.targets:
                    target_taint = EMPTY
                    if isinstance(target, ast.Name):
                        target_taint = _unit_of_name(target.id)
                    elif isinstance(target, ast.Subscript) and isinstance(
                        target.value, ast.Name
                    ):
                        target_taint = _unit_of_name(target.value.id)
                    if _mixed(target_taint, value_taint):
                        yield _finding(
                            ctx,
                            "REP-U001",
                            node,
                            Severity.ERROR,
                            f"assignment {_MESSAGE}",
                        )
                        break
            elif isinstance(node, ast.Call):
                for kw in node.keywords:
                    if kw.arg is None:
                        continue
                    if _mixed(_unit_of_name(kw.arg), flow.taint(kw.value)):
                        yield _finding(
                            ctx,
                            "REP-U001",
                            node,
                            Severity.ERROR,
                            f"keyword argument `{kw.arg}` {_MESSAGE}",
                        )
