"""strace-based trace substitution.

The original 1985 traces are gone; this package converts ``strace -f
-ttt`` logs of real modern workloads into the paper's logical trace
format, so the reference-pattern analyzer and the cache simulator can be
run against genuine file-system activity as well as the synthetic
workloads.
"""

from .convert import ConversionStats, convert_calls, convert_file
from .parser import StraceCall, parse_file, parse_lines

__all__ = [
    "StraceCall",
    "parse_lines",
    "parse_file",
    "convert_calls",
    "convert_file",
    "ConversionStats",
]
