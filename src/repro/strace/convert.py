"""Convert parsed strace calls into the paper's logical trace format.

The conversion deliberately *discards* the read/write records after using
them to track file offsets — producing exactly what the paper's kernel
tracer would have logged: positions at open, seek and close.  (That makes
this converter double as a demonstration of the no-read-write method on
real data: the byte ranges reconstructed downstream are identical to what
the reads and writes actually moved, as the paper argues.)

Approximations forced by what strace gives us:

* **File ids** are assigned per pathname, with a new id after an unlink
  (matching the paper's per-file identity); renames carry the id to the
  new name.
* **File sizes** are not visible at open time; each file's size is
  estimated from the furthest position observed (reads hitting EOF pin it
  exactly).
* **User ids** are synthesized from pids, so "per-user" analyses become
  per-process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..trace.log import TraceLog
from ..trace.records import (
    AccessMode,
    CloseEvent,
    ExecEvent,
    OpenEvent,
    SeekEvent,
    TruncateEvent,
    UnlinkEvent,
)
from .parser import StraceCall

__all__ = ["ConversionStats", "convert_calls", "convert_file"]

_O_WRONLY = 0o1
_O_RDWR = 0o2
_O_CREAT = 0o100
_O_TRUNC = 0o1000
_O_APPEND = 0o2000

_SEEK_SET, _SEEK_CUR, _SEEK_END = 0, 1, 2


@dataclass
class ConversionStats:
    """What the converter saw and what it kept."""

    calls: int = 0
    opens: int = 0
    reads_folded: int = 0
    writes_folded: int = 0
    skipped: int = 0

    def summary(self) -> str:
        return (
            f"{self.calls} calls -> {self.opens} opens; folded "
            f"{self.reads_folded} reads + {self.writes_folded} writes into "
            f"positions; skipped {self.skipped}"
        )


@dataclass
class _OpenState:
    open_id: int
    file_key: str
    pos: int
    mode: AccessMode


def _flags_of(call: StraceCall) -> int:
    """Parse the symbolic O_* flag argument of open/openat."""
    flag_arg = None
    for part in call.args.split(","):
        if "O_" in part:
            flag_arg = part
            break
    if flag_arg is None:
        return 0
    flags = 0
    mapping = {
        "O_WRONLY": _O_WRONLY,
        "O_RDWR": _O_RDWR,
        "O_CREAT": _O_CREAT,
        "O_TRUNC": _O_TRUNC,
        "O_APPEND": _O_APPEND,
    }
    for token in flag_arg.split("|"):
        flags |= mapping.get(token.strip(), 0)
    return flags


class _Converter:
    def __init__(self, name: str):
        self.log = TraceLog(name=name)
        self.stats = ConversionStats()
        self._t0: float | None = None
        self._next_open_id = 1
        self._next_file_id = 1
        self._file_ids: dict[str, int] = {}
        self._sizes: dict[str, int] = {}
        self._known_paths: set[str] = set()
        # (pid, fd) -> open state
        self._fds: dict[tuple[int, int], _OpenState] = {}
        self._last_time = 0.0

    def _time(self, t: float) -> float:
        if self._t0 is None:
            self._t0 = t
        rel = round((t - self._t0), 2)
        # strace with -f is not globally ordered; clamp to monotonic.
        rel = max(rel, self._last_time)
        self._last_time = rel
        return rel

    def _file_id(self, path: str) -> int:
        fid = self._file_ids.get(path)
        if fid is None:
            fid = self._next_file_id
            self._next_file_id += 1
            self._file_ids[path] = fid
        return fid

    def _open(self, call: StraceCall, path: str | None, flags: int, creat: bool) -> None:
        if call.retval < 0 or path is None:
            self.stats.skipped += 1
            return
        t = self._time(call.time)
        if creat:
            flags |= _O_CREAT | _O_TRUNC | _O_WRONLY
        if flags & _O_RDWR:
            mode = AccessMode.READ_WRITE
        elif flags & _O_WRONLY:
            mode = AccessMode.WRITE
        else:
            mode = AccessMode.READ
        new_file = bool(flags & _O_CREAT) and path not in self._known_paths
        self._known_paths.add(path)
        truncated = bool(flags & _O_TRUNC) and mode.writable
        if truncated or new_file:
            self._sizes[path] = 0
        if new_file and path in self._file_ids:
            # Recreated after unlink: new identity.
            del self._file_ids[path]
        size = self._sizes.get(path, 0)
        created = new_file or truncated
        pos = size if flags & _O_APPEND else 0
        open_id = self._next_open_id
        self._next_open_id += 1
        self._fds[(call.pid, call.retval)] = _OpenState(
            open_id=open_id, file_key=path, pos=pos, mode=mode
        )
        self.log.append(
            OpenEvent(
                time=t,
                open_id=open_id,
                file_id=self._file_id(path),
                user_id=call.pid,
                size=size,
                mode=mode,
                created=created,
                new_file=new_file,
                initial_pos=pos,
            )
        )
        self.stats.opens += 1

    def _advance(self, call: StraceCall, write: bool) -> None:
        state = self._fds.get((call.pid, call.int_arg(0) or 0))
        if state is None or call.retval < 0:
            self.stats.skipped += 1
            return
        state.pos += call.retval
        key = state.file_key
        if write:
            self.stats.writes_folded += 1
            self._sizes[key] = max(self._sizes.get(key, 0), state.pos)
        else:
            self.stats.reads_folded += 1
            self._sizes[key] = max(self._sizes.get(key, 0), state.pos)

    def _lseek(self, call: StraceCall) -> None:
        state = self._fds.get((call.pid, call.int_arg(0) or 0))
        if state is None or call.retval < 0:
            self.stats.skipped += 1
            return
        new_pos = call.retval  # lseek returns the absolute offset
        if new_pos != state.pos:
            self.log.append(
                SeekEvent(
                    time=self._time(call.time),
                    open_id=state.open_id,
                    prev_pos=state.pos,
                    new_pos=new_pos,
                )
            )
            state.pos = new_pos
            self._sizes[state.file_key] = max(
                self._sizes.get(state.file_key, 0), new_pos
            )

    def _close(self, call: StraceCall) -> None:
        state = self._fds.pop((call.pid, call.int_arg(0) or 0), None)
        if state is None:
            self.stats.skipped += 1
            return
        # If other descriptors still alias this open (dup), defer the
        # close event until the last one goes.
        if any(s is state for s in self._fds.values()):
            return
        self.log.append(
            CloseEvent(
                time=self._time(call.time),
                open_id=state.open_id,
                final_pos=state.pos,
            )
        )

    def _unlink(self, call: StraceCall, path: str | None) -> None:
        if call.retval < 0 or path is None:
            self.stats.skipped += 1
            return
        self.log.append(
            UnlinkEvent(time=self._time(call.time), file_id=self._file_id(path))
        )
        self._file_ids.pop(path, None)
        self._sizes.pop(path, None)
        self._known_paths.discard(path)

    def _truncate(self, call: StraceCall) -> None:
        if call.retval < 0:
            self.stats.skipped += 1
            return
        if call.name == "truncate":
            path = call.path_arg(0)
            length = call.int_arg(1) or 0
            if path is None:
                self.stats.skipped += 1
                return
            fid = self._file_id(path)
        else:  # ftruncate
            state = self._fds.get((call.pid, call.int_arg(0) or 0))
            if state is None:
                self.stats.skipped += 1
                return
            path = state.file_key
            length = call.int_arg(1) or 0
            fid = self._file_id(path)
        self._sizes[path] = min(self._sizes.get(path, 0), length)
        self.log.append(
            TruncateEvent(
                time=self._time(call.time), file_id=fid, new_length=length
            )
        )

    def _rename(self, call: StraceCall) -> None:
        """Carry the file identity (and the open fds pointing at it) from
        the old name to the new one; a rename over an existing target
        kills that target's data, which downstream lifetime analysis sees
        through the next truncating open of the name."""
        if call.retval < 0:
            self.stats.skipped += 1
            return
        old = call.path_arg(0)
        new = call.path_arg(1)
        if old is None or new is None:
            self.stats.skipped += 1
            return
        if old in self._file_ids:
            self._file_ids[new] = self._file_ids.pop(old)
        if old in self._sizes:
            self._sizes[new] = self._sizes.pop(old)
        self._known_paths.discard(old)
        self._known_paths.add(new)
        for state in self._fds.values():
            if state.file_key == old:
                state.file_key = new

    def _dup(self, call: StraceCall) -> None:
        """Alias the new descriptor to the same open state (shared offset,
        one close event when the last of them closes is approximated by
        closing at the first close — strace gives no refcount, so we key
        dup'd descriptors to the same state and tolerate the double
        close)."""
        if call.retval < 0:
            self.stats.skipped += 1
            return
        state = self._fds.get((call.pid, call.int_arg(0) or 0))
        if state is None:
            self.stats.skipped += 1
            return
        self._fds[(call.pid, call.retval)] = state

    def _execve(self, call: StraceCall) -> None:
        if call.retval < 0:
            self.stats.skipped += 1
            return
        path = call.path_arg(0)
        if path is None:
            self.stats.skipped += 1
            return
        self.log.append(
            ExecEvent(
                time=self._time(call.time),
                file_id=self._file_id(path),
                user_id=call.pid,
                size=self._sizes.get(path, 0),
            )
        )

    def feed(self, call: StraceCall) -> None:
        self.stats.calls += 1
        name = call.name
        if name in ("open", "creat"):
            self._open(call, call.path_arg(0), _flags_of(call), creat=name == "creat")
        elif name == "openat":
            self._open(call, call.path_arg(0), _flags_of(call), creat=False)
        elif name in ("read", "pread64"):
            # pread does not move the offset, but folding it keeps the byte
            # accounting right for the cache simulator; positioned reads
            # are rare in the workloads this tool targets.
            self._advance(call, write=False)
        elif name in ("write", "pwrite64"):
            self._advance(call, write=True)
        elif name in ("lseek", "_llseek"):
            self._lseek(call)
        elif name == "close":
            self._close(call)
        elif name in ("unlink", "unlinkat"):
            self._unlink(call, call.path_arg(0))
        elif name in ("truncate", "ftruncate"):
            self._truncate(call)
        elif name == "execve":
            self._execve(call)
        elif name in ("rename", "renameat", "renameat2"):
            self._rename(call)
        elif name in ("dup", "dup2", "dup3"):
            self._dup(call)
        else:
            self.stats.skipped += 1

    def finish(self) -> TraceLog:
        # Close dangling descriptors at the last observed time so the
        # trace validates (files open at trace end are legal but their
        # trailing run would otherwise be lost).
        seen: set[int] = set()
        for state in list(self._fds.values()):
            if id(state) in seen:
                continue
            seen.add(id(state))
            self.log.append(
                CloseEvent(
                    time=self._last_time, open_id=state.open_id, final_pos=state.pos
                )
            )
        self._fds.clear()
        return self.log


def convert_calls(
    calls: Iterable[StraceCall], name: str = "strace"
) -> tuple[TraceLog, ConversionStats]:
    """Convert parsed calls into a logical trace."""
    converter = _Converter(name)
    for call in calls:
        converter.feed(call)
    return converter.finish(), converter.stats


def convert_file(path: str, name: str | None = None) -> tuple[TraceLog, ConversionStats]:
    """Parse and convert an strace output file."""
    from .parser import parse_file

    return convert_calls(parse_file(path), name=name or path)
