"""Parser for Linux ``strace`` output.

The modern substitution path: since the 1985 Berkeley traces no longer
exist, traces of *real* present-day workloads can be captured with::

    strace -f -ttt -e trace=open,openat,creat,close,read,write,lseek,\\
unlink,unlinkat,truncate,ftruncate,execve  <command>

and converted into the paper's logical trace format by
:mod:`repro.strace.convert`.  This module handles the line-level parsing:
pid and epoch timestamp prefixes, syscall name, argument list and return
value, including strace's ``<unfinished ...>`` / ``<... resumed>`` pairs
(which are stitched back together).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import IO, Iterable, Iterator, Union

__all__ = ["StraceCall", "parse_lines", "parse_file"]

#: Syscalls the converter understands; everything else is skipped.
INTERESTING = frozenset(
    {
        "open",
        "openat",
        "creat",
        "close",
        "read",
        "write",
        "pread64",
        "pwrite64",
        "lseek",
        "_llseek",
        "unlink",
        "unlinkat",
        "truncate",
        "ftruncate",
        "execve",
        "rename",
        "renameat",
        "renameat2",
        "dup",
        "dup2",
        "dup3",
    }
)


@dataclass(frozen=True)
class StraceCall:
    """One completed syscall line."""

    pid: int
    time: float
    name: str
    args: str
    retval: int

    def path_arg(self, index: int = 0) -> str | None:
        """The index-th quoted string argument, unescaped, or None."""
        matches = re.findall(r'"((?:[^"\\]|\\.)*)"', self.args)
        if index >= len(matches):
            return None
        return matches[index].encode().decode("unicode_escape")

    def int_arg(self, index: int) -> int | None:
        """The index-th top-level argument parsed as an int, or None."""
        parts = _split_args(self.args)
        if index >= len(parts):
            return None
        token = parts[index].strip()
        try:
            return int(token, 0)
        except ValueError:
            return None


_LINE = re.compile(
    r"^(?:(?P<pid>\d+)\s+)?"  # optional pid (strace -f)
    r"(?P<time>\d+\.\d+)\s+"  # -ttt epoch timestamp
    r"(?P<name>\w+)\((?P<args>.*)"  # syscall + open paren
)

_COMPLETE_TAIL = re.compile(
    r"^(?P<args>.*)\)\s*=\s*(?P<ret>-?\d+|\?)[^=]*$"
)

_UNFINISHED = re.compile(r"^(?P<args>.*)\s*<unfinished \.\.\.>\s*$")

_RESUMED = re.compile(
    r"^(?:(?P<pid>\d+)\s+)?(?P<time>\d+\.\d+)\s+"
    r"<\.\.\.\s+(?P<name>\w+)\s+resumed>\s*(?P<args>.*)$"
)


def _split_args(args: str) -> list[str]:
    """Split an argument string at top-level commas (brackets nest)."""
    parts: list[str] = []
    depth = 0
    in_str = False
    escape = False
    current: list[str] = []
    for ch in args:
        if escape:
            current.append(ch)
            escape = False
            continue
        if ch == "\\":
            current.append(ch)
            escape = True
            continue
        if ch == '"':
            in_str = not in_str
            current.append(ch)
            continue
        if in_str:
            current.append(ch)
            continue
        if ch in "([{":
            depth += 1
        elif ch in ")]}":
            depth -= 1
        elif ch == "," and depth == 0:
            parts.append("".join(current))
            current = []
            continue
        current.append(ch)
    if current:
        parts.append("".join(current))
    return parts


def parse_lines(lines: Iterable[str]) -> Iterator[StraceCall]:
    """Yield completed calls from strace output lines.

    Lines for uninteresting syscalls, signal deliveries, exit notices and
    unparseable junk are skipped silently — strace output is noisy by
    nature and a converter must shrug at it.
    """
    # (pid, name) -> (time, partial args) for unfinished calls.
    pending: dict[tuple[int, str], tuple[float, str]] = {}

    for line in lines:
        line = line.rstrip("\n")
        resumed = _RESUMED.match(line)
        if resumed:
            pid = int(resumed.group("pid") or 0)
            name = resumed.group("name")
            start = pending.pop((pid, name), None)
            if start is None or name not in INTERESTING:
                continue
            start_time, head_args = start
            tail = _COMPLETE_TAIL.match(resumed.group("args"))
            if not tail:
                continue
            try:
                ret = int(tail.group("ret"))
            except ValueError:
                continue
            yield StraceCall(
                pid=pid,
                time=start_time,
                name=name,
                args=head_args + tail.group("args"),
                retval=ret,
            )
            continue

        m = _LINE.match(line)
        if not m:
            continue
        pid = int(m.group("pid") or 0)
        name = m.group("name")
        rest = m.group("args")

        unfinished = _UNFINISHED.match(rest)
        if unfinished:
            if name in INTERESTING:
                pending[(pid, name)] = (float(m.group("time")), unfinished.group("args"))
            continue

        if name not in INTERESTING:
            continue
        tail = _COMPLETE_TAIL.match(rest)
        if not tail:
            continue
        try:
            ret = int(tail.group("ret"))
        except ValueError:
            continue  # "= ?" (killed mid-call)
        yield StraceCall(
            pid=pid,
            time=float(m.group("time")),
            name=name,
            args=tail.group("args"),
            retval=ret,
        )


def parse_file(source: Union[str, IO[str]]) -> Iterator[StraceCall]:
    """Parse an strace output file (path or open text handle)."""
    if hasattr(source, "read"):
        yield from parse_lines(source)  # type: ignore[arg-type]
        return
    with open(source, "r", encoding="utf-8", errors="replace") as fh:
        yield from parse_lines(fh)
