"""Trace records, files and first-order statistics.

This package defines the logical trace format of the paper's Table II (no
individual reads or writes — positions recorded at open/close/seek bound
exactly which bytes moved), plus text and binary serializations, integrity
validation, the Table III summary statistics and the Section 3.1
inter-event-interval analysis.
"""

from .columns import TraceColumns, cached_columns
from .intervals import IntervalStats, event_intervals, interval_stats
from .io_binary import (
    BinaryTraceWriter,
    TraceSpool,
    read_binary,
    read_binary_columns,
    write_binary,
    write_binary_columns,
)
from .io_text import iter_text, read_text, write_text
from .log import TraceLog
from .ops import filter_files, filter_users, merge, renumber_opens, shift_time
from .records import (
    AccessMode,
    CloseEvent,
    CreateEvent,
    EVENT_KINDS,
    ExecEvent,
    OpenEvent,
    SeekEvent,
    TraceEvent,
    TruncateEvent,
    UnlinkEvent,
    quantize_time,
)
from .stats import TraceStats, compute_stats, total_bytes_transferred
from .validate import ValidationReport, validate, validate_columns

__all__ = [
    "AccessMode",
    "OpenEvent",
    "CloseEvent",
    "SeekEvent",
    "CreateEvent",
    "UnlinkEvent",
    "TruncateEvent",
    "ExecEvent",
    "TraceEvent",
    "EVENT_KINDS",
    "quantize_time",
    "TraceLog",
    "read_text",
    "write_text",
    "iter_text",
    "read_binary",
    "write_binary",
    "read_binary_columns",
    "write_binary_columns",
    "BinaryTraceWriter",
    "TraceSpool",
    "TraceColumns",
    "cached_columns",
    "validate",
    "validate_columns",
    "ValidationReport",
    "compute_stats",
    "TraceStats",
    "total_bytes_transferred",
    "interval_stats",
    "event_intervals",
    "IntervalStats",
    "filter_users",
    "filter_files",
    "merge",
    "shift_time",
    "renumber_opens",
]
