"""Columnar (struct-of-arrays) trace storage.

A :class:`TraceColumns` holds the same information as a
:class:`~repro.trace.log.TraceLog`, but as eight flat typed columns — one
row per event — instead of one Python object per event.  At multi-day
scale that matters twice over: the columns cost a few tens of bytes per
event (versus a few hundred for a dataclass instance), and a consumer
that loops over primitive ints and floats (the one-pass analyzer, the
binary writer) never touches the allocator or the attribute machinery.
The per-event strings of the paper's kernel records are ids, not paths
(Table II logged ``file_id``/``user_id``, never names), so the only
strings stored are the trace's interned ``name``/``description``.

Column meaning by event kind (unused slots hold zero):

======  ========  =======  =======  ==========  ===========  =====
kind    open_ids  file_ids user_ids sizes       positions    flags
======  ========  =======  =======  ==========  ===========  =====
open    open_id   file_id  user_id  size        initial_pos  mode | created<<2 | new_file<<3
close   open_id   .        .        .           final_pos    .
seek    open_id   .        .        prev_pos    new_pos      .
create  .         file_id  user_id  .           .            .
unlink  .         file_id  .        .           .            .
trunc   .         file_id  .        new_length  .            .
exec    .         file_id  user_id  size        .            .
======  ========  =======  =======  ==========  ===========  =====

Kind tags are shared with the binary format (:mod:`repro.trace.io_binary`),
so a binary file deserializes straight into columns — and serializes
straight out of them — without ever materializing event objects.
Code that still wants objects gets them lazily: :meth:`TraceColumns.event`
builds one row's dataclass on demand, and iteration yields them one at a
time.
"""

from __future__ import annotations

from array import array
from typing import Iterator

from .log import TraceLog
from .memo import memoize_per_log
from .records import (
    AccessMode,
    CloseEvent,
    CreateEvent,
    ExecEvent,
    OpenEvent,
    SeekEvent,
    TraceEvent,
    TruncateEvent,
    UnlinkEvent,
)

__all__ = [
    "KIND_OPEN",
    "KIND_CLOSE",
    "KIND_SEEK",
    "KIND_CREATE",
    "KIND_UNLINK",
    "KIND_TRUNC",
    "KIND_EXEC",
    "KIND_LABELS",
    "FLAG_MODE_MASK",
    "FLAG_CREATED",
    "FLAG_NEW_FILE",
    "TraceColumns",
    "cached_columns",
]

KIND_OPEN = 1
KIND_CLOSE = 2
KIND_SEEK = 3
KIND_CREATE = 4
KIND_UNLINK = 5
KIND_TRUNC = 6
KIND_EXEC = 7

KIND_LABELS = {
    KIND_OPEN: "open",
    KIND_CLOSE: "close",
    KIND_SEEK: "seek",
    KIND_CREATE: "create",
    KIND_UNLINK: "unlink",
    KIND_TRUNC: "trunc",
    KIND_EXEC: "exec",
}

#: Open-event flag layout: two mode bits (AccessMode 1..3) plus booleans.
FLAG_MODE_MASK = 0x3
FLAG_CREATED = 0x4
FLAG_NEW_FILE = 0x8


class TraceColumns:
    """A trace as parallel typed columns (see the module docstring)."""

    __slots__ = (
        "name",
        "description",
        "kinds",
        "times",
        "open_ids",
        "file_ids",
        "user_ids",
        "sizes",
        "positions",
        "flags",
        "_kind_hist",
    )

    def __init__(
        self,
        name: str = "trace",
        description: str = "",
        kinds: bytes = b"",
        times: array | None = None,
        open_ids: array | None = None,
        file_ids: array | None = None,
        user_ids: array | None = None,
        sizes: array | None = None,
        positions: array | None = None,
        flags: bytes = b"",
    ):
        self.name = name
        self.description = description
        self.kinds = kinds
        self.times = times if times is not None else array("d")
        self.open_ids = open_ids if open_ids is not None else array("q")
        self.file_ids = file_ids if file_ids is not None else array("q")
        self.user_ids = user_ids if user_ids is not None else array("q")
        self.sizes = sizes if sizes is not None else array("q")
        self.positions = positions if positions is not None else array("q")
        self.flags = flags
        self._kind_hist: tuple[tuple, dict[int, int]] | None = None
        n = len(self.kinds)
        for column in (
            self.times,
            self.open_ids,
            self.file_ids,
            self.user_ids,
            self.sizes,
            self.positions,
            self.flags,
        ):
            if len(column) != n:
                raise ValueError(
                    f"ragged columns: kinds has {n} rows, a column has "
                    f"{len(column)}"
                )

    # -- construction -------------------------------------------------------

    @classmethod
    def from_log(cls, log: TraceLog) -> "TraceColumns":
        """Compile *log* into columns (one pass over the event objects)."""
        n = len(log.events)
        kinds = bytearray(n)
        flags = bytearray(n)
        times = array("d", bytes(8 * n))
        open_ids = array("q", bytes(8 * n))
        file_ids = array("q", bytes(8 * n))
        user_ids = array("q", bytes(8 * n))
        sizes = array("q", bytes(8 * n))
        positions = array("q", bytes(8 * n))
        for i, event in enumerate(log.events):
            times[i] = event.time
            if isinstance(event, OpenEvent):
                kinds[i] = KIND_OPEN
                open_ids[i] = event.open_id
                file_ids[i] = event.file_id
                user_ids[i] = event.user_id
                sizes[i] = event.size
                positions[i] = event.initial_pos
                flags[i] = (
                    int(event.mode)
                    | (FLAG_CREATED if event.created else 0)
                    | (FLAG_NEW_FILE if event.new_file else 0)
                )
            elif isinstance(event, CloseEvent):
                kinds[i] = KIND_CLOSE
                open_ids[i] = event.open_id
                positions[i] = event.final_pos
            elif isinstance(event, SeekEvent):
                kinds[i] = KIND_SEEK
                open_ids[i] = event.open_id
                sizes[i] = event.prev_pos
                positions[i] = event.new_pos
            elif isinstance(event, CreateEvent):
                kinds[i] = KIND_CREATE
                file_ids[i] = event.file_id
                user_ids[i] = event.user_id
            elif isinstance(event, UnlinkEvent):
                kinds[i] = KIND_UNLINK
                file_ids[i] = event.file_id
            elif isinstance(event, TruncateEvent):
                kinds[i] = KIND_TRUNC
                file_ids[i] = event.file_id
                sizes[i] = event.new_length
            elif isinstance(event, ExecEvent):
                kinds[i] = KIND_EXEC
                file_ids[i] = event.file_id
                user_ids[i] = event.user_id
                sizes[i] = event.size
            else:
                raise TypeError(
                    f"cannot columnarize event of type {type(event).__name__}"
                )
        return cls(
            name=log.name,
            description=log.description,
            kinds=bytes(kinds),
            times=times,
            open_ids=open_ids,
            file_ids=file_ids,
            user_ids=user_ids,
            sizes=sizes,
            positions=positions,
            flags=bytes(flags),
        )

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self.kinds)

    def __iter__(self) -> Iterator[TraceEvent]:
        for i in range(len(self.kinds)):
            yield self.event(i)

    def event(self, i: int) -> TraceEvent:
        """Materialize row *i* as its event dataclass (lazy objects)."""
        kind = self.kinds[i]
        t = self.times[i]
        if kind == KIND_OPEN:
            fl = self.flags[i]
            return OpenEvent(
                time=t,
                open_id=self.open_ids[i],
                file_id=self.file_ids[i],
                user_id=self.user_ids[i],
                size=self.sizes[i],
                mode=AccessMode(fl & FLAG_MODE_MASK),
                created=bool(fl & FLAG_CREATED),
                new_file=bool(fl & FLAG_NEW_FILE),
                initial_pos=self.positions[i],
            )
        if kind == KIND_CLOSE:
            return CloseEvent(
                time=t, open_id=self.open_ids[i], final_pos=self.positions[i]
            )
        if kind == KIND_SEEK:
            return SeekEvent(
                time=t,
                open_id=self.open_ids[i],
                prev_pos=self.sizes[i],
                new_pos=self.positions[i],
            )
        if kind == KIND_CREATE:
            return CreateEvent(
                time=t, file_id=self.file_ids[i], user_id=self.user_ids[i]
            )
        if kind == KIND_UNLINK:
            return UnlinkEvent(time=t, file_id=self.file_ids[i])
        if kind == KIND_TRUNC:
            return TruncateEvent(
                time=t, file_id=self.file_ids[i], new_length=self.sizes[i]
            )
        if kind == KIND_EXEC:
            return ExecEvent(
                time=t,
                file_id=self.file_ids[i],
                user_id=self.user_ids[i],
                size=self.sizes[i],
            )
        raise ValueError(f"unknown kind tag {kind} at row {i}")

    def to_log(self) -> TraceLog:
        """Materialize every row; the fully object-based view."""
        return TraceLog(
            name=self.name,
            description=self.description,
            events=[self.event(i) for i in range(len(self.kinds))],
        )

    # -- simple derived properties ------------------------------------------

    @property
    def start_time(self) -> float:
        return self.times[0] if len(self.times) else 0.0

    @property
    def end_time(self) -> float:
        return self.times[-1] if len(self.times) else 0.0

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time

    def count(self, kind: str) -> int:
        """Number of events whose kind label equals *kind*.

        The full per-kind histogram is tallied on first use and cached,
        so N ``count`` calls cost one tally, not N scans.  The cache is
        stamped with the ``kinds`` buffer's identity and length — the
        same staleness convention the per-log memo table uses: replacing
        a column invalidates it, and the immutable ``bytes`` kinds every
        reader and ``from_log`` produce cannot change behind the stamp.
        """
        stamp = (id(self.kinds), len(self.kinds))
        cached = self._kind_hist
        if cached is None or cached[0] != stamp:
            hist: dict[int, int] = {}
            for tag in KIND_LABELS:
                n = self.kinds.count(tag)
                if n:
                    hist[tag] = n
            self._kind_hist = cached = (stamp, hist)
        hist = cached[1]
        for tag, label in KIND_LABELS.items():
            if label == kind:
                return hist.get(tag, 0)
        return 0

    def nbytes(self) -> int:
        """Approximate resident size of the column buffers."""
        return (
            len(self.kinds)
            + len(self.flags)
            + sum(
                col.itemsize * len(col)
                for col in (
                    self.times,
                    self.open_ids,
                    self.file_ids,
                    self.user_ids,
                    self.sizes,
                    self.positions,
                )
            )
        )

    def summary_line(self) -> str:
        return (
            f"{self.name}: {len(self.kinds)} events over "
            f"{self.duration / 3600:.2f} hours (columnar)"
        )


def cached_columns(log: TraceLog) -> TraceColumns:
    """Memoized :meth:`TraceColumns.from_log` (one build per log)."""
    return memoize_per_log(log, ("columns",), lambda: TraceColumns.from_log(log))
