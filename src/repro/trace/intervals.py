"""Inter-event interval analysis (paper Section 3.1).

The no-read-write tracing approach bounds the time of each data transfer by
the trace events on either side of it.  The paper measured the gaps between
successive events for the same open file and found 75% under 0.5 s, 90%
under 10 s and 99% under 30 s — tight enough that billing each transfer at
the time of the next close/seek does not bias interval-averaged results.
This module reproduces that measurement.
"""

from __future__ import annotations

from dataclasses import dataclass

from .log import TraceLog
from .records import CloseEvent, OpenEvent, SeekEvent

__all__ = ["IntervalStats", "event_intervals", "interval_stats"]


def event_intervals(log: TraceLog) -> list[float]:
    """Gaps (seconds) between successive trace events for the same open file.

    Only open/seek/close events participate (they are the events that bound
    data transfers).  Orphan seeks/closes are ignored.
    """
    last_event_time: dict[int, float] = {}
    gaps: list[float] = []
    for event in log.events:
        if isinstance(event, OpenEvent):
            last_event_time[event.open_id] = event.time
        elif isinstance(event, SeekEvent):
            if event.open_id in last_event_time:
                gaps.append(event.time - last_event_time[event.open_id])
                last_event_time[event.open_id] = event.time
        elif isinstance(event, CloseEvent):
            if event.open_id in last_event_time:
                gaps.append(event.time - last_event_time.pop(event.open_id))
    return gaps


@dataclass
class IntervalStats:
    """Quantiles of the per-open inter-event gap distribution."""

    count: int
    p75: float
    p90: float
    p99: float
    maximum: float

    def render(self) -> str:
        return (
            f"{self.count} inter-event intervals: "
            f"75% < {self.p75:.2f}s, 90% < {self.p90:.2f}s, "
            f"99% < {self.p99:.2f}s, max {self.maximum:.2f}s"
        )


def _quantile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank quantile of a pre-sorted list."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, int(q * len(sorted_values)) - 1))
    return sorted_values[rank]


def interval_stats(log: TraceLog) -> IntervalStats:
    """The Section 3.1 quantiles (75th/90th/99th percentile gaps)."""
    gaps = sorted(event_intervals(log))
    return IntervalStats(
        count=len(gaps),
        p75=_quantile(gaps, 0.75),
        p90=_quantile(gaps, 0.90),
        p99=_quantile(gaps, 0.99),
        maximum=gaps[-1] if gaps else 0.0,
    )
