"""Compact binary trace format.

The paper's tracer kept records small to bound the data volume (~500-600
bytes/minute on the traced VAXes); this module serves the same purpose for
large synthetic traces.  Records are fixed-layout structs behind a one-byte
kind tag; times are stored as centiseconds (the tracer's 10 ms resolution)
in an unsigned 32-bit field, giving a maximum trace span of ~497 days.

File layout::

    magic    8 bytes  b"BSDTRC\\x00\\x01"
    name     u16 length + utf-8 bytes
    desc     u16 length + utf-8 bytes
    count    u64 number of events
    events   count records, each 1-byte tag + struct payload
"""

from __future__ import annotations

import os
import struct
from array import array
from typing import IO, Iterator, Union

from .columns import (
    FLAG_CREATED,
    FLAG_MODE_MASK,
    FLAG_NEW_FILE,
    KIND_CLOSE,
    KIND_CREATE,
    KIND_EXEC,
    KIND_OPEN,
    KIND_SEEK,
    KIND_TRUNC,
    KIND_UNLINK,
    TraceColumns,
)
from .log import TraceLog
from .records import (
    AccessMode,
    CloseEvent,
    CreateEvent,
    ExecEvent,
    OpenEvent,
    SeekEvent,
    TraceEvent,
    TruncateEvent,
    UnlinkEvent,
)

__all__ = [
    "write_binary",
    "read_binary",
    "write_binary_columns",
    "read_binary_columns",
    "iter_binary",
    "BinaryTraceStream",
    "BinaryTraceWriter",
    "TraceSpool",
    "MAGIC",
    "MAX_TRACE_TIME",
]

MAGIC = b"BSDTRC\x00\x01"

_PathOrFile = Union[str, os.PathLike, IO[bytes]]

# Tags are shared with the columnar store so a file deserializes straight
# into a TraceColumns (and back) without any per-event translation.
_TAG_OPEN = KIND_OPEN
_TAG_CLOSE = KIND_CLOSE
_TAG_SEEK = KIND_SEEK
_TAG_CREATE = KIND_CREATE
_TAG_UNLINK = KIND_UNLINK
_TAG_TRUNC = KIND_TRUNC
_TAG_EXEC = KIND_EXEC

_S_OPEN = struct.Struct("<IIIIQBBBQ")  # time_cs open_id file_id user_id size mode created new pos
_S_CLOSE = struct.Struct("<IIQ")  # time_cs open_id final_pos
_S_SEEK = struct.Struct("<IIQQ")  # time_cs open_id prev_pos new_pos
_S_CREATE = struct.Struct("<III")  # time_cs file_id user_id
_S_UNLINK = struct.Struct("<II")  # time_cs file_id
_S_TRUNC = struct.Struct("<IIQ")  # time_cs file_id new_length
_S_EXEC = struct.Struct("<IIIQ")  # time_cs file_id user_id size

_HEADER_COUNT = struct.Struct("<Q")
_HEADER_STR = struct.Struct("<H")


class BinaryTraceError(ValueError):
    """Raised when a binary trace file is corrupt or unrecognized."""


_MAX_CS = 0xFFFFFFFF

#: Largest event time (seconds) the on-disk u32 centisecond field can hold.
MAX_TRACE_TIME = _MAX_CS / 100.0


def _cs(time: float) -> int:
    cs = round(time * 100)
    if not 0 <= cs <= _MAX_CS:
        raise BinaryTraceError(
            f"event time {time!r} s does not fit the u32 centisecond field "
            f"(valid range 0..{MAX_TRACE_TIME:.2f} s, about 497 days); "
            "rebase the trace clock before writing"
        )
    return cs


def _pack_event(event: TraceEvent) -> bytes:
    if isinstance(event, OpenEvent):
        return bytes([_TAG_OPEN]) + _S_OPEN.pack(
            _cs(event.time),
            event.open_id,
            event.file_id,
            event.user_id,
            event.size,
            int(event.mode),
            1 if event.created else 0,
            1 if event.new_file else 0,
            event.initial_pos,
        )
    if isinstance(event, CloseEvent):
        return bytes([_TAG_CLOSE]) + _S_CLOSE.pack(
            _cs(event.time), event.open_id, event.final_pos
        )
    if isinstance(event, SeekEvent):
        return bytes([_TAG_SEEK]) + _S_SEEK.pack(
            _cs(event.time), event.open_id, event.prev_pos, event.new_pos
        )
    if isinstance(event, CreateEvent):
        return bytes([_TAG_CREATE]) + _S_CREATE.pack(
            _cs(event.time), event.file_id, event.user_id
        )
    if isinstance(event, UnlinkEvent):
        return bytes([_TAG_UNLINK]) + _S_UNLINK.pack(_cs(event.time), event.file_id)
    if isinstance(event, TruncateEvent):
        return bytes([_TAG_TRUNC]) + _S_TRUNC.pack(
            _cs(event.time), event.file_id, event.new_length
        )
    if isinstance(event, ExecEvent):
        return bytes([_TAG_EXEC]) + _S_EXEC.pack(
            _cs(event.time), event.file_id, event.user_id, event.size
        )
    raise BinaryTraceError(f"cannot serialize event of type {type(event).__name__}")


def _read_exact(fh: IO[bytes], n: int, what: str = "record data") -> bytes:
    try:
        at = fh.tell()
    except (OSError, ValueError):  # unseekable stream: no offset to report
        at = None
    data = fh.read(n)
    if len(data) != n:
        where = "" if at is None else f" at byte {at}"
        raise BinaryTraceError(
            f"truncated trace file: wanted {n} bytes for {what}{where}, "
            f"got {len(data)}"
        )
    return data


_MAX_I64 = (1 << 63) - 1


def _i64(value: int) -> int:
    """Bound an unsigned on-disk field to the signed 64-bit range.

    The writers never emit values this large (file offsets and sizes are
    far below 2^63), so a set high bit means corruption; letting it
    through would also crash the columnar store's signed arrays with an
    OverflowError (found by fuzzing a flipped high bit).
    """
    if value > _MAX_I64:
        raise BinaryTraceError(
            f"field value {value} exceeds the signed 64-bit range of the "
            "columnar store; corrupt trace file"
        )
    return value


def _unpack_event(tag: int, fh: IO[bytes]) -> TraceEvent:
    if tag == _TAG_OPEN:
        t, oid, fid, uid, size, mode, created, new, pos = _S_OPEN.unpack(
            _read_exact(fh, _S_OPEN.size)
        )
        return OpenEvent(
            time=t / 100.0,
            open_id=oid,
            file_id=fid,
            user_id=uid,
            size=_i64(size),
            mode=AccessMode(mode),
            created=bool(created),
            new_file=bool(new),
            initial_pos=_i64(pos),
        )
    if tag == _TAG_CLOSE:
        t, oid, pos = _S_CLOSE.unpack(_read_exact(fh, _S_CLOSE.size))
        return CloseEvent(time=t / 100.0, open_id=oid, final_pos=_i64(pos))
    if tag == _TAG_SEEK:
        t, oid, prev, new = _S_SEEK.unpack(_read_exact(fh, _S_SEEK.size))
        return SeekEvent(
            time=t / 100.0, open_id=oid, prev_pos=_i64(prev), new_pos=_i64(new)
        )
    if tag == _TAG_CREATE:
        t, fid, uid = _S_CREATE.unpack(_read_exact(fh, _S_CREATE.size))
        return CreateEvent(time=t / 100.0, file_id=fid, user_id=uid)
    if tag == _TAG_UNLINK:
        t, fid = _S_UNLINK.unpack(_read_exact(fh, _S_UNLINK.size))
        return UnlinkEvent(time=t / 100.0, file_id=fid)
    if tag == _TAG_TRUNC:
        t, fid, length = _S_TRUNC.unpack(_read_exact(fh, _S_TRUNC.size))
        return TruncateEvent(time=t / 100.0, file_id=fid, new_length=_i64(length))
    if tag == _TAG_EXEC:
        t, fid, uid, size = _S_EXEC.unpack(_read_exact(fh, _S_EXEC.size))
        return ExecEvent(time=t / 100.0, file_id=fid, user_id=uid, size=_i64(size))
    raise BinaryTraceError(f"unknown event tag {tag}")


def write_binary(log: TraceLog, dest: _PathOrFile) -> int:
    """Write *log* to *dest* in binary form; returns bytes written."""
    own = not hasattr(dest, "write")
    fh: IO[bytes] = open(dest, "wb") if own else dest  # type: ignore[assignment]
    try:
        written = 0
        name = log.name.encode("utf-8")
        desc = log.description.encode("utf-8")
        for chunk in (
            MAGIC,
            _HEADER_STR.pack(len(name)),
            name,
            _HEADER_STR.pack(len(desc)),
            desc,
            _HEADER_COUNT.pack(len(log.events)),
        ):
            fh.write(chunk)
            written += len(chunk)
        for event in log.events:
            data = _pack_event(event)
            fh.write(data)
            written += len(data)
        return written
    finally:
        if own:
            fh.close()


def _read_header(fh: IO[bytes]) -> tuple[str, str, int]:
    """Decode the shared header: (name, description, event count)."""
    magic = _read_exact(fh, len(MAGIC), "the magic")
    if magic != MAGIC:
        raise BinaryTraceError("not a binary trace file (bad magic)")
    (name_len,) = _HEADER_STR.unpack(
        _read_exact(fh, _HEADER_STR.size, "the name length")
    )
    name = _read_exact(fh, name_len, "the trace name").decode("utf-8")
    (desc_len,) = _HEADER_STR.unpack(
        _read_exact(fh, _HEADER_STR.size, "the description length")
    )
    desc = _read_exact(fh, desc_len, "the trace description").decode("utf-8")
    (count,) = _HEADER_COUNT.unpack(
        _read_exact(fh, _HEADER_COUNT.size, "the event count")
    )
    return name, desc, count


def read_binary(src: _PathOrFile) -> TraceLog:
    """Read a binary trace file into a :class:`TraceLog`."""
    own = not hasattr(src, "read")
    fh: IO[bytes] = open(src, "rb") if own else src  # type: ignore[assignment]
    try:
        name, desc, count = _read_header(fh)
        events: list[TraceEvent] = []
        for i in range(count):
            tag = _read_exact(fh, 1, f"the tag of event {i + 1} of {count}")[0]
            events.append(_unpack_event(tag, fh))
        return TraceLog(name=name, description=desc, events=events)
    finally:
        if own:
            fh.close()


class BinaryTraceStream:
    """Event-at-a-time view of a binary trace file.

    Returned by :func:`iter_binary`: exposes the header fields
    (``name``, ``description``, ``count``) immediately and decodes
    records lazily as it is iterated, so a trace far larger than RAM can
    be consumed with O(1) memory.  Use as a context manager (or call
    :meth:`close`) to release the file handle.
    """

    def __init__(self, src: _PathOrFile):
        self._own = not hasattr(src, "read")
        self._fh: IO[bytes] = open(src, "rb") if self._own else src  # type: ignore[assignment]
        try:
            self.name, self.description, self.count = _read_header(self._fh)
        except Exception:
            self.close()
            raise
        self._consumed = 0

    def __iter__(self) -> Iterator[TraceEvent]:
        while self._consumed < self.count:
            tag = _read_exact(
                self._fh,
                1,
                f"the tag of event {self._consumed + 1} of {self.count}",
            )[0]
            event = _unpack_event(tag, self._fh)
            self._consumed += 1
            yield event

    def close(self) -> None:
        if self._own:
            self._fh.close()

    def __enter__(self) -> "BinaryTraceStream":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def iter_binary(src: _PathOrFile) -> BinaryTraceStream:
    """Open a binary trace for streaming iteration (see
    :class:`BinaryTraceStream`)."""
    return BinaryTraceStream(src)


# -- columnar fast path ------------------------------------------------------


def _header_bytes(name: str, description: str, count: int) -> bytes:
    nameb = name.encode("utf-8")
    descb = description.encode("utf-8")
    return b"".join(
        (
            MAGIC,
            _HEADER_STR.pack(len(nameb)),
            nameb,
            _HEADER_STR.pack(len(descb)),
            descb,
            _HEADER_COUNT.pack(count),
        )
    )


_FLUSH_BYTES = 1 << 20


def write_binary_columns(cols: TraceColumns, dest: _PathOrFile) -> int:
    """Write a columnar trace; byte-identical to ``write_binary(cols.to_log())``.

    Packs records straight out of the typed columns — no event objects are
    materialized.  Returns bytes written.
    """
    own = not hasattr(dest, "write")
    fh: IO[bytes] = open(dest, "wb") if own else dest  # type: ignore[assignment]
    try:
        header = _header_bytes(cols.name, cols.description, len(cols))
        fh.write(header)
        written = len(header)
        kinds = cols.kinds
        times = cols.times
        open_ids = cols.open_ids
        file_ids = cols.file_ids
        user_ids = cols.user_ids
        sizes = cols.sizes
        positions = cols.positions
        flags = cols.flags
        tag_bytes = [bytes([tag]) for tag in range(8)]
        out = bytearray()
        for i in range(len(kinds)):
            kind = kinds[i]
            t = _cs(times[i])
            out += tag_bytes[kind]
            if kind == _TAG_OPEN:
                fl = flags[i]
                out += _S_OPEN.pack(
                    t,
                    open_ids[i],
                    file_ids[i],
                    user_ids[i],
                    sizes[i],
                    fl & FLAG_MODE_MASK,
                    1 if fl & FLAG_CREATED else 0,
                    1 if fl & FLAG_NEW_FILE else 0,
                    positions[i],
                )
            elif kind == _TAG_CLOSE:
                out += _S_CLOSE.pack(t, open_ids[i], positions[i])
            elif kind == _TAG_SEEK:
                out += _S_SEEK.pack(t, open_ids[i], sizes[i], positions[i])
            elif kind == _TAG_CREATE:
                out += _S_CREATE.pack(t, file_ids[i], user_ids[i])
            elif kind == _TAG_UNLINK:
                out += _S_UNLINK.pack(t, file_ids[i])
            elif kind == _TAG_TRUNC:
                out += _S_TRUNC.pack(t, file_ids[i], sizes[i])
            elif kind == _TAG_EXEC:
                out += _S_EXEC.pack(t, file_ids[i], user_ids[i], sizes[i])
            else:
                raise BinaryTraceError(f"unknown kind tag {kind} at row {i}")
            if len(out) >= _FLUSH_BYTES:
                fh.write(out)
                written += len(out)
                out.clear()
        if out:
            fh.write(out)
            written += len(out)
        return written
    finally:
        if own:
            fh.close()


def read_binary_columns(src: _PathOrFile) -> TraceColumns:
    """Read a binary trace file straight into a :class:`TraceColumns`.

    Decodes the record payload with ``unpack_from`` over one contiguous
    buffer — no per-event objects, no per-record ``read`` calls.  Reads the
    remainder of the stream, so pass a handle positioned at the magic.
    """
    own = not hasattr(src, "read")
    fh: IO[bytes] = open(src, "rb") if own else src  # type: ignore[assignment]
    try:
        name, desc, count = _read_header(fh)
        try:
            payload_at = fh.tell()
        except (OSError, ValueError):
            payload_at = None
        payload = fh.read()
    finally:
        if own:
            fh.close()

    # The count is untrusted input and sizes the column allocations below;
    # bound it by the smallest possible record before allocating (found by
    # fuzzing: an inflated count used to raise MemoryError, not a
    # diagnostic).
    min_record = 1 + _S_UNLINK.size
    if count * min_record > len(payload):
        where = "" if payload_at is None else f" after byte {payload_at}"
        raise BinaryTraceError(
            f"truncated trace file: header claims {count} events "
            f"(>= {count * min_record} bytes) but only {len(payload)} "
            f"payload bytes follow{where}"
        )

    kinds = bytearray(count)
    flags = bytearray(count)
    times = array("d", bytes(8 * count))
    open_ids = array("q", bytes(8 * count))
    file_ids = array("q", bytes(8 * count))
    user_ids = array("q", bytes(8 * count))
    sizes = array("q", bytes(8 * count))
    positions = array("q", bytes(8 * count))
    off = 0
    try:
        for i in range(count):
            tag = payload[off]
            off += 1
            kinds[i] = tag
            if tag == _TAG_OPEN:
                t, oid, fid, uid, size, mode, created, new, pos = _S_OPEN.unpack_from(
                    payload, off
                )
                off += _S_OPEN.size
                if mode == 0 or mode & ~FLAG_MODE_MASK:
                    # The writers only emit AccessMode 1..3; anything else
                    # would alias the created/new-file flag bits when
                    # packed below (found by fuzzing: a flipped mode bit
                    # used to decode as a clean trace with created=True).
                    raise BinaryTraceError(
                        f"invalid access mode {mode} in event {i + 1} of "
                        f"{count}; corrupt trace file"
                    )
                times[i] = t / 100.0
                open_ids[i] = oid
                file_ids[i] = fid
                user_ids[i] = uid
                sizes[i] = size
                positions[i] = pos
                flags[i] = (
                    mode
                    | (FLAG_CREATED if created else 0)
                    | (FLAG_NEW_FILE if new else 0)
                )
            elif tag == _TAG_CLOSE:
                t, oid, pos = _S_CLOSE.unpack_from(payload, off)
                off += _S_CLOSE.size
                times[i] = t / 100.0
                open_ids[i] = oid
                positions[i] = pos
            elif tag == _TAG_SEEK:
                t, oid, prev, new = _S_SEEK.unpack_from(payload, off)
                off += _S_SEEK.size
                times[i] = t / 100.0
                open_ids[i] = oid
                sizes[i] = prev
                positions[i] = new
            elif tag == _TAG_CREATE:
                t, fid, uid = _S_CREATE.unpack_from(payload, off)
                off += _S_CREATE.size
                times[i] = t / 100.0
                file_ids[i] = fid
                user_ids[i] = uid
            elif tag == _TAG_UNLINK:
                t, fid = _S_UNLINK.unpack_from(payload, off)
                off += _S_UNLINK.size
                times[i] = t / 100.0
                file_ids[i] = fid
            elif tag == _TAG_TRUNC:
                t, fid, length = _S_TRUNC.unpack_from(payload, off)
                off += _S_TRUNC.size
                times[i] = t / 100.0
                file_ids[i] = fid
                sizes[i] = length
            elif tag == _TAG_EXEC:
                t, fid, uid, size = _S_EXEC.unpack_from(payload, off)
                off += _S_EXEC.size
                times[i] = t / 100.0
                file_ids[i] = fid
                user_ids[i] = uid
                sizes[i] = size
            else:
                raise BinaryTraceError(f"unknown event tag {tag}")
    except (IndexError, struct.error):
        where = "" if payload_at is None else f" at byte {payload_at + off}"
        raise BinaryTraceError(
            f"truncated trace file: event {i + 1} of {count} is "
            f"incomplete{where}"
        ) from None
    except OverflowError:
        # A u64 field with its high bit set does not fit the signed
        # column arrays; the writers never emit such values.
        raise BinaryTraceError(
            f"field value in event {i + 1} of {count} exceeds the signed "
            "64-bit range of the columnar store; corrupt trace file"
        ) from None
    return TraceColumns(
        name=name,
        description=desc,
        kinds=bytes(kinds),
        times=times,
        open_ids=open_ids,
        file_ids=file_ids,
        user_ids=user_ids,
        sizes=sizes,
        positions=positions,
        flags=bytes(flags),
    )


# -- incremental writing -----------------------------------------------------


class BinaryTraceWriter:
    """Incremental binary trace writer.

    Writes the header with a zero event count up front, streams packed
    records through an internal buffer, and patches the count in place on
    :meth:`close` — so the destination must be seekable.  Use as a context
    manager, or call :meth:`close` explicitly; the file is not a valid
    trace until the count has been patched.
    """

    def __init__(self, dest: _PathOrFile, name: str = "trace", description: str = ""):
        self._own = not hasattr(dest, "write")
        fh: IO[bytes] = open(dest, "wb") if self._own else dest  # type: ignore[assignment]
        if not (hasattr(fh, "seek") and (not hasattr(fh, "seekable") or fh.seekable())):
            if self._own:
                fh.close()
            raise BinaryTraceError(
                "incremental trace writing needs a seekable destination "
                "(the event count is patched into the header at close)"
            )
        self._fh = fh
        self.name = name
        self.description = description
        self.events_written = 0
        self._buffer = bytearray()
        self._closed = False
        header = _header_bytes(name, description, 0)
        fh.write(header)
        # The count is the last u64 of the header.
        self._count_at = fh.tell() - _HEADER_COUNT.size

    def write(self, event: TraceEvent) -> None:
        """Append one event record."""
        if self._closed:
            raise BinaryTraceError("writer is closed")
        self._buffer += _pack_event(event)
        self.events_written += 1
        if len(self._buffer) >= _FLUSH_BYTES:
            self._flush()

    def _flush(self) -> None:
        if self._buffer:
            self._fh.write(self._buffer)
            self._buffer.clear()

    def close(self) -> None:
        """Flush buffered records and patch the event count."""
        if self._closed:
            return
        self._flush()
        end = self._fh.tell()
        self._fh.seek(self._count_at)
        self._fh.write(_HEADER_COUNT.pack(self.events_written))
        self._fh.seek(end)
        self._closed = True
        if self._own:
            self._fh.close()
        else:
            self._fh.flush()

    def __enter__(self) -> "BinaryTraceWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class TraceSpool:
    """A ``TraceLog``-shaped sink that spools events to a binary file.

    Quacks like a :class:`~repro.trace.log.TraceLog` for producers — it has
    ``name``/``description`` attributes, an ``events`` list, and a
    time-ordered ``append`` — but keeps at most ``buffer_events`` events
    resident: whenever the buffer fills it is packed into an underlying
    :class:`BinaryTraceWriter` and cleared, so generating a multi-day trace
    costs O(buffer) memory instead of O(events).

    The writer (and hence the file header) is created lazily at the first
    drain, so ``name``/``description`` may still be assigned after
    construction, before any events arrive — exactly how the workload
    generator configures its tracer's log.
    """

    def __init__(
        self,
        dest: _PathOrFile,
        name: str = "trace",
        description: str = "",
        buffer_events: int = 8192,
    ):
        if buffer_events < 1:
            raise ValueError("buffer_events must be >= 1")
        self._dest = dest
        self.name = name
        self.description = description
        self.buffer_events = buffer_events
        self.events: list[TraceEvent] = []
        self.events_spooled = 0
        self.peak_buffered = 0
        self._writer: BinaryTraceWriter | None = None
        self._last_time: float | None = None
        self._closed = False

    def append(self, event: TraceEvent) -> None:
        if self._closed:
            raise BinaryTraceError("spool is closed")
        if self._last_time is not None and event.time < self._last_time:
            raise ValueError(
                f"event at t={event.time} appended after t={self._last_time}; "
                "trace events must be in time order"
            )
        self._last_time = event.time
        self.events.append(event)
        if len(self.events) > self.peak_buffered:
            self.peak_buffered = len(self.events)
        if len(self.events) >= self.buffer_events:
            self._drain()

    def extend(self, events) -> None:
        for event in events:
            self.append(event)

    def __len__(self) -> int:
        return self.events_spooled + len(self.events)

    def _drain(self) -> None:
        if self._writer is None:
            self._writer = BinaryTraceWriter(
                self._dest, name=self.name, description=self.description
            )
        for event in self.events:
            self._writer.write(event)
        self.events_spooled += len(self.events)
        self.events.clear()

    def close(self) -> None:
        """Drain the buffer and finalize the file (valid even if empty)."""
        if self._closed:
            return
        self._drain()
        assert self._writer is not None  # _drain always creates it
        self._writer.close()
        self._closed = True

    def __enter__(self) -> "TraceSpool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
