"""Compact binary trace format.

The paper's tracer kept records small to bound the data volume (~500-600
bytes/minute on the traced VAXes); this module serves the same purpose for
large synthetic traces.  Records are fixed-layout structs behind a one-byte
kind tag; times are stored as centiseconds (the tracer's 10 ms resolution)
in an unsigned 32-bit field, giving a maximum trace span of ~497 days.

File layout::

    magic    8 bytes  b"BSDTRC\\x00\\x01"
    name     u16 length + utf-8 bytes
    desc     u16 length + utf-8 bytes
    count    u64 number of events
    events   count records, each 1-byte tag + struct payload
"""

from __future__ import annotations

import os
import struct
from typing import IO, Iterator, Union

from .log import TraceLog
from .records import (
    AccessMode,
    CloseEvent,
    CreateEvent,
    ExecEvent,
    OpenEvent,
    SeekEvent,
    TraceEvent,
    TruncateEvent,
    UnlinkEvent,
)

__all__ = ["write_binary", "read_binary", "MAGIC"]

MAGIC = b"BSDTRC\x00\x01"

_PathOrFile = Union[str, os.PathLike, IO[bytes]]

_TAG_OPEN = 1
_TAG_CLOSE = 2
_TAG_SEEK = 3
_TAG_CREATE = 4
_TAG_UNLINK = 5
_TAG_TRUNC = 6
_TAG_EXEC = 7

_S_OPEN = struct.Struct("<IIIIQBBBQ")  # time_cs open_id file_id user_id size mode created new pos
_S_CLOSE = struct.Struct("<IIQ")  # time_cs open_id final_pos
_S_SEEK = struct.Struct("<IIQQ")  # time_cs open_id prev_pos new_pos
_S_CREATE = struct.Struct("<III")  # time_cs file_id user_id
_S_UNLINK = struct.Struct("<II")  # time_cs file_id
_S_TRUNC = struct.Struct("<IIQ")  # time_cs file_id new_length
_S_EXEC = struct.Struct("<IIIQ")  # time_cs file_id user_id size

_HEADER_COUNT = struct.Struct("<Q")
_HEADER_STR = struct.Struct("<H")


class BinaryTraceError(ValueError):
    """Raised when a binary trace file is corrupt or unrecognized."""


def _cs(time: float) -> int:
    return round(time * 100)


def _pack_event(event: TraceEvent) -> bytes:
    if isinstance(event, OpenEvent):
        return bytes([_TAG_OPEN]) + _S_OPEN.pack(
            _cs(event.time),
            event.open_id,
            event.file_id,
            event.user_id,
            event.size,
            int(event.mode),
            1 if event.created else 0,
            1 if event.new_file else 0,
            event.initial_pos,
        )
    if isinstance(event, CloseEvent):
        return bytes([_TAG_CLOSE]) + _S_CLOSE.pack(
            _cs(event.time), event.open_id, event.final_pos
        )
    if isinstance(event, SeekEvent):
        return bytes([_TAG_SEEK]) + _S_SEEK.pack(
            _cs(event.time), event.open_id, event.prev_pos, event.new_pos
        )
    if isinstance(event, CreateEvent):
        return bytes([_TAG_CREATE]) + _S_CREATE.pack(
            _cs(event.time), event.file_id, event.user_id
        )
    if isinstance(event, UnlinkEvent):
        return bytes([_TAG_UNLINK]) + _S_UNLINK.pack(_cs(event.time), event.file_id)
    if isinstance(event, TruncateEvent):
        return bytes([_TAG_TRUNC]) + _S_TRUNC.pack(
            _cs(event.time), event.file_id, event.new_length
        )
    if isinstance(event, ExecEvent):
        return bytes([_TAG_EXEC]) + _S_EXEC.pack(
            _cs(event.time), event.file_id, event.user_id, event.size
        )
    raise BinaryTraceError(f"cannot serialize event of type {type(event).__name__}")


def _read_exact(fh: IO[bytes], n: int) -> bytes:
    data = fh.read(n)
    if len(data) != n:
        raise BinaryTraceError(f"truncated trace file: wanted {n} bytes, got {len(data)}")
    return data


def _unpack_event(tag: int, fh: IO[bytes]) -> TraceEvent:
    if tag == _TAG_OPEN:
        t, oid, fid, uid, size, mode, created, new, pos = _S_OPEN.unpack(
            _read_exact(fh, _S_OPEN.size)
        )
        return OpenEvent(
            time=t / 100.0,
            open_id=oid,
            file_id=fid,
            user_id=uid,
            size=size,
            mode=AccessMode(mode),
            created=bool(created),
            new_file=bool(new),
            initial_pos=pos,
        )
    if tag == _TAG_CLOSE:
        t, oid, pos = _S_CLOSE.unpack(_read_exact(fh, _S_CLOSE.size))
        return CloseEvent(time=t / 100.0, open_id=oid, final_pos=pos)
    if tag == _TAG_SEEK:
        t, oid, prev, new = _S_SEEK.unpack(_read_exact(fh, _S_SEEK.size))
        return SeekEvent(time=t / 100.0, open_id=oid, prev_pos=prev, new_pos=new)
    if tag == _TAG_CREATE:
        t, fid, uid = _S_CREATE.unpack(_read_exact(fh, _S_CREATE.size))
        return CreateEvent(time=t / 100.0, file_id=fid, user_id=uid)
    if tag == _TAG_UNLINK:
        t, fid = _S_UNLINK.unpack(_read_exact(fh, _S_UNLINK.size))
        return UnlinkEvent(time=t / 100.0, file_id=fid)
    if tag == _TAG_TRUNC:
        t, fid, length = _S_TRUNC.unpack(_read_exact(fh, _S_TRUNC.size))
        return TruncateEvent(time=t / 100.0, file_id=fid, new_length=length)
    if tag == _TAG_EXEC:
        t, fid, uid, size = _S_EXEC.unpack(_read_exact(fh, _S_EXEC.size))
        return ExecEvent(time=t / 100.0, file_id=fid, user_id=uid, size=size)
    raise BinaryTraceError(f"unknown event tag {tag}")


def write_binary(log: TraceLog, dest: _PathOrFile) -> int:
    """Write *log* to *dest* in binary form; returns bytes written."""
    own = not hasattr(dest, "write")
    fh: IO[bytes] = open(dest, "wb") if own else dest  # type: ignore[assignment]
    try:
        written = 0
        name = log.name.encode("utf-8")
        desc = log.description.encode("utf-8")
        for chunk in (
            MAGIC,
            _HEADER_STR.pack(len(name)),
            name,
            _HEADER_STR.pack(len(desc)),
            desc,
            _HEADER_COUNT.pack(len(log.events)),
        ):
            fh.write(chunk)
            written += len(chunk)
        for event in log.events:
            data = _pack_event(event)
            fh.write(data)
            written += len(data)
        return written
    finally:
        if own:
            fh.close()


def read_binary(src: _PathOrFile) -> TraceLog:
    """Read a binary trace file into a :class:`TraceLog`."""
    own = not hasattr(src, "read")
    fh: IO[bytes] = open(src, "rb") if own else src  # type: ignore[assignment]
    try:
        magic = _read_exact(fh, len(MAGIC))
        if magic != MAGIC:
            raise BinaryTraceError("not a binary trace file (bad magic)")
        (name_len,) = _HEADER_STR.unpack(_read_exact(fh, _HEADER_STR.size))
        name = _read_exact(fh, name_len).decode("utf-8")
        (desc_len,) = _HEADER_STR.unpack(_read_exact(fh, _HEADER_STR.size))
        desc = _read_exact(fh, desc_len).decode("utf-8")
        (count,) = _HEADER_COUNT.unpack(_read_exact(fh, _HEADER_COUNT.size))
        events: list[TraceEvent] = []
        for _ in range(count):
            tag = _read_exact(fh, 1)[0]
            events.append(_unpack_event(tag, fh))
        return TraceLog(name=name, description=desc, events=events)
    finally:
        if own:
            fh.close()
