"""Text (TSV) trace format.

One event per line, tab-separated, first field the event kind.  Header lines
beginning with ``#`` carry metadata (``# name:``, ``# description:``).  The
format is meant to be greppable and diffable; the binary format in
:mod:`repro.trace.io_binary` is ~5x smaller and faster.

Field layouts (after the kind tag)::

    open   time open_id file_id user_id size mode created new_file initial_pos
    close  time open_id final_pos
    seek   time open_id prev_pos new_pos
    create time file_id user_id
    unlink time file_id
    trunc  time file_id new_length
    exec   time file_id user_id size
"""

from __future__ import annotations

import io
import os
from typing import IO, Iterable, Iterator, Union

from .log import TraceLog
from .records import (
    AccessMode,
    CloseEvent,
    CreateEvent,
    ExecEvent,
    OpenEvent,
    SeekEvent,
    TraceEvent,
    TruncateEvent,
    UnlinkEvent,
)

__all__ = ["write_text", "read_text", "format_event", "parse_event_line"]

_PathOrFile = Union[str, os.PathLike, IO[str]]


class TraceFormatError(ValueError):
    """Raised when a trace file cannot be parsed."""


def format_event(event: TraceEvent) -> str:
    """Serialize one event to its TSV line (no trailing newline)."""
    t = f"{event.time:.2f}"
    if isinstance(event, OpenEvent):
        return "\t".join(
            (
                "open",
                t,
                str(event.open_id),
                str(event.file_id),
                str(event.user_id),
                str(event.size),
                event.mode.label,
                "1" if event.created else "0",
                "1" if event.new_file else "0",
                str(event.initial_pos),
            )
        )
    if isinstance(event, CloseEvent):
        return "\t".join(("close", t, str(event.open_id), str(event.final_pos)))
    if isinstance(event, SeekEvent):
        return "\t".join(
            ("seek", t, str(event.open_id), str(event.prev_pos), str(event.new_pos))
        )
    if isinstance(event, CreateEvent):
        return "\t".join(("create", t, str(event.file_id), str(event.user_id)))
    if isinstance(event, UnlinkEvent):
        return "\t".join(("unlink", t, str(event.file_id)))
    if isinstance(event, TruncateEvent):
        return "\t".join(("trunc", t, str(event.file_id), str(event.new_length)))
    if isinstance(event, ExecEvent):
        return "\t".join(
            ("exec", t, str(event.file_id), str(event.user_id), str(event.size))
        )
    raise TraceFormatError(f"cannot serialize event of type {type(event).__name__}")


def parse_event_line(line: str) -> TraceEvent:
    """Parse one TSV line back into an event."""
    fields = line.rstrip("\n").split("\t")
    kind = fields[0]
    try:
        if kind == "open":
            return OpenEvent(
                time=float(fields[1]),
                open_id=int(fields[2]),
                file_id=int(fields[3]),
                user_id=int(fields[4]),
                size=int(fields[5]),
                mode=AccessMode.from_label(fields[6]),
                created=fields[7] == "1",
                new_file=fields[8] == "1",
                initial_pos=int(fields[9]),
            )
        if kind == "close":
            return CloseEvent(
                time=float(fields[1]), open_id=int(fields[2]), final_pos=int(fields[3])
            )
        if kind == "seek":
            return SeekEvent(
                time=float(fields[1]),
                open_id=int(fields[2]),
                prev_pos=int(fields[3]),
                new_pos=int(fields[4]),
            )
        if kind == "create":
            return CreateEvent(
                time=float(fields[1]), file_id=int(fields[2]), user_id=int(fields[3])
            )
        if kind == "unlink":
            return UnlinkEvent(time=float(fields[1]), file_id=int(fields[2]))
        if kind == "trunc":
            return TruncateEvent(
                time=float(fields[1]), file_id=int(fields[2]), new_length=int(fields[3])
            )
        if kind == "exec":
            return ExecEvent(
                time=float(fields[1]),
                file_id=int(fields[2]),
                user_id=int(fields[3]),
                size=int(fields[4]),
            )
    except (IndexError, ValueError) as exc:
        raise TraceFormatError(f"malformed {kind!r} record: {line!r}") from exc
    raise TraceFormatError(f"unknown event kind {kind!r} in line {line!r}")


def _open_for_write(dest: _PathOrFile) -> tuple[IO[str], bool]:
    if hasattr(dest, "write"):
        return dest, False  # type: ignore[return-value]
    return open(dest, "w", encoding="utf-8"), True


def _open_for_read(src: _PathOrFile) -> tuple[IO[str], bool]:
    if hasattr(src, "read"):
        return src, False  # type: ignore[return-value]
    return open(src, "r", encoding="utf-8"), True


def write_text(log: TraceLog, dest: _PathOrFile) -> int:
    """Write *log* to *dest* (path or text file object).  Returns the number
    of events written."""
    fh, should_close = _open_for_write(dest)
    try:
        fh.write(f"# name: {log.name}\n")
        if log.description:
            fh.write(f"# description: {log.description}\n")
        count = 0
        for event in log.events:
            fh.write(format_event(event))
            fh.write("\n")
            count += 1
        return count
    finally:
        if should_close:
            fh.close()


def iter_text(src: _PathOrFile) -> Iterator[TraceEvent]:
    """Stream events from a text trace without materializing a list."""
    fh, should_close = _open_for_read(src)
    try:
        for line in fh:
            if not line.strip() or line.startswith("#"):
                continue
            yield parse_event_line(line)
    finally:
        if should_close:
            fh.close()


def read_text(src: _PathOrFile) -> TraceLog:
    """Read a text trace file into a :class:`TraceLog`."""
    fh, should_close = _open_for_read(src)
    try:
        name = "trace"
        description = ""
        events: list[TraceEvent] = []
        for line in fh:
            if line.startswith("# name:"):
                name = line.split(":", 1)[1].strip()
                continue
            if line.startswith("# description:"):
                description = line.split(":", 1)[1].strip()
                continue
            if not line.strip() or line.startswith("#"):
                continue
            events.append(parse_event_line(line))
        return TraceLog(name=name, description=description, events=events)
    finally:
        if should_close:
            fh.close()
