"""In-memory trace container.

A :class:`TraceLog` is an ordered sequence of trace events plus a little
metadata (a name like ``A5`` and an optional description).  It is the unit
that the workload generator produces and that the analyzer and cache
simulator consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from .records import (
    CloseEvent,
    CreateEvent,
    ExecEvent,
    OpenEvent,
    SeekEvent,
    TraceEvent,
    TruncateEvent,
    UnlinkEvent,
)

__all__ = ["TraceLog"]


@dataclass
class TraceLog:
    """An ordered log of trace events.

    Events must be appended in non-decreasing time order (the tracer's clock
    is monotonic).  ``append`` enforces this; bulk constructors sort instead.
    """

    name: str = "trace"
    description: str = ""
    events: list[TraceEvent] = field(default_factory=list)

    @classmethod
    def from_events(
        cls,
        events: Iterable[TraceEvent],
        name: str = "trace",
        description: str = "",
        sort: bool = True,
    ) -> "TraceLog":
        """Build a log from an iterable of events, sorting by time."""
        evs = list(events)
        if sort:
            evs.sort(key=lambda e: e.time)
        log = cls(name=name, description=description, events=evs)
        return log

    def append(self, event: TraceEvent) -> None:
        if self.events and event.time < self.events[-1].time:
            raise ValueError(
                f"event at t={event.time} appended after t={self.events[-1].time}; "
                "trace events must be in time order"
            )
        self.events.append(event)

    def extend(self, events: Iterable[TraceEvent]) -> None:
        for event in events:
            self.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __getitem__(self, index):
        return self.events[index]

    # -- simple derived properties ------------------------------------------

    @property
    def start_time(self) -> float:
        """Time of the first event (0.0 for an empty trace)."""
        return self.events[0].time if self.events else 0.0

    @property
    def end_time(self) -> float:
        """Time of the last event (0.0 for an empty trace)."""
        return self.events[-1].time if self.events else 0.0

    @property
    def duration(self) -> float:
        """Wall-clock span covered by the trace, in seconds."""
        return self.end_time - self.start_time

    def count(self, kind: str) -> int:
        """Number of events whose ``kind`` tag equals *kind*."""
        return sum(1 for e in self.events if e.kind == kind)

    def of_kind(self, kind: str) -> list[TraceEvent]:
        """All events of the given kind, in order."""
        return [e for e in self.events if e.kind == kind]

    def user_ids(self) -> set[int]:
        """The set of user ids appearing anywhere in the trace."""
        ids: set[int] = set()
        for e in self.events:
            uid = getattr(e, "user_id", None)
            if uid is not None:
                ids.add(uid)
        return ids

    def file_ids(self) -> set[int]:
        """The set of file ids appearing anywhere in the trace."""
        ids: set[int] = set()
        open_files: dict[int, int] = {}
        for e in self.events:
            fid = getattr(e, "file_id", None)
            if fid is not None:
                ids.add(fid)
            if isinstance(e, OpenEvent):
                open_files[e.open_id] = e.file_id
        return ids

    def slice(self, t_start: float, t_end: float, name: str | None = None) -> "TraceLog":
        """Events with ``t_start <= time < t_end`` as a new log.

        Note that slicing can orphan close/seek events whose open fell before
        the window; :mod:`repro.trace.validate` can report such orphans and
        the analyzer skips them.
        """
        sliced = [e for e in self.events if t_start <= e.time < t_end]
        return TraceLog(
            name=name or f"{self.name}[{t_start:g}:{t_end:g}]",
            description=self.description,
            events=sliced,
        )

    def summary_line(self) -> str:
        """A one-line human summary (name, events, span)."""
        return (
            f"{self.name}: {len(self.events)} events over "
            f"{self.duration / 3600:.2f} hours"
        )
