"""Per-log memoization of derived trace products.

Every sweep replays the same derived stream through many configurations,
``run_all`` replays it through many experiments, and the one-pass
analyzer reuses the columnar view the binary reader produced.  Rebuilding
those products each time dominated setup, so derived products (item
streams, metadata streams, packed streams, column views) are memoized per
:class:`~repro.trace.log.TraceLog`.

The table is keyed by object identity with a weakref for cleanup, and
validated against a cheap *stamp* of the event list:

* the event count — ``TraceLog``'s mutation API is append-only, so a
  changed length is exactly a changed log;
* the identity of the ``events`` list object — catches wholesale list
  replacement (``log.events = other``);
* the sum of the event object ids — catches in-place replacement
  (``log.events[i] = other_event``).  A replacement is allocated while
  the replaced event is still referenced by the list, so the two ids
  necessarily differ and the sum moves.  (Like any identity-based
  scheme this is best-effort against adversarial id reuse, but an event
  freed *and* reallocated at the same address with the list unchanged
  in every other position cannot be produced by normal mutation.)

The stamp is O(events) to compute, but it is a single C-level pass
(``sum(map(id, ...))``) paid once per cache lookup — noise next to the
O(events x blocks) builds it guards.
"""

from __future__ import annotations

import weakref
from typing import TYPE_CHECKING, Callable, Hashable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .log import TraceLog

__all__ = ["memoize_per_log"]

_MEMO: dict[int, tuple[weakref.ref, tuple, dict[Hashable, object]]] = {}


def _stamp(log: "TraceLog") -> tuple:
    events = log.events
    return (len(events), id(events), sum(map(id, events)))


def _memo_table(log: "TraceLog") -> dict[Hashable, object]:
    key = id(log)
    stamp = _stamp(log)
    entry = _MEMO.get(key)
    if entry is not None:
        ref, old_stamp, table = entry
        if ref() is log and old_stamp == stamp:
            return table

    def _evict(_ref, _key=key):
        _MEMO.pop(_key, None)

    table: dict[Hashable, object] = {}
    _MEMO[key] = (weakref.ref(log, _evict), stamp, table)
    return table


def memoize_per_log(log: "TraceLog", key: Hashable, builder: Callable[[], object]):
    """Return the memoized product *key* for *log*, building it on miss."""
    table = _memo_table(log)
    try:
        return table[key]
    except KeyError:
        product = builder()
        table[key] = product
        return product
