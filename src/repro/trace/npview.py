"""Zero-copy numpy views over :class:`~repro.trace.columns.TraceColumns`.

The vectorized engine (:mod:`repro.analysis.vectorized`) consumes trace
columns as flat ``numpy`` arrays.  This module is the only place that
knows how to get them: ``np.frombuffer`` over the existing buffers —
``array('d')``/``array('q')`` for in-RAM traces, ``memoryview`` slices
straight into the mmap for ``.bcorpus`` segments, ``bytes`` for the kind
and flag columns — so building the views copies nothing and costs O(1)
per column regardless of trace length.

Native dtypes are correct on every host: in-RAM ``array`` columns are
native-endian by construction, and :class:`~repro.corpus.reader.CorpusReader`
already normalizes segment columns to native order (zero-copy casts on
little-endian hosts, byteswapped copies on big-endian ones).

numpy is strictly optional.  :func:`numpy_available` is the single
gate: it is False when numpy is not importable *or* when the
``REPRO_NO_NUMPY`` environment variable is set, and every dispatch site
(:func:`resolve_engine`) honors it, so the pure-Python paths keep
working — and keep being exercised — without numpy installed.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - types only
    from .columns import TraceColumns

try:  # pragma: no cover - exercised via both CI matrix legs
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

__all__ = [
    "ENGINES",
    "ColumnViews",
    "as_f64",
    "as_i64",
    "as_u8",
    "column_views",
    "current_engine",
    "engine_context",
    "numpy_available",
    "resolve_engine",
]

#: The engine names every ``engine=`` parameter and ``--engine`` flag accepts.
ENGINES = ("auto", "python", "numpy")


def numpy_available() -> bool:
    """True when the numpy fast path may be used.

    ``REPRO_NO_NUMPY=1`` (any non-empty value) disables it even with
    numpy installed — the escape hatch for debugging and for the CI leg
    that keeps the fallback path honest.
    """
    return np is not None and not os.environ.get("REPRO_NO_NUMPY")


def resolve_engine(engine: str) -> str:
    """Map an ``auto``/``python``/``numpy`` request to a concrete engine.

    ``auto`` picks numpy when available, else python.  Requesting
    ``numpy`` explicitly when it cannot run is an error, not a silent
    fallback — the caller asked for the fast path and should know.
    """
    if engine not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of {', '.join(ENGINES)}"
        )
    if engine == "auto":
        return "numpy" if numpy_available() else "python"
    if engine == "numpy" and not numpy_available():
        raise RuntimeError(
            "numpy engine requested but numpy is unavailable "
            "(not installed, or disabled via REPRO_NO_NUMPY)"
        )
    return engine


_ambient_engine: str | None = None


def current_engine() -> str:
    """The ambient engine name: the innermost :func:`engine_context`,
    else ``"auto"`` (resolve at use time, so ``REPRO_NO_NUMPY`` and
    import availability are honored wherever the choice lands)."""
    return _ambient_engine if _ambient_engine is not None else "auto"


@contextmanager
def engine_context(engine: str) -> Iterator[str]:
    """Establish the ambient engine for nested dispatch sites.

    Mirrors :func:`repro.parallel.executor.jobs_context`: a ``--engine``
    flag set at the CLI reaches sweeps buried under the experiment
    registry, whose entry points take only a trace.  The name is
    validated here but resolved lazily at each dispatch site.
    """
    global _ambient_engine
    if engine not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of {', '.join(ENGINES)}"
        )
    previous = _ambient_engine
    _ambient_engine = engine
    try:
        yield engine
    finally:
        _ambient_engine = previous


def as_f64(column):
    """A zero-copy float64 view of an 8-byte-per-row float column."""
    return np.frombuffer(column, dtype=np.float64)


def as_i64(column):
    """A zero-copy int64 view of an 8-byte-per-row integer column."""
    return np.frombuffer(column, dtype=np.int64)


def as_u8(column):
    """A zero-copy uint8 view of a byte column (kinds, flags)."""
    return np.frombuffer(column, dtype=np.uint8)


class ColumnViews:
    """The eight columns of one :class:`TraceColumns`, as numpy views.

    Views alias the source buffers: a write through the backing
    ``array`` is visible here (and the views themselves inherit the
    buffer's writability — read-only over ``bytes`` and ``ACCESS_READ``
    mmaps).  Kernels treat them as immutable inputs.
    """

    __slots__ = (
        "kinds",
        "times",
        "open_ids",
        "file_ids",
        "user_ids",
        "sizes",
        "positions",
        "flags",
    )

    def __init__(self, cols: "TraceColumns"):
        self.kinds = as_u8(cols.kinds)
        self.times = as_f64(cols.times)
        self.open_ids = as_i64(cols.open_ids)
        self.file_ids = as_i64(cols.file_ids)
        self.user_ids = as_i64(cols.user_ids)
        self.sizes = as_i64(cols.sizes)
        self.positions = as_i64(cols.positions)
        self.flags = as_u8(cols.flags)

    def __len__(self) -> int:
        return len(self.kinds)


def column_views(cols: "TraceColumns") -> ColumnViews:
    """Zero-copy numpy views over *cols* (requires numpy)."""
    if np is None:  # pragma: no cover - guarded by callers
        raise RuntimeError("numpy is not available")
    return ColumnViews(cols)
