"""Trace manipulation: filtering, merging, renumbering.

These are utilities a trace-study toolkit needs in practice: restrict a
trace to one user, merge traces gathered on different machines, or shift a
trace's time base.  Operations preserve the tracer invariants checked by
:mod:`repro.trace.validate` — in particular, filters keep an open's close
and seek events together with its open event.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable

from .log import TraceLog
from .records import (
    CloseEvent,
    CreateEvent,
    ExecEvent,
    OpenEvent,
    SeekEvent,
    TraceEvent,
    TruncateEvent,
    UnlinkEvent,
)

__all__ = ["filter_users", "filter_files", "shift_time", "merge", "renumber_opens"]


def filter_users(log: TraceLog, user_ids: Iterable[int], name: str | None = None) -> TraceLog:
    """Events attributable to any of *user_ids*.

    Opens carry a user id directly; the matching seek/close events follow
    their open.  Unlink/truncate events carry no user id in the paper's
    format, so they are kept when they touch a file id that one of the users
    has opened or created (a conservative over-approximation).
    """
    users = set(user_ids)
    kept_opens: set[int] = set()
    touched_files: set[int] = set()
    events: list[TraceEvent] = []
    for event in log.events:
        if isinstance(event, OpenEvent):
            if event.user_id in users:
                kept_opens.add(event.open_id)
                touched_files.add(event.file_id)
                events.append(event)
        elif isinstance(event, (SeekEvent, CloseEvent)):
            if event.open_id in kept_opens:
                events.append(event)
        elif isinstance(event, (CreateEvent, ExecEvent)):
            if event.user_id in users:
                touched_files.add(event.file_id)
                events.append(event)
        elif isinstance(event, (UnlinkEvent, TruncateEvent)):
            if event.file_id in touched_files:
                events.append(event)
    return TraceLog(
        name=name or f"{log.name}/users",
        description=log.description,
        events=events,
    )


def filter_files(log: TraceLog, file_ids: Iterable[int], name: str | None = None) -> TraceLog:
    """Events that touch any of *file_ids* (opens drag their seeks/closes)."""
    files = set(file_ids)
    kept_opens: set[int] = set()
    events: list[TraceEvent] = []
    for event in log.events:
        if isinstance(event, OpenEvent):
            if event.file_id in files:
                kept_opens.add(event.open_id)
                events.append(event)
        elif isinstance(event, (SeekEvent, CloseEvent)):
            if event.open_id in kept_opens:
                events.append(event)
        elif isinstance(event, (CreateEvent, UnlinkEvent, TruncateEvent, ExecEvent)):
            if event.file_id in files:
                events.append(event)
    return TraceLog(
        name=name or f"{log.name}/files",
        description=log.description,
        events=events,
    )


def shift_time(log: TraceLog, delta: float, name: str | None = None) -> TraceLog:
    """A copy of *log* with every timestamp shifted by *delta* seconds."""
    shifted = [_replace_time(e, e.time + delta) for e in log.events]
    return TraceLog(
        name=name or log.name, description=log.description, events=shifted
    )


def _replace_time(event: TraceEvent, time: float) -> TraceEvent:
    kwargs = {
        slot: getattr(event, slot) for slot in event.__dataclass_fields__
    }
    kwargs["time"] = time
    return type(event)(**kwargs)


def renumber_opens(
    log: TraceLog,
    open_id_base: int = 0,
    file_id_base: int = 0,
    user_id_base: int = 0,
) -> TraceLog:
    """Rewrite ids with dense values starting at the given bases.

    Useful before merging traces whose id spaces collide.
    """
    open_map: dict[int, int] = {}
    file_map: dict[int, int] = {}
    user_map: dict[int, int] = {}

    def new_open(oid: int) -> int:
        return open_map.setdefault(oid, open_id_base + len(open_map))

    def new_file(fid: int) -> int:
        return file_map.setdefault(fid, file_id_base + len(file_map))

    def new_user(uid: int) -> int:
        return user_map.setdefault(uid, user_id_base + len(user_map))

    events: list[TraceEvent] = []
    for e in log.events:
        if isinstance(e, OpenEvent):
            events.append(
                OpenEvent(
                    time=e.time,
                    open_id=new_open(e.open_id),
                    file_id=new_file(e.file_id),
                    user_id=new_user(e.user_id),
                    size=e.size,
                    mode=e.mode,
                    created=e.created,
                    new_file=e.new_file,
                    initial_pos=e.initial_pos,
                )
            )
        elif isinstance(e, SeekEvent):
            events.append(
                SeekEvent(
                    time=e.time,
                    open_id=new_open(e.open_id),
                    prev_pos=e.prev_pos,
                    new_pos=e.new_pos,
                )
            )
        elif isinstance(e, CloseEvent):
            events.append(
                CloseEvent(
                    time=e.time, open_id=new_open(e.open_id), final_pos=e.final_pos
                )
            )
        elif isinstance(e, CreateEvent):
            events.append(
                CreateEvent(
                    time=e.time, file_id=new_file(e.file_id), user_id=new_user(e.user_id)
                )
            )
        elif isinstance(e, UnlinkEvent):
            events.append(UnlinkEvent(time=e.time, file_id=new_file(e.file_id)))
        elif isinstance(e, TruncateEvent):
            events.append(
                TruncateEvent(
                    time=e.time, file_id=new_file(e.file_id), new_length=e.new_length
                )
            )
        elif isinstance(e, ExecEvent):
            events.append(
                ExecEvent(
                    time=e.time,
                    file_id=new_file(e.file_id),
                    user_id=new_user(e.user_id),
                    size=e.size,
                )
            )
    return TraceLog(name=log.name, description=log.description, events=events)


def merge(logs: list[TraceLog], name: str = "merged") -> TraceLog:
    """Merge several traces into one time-ordered trace.

    Each input is renumbered into a disjoint id space first, so opens from
    different machines can never collide.  The merge is a heap merge, so it
    is O(n log k) in the total event count.
    """
    disjoint: list[TraceLog] = []
    open_base = file_base = user_base = 0
    for log in logs:
        renum = renumber_opens(
            log,
            open_id_base=open_base,
            file_id_base=file_base,
            user_id_base=user_base,
        )
        disjoint.append(renum)
        open_base += sum(1 for e in log.events if isinstance(e, OpenEvent))
        file_base += len(log.file_ids()) or len(log.events)
        user_base += len(log.user_ids()) + 1
    merged = list(
        heapq.merge(*(d.events for d in disjoint), key=lambda e: e.time)
    )
    return TraceLog(
        name=name,
        description="merge of " + ", ".join(log.name for log in logs),
        events=merged,
    )
