"""Trace event records.

These mirror Table II of the paper: the kernel trace package logged seven
logical file-system events (open/create, close, seek, unlink, truncate and
execve) and *no* individual read or write requests.  Because file I/O in UNIX
is implicitly sequential, the positions recorded at open, close and seek fully
determine which bytes were transferred; the analysis layer reconstructs the
byte ranges from these events alone.

All times are seconds since the start of the trace (floats).  The kernel
tracer quantized times to roughly 10 ms; :func:`quantize_time` applies the
same rounding.  ``open_id`` is unique per ``open`` call (disambiguating
concurrent accesses to one file) and ``file_id`` is unique per file.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union

__all__ = [
    "AccessMode",
    "OpenEvent",
    "CloseEvent",
    "SeekEvent",
    "CreateEvent",
    "UnlinkEvent",
    "TruncateEvent",
    "ExecEvent",
    "TraceEvent",
    "EVENT_KINDS",
    "quantize_time",
]

#: Resolution of the kernel tracer's clock, in seconds (the paper quotes
#: "approximately 10 milliseconds").
TIME_RESOLUTION = 0.01


def quantize_time(time: float) -> float:
    """Round *time* to the tracer's 10 ms clock resolution."""
    return round(time / TIME_RESOLUTION) * TIME_RESOLUTION


class AccessMode(enum.IntEnum):
    """How a file was opened (derived from the open flags)."""

    READ = 1
    WRITE = 2
    READ_WRITE = 3

    @property
    def readable(self) -> bool:
        return self is not AccessMode.WRITE

    @property
    def writable(self) -> bool:
        return self is not AccessMode.READ

    @property
    def label(self) -> str:
        return {1: "r", 2: "w", 3: "rw"}[int(self)]

    @classmethod
    def from_label(cls, label: str) -> "AccessMode":
        try:
            return {"r": cls.READ, "w": cls.WRITE, "rw": cls.READ_WRITE}[label]
        except KeyError:
            raise ValueError(f"unknown access-mode label {label!r}") from None


@dataclass(frozen=True, slots=True)
class OpenEvent:
    """An ``open`` system call.

    ``size`` is the file's size at the time of the open (after any O_TRUNC
    processing).  ``created`` is true when the call created the file or
    truncated an existing file to zero length — in either case the data
    subsequently written is *new* data for lifetime purposes (Figure 4).
    ``new_file`` is true only when the file did not exist before (the
    Table III "create" accounting).  ``initial_pos`` is 0 for ordinary
    opens and the file size for appends.
    """

    time: float
    open_id: int
    file_id: int
    user_id: int
    size: int
    mode: AccessMode
    created: bool = False
    new_file: bool = False
    initial_pos: int = 0

    kind = "open"


@dataclass(frozen=True, slots=True)
class CloseEvent:
    """A ``close`` system call; records the final access position."""

    time: float
    open_id: int
    final_pos: int

    kind = "close"


@dataclass(frozen=True, slots=True)
class SeekEvent:
    """An ``lseek`` that changed the access position within an open file.

    Records both the previous position (bounding the preceding sequential
    run) and the new position (starting the next run).
    """

    time: float
    open_id: int
    prev_pos: int
    new_pos: int

    kind = "seek"


@dataclass(frozen=True, slots=True)
class CreateEvent:
    """A ``creat``-style file creation (paper Table III counts these
    separately from plain opens).  The matching :class:`OpenEvent` with
    ``created=True`` immediately follows; this record exists so traces carry
    the same event mix as Table III."""

    time: float
    file_id: int
    user_id: int

    kind = "create"


@dataclass(frozen=True, slots=True)
class UnlinkEvent:
    """An ``unlink`` (file deletion)."""

    time: float
    file_id: int

    kind = "unlink"


@dataclass(frozen=True, slots=True)
class TruncateEvent:
    """A ``truncate`` (file shortened to ``new_length``)."""

    time: float
    file_id: int
    new_length: int

    kind = "trunc"


@dataclass(frozen=True, slots=True)
class ExecEvent:
    """An ``execve`` (program load); records the program file's size so that
    paging activity can be approximated (Section 6.4 / Figure 7)."""

    time: float
    file_id: int
    user_id: int
    size: int

    kind = "exec"


TraceEvent = Union[
    OpenEvent,
    CloseEvent,
    SeekEvent,
    CreateEvent,
    UnlinkEvent,
    TruncateEvent,
    ExecEvent,
]

#: Map of serialized kind tag -> event class.
EVENT_KINDS = {
    cls.kind: cls
    for cls in (
        OpenEvent,
        CloseEvent,
        SeekEvent,
        CreateEvent,
        UnlinkEvent,
        TruncateEvent,
        ExecEvent,
    )
}
