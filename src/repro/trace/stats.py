"""Overall trace statistics (paper Table III).

For each trace the paper reports the duration, number of records, trace-file
size, total data transferred, and the count of each event type with its
percentage of all events.  ``total data transferred`` is reconstructed from
the recorded positions alone: within one open, the bytes moved between two
consecutive events is the difference between the position recorded at the
later event and the position in effect after the earlier one (reads and
writes are implicitly sequential in UNIX, which is what makes the paper's
no-read-write tracing sound).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .io_text import format_event
from .log import TraceLog
from .records import CloseEvent, OpenEvent, SeekEvent

__all__ = ["TraceStats", "compute_stats", "total_bytes_transferred"]

#: Order in which Table III lists the event kinds.
TABLE3_KINDS = ("create", "open", "close", "seek", "unlink", "trunc", "exec")

_KIND_LABELS = {
    "create": "create events",
    "open": "open events",
    "close": "close events",
    "seek": "seek events",
    "unlink": "unlink events",
    "trunc": "truncate events",
    "exec": "execve",
}


def total_bytes_transferred(log: TraceLog) -> int:
    """Total bytes read+written, reconstructed from positions.

    Orphan close/seek events (whose open is missing, e.g. after slicing a
    trace) are skipped.
    """
    position: dict[int, int] = {}
    total = 0
    for event in log.events:
        if isinstance(event, OpenEvent):
            position[event.open_id] = event.initial_pos
        elif isinstance(event, SeekEvent):
            if event.open_id in position:
                total += max(0, event.prev_pos - position[event.open_id])
                position[event.open_id] = event.new_pos
        elif isinstance(event, CloseEvent):
            if event.open_id in position:
                total += max(0, event.final_pos - position.pop(event.open_id))
    return total


@dataclass
class TraceStats:
    """The Table III row set for one trace."""

    name: str
    duration_hours: float
    record_count: int
    trace_file_mbytes: float
    data_transferred_mbytes: float
    kind_counts: dict[str, int] = field(default_factory=dict)

    def kind_percent(self, kind: str) -> float:
        """Percentage of all events that are of *kind*."""
        if not self.record_count:
            return 0.0
        return 100.0 * self.kind_counts.get(kind, 0) / self.record_count

    def as_rows(self) -> list[tuple[str, str]]:
        """Label/value pairs in the paper's Table III order."""
        rows = [
            ("Duration (hours)", f"{self.duration_hours:.1f}"),
            ("Number of trace records", f"{self.record_count:,}"),
            ("Size of trace file (Mbytes)", f"{self.trace_file_mbytes:.1f}"),
            (
                "Total data transferred to/from files (Mbytes)",
                f"{self.data_transferred_mbytes:.1f}",
            ),
        ]
        for kind in TABLE3_KINDS:
            count = self.kind_counts.get(kind, 0)
            rows.append(
                (
                    _KIND_LABELS[kind],
                    f"{count:,} ({self.kind_percent(kind):.1f}%)",
                )
            )
        return rows

    def render(self) -> str:
        """Plain-text rendering of the table."""
        rows = self.as_rows()
        width = max(len(label) for label, _ in rows)
        lines = [f"Trace {self.name}"]
        lines += [f"  {label:<{width}}  {value}" for label, value in rows]
        return "\n".join(lines)


def compute_stats(log: TraceLog) -> TraceStats:
    """Compute the Table III statistics for *log*.

    The trace-file size column is estimated from the text serialization
    (one line per event), mirroring the paper's on-disk trace-file sizes.
    """
    kind_counts: dict[str, int] = {}
    text_bytes = 0
    for event in log.events:
        # Table III counts creations of genuinely new files separately
        # from plain opens; opens that merely truncate an existing file
        # (created=True, new_file=False) stay in the "open" row, as they
        # did for the paper's tracer.
        kind = event.kind
        if isinstance(event, OpenEvent) and event.new_file:
            kind = "create"
        kind_counts[kind] = kind_counts.get(kind, 0) + 1
        text_bytes += len(format_event(event)) + 1
    return TraceStats(
        name=log.name,
        duration_hours=log.duration / 3600.0,
        record_count=len(log.events),
        trace_file_mbytes=text_bytes / 1e6,
        data_transferred_mbytes=total_bytes_transferred(log) / 1e6,
        kind_counts=kind_counts,
    )
