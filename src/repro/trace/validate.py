"""Trace integrity checking.

A well-formed trace satisfies the invariants the kernel tracer guarantees:
times are non-decreasing, every close/seek refers to a previously opened
``open_id``, an ``open_id`` is opened at most once and closed at most once,
and positions never go negative.  The workload generator is tested against
these invariants, and traces converted from foreign sources (strace) are
validated before analysis.

Two entry points share the checks: :func:`validate` walks a
:class:`~repro.trace.log.TraceLog`'s event objects, and
:func:`validate_columns` walks a
:class:`~repro.trace.columns.TraceColumns` view directly — flat typed
columns, no event-object materialization — which is how ``repro-fs
validate`` checks a ``.btrace`` without paying a per-event dataclass.
The columnar path additionally checks the storage-level invariants the
object view cannot express: every time must fit the binary format's u32
centisecond field, kind tags must be known, and flag bytes must hold
only defined bits (open rows: a valid mode plus the created/new-file
bits; every other row: zero).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .columns import (
    FLAG_CREATED,
    FLAG_MODE_MASK,
    FLAG_NEW_FILE,
    KIND_CLOSE,
    KIND_LABELS,
    KIND_OPEN,
    KIND_SEEK,
    KIND_TRUNC,
    TraceColumns,
)
from .io_binary import MAX_TRACE_TIME
from .log import TraceLog
from .npview import resolve_engine
from .records import CloseEvent, OpenEvent, SeekEvent, TruncateEvent

__all__ = [
    "ValidationReport",
    "validate",
    "validate_columns",
    "validate_columns_into",
]

DEFAULT_MAX_PROBLEMS = 50

_VALID_FLAG_BITS = FLAG_MODE_MASK | FLAG_CREATED | FLAG_NEW_FILE


@dataclass
class ValidationReport:
    """Result of :func:`validate`: counts plus a bounded list of problems."""

    event_count: int = 0
    open_count: int = 0
    unmatched_opens: int = 0  # opens never closed (legal: file open at trace end)
    problems: list[str] = field(default_factory=list)
    max_problems: int = DEFAULT_MAX_PROBLEMS

    @property
    def ok(self) -> bool:
        return not self.problems

    @property
    def truncated(self) -> bool:
        """True when further problems were dropped past ``max_problems``."""
        return len(self.problems) > self.max_problems

    def add(self, message: str) -> None:
        if len(self.problems) < self.max_problems:
            self.problems.append(message)
        elif len(self.problems) == self.max_problems:
            self.problems.append("... further problems suppressed")

    def __str__(self) -> str:
        status = "OK" if self.ok else f"{len(self.problems)} problem(s)"
        return (
            f"validation: {status}; {self.event_count} events, "
            f"{self.open_count} opens, {self.unmatched_opens} never closed"
        )


class _OpenTracker:
    """Shared open/close/seek bookkeeping for both validation paths."""

    __slots__ = ("report", "open_positions", "closed", "last_time")

    def __init__(self, report: ValidationReport):
        self.report = report
        self.open_positions: dict[int, int] = {}
        self.closed: set[int] = set()
        self.last_time = float("-inf")

    def time(self, i: int, t: float) -> None:
        if t < self.last_time:
            self.report.add(
                f"event {i}: time {t} precedes previous {self.last_time}"
            )
        self.last_time = t

    def open(self, i: int, open_id: int, size: int, initial_pos: int) -> None:
        report = self.report
        report.open_count += 1
        if open_id in self.open_positions:
            report.add(f"event {i}: open_id {open_id} opened twice")
        if open_id in self.closed:
            report.add(f"event {i}: open_id {open_id} reused after close")
        if size < 0 or initial_pos < 0:
            report.add(f"event {i}: negative size/position on open")
        if initial_pos > size:
            report.add(
                f"event {i}: open initial_pos {initial_pos} beyond "
                f"size {size}"
            )
        self.open_positions[open_id] = initial_pos

    def seek(self, i: int, open_id: int, prev_pos: int, new_pos: int) -> None:
        if open_id not in self.open_positions:
            self.report.add(f"event {i}: seek on unknown open_id {open_id}")
        if prev_pos < 0 or new_pos < 0:
            self.report.add(f"event {i}: negative seek position")
        self.open_positions[open_id] = new_pos

    def close(self, i: int, open_id: int, final_pos: int) -> None:
        if open_id not in self.open_positions:
            self.report.add(f"event {i}: close on unknown open_id {open_id}")
        else:
            del self.open_positions[open_id]
        if open_id in self.closed:
            self.report.add(f"event {i}: open_id {open_id} closed twice")
        self.closed.add(open_id)
        if final_pos < 0:
            self.report.add(f"event {i}: negative final position on close")

    def truncate(self, i: int, new_length: int) -> None:
        if new_length < 0:
            self.report.add(f"event {i}: truncate to negative length")

    def finish(self) -> ValidationReport:
        self.report.unmatched_opens = len(self.open_positions)
        return self.report


def validate(
    log: TraceLog | TraceColumns,
    max_problems: int = DEFAULT_MAX_PROBLEMS,
    engine: str = "auto",
) -> ValidationReport:
    """Check *log* against the tracer invariants and return a report.

    Accepts either an event-object :class:`TraceLog` or a columnar
    :class:`TraceColumns` view (dispatched to :func:`validate_columns`,
    which never materializes event objects).  *engine* selects the scan
    implementation for the columnar path; the event-object walk has no
    flat buffers to vectorize and always runs in Python.
    """
    if isinstance(log, TraceColumns):
        return validate_columns(log, max_problems=max_problems, engine=engine)
    report = ValidationReport(
        event_count=len(log.events), max_problems=max_problems
    )
    tracker = _OpenTracker(report)

    for i, event in enumerate(log.events):
        tracker.time(i, event.time)
        if isinstance(event, OpenEvent):
            tracker.open(i, event.open_id, event.size, event.initial_pos)
        elif isinstance(event, SeekEvent):
            tracker.seek(i, event.open_id, event.prev_pos, event.new_pos)
        elif isinstance(event, CloseEvent):
            tracker.close(i, event.open_id, event.final_pos)
        elif isinstance(event, TruncateEvent):
            tracker.truncate(i, event.new_length)
    return tracker.finish()


def validate_columns(
    cols: TraceColumns,
    max_problems: int = DEFAULT_MAX_PROBLEMS,
    engine: str = "auto",
) -> ValidationReport:
    """Check a columnar trace directly against the tracer invariants.

    Walks the flat columns — no event objects are built — and layers on
    the storage-level checks: u32 centisecond time range, known kind
    tags, and flag bytes holding only defined bits.  *engine* selects the
    implementation: ``"auto"`` uses the numpy fast path when available,
    ``"python"``/``"numpy"`` force one side; both produce identical
    reports (fuzz pillar 5 checks this continuously).
    """
    if resolve_engine(engine) == "numpy":
        # Imported lazily: analysis.vectorized imports this module.
        from ..analysis.vectorized import VectorFallback, validate_columns_numpy

        try:
            return validate_columns_numpy(cols, max_problems)
        except VectorFallback:
            pass
    report = ValidationReport(event_count=len(cols), max_problems=max_problems)
    tracker = _OpenTracker(report)
    validate_columns_into(cols, tracker)
    return tracker.finish()


def validate_columns_into(
    cols: TraceColumns,
    tracker: _OpenTracker,
    base: int = 0,
) -> None:
    """Fold one columnar chunk into an ongoing validation.

    The streaming building block behind :func:`validate_columns` (and the
    corpus path, :func:`repro.corpus.validate_corpus`): *tracker* carries
    the open/close state across chunks and *base* is the chunk's global
    index of row 0, so problem messages name the same event numbers the
    in-RAM path would.  The caller owns ``tracker.finish()``.
    """
    report = tracker.report
    kinds = cols.kinds
    times = cols.times
    open_ids = cols.open_ids
    sizes = cols.sizes
    positions = cols.positions
    flags = cols.flags

    for row in range(len(kinds)):
        i = base + row
        kind = kinds[row]
        t = times[row]
        tracker.time(i, t)
        if not 0.0 <= t <= MAX_TRACE_TIME:
            report.add(
                f"event {i}: time {t} s outside the binary format's u32 "
                f"centisecond range (0..{MAX_TRACE_TIME:.2f} s)"
            )
        if kind not in KIND_LABELS:
            report.add(f"event {i}: unknown kind tag {kind}")
            continue
        fl = flags[row]
        if kind == KIND_OPEN:
            mode = fl & FLAG_MODE_MASK
            if mode == 0:
                report.add(f"event {i}: open flag byte {fl:#04x} has no mode bits")
            if fl & ~_VALID_FLAG_BITS:
                report.add(
                    f"event {i}: open flag byte {fl:#04x} sets undefined bits"
                )
            tracker.open(i, open_ids[row], sizes[row], positions[row])
        else:
            if fl != 0:
                report.add(
                    f"event {i}: non-open row has nonzero flag byte {fl:#04x}"
                )
            if kind == KIND_SEEK:
                tracker.seek(i, open_ids[row], sizes[row], positions[row])
            elif kind == KIND_CLOSE:
                tracker.close(i, open_ids[row], positions[row])
            elif kind == KIND_TRUNC:
                tracker.truncate(i, sizes[row])
