"""Trace integrity checking.

A well-formed trace satisfies the invariants the kernel tracer guarantees:
times are non-decreasing, every close/seek refers to a previously opened
``open_id``, an ``open_id`` is opened at most once and closed at most once,
and positions never go negative.  The workload generator is tested against
these invariants, and traces converted from foreign sources (strace) are
validated before analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .log import TraceLog
from .records import CloseEvent, OpenEvent, SeekEvent, TruncateEvent

__all__ = ["ValidationReport", "validate"]


@dataclass
class ValidationReport:
    """Result of :func:`validate`: counts plus a bounded list of problems."""

    event_count: int = 0
    open_count: int = 0
    unmatched_opens: int = 0  # opens never closed (legal: file open at trace end)
    problems: list[str] = field(default_factory=list)
    max_problems: int = 50

    @property
    def ok(self) -> bool:
        return not self.problems

    def add(self, message: str) -> None:
        if len(self.problems) < self.max_problems:
            self.problems.append(message)
        elif len(self.problems) == self.max_problems:
            self.problems.append("... further problems suppressed")

    def __str__(self) -> str:
        status = "OK" if self.ok else f"{len(self.problems)} problem(s)"
        return (
            f"validation: {status}; {self.event_count} events, "
            f"{self.open_count} opens, {self.unmatched_opens} never closed"
        )


def validate(log: TraceLog) -> ValidationReport:
    """Check *log* against the tracer invariants and return a report."""
    report = ValidationReport(event_count=len(log.events))
    open_positions: dict[int, int] = {}
    closed: set[int] = set()
    last_time = float("-inf")

    for i, event in enumerate(log.events):
        if event.time < last_time:
            report.add(
                f"event {i}: time {event.time} precedes previous {last_time}"
            )
        last_time = event.time

        if isinstance(event, OpenEvent):
            report.open_count += 1
            if event.open_id in open_positions:
                report.add(f"event {i}: open_id {event.open_id} opened twice")
            if event.open_id in closed:
                report.add(f"event {i}: open_id {event.open_id} reused after close")
            if event.size < 0 or event.initial_pos < 0:
                report.add(f"event {i}: negative size/position on open")
            if event.initial_pos > event.size:
                report.add(
                    f"event {i}: open initial_pos {event.initial_pos} beyond "
                    f"size {event.size}"
                )
            open_positions[event.open_id] = event.initial_pos
        elif isinstance(event, SeekEvent):
            if event.open_id not in open_positions:
                report.add(f"event {i}: seek on unknown open_id {event.open_id}")
            if event.prev_pos < 0 or event.new_pos < 0:
                report.add(f"event {i}: negative seek position")
            open_positions[event.open_id] = event.new_pos
        elif isinstance(event, CloseEvent):
            if event.open_id not in open_positions:
                report.add(f"event {i}: close on unknown open_id {event.open_id}")
            else:
                del open_positions[event.open_id]
            if event.open_id in closed:
                report.add(f"event {i}: open_id {event.open_id} closed twice")
            closed.add(event.open_id)
            if event.final_pos < 0:
                report.add(f"event {i}: negative final position on close")
        elif isinstance(event, TruncateEvent):
            if event.new_length < 0:
                report.add(f"event {i}: truncate to negative length")

    report.unmatched_opens = len(open_positions)
    return report
