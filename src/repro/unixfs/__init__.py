"""A simulated 4.2 BSD file system with a kernel trace hook.

This package is the substrate the paper's instrumented kernel provided:
inodes with an in-core inode cache, directories with a name-lookup cache,
an FFS-style block/fragment allocator, an open-file table, a live kernel
buffer cache, and a trace package that logs the Table II events (open,
close, seek, create, unlink, truncate, execve) — and deliberately nothing
at read/write time.
"""

from .allocator import AllocatorStats, BlockAllocator, Extent
from .buffercache import BufferCache, BufferCacheStats
from .check import FsckReport, fsck
from .content import ContentStore, MemoryContentStore, NullContentStore
from .errors import (
    EACCES,
    EBADF,
    EEXIST,
    EINVAL,
    EISDIR,
    EMFILE,
    ENOENT,
    ENOSPC,
    ENOTDIR,
    ENOTEMPTY,
    EXDEV,
    UnixFsError,
)
from .fdtable import FdTable, OpenFile
from .filesystem import FileSystem, StatResult, Whence
from .geometry import DEFAULT_GEOMETRY, Geometry
from .inode import CacheCounters, FileType, Inode, InodeCache, InodeTable
from .namei import Dnlc, NameResolver, parent_path, split_path
from .snapshot import dict_to_tree, load_tree, save_tree, tree_to_dict
from .tracer import KernelTracer, NullTracer

__all__ = [
    "FileSystem",
    "Whence",
    "StatResult",
    "Geometry",
    "DEFAULT_GEOMETRY",
    "BlockAllocator",
    "Extent",
    "AllocatorStats",
    "BufferCache",
    "BufferCacheStats",
    "fsck",
    "FsckReport",
    "save_tree",
    "load_tree",
    "tree_to_dict",
    "dict_to_tree",
    "ContentStore",
    "NullContentStore",
    "MemoryContentStore",
    "FdTable",
    "OpenFile",
    "FileType",
    "Inode",
    "InodeTable",
    "InodeCache",
    "CacheCounters",
    "Dnlc",
    "NameResolver",
    "split_path",
    "parent_path",
    "KernelTracer",
    "NullTracer",
    "UnixFsError",
    "ENOENT",
    "EEXIST",
    "EBADF",
    "EISDIR",
    "ENOTDIR",
    "ENOTEMPTY",
    "EINVAL",
    "ENOSPC",
    "EACCES",
    "EMFILE",
    "EXDEV",
]
