"""FFS-style block and fragment allocator.

4.2 BSD allocates every block of a file at the full block size except the
last, which is rounded up only to fragments (block/4 here).  The paper
leans on this scheme in Section 6.3: large blocks are good for the cache,
and the fragment scheme keeps them from wasting disk space on the many
small files the traces show.  This allocator implements the scheme with a
best-fit fragment search, so the workload engine runs against a disk whose
space accounting behaves like the real thing (including fragment promotion
when a file's tail grows past a full block).

Blocks are identified by integer block numbers; fragments by
``(block, start_fragment, count)``.  All operations are O(1) amortized
thanks to a run-length index over partially allocated blocks (fragments per
block is at most 8, so per-block bit twiddling is constant time).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .errors import EINVAL, ENOSPC
from .geometry import Geometry

__all__ = ["Extent", "BlockAllocator", "AllocatorStats"]


@dataclass
class Extent:
    """The on-disk allocation of one file.

    ``blocks`` lists the full blocks; the tail, if any, is ``tail_frags``
    fragments starting at fragment ``tail_start`` of block ``tail_block``.
    """

    blocks: list[int] = field(default_factory=list)
    tail_block: int | None = None
    tail_start: int = 0
    tail_frags: int = 0

    def allocated_frags(self, frags_per_block: int) -> int:
        return len(self.blocks) * frags_per_block + self.tail_frags


@dataclass
class AllocatorStats:
    """Cumulative allocator activity counters."""

    blocks_allocated: int = 0
    blocks_freed: int = 0
    frag_allocations: int = 0
    frag_frees: int = 0
    frag_promotions: int = 0  # tail copied into a full block as the file grew


def _full_mask(fpb: int) -> int:
    return (1 << fpb) - 1


def _max_free_run(mask: int, fpb: int) -> int:
    """Length of the longest run of set (free) bits in an fpb-bit mask."""
    best = run = 0
    for i in range(fpb):
        if mask >> i & 1:
            run += 1
            best = max(best, run)
        else:
            run = 0
    return best


def _find_free_run(mask: int, n: int, fpb: int) -> int:
    """Start index of the first run of *n* free bits, or -1."""
    run = 0
    for i in range(fpb):
        if mask >> i & 1:
            run += 1
            if run == n:
                return i - n + 1
        else:
            run = 0
    return -1


class BlockAllocator:
    """Allocates full blocks and tail fragments on a fixed-size device."""

    def __init__(self, geometry: Geometry):
        self.geometry = geometry
        self.stats = AllocatorStats()
        self._fpb = geometry.frags_per_block
        self._full = _full_mask(self._fpb)
        # Free full blocks, used as a LIFO stack (locality-friendly enough
        # for a simulation that never looks at physical addresses).
        self._free_blocks: list[int] = list(range(geometry.total_blocks - 1, -1, -1))
        # Partially allocated blocks: block -> bitmask of FREE fragments.
        self._partial: dict[int, int] = {}
        # Index: max free-run length -> set of partial blocks with that run.
        self._by_run: list[set[int]] = [set() for _ in range(self._fpb + 1)]
        self._free_frag_count = geometry.total_frags

    # -- capacity ------------------------------------------------------------

    @property
    def free_frags(self) -> int:
        """Free fragments on the device (full blocks included)."""
        return self._free_frag_count

    @property
    def free_bytes(self) -> int:
        return self._free_frag_count * self.geometry.frag_size

    @property
    def allocated_bytes(self) -> int:
        return self.geometry.total_bytes - self.free_bytes

    # -- low-level block/fragment operations ---------------------------------

    def _alloc_block(self) -> int:
        if not self._free_blocks:
            raise ENOSPC("no free blocks")
        block = self._free_blocks.pop()
        self._free_frag_count -= self._fpb
        self.stats.blocks_allocated += 1
        return block

    def _free_block(self, block: int) -> None:
        self._free_blocks.append(block)
        self._free_frag_count += self._fpb
        self.stats.blocks_freed += 1

    def _index_partial(self, block: int, mask: int) -> None:
        self._partial[block] = mask
        self._by_run[_max_free_run(mask, self._fpb)].add(block)

    def _unindex_partial(self, block: int) -> int:
        mask = self._partial.pop(block)
        self._by_run[_max_free_run(mask, self._fpb)].discard(block)
        return mask

    def _alloc_frags(self, n: int) -> tuple[int, int]:
        """Allocate *n* contiguous fragments; returns (block, start)."""
        if not 0 < n < self._fpb:
            raise EINVAL(f"fragment allocation of {n} frags (fpb={self._fpb})")
        # Best fit: smallest run that holds n, to limit external fragmentation
        # within blocks.
        for run in range(n, self._fpb + 1):
            if self._by_run[run]:
                block = next(iter(self._by_run[run]))
                mask = self._unindex_partial(block)
                start = _find_free_run(mask, n, self._fpb)
                mask &= ~(((1 << n) - 1) << start)
                if mask:
                    self._index_partial(block, mask)
                # A block with no free frags is fully allocated: not indexed.
                self._free_frag_count -= n
                self.stats.frag_allocations += 1
                return block, start
        # No partial block fits: split a fresh full block.
        block = self._alloc_block()
        mask = self._full & ~((1 << n) - 1)
        self._free_frag_count += self._fpb  # _alloc_block already charged it
        self._free_frag_count -= n
        if mask:
            self._index_partial(block, mask)
        self.stats.frag_allocations += 1
        return block, start_of_new_block()

    def _free_frags(self, block: int, start: int, n: int) -> None:
        bits = ((1 << n) - 1) << start
        if block in self._partial:
            mask = self._unindex_partial(block)
        else:
            mask = 0
        if mask & bits:
            raise EINVAL(f"double free of fragments in block {block}")
        mask |= bits
        self._free_frag_count += n
        self.stats.frag_frees += 1
        if mask == self._full:
            # Whole block free again (don't double count frags: _free_block
            # credits the full block, so remove our fragment credit first).
            self._free_frag_count -= self._fpb
            self._free_block(block)
        else:
            self._index_partial(block, mask)

    # -- extent (per-file) operations -----------------------------------------

    def resize(self, extent: Extent, new_size: int) -> None:
        """Grow or shrink *extent* to hold *new_size* bytes.

        Implements the FFS policy: all blocks full-size except a fragment
        tail; a tail that grows past a full block is *promoted* (copied into
        a freshly allocated full block, counted in
        ``stats.frag_promotions``).

        Atomic with respect to ENOSPC: if the device fills mid-growth, the
        extent is restored to an allocation equivalent to what it held
        (same block and fragment counts) before the error propagates.
        """
        if new_size < 0:
            raise EINVAL(f"negative size {new_size}")
        old_blocks = len(extent.blocks)
        old_tail = extent.tail_frags
        try:
            self._resize_inner(extent, new_size)
        except ENOSPC:
            self._restore(extent, old_blocks, old_tail)
            raise

    def _restore(self, extent: Extent, n_blocks: int, tail_frags: int) -> None:
        """Rebuild *extent* to hold the given shape after a failed grow.

        Everything the failed resize freed or allocated is released first,
        so re-allocating the original shape cannot itself fail.
        """
        while extent.blocks:
            self._free_block(extent.blocks.pop())
        if extent.tail_frags:
            self._free_frags(extent.tail_block, extent.tail_start, extent.tail_frags)
            extent.tail_block = None
            extent.tail_start = 0
            extent.tail_frags = 0
        for _ in range(n_blocks):
            extent.blocks.append(self._alloc_block())
        if tail_frags:
            block, start = self._alloc_frags(tail_frags)
            extent.tail_block = block
            extent.tail_start = start
            extent.tail_frags = tail_frags

    def _resize_inner(self, extent: Extent, new_size: int) -> None:
        want_blocks, want_tail = self.geometry.allocation_for(new_size)
        have_blocks = len(extent.blocks)

        # Shrinking the full-block run.
        while have_blocks > want_blocks:
            self._free_block(extent.blocks.pop())
            have_blocks -= 1

        # Tail adjustments first when growing (promotion frees the old tail).
        if want_blocks > have_blocks and extent.tail_frags:
            # The old tail becomes part of a full block: promote.
            self._free_frags(extent.tail_block, extent.tail_start, extent.tail_frags)
            extent.tail_block = None
            extent.tail_start = 0
            extent.tail_frags = 0
            self.stats.frag_promotions += 1

        while have_blocks < want_blocks:
            extent.blocks.append(self._alloc_block())
            have_blocks += 1

        if want_tail != extent.tail_frags:
            if extent.tail_frags:
                self._free_frags(
                    extent.tail_block, extent.tail_start, extent.tail_frags
                )
                extent.tail_block = None
                extent.tail_start = 0
                extent.tail_frags = 0
            if want_tail:
                block, start = self._alloc_frags(want_tail)
                extent.tail_block = block
                extent.tail_start = start
                extent.tail_frags = want_tail

    def release(self, extent: Extent) -> None:
        """Free everything the extent holds (file deletion)."""
        self.resize(extent, 0)


def start_of_new_block() -> int:
    """Fragments carved from a fresh block always start at fragment 0."""
    return 0
